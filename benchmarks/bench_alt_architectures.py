"""Extension bench: FSM+BRAM vs systolic array vs CAM matcher (§II).

The paper's related-work section positions its design against systolic
arrays [8,9] and CAM-based compressors [7]. Expected shape:

* the systolic array sustains ~1 B/cycle but needs one PE per window
  byte (logic explodes with the window);
* the CAM matcher is fast and chain-free but pays ~10x BRAM-equivalent
  area for its storage;
* the paper's FSM+BRAM design is the only one whose area stays almost
  flat as the window grows — the reason it scales to 16 KB windows on a
  mid-range FPGA.
"""

from benchmarks.conftest import run_once, save_exhibit
from repro.hw.alt_architectures import compare_architectures
from repro.hw.params import HardwareParams
from repro.workloads.corpus import sample


def test_architecture_comparison(benchmark, sample_bytes):
    def build():
        data = sample("wiki", sample_bytes)
        return {
            window: compare_architectures(
                HardwareParams(window_size=window), data
            )
            for window in (1024, 4096, 16384)
        }

    results = run_once(benchmark, build)
    lines = []
    for window, cmp in results.items():
        lines.append(f"--- window {window // 1024} KB ---")
        lines.append(cmp.format_table())
    save_exhibit("extension_architectures", "\n".join(lines))

    for window, cmp in results.items():
        # Systolic: steady ~1 B/cycle -> ~100 MB/s at 100 MHz.
        assert 60 < cmp.systolic.throughput_mbps <= 105
        # CAM: no chain-walk cost, so at least as fast as the FSM.
        assert cmp.cam.throughput_mbps >= cmp.fsm_mbps * 0.9
        # CAM area penalty is real.
        assert cmp.cam.bram_bit_equivalent >= 5 * cmp.cam.cam_bits

    # The FSM design's logic is ~flat with window size; the systolic
    # array's explodes.
    luts_small = results[1024].fsm_luts
    luts_large = results[16384].fsm_luts
    assert luts_large < 1.5 * luts_small
    assert results[16384].systolic.luts == 16 * results[1024].systolic.luts
