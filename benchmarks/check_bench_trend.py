"""Guard BENCH_*.json against silent regressions.

The perf-smoke CI job regenerates the machine-readable benchmark
exhibits (``BENCH_parallel.json``, ``BENCH_tokenizer.json``,
``BENCH_adaptive.json``, ``BENCH_matcher.json``, ``BENCH_batch.json``,
``BENCH_preset_dict.json``, ``BENCH_serve.json``,
``BENCH_inflate.json``, ``BENCH_sa.json``). This checker diffs
each fresh file against the
baseline committed at ``--ref`` (default ``HEAD``, read via ``git
show``) so a PR that quietly bloats the compressed output or erodes a
fast-path speedup fails the build instead of shipping.

Two classes of metric, two tolerance bands:

* deterministic sizes (``output_bytes``, ``old_bytes``, ``tokens``) —
  identical inputs must give near-identical outputs, so the band is
  tight (``--size-tolerance``, default 5%, which absorbs intentional
  small framing changes while catching real ratio regressions);
* ``speedup`` ratios — measured on shared CI runners, so only a gross
  collapse is actionable (fresh must stay above
  ``(1 - --speedup-tolerance)`` of baseline, default 50%).

Absolute MB/s throughputs are never compared: they measure the runner,
not the code. Rows are matched on their identity fields (workload,
parser, path, workers). When the fresh and baseline runs used different
workload sizes (CI regenerates in ``--quick`` mode against committed
full-mode baselines), the size comparisons are skipped — sizes scale
with the input — but speedup ratios are still checked: they are
near-config-independent, so a collapsed fast path fails even in quick
mode. A baseline file that does not exist yet at ``--ref`` is skipped
with a warning rather than failed — a brand-new benchmark has no trend
to break.

Beyond the JSON exhibits, the rendered text exhibits under
``benchmarks/results/`` are structure-diffed against the same ``--ref``:
every numeric token is normalised out (timings and sizes vary run to
run) and the remaining skeleton — table titles, column headers, row
labels, units — must match the committed baseline exactly. A workload
row silently vanishing from a report fails the build even when every
surviving number is within tolerance.

Usage (after regenerating the fresh files)::

    PYTHONPATH=src python benchmarks/check_bench_trend.py [--ref HEAD]
"""

from __future__ import annotations

import argparse
import json
import pathlib
import re
import subprocess
import sys
from typing import Iterator, List, Optional, Tuple

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

BENCH_FILES = (
    "BENCH_parallel.json",
    "BENCH_tokenizer.json",
    "BENCH_adaptive.json",
    "BENCH_matcher.json",
    "BENCH_batch.json",
    "BENCH_preset_dict.json",
    "BENCH_serve.json",
    "BENCH_inflate.json",
    "BENCH_sa.json",
)

# Row fields that identify a row (used for matching, never compared).
IDENTITY_KEYS = ("workload", "parser", "path", "workers", "streams")

# Top-level fields describing the run configuration: when these differ,
# the two runs are not comparable and the file is skipped.
CONFIG_KEYS = (
    "input_bytes", "shard_bytes", "tokenizer_bytes",
    "end_to_end_bytes", "size_bytes", "payload_bytes", "chunk_bytes",
    "workers",
)

# Deterministic per-row metrics: same input -> same value, tight band.
SIZE_KEYS = ("output_bytes", "old_bytes", "tokens", "stream_bytes")

# Rendered (human-readable) exhibits, structure-diffed against --ref.
EXHIBIT_DIR = "benchmarks/results"


def load_baseline(name: str, ref: str) -> Optional[dict]:
    """The committed exhibit at ``ref``, or None if it does not exist."""
    proc = subprocess.run(
        ["git", "show", f"{ref}:{name}"],
        cwd=REPO_ROOT, capture_output=True, text=True,
    )
    if proc.returncode != 0:
        return None
    return json.loads(proc.stdout)


def iter_rows(report: dict) -> Iterator[Tuple[str, dict]]:
    """Yield ``(table/identity, row)`` for every row list in a report."""
    for table, value in report.items():
        if not isinstance(value, list):
            continue
        for row in value:
            if isinstance(row, dict):
                ident = "/".join(
                    f"{k}={row[k]}" for k in IDENTITY_KEYS if k in row
                )
                yield f"{table}[{ident}]", row


def compare_report(name: str, fresh: dict, baseline: dict,
                   size_tol: float, speedup_tol: float) -> List[str]:
    """All tolerance violations between one fresh/baseline pair."""
    sizes_comparable = True
    for key in CONFIG_KEYS:
        if fresh.get(key) != baseline.get(key):
            print(f"  ~ {name}: run config differs "
                  f"({key}: {baseline.get(key)} -> {fresh.get(key)}), "
                  f"checking speedups only")
            sizes_comparable = False
            break

    base_rows = dict(iter_rows(baseline))
    problems: List[str] = []
    for ident, row in iter_rows(fresh):
        if row.get("verified") is False:
            problems.append(
                f"{name} {ident}: response verification failed "
                f"(output not byte-identical to the reference)"
            )
        base = base_rows.get(ident)
        if base is None:
            print(f"  ~ {name} {ident}: new row, no baseline")
            continue
        for key in SIZE_KEYS if sizes_comparable else ():
            if key not in row or key not in base or not base[key]:
                continue
            drift = abs(row[key] - base[key]) / base[key]
            if drift > size_tol:
                problems.append(
                    f"{name} {ident}: {key} drifted {drift:.1%} "
                    f"({base[key]} -> {row[key]}, "
                    f"tolerance {size_tol:.0%})"
                )
        if row.get("gated") is False:
            # The recording box could not schedule this worker count
            # (workers > CPUs): its speedup measures the machine, not
            # the code. Recorded for the curious, never enforced.
            continue
        if "speedup" in row and base.get("speedup"):
            floor = base["speedup"] * (1 - speedup_tol)
            if row["speedup"] < floor:
                problems.append(
                    f"{name} {ident}: speedup collapsed "
                    f"{base['speedup']:.2f}x -> {row['speedup']:.2f}x "
                    f"(floor {floor:.2f}x)"
                )
    return problems


def normalise_exhibit(text: str) -> str:
    """The structural skeleton of a rendered exhibit.

    Numbers are measurements and vary run to run; the fixed-width
    padding around them varies with their digit count. Both are
    collapsed so only titles, headers, row labels, and units remain.
    """
    lines = []
    for line in text.splitlines():
        line = re.sub(r"\d+(?:\.\d+)?", "#", line)
        line = re.sub(r"[ \t]+", " ", line).strip()
        lines.append(line)
    return "\n".join(lines)


def compare_exhibits(ref: str) -> List[str]:
    """Structure-diff every rendered exhibit against ``ref``."""
    problems: List[str] = []
    results_dir = REPO_ROOT / EXHIBIT_DIR
    if not results_dir.is_dir():
        return problems
    for path in sorted(results_dir.glob("*.txt")):
        rel = f"{EXHIBIT_DIR}/{path.name}"
        proc = subprocess.run(
            ["git", "show", f"{ref}:{rel}"],
            cwd=REPO_ROOT, capture_output=True, text=True,
        )
        if proc.returncode != 0:
            print(f"  ~ {rel}: no baseline at {ref}, skipping "
                  f"(first render of a new exhibit)")
            continue
        fresh = normalise_exhibit(path.read_text())
        base = normalise_exhibit(proc.stdout)
        if fresh == base:
            print(f"  {rel}: ok")
            continue
        print(f"  {rel}: FAIL")
        fresh_lines = fresh.splitlines()
        base_lines = base.splitlines()
        detail = next(
            (f"line {i + 1}: {b!r} -> {f!r}"
             for i, (b, f) in enumerate(zip(base_lines, fresh_lines))
             if b != f),
            f"line count {len(base_lines)} -> {len(fresh_lines)}",
        )
        problems.append(f"{rel}: rendered structure drifted ({detail})")
    return problems


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--ref", default="HEAD",
                        help="git ref holding the baseline exhibits")
    parser.add_argument("--size-tolerance", type=float, default=0.05,
                        help="relative band for deterministic sizes")
    parser.add_argument("--speedup-tolerance", type=float, default=0.5,
                        help="allowed relative speedup erosion")
    parser.add_argument("files", nargs="*", default=list(BENCH_FILES),
                        help="exhibit files to check (repo-root names)")
    args = parser.parse_args(argv)

    problems: List[str] = []
    for name in args.files:
        fresh_path = REPO_ROOT / name
        if not fresh_path.exists():
            print(f"  ~ {name}: no fresh run found, skipping")
            continue
        baseline = load_baseline(name, args.ref)
        if baseline is None:
            print(f"  ~ {name}: no baseline at {args.ref}, skipping "
                  f"(first run of a new benchmark)")
            continue
        fresh = json.loads(fresh_path.read_text())
        found = compare_report(name, fresh, baseline,
                               args.size_tolerance,
                               args.speedup_tolerance)
        status = "FAIL" if found else "ok"
        print(f"  {name}: {status}")
        problems.extend(found)

    problems.extend(compare_exhibits(args.ref))

    if problems:
        print("\nbenchmark trend violations:", file=sys.stderr)
        for problem in problems:
            print(f"  - {problem}", file=sys.stderr)
        return 1
    print("benchmark trends within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
