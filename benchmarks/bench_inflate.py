"""Throughput of the table-driven inflate vs the symbol-at-a-time loop.

The fast decoder resolves multi-symbol lookup-table entries against a
word-at-a-time refilled bit buffer (fused length+extra records, literal
runs); the baseline below is the pre-rewrite hot loop, inlined so the
comparison survives in-tree: one ``HuffmanDecoder.decode`` call per
symbol, one ``read_bits`` call per extra-bits field, byte-at-a-time
refill. Same tables, same input, same output — the delta is purely the
decode loop.

Every timed decode is byte-compared against ``zlib.decompress`` before
a number is reported, and the transcode rows re-verify their own
round-trip, so a wrong-but-fast decoder cannot post a score.

Results go to ``benchmarks/results/`` (rendered) and
``BENCH_inflate.json`` at the repo root (machine-readable, consumed by
the CI perf-smoke job, which fails the build when the headline decode
drops below ``--min-speedup`` — 3.0x by default).

Runs standalone (CI smoke)::

    PYTHONPATH=src python benchmarks/bench_inflate.py --quick

or in full (1 MiB per workload, the acceptance configuration) without
``--quick``.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import platform
import sys
import time
import zlib
from typing import Callable, Dict, List, Optional, Sequence

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
JSON_PATH = REPO_ROOT / "BENCH_inflate.json"

FULL_BYTES = 1024 * 1024
QUICK_BYTES = 256 * 1024

HEADLINE = ("wiki", 6)  # the gated row: 1 MiB text, zlib level 6


# --- inlined pre-rewrite decoder (the baseline under comparison) -----

BitstreamError = HuffmanError = None  # bound on first baseline run


def _bind_errors() -> None:
    global BitstreamError, HuffmanError
    if BitstreamError is None:
        from repro import errors

        BitstreamError = errors.BitstreamError
        HuffmanError = errors.HuffmanError


class _BaselineReader:
    """The pre-rewrite ``BitReader``: byte-at-a-time refill."""

    def __init__(self, data: bytes) -> None:
        self._data = bytes(data)
        self._pos = 0
        self._bitbuf = 0
        self._bitcount = 0

    def read_bits(self, nbits: int) -> int:
        if nbits < 0:
            raise BitstreamError(f"negative bit count: {nbits}")
        while self._bitcount < nbits:
            if self._pos >= len(self._data):
                raise BitstreamError("unexpected end of bitstream")
            self._bitbuf |= self._data[self._pos] << self._bitcount
            self._pos += 1
            self._bitcount += 8
        value = self._bitbuf & ((1 << nbits) - 1)
        self._bitbuf >>= nbits
        self._bitcount -= nbits
        return value

    def peek_bits(self, nbits: int) -> int:
        while self._bitcount < nbits and self._pos < len(self._data):
            self._bitbuf |= self._data[self._pos] << self._bitcount
            self._pos += 1
            self._bitcount += 8
        return self._bitbuf & ((1 << nbits) - 1)

    def skip_bits(self, nbits: int) -> None:
        if nbits > self._bitcount:
            raise BitstreamError("skip past end of bitstream")
        self._bitbuf >>= nbits
        self._bitcount -= nbits

    def align_to_byte(self) -> None:
        discard = self._bitcount % 8
        self._bitbuf >>= discard
        self._bitcount -= discard

    def read_bytes(self, count: int) -> bytes:
        out = bytearray()
        while self._bitcount and count:
            out.append(self._bitbuf & 0xFF)
            self._bitbuf >>= 8
            self._bitcount -= 8
            count -= 1
        out.extend(self._data[self._pos:self._pos + count])
        self._pos += count
        return bytes(out)


class _BaselineDecoder:
    """The pre-rewrite Huffman table: one flat ``(symbol, length)``
    entry per ``max_len``-bit window, one peek+skip per symbol."""

    def __init__(self, lengths, allow_incomplete=False) -> None:
        from repro.bitio.writer import reverse_bits
        from repro.huffman.canonical import (
            canonical_codes,
            validate_code_lengths,
        )

        validate_code_lengths(lengths, 15, allow_incomplete)
        self.max_len = max(l for l in lengths if l)
        codes = canonical_codes(list(lengths))
        size = 1 << self.max_len
        table = [(-1, 0)] * size
        for symbol, length in enumerate(lengths):
            if not length:
                continue
            prefix = reverse_bits(codes[symbol], length)
            for index in range(prefix, size, 1 << length):
                table[index] = (symbol, length)
        self._table = table
        self._mask = size - 1

    def decode(self, reader: _BaselineReader) -> int:
        window = reader.peek_bits(self.max_len)
        symbol, length = self._table[window & self._mask]
        if symbol < 0:
            raise HuffmanError(
                f"undecodable bit pattern {window:0{self.max_len}b}"
            )
        reader.skip_bits(length)
        return symbol


_BASELINE_FIXED = None


def _baseline_tables(reader):
    from repro.deflate.constants import CODE_LENGTH_ORDER

    hlit = reader.read_bits(5) + 257
    hdist = reader.read_bits(5) + 1
    hclen = reader.read_bits(4) + 4
    cl_lengths = [0] * 19
    for index in range(hclen):
        cl_lengths[CODE_LENGTH_ORDER[index]] = reader.read_bits(3)
    cl_decoder = _BaselineDecoder(cl_lengths)
    lengths = []
    while len(lengths) < hlit + hdist:
        symbol = cl_decoder.decode(reader)
        if symbol < 16:
            lengths.append(symbol)
        elif symbol == 16:
            lengths.extend([lengths[-1]] * (reader.read_bits(2) + 3))
        elif symbol == 17:
            lengths.extend([0] * (reader.read_bits(3) + 3))
        else:
            lengths.extend([0] * (reader.read_bits(7) + 11))
    litlen = _BaselineDecoder(lengths[:hlit])
    dist = _BaselineDecoder(lengths[hlit:], allow_incomplete=True)
    return litlen, dist


def _baseline_inflate(data: bytes) -> bytes:
    """The decoder as it stood before the lookup-table rewrite: one
    table walk per symbol, one ``read_bits`` call per extras field,
    byte-at-a-time bit-buffer refill."""
    global _BASELINE_FIXED
    from repro.deflate.constants import (
        DISTANCE_TABLE,
        END_OF_BLOCK,
        LENGTH_TABLE,
        distance_from_symbol,
        length_from_symbol,
    )
    from repro.errors import DeflateError
    from repro.huffman.fixed import (
        FIXED_DIST_LENGTHS,
        FIXED_LITLEN_LENGTHS,
    )

    _bind_errors()
    if _BASELINE_FIXED is None:
        _BASELINE_FIXED = (_BaselineDecoder(FIXED_LITLEN_LENGTHS),
                           _BaselineDecoder(FIXED_DIST_LENGTHS))
    reader = _BaselineReader(data)
    out = bytearray()
    while True:
        final = reader.read_bits(1)
        btype = reader.read_bits(2)
        if btype == 0b00:
            reader.align_to_byte()
            length = reader.read_bits(16)
            reader.read_bits(16)  # NLEN, unchecked in the bench
            out.extend(reader.read_bytes(length))
            if final:
                return bytes(out)
            continue
        if btype == 0b01:
            litlen, dist = _BASELINE_FIXED
        elif btype == 0b10:
            litlen, dist = _baseline_tables(reader)
        else:
            raise DeflateError("reserved block type 11")
        while True:
            symbol = litlen.decode(reader)
            if symbol < 256:
                out.append(symbol)
            elif symbol == END_OF_BLOCK:
                break
            else:
                extra = LENGTH_TABLE[symbol - 257][1]
                length = length_from_symbol(symbol,
                                            reader.read_bits(extra))
                dsymbol = dist.decode(reader)
                dextra = DISTANCE_TABLE[dsymbol][1]
                distance = distance_from_symbol(
                    dsymbol, reader.read_bits(dextra))
                start = len(out) - distance
                if start < 0:
                    raise DeflateError("distance precedes output start")
                if distance >= length:
                    out.extend(out[start:start + length])
                else:
                    for i in range(length):
                        out.append(out[start + i])
        if final:
            return bytes(out)


def _best_mbps(fn: Callable[[], object], nbytes: int,
               repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return nbytes / best / 1e6


def _interleaved_mbps(fns: Sequence[Callable[[], object]], nbytes: int,
                      repeats: int) -> List[float]:
    """Best-of throughput for several decoders, rounds interleaved.

    The gate checks a *ratio*, so the two sides must see the same
    machine: alternating baseline/fast/... within each round cancels
    the slow drift a noisy shared box adds, where timing one decoder's
    rounds back-to-back before the other's would bake the drift into
    the ratio.
    """
    best = [float("inf")] * len(fns)
    for _ in range(repeats):
        for index, fn in enumerate(fns):
            start = time.perf_counter()
            fn()
            elapsed = time.perf_counter() - start
            if elapsed < best[index]:
                best[index] = elapsed
    return [nbytes / b / 1e6 for b in best]


def inflate_workloads(size_bytes: int) -> Dict[str, bytes]:
    from repro.workloads.corpus import sample
    from repro.workloads.logs import syslog_text

    return {
        "wiki": sample("wiki", size_bytes),
        "syslog": syslog_text(size_bytes, seed=7),
        "zeros": bytes(size_bytes),
    }


def measure_decoders(size_bytes: int, repeats: int) -> List[dict]:
    """Baseline vs fast inflate per workload, plus engine variants."""
    from repro.deflate.inflate import inflate

    try:
        import numpy  # noqa: F401
        have_numpy = True
    except ImportError:
        have_numpy = False

    rows: List[dict] = []
    for workload, data in sorted(inflate_workloads(size_bytes).items()):
        for level in (1, 6):
            if level == 1 and workload != "wiki":
                continue
            engine = zlib.compressobj(level, zlib.DEFLATED, -15)
            body = engine.compress(data) + engine.flush()
            expected = zlib.decompress(body, -15)
            for name, fn in (
                ("baseline", lambda b=body: _baseline_inflate(b)),
                ("scalar", lambda b=body: inflate(b, engine="scalar")),
            ) + ((
                ("numpy", lambda b=body: inflate(b, engine="numpy")),
            ) if have_numpy else ()):
                if fn() != expected:
                    raise AssertionError(
                        f"{name} decode diverges from zlib on "
                        f"{workload}/level{level}"
                    )
            baseline_mbps, scalar_mbps = _interleaved_mbps(
                (lambda: _baseline_inflate(body),
                 lambda: inflate(body, engine="scalar")),
                len(data), repeats)
            row = {
                "workload": f"{workload}-l{level}",
                "stream_bytes": len(body),
                "baseline_mbps": round(baseline_mbps, 3),
                "fast_mbps": round(scalar_mbps, 3),
                "speedup": round(scalar_mbps / baseline_mbps, 3),
                "headline": (workload, level) == HEADLINE,
            }
            if have_numpy:
                row["numpy_mbps"] = round(_best_mbps(
                    lambda: inflate(body, engine="numpy"),
                    len(data), repeats), 3)
            rows.append(row)
    return rows


def measure_transcode(size_bytes: int) -> List[dict]:
    """Fixed-block streams through the transcoder; round-trip checked."""
    import gzip

    from repro.deflate import gzip_container
    from repro.deflate.zlib_container import compress as zlib_compress
    from repro.transcode import transcode

    data = inflate_workloads(size_bytes)["wiki"]
    rows: List[dict] = []
    for container, stream, redecode in (
        ("zlib", zlib_compress(data),
         lambda s: zlib.decompress(s)),
        ("gzip", gzip_container.compress(data),
         lambda s: gzip.decompress(s)),
    ):
        result = transcode(stream)
        if redecode(result.data) != data:
            raise AssertionError(
                f"transcoded {container} stream fails round-trip")
        if result.output_size > result.input_size:
            raise AssertionError(
                f"transcoded {container} stream grew")
        rows.append({
            "workload": f"transcode-{container}",
            "old_bytes": result.input_size,
            "output_bytes": result.output_size,
            "speedup": round(result.input_size / result.output_size, 3),
        })
    return rows


def build_report(size_bytes: int, repeats: int) -> dict:
    return {
        "benchmark": "inflate",
        "python": platform.python_version(),
        "size_bytes": size_bytes,
        "rows": measure_decoders(size_bytes, repeats)
        + measure_transcode(size_bytes),
    }


def render(report: dict) -> str:
    lines = [
        "EXTENSION — TABLE-DRIVEN INFLATE (multi-symbol entries, "
        "word-at-a-time refill)",
        f"{'workload':<18s} {'baseline':>9s} {'fast':>9s} "
        f"{'numpy':>9s} {'speedup':>8s}",
    ]
    for row in report["rows"]:
        if "baseline_mbps" in row:
            numpy_mbps = row.get("numpy_mbps")
            lines.append(
                f"{row['workload']:<18s} "
                f"{row['baseline_mbps']:>7.2f}MB "
                f"{row['fast_mbps']:>7.2f}MB "
                + (f"{numpy_mbps:>7.2f}MB " if numpy_mbps is not None
                   else f"{'-':>9s} ")
                + f"{row['speedup']:>7.2f}x"
            )
    lines.append("")
    lines.append("TRANSCODE (fixed-block input -> adaptive re-encode, "
                 "verified)")
    lines.append(f"{'stream':<18s} {'in':>9s} {'out':>9s} "
                 f"{'shrink':>8s}")
    for row in report["rows"]:
        if row["workload"].startswith("transcode-"):
            lines.append(
                f"{row['workload']:<18s} {row['old_bytes']:>9d} "
                f"{row['output_bytes']:>9d} {row['speedup']:>7.2f}x"
            )
    return "\n".join(lines)


def check_speedup(report: dict, min_speedup: float) -> None:
    for row in report["rows"]:
        if row.get("headline"):
            assert row["speedup"] >= min_speedup, (
                f"headline inflate speedup {row['speedup']:.2f}x "
                f"below the {min_speedup:.1f}x gate"
            )
            break
    else:
        raise AssertionError("no headline row in report")
    for row in report["rows"]:
        if row["workload"].startswith("transcode-"):
            assert row["output_bytes"] <= row["old_bytes"], row


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help=f"CI smoke: {QUICK_BYTES // 1024} KiB per workload",
    )
    parser.add_argument("--repeats", type=int, default=3,
                        help="timing repeats (best-of)")
    parser.add_argument("--min-speedup", type=float, default=3.0,
                        help="required headline decode speedup")
    parser.add_argument("--json", type=pathlib.Path, default=JSON_PATH,
                        help="machine-readable output path")
    args = parser.parse_args(argv)

    report = build_report(QUICK_BYTES if args.quick else FULL_BYTES,
                          args.repeats)
    report["min_speedup"] = args.min_speedup

    from benchmarks.conftest import save_exhibit

    save_exhibit("extension_inflate", render(report))
    args.json.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.json}")
    print(render(report))
    check_speedup(report, args.min_speedup)
    print(f"headline decode holds >= {args.min_speedup:.1f}x over the "
          "symbol-at-a-time baseline")
    return 0


def test_inflate_speedup(benchmark, sample_bytes):
    from benchmarks.conftest import run_once, save_exhibit

    report = run_once(
        benchmark, lambda: build_report(sample_bytes, repeats=2))
    save_exhibit("extension_inflate", render(report))
    check_speedup(report, 2.0)  # looser under pytest-benchmark overhead


if __name__ == "__main__":
    sys.path.insert(0, str(REPO_ROOT))
    sys.exit(main())
