"""Fig. 4 — compressed size and speed for min/max compression levels.

Paper shape: the max level ("amount of matching attempts before giving
up") improves compression by ~20 % at ~82 % performance decrease; curves
for 9- and 15-bit hashes across 1K-16K dictionaries.
"""

from benchmarks.conftest import run_once, save_exhibit
from repro.analysis.figures import fig4_levels


def test_fig4(benchmark, sample_bytes):
    fig = run_once(
        benchmark, lambda: fig4_levels(sample_bytes=sample_bytes)
    )
    save_exhibit("fig4_levels", fig.render())

    for bits in (9, 15):
        mins = {p.window_size: p for p in fig.curve(bits, "min")}
        maxs = {p.window_size: p for p in fig.curve(bits, "max")}
        for window in mins:
            assert maxs[window].compressed_bytes <= (
                mins[window].compressed_bytes
            )
            assert maxs[window].throughput_mbps < (
                mins[window].throughput_mbps
            )
    # Extreme points: meaningful size gain at a large speed cost.
    best = min(p.compressed_bytes for p in fig.points)
    worst = max(p.compressed_bytes for p in fig.points)
    assert 1 - best / worst > 0.10
    fastest = max(p.throughput_mbps for p in fig.points)
    slowest = min(p.throughput_mbps for p in fig.points)
    assert 1 - slowest / fastest > 0.6
