"""Table III — compression speed without individual optimisations.

Paper values (Wiki, MB/s):

    configuration                         4KB     16KB
    A) original (15-bit, 32-bit data)    49.0     46.2
    B) 8-bit data bus as in [11]         30.3     25.9
    C) disabled hash prefetching         45.2     45.0
    D) reduced generation bits to 0       ~36     33.8
    all 3 optimizations disabled         10.2     21.2

Shape criteria: wide buses worth 63-78 %, prefetch a few percent,
generation bits dominant at small windows, overall factor 2.2-4.8x with
the small window hurt more.
"""

from benchmarks.conftest import run_once, save_exhibit
from repro.analysis.tables import TABLE3_CONFIGS, table3_optimizations


def test_table3(benchmark, sample_bytes):
    table = run_once(
        benchmark,
        lambda: table3_optimizations(sample_bytes=sample_bytes),
    )
    save_exhibit("table3_optimizations", table.render())

    names = list(TABLE3_CONFIGS)
    original, narrow, no_prefetch, gen0, disabled = names
    for window in (4096, 16384):
        a = table.speed(original, window)
        assert table.speed(narrow, window) < a
        assert table.speed(no_prefetch, window) < a
        assert table.speed(gen0, window) < a
        factor = a / table.speed(disabled, window)
        assert 1.8 < factor < 8.0, (window, factor)
    # Generation bits matter more at the small window; the overall
    # optimisation factor is larger there too.
    assert (
        table.speed(original, 4096) / table.speed(disabled, 4096)
        > table.speed(original, 16384) / table.speed(disabled, 16384)
    )
