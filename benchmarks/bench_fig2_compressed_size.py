"""Fig. 2 — compressed size of the Wiki fragment vs dictionary size.

Paper shape: bigger dictionaries compress better, and the improvement is
more significant for larger hash sizes (curves per hash ∈ {9,11,13,15},
dictionary 1K-16K).
"""

from benchmarks.conftest import run_once, save_exhibit
from repro.analysis.figures import fig2_compressed_size


def test_fig2(benchmark, sample_bytes):
    fig = run_once(
        benchmark,
        lambda: fig2_compressed_size(sample_bytes=sample_bytes),
    )
    save_exhibit("fig2_compressed_size", fig.render())

    series = fig.series()
    # Monotone improvement with dictionary size for every hash size.
    for name, sizes in series.items():
        for earlier, later in zip(sizes, sizes[1:]):
            assert later <= earlier * 1.002, name
    # Larger hash sizes gain more from bigger dictionaries.
    gains = {
        name: 1 - values[-1] / values[0] for name, values in series.items()
    }
    assert gains["hash=15"] > gains["hash=9"]
