"""Table I — performance evaluation (SW vs HW on Wiki and X2E).

Paper values: SW a few MB/s, HW ~49-50 MB/s, speedup 15-20x, ratio
1.68-1.70, with 10 MB and 50 MB rows nearly identical.
"""

from benchmarks.conftest import run_once, save_exhibit
from repro.analysis.tables import table1_performance


def test_table1(benchmark, sample_bytes):
    table = run_once(
        benchmark, lambda: table1_performance(sample_bytes=sample_bytes)
    )
    save_exhibit("table1_performance", table.render())

    # Shape: hardware wins by an order of magnitude, paper band-ish.
    assert all(8 < s < 30 for s in table.speedups())
    assert all(1.4 < r < 2.0 for r in table.ratios())
    # DMA setup factored out: 50 MB and 10 MB rows agree within 2 %.
    by_sample = {row.data_sample: row for row in table.rows}
    for name in ("Wiki", "X2e"):
        big = by_sample[f"{name} 50MB"].hw_mbps
        small = by_sample[f"{name} 10MB"].hw_mbps
        assert abs(big - small) / big < 0.02
