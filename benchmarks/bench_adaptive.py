"""Single-pass adaptive splitter vs the pre-PR scratch-encode pricer.

The old splitter priced every block's dynamic coding by *encoding it
into a scratch BitWriter* and throwing the bits away, then encoded the
winner a second time for real — every dynamic block was Huffman-coded
twice, and every stored/fixed block still paid one full dynamic encode
just to be priced. The replacement prices all three codings from one
histogram pass (zlib's ``opt_len``/``static_len`` bookkeeping) and
reuses the pricing plan for emission, so each block is tokenised,
priced, and emitted exactly once.

This benchmark reconstructs the old flow (from git history, inlined
below so the comparison survives the old code's deletion) and times
both on the same pre-tokenised inputs; only the block-splitting and
entropy-coding stage is measured. Every output is verified to decode
back to the input before a number is reported.

Results go to ``benchmarks/results/`` (rendered) and
``BENCH_adaptive.json`` at the repo root (machine-readable, consumed by
the CI perf-smoke job, which fails the build when the single-pass
splitter drops below ``--min-speedup`` — 1.5x by default).

Runs standalone (CI smoke)::

    PYTHONPATH=src python benchmarks/bench_adaptive.py --quick

or in full (1 MiB workloads, the acceptance configuration) without
``--quick``.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import platform
import sys
import time
import zlib
from typing import Callable, Dict, List, Optional

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
JSON_PATH = REPO_ROOT / "BENCH_adaptive.json"


def _best_seconds(fn: Callable[[], object], repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


# --------------------------------------------------------------------
# Pre-PR baseline, inlined from git history (scratch-encode pricing).
# --------------------------------------------------------------------

def _old_deflate_adaptive(tokens, original: bytes,
                          tokens_per_block: int = 16384) -> bytes:
    """The splitter as it stood before single-pass pricing landed."""
    from repro.bitio.writer import BitWriter
    from repro.deflate.block_writer import (
        BlockStrategy,
        fixed_block_cost_bits,
        write_fixed_block,
        write_stored_block,
    )
    from repro.deflate.dynamic import write_dynamic_block
    from repro.lzss.tokens import TokenArray

    def slice_tokens(start, stop):
        out = TokenArray()
        out.lengths = tokens.lengths[start:stop]
        out.values = tokens.values[start:stop]
        return out

    writer = BitWriter()
    n = len(tokens)
    block_starts = list(range(0, n, tokens_per_block)) or [0]
    consumed = 0
    for index, start in enumerate(block_starts):
        block = slice_tokens(start, min(start + tokens_per_block, n))
        raw_len = block.uncompressed_size()
        final = index == len(block_starts) - 1
        fixed_bits = fixed_block_cost_bits(block)
        if len(block):
            scratch = BitWriter()  # priced by encoding, bits discarded
            write_dynamic_block(scratch, block, final=False)
            dynamic_bits = scratch.bit_length
        else:
            dynamic_bits = fixed_bits
        stored_bits = 3 + 7 + 32 + 8 * raw_len  # single-chunk mispricing
        best = min(
            (fixed_bits, BlockStrategy.FIXED),
            (dynamic_bits, BlockStrategy.DYNAMIC),
            (stored_bits, BlockStrategy.STORED),
            key=lambda pair: pair[0],
        )[1]
        if best is BlockStrategy.FIXED:
            write_fixed_block(writer, block, final=final)
        elif best is BlockStrategy.DYNAMIC:
            write_dynamic_block(writer, block, final=final)  # 2nd encode
        else:
            write_stored_block(
                writer, original[consumed:consumed + raw_len], final=final
            )
        consumed += raw_len
    return writer.flush()


def splitter_workloads(size_bytes: int) -> Dict[str, bytes]:
    from repro.workloads.logs import syslog_text
    from repro.workloads.synthetic import incompressible, mixed

    return {
        "synthetic_mixed": mixed(size_bytes, seed=7),
        "syslog": syslog_text(size_bytes, seed=7),
        # Stored-heavy: the old pricer still paid a full dynamic encode
        # per block before choosing STORED.
        "incompressible": incompressible(size_bytes, seed=7),
    }


def measure_splitter(size_bytes: int, repeats: int) -> List[dict]:
    """Old scratch-encode flow vs single-pass pricing, per workload."""
    from repro.deflate.splitter import deflate_adaptive
    from repro.lzss.compressor import compress_tokens

    rows: List[dict] = []
    for workload, data in sorted(splitter_workloads(size_bytes).items()):
        tokens = compress_tokens(data, 32768, trace=False).tokens
        old_body = _old_deflate_adaptive(tokens, data)
        new = deflate_adaptive(tokens, data)
        if zlib.decompress(old_body, -15) != data:
            raise AssertionError(f"{workload}: baseline round-trip failed")
        if zlib.decompress(new.body, -15) != data:
            raise AssertionError(f"{workload}: single-pass round-trip failed")
        old_s = _best_seconds(
            lambda: _old_deflate_adaptive(tokens, data), repeats
        )
        new_s = _best_seconds(
            lambda: deflate_adaptive(tokens, data), repeats
        )
        rows.append({
            "workload": workload,
            "old_mbps": round(len(data) / old_s / 1e6, 3),
            "new_mbps": round(len(data) / new_s / 1e6, 3),
            "speedup": round(old_s / new_s, 3),
            "old_bytes": len(old_body),
            "output_bytes": len(new.body),
            "strategies": {
                s.value: c for s, c in sorted(
                    new.strategy_counts().items(), key=lambda kv: kv[0].value
                )
            },
        })
    return rows


def render(report: dict) -> str:
    lines = [
        f"single-pass adaptive splitter vs scratch-encode pricer "
        f"({report['size_bytes']} B/workload)",
        f"{'workload':>16s} {'old':>10s} {'new':>10s} {'speedup':>8s} "
        f"{'old B':>8s} {'new B':>8s}",
    ]
    for row in report["splitter"]:
        lines.append(
            f"{row['workload']:>16s} {row['old_mbps']:>8.2f}MB "
            f"{row['new_mbps']:>8.2f}MB {row['speedup']:>7.2f}x "
            f"{row['old_bytes']:>8d} {row['output_bytes']:>8d}"
        )
    return "\n".join(lines)


def check_speedup(report: dict, min_speedup: float) -> None:
    """Pricing once must beat pricing-by-encoding-twice, everywhere."""
    for row in report["splitter"]:
        assert row["speedup"] >= min_speedup, (
            f"{row['workload']}: single-pass splitter only "
            f"{row['speedup']:.2f}x over scratch-encode pricing "
            f"(required >= {min_speedup:.1f}x)"
        )
        # The new exact stored/dynamic pricing must never compress worse.
        assert row["output_bytes"] <= row["old_bytes"], (
            f"{row['workload']}: single-pass output grew "
            f"({row['old_bytes']} -> {row['output_bytes']} B)"
        )


def build_report(size_bytes: int, repeats: int) -> dict:
    return {
        "benchmark": "adaptive_splitter",
        "python": platform.python_version(),
        "size_bytes": size_bytes,
        "repeats": repeats,
        "splitter": measure_splitter(size_bytes, repeats),
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="CI smoke: 192 KiB workloads, two repeats",
    )
    parser.add_argument("--size-kb", type=int, default=1024,
                        help="workload size in KiB (full mode)")
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--min-speedup", type=float, default=1.5,
                        help="fail if any workload is below this")
    parser.add_argument("--json", type=pathlib.Path, default=JSON_PATH,
                        help="machine-readable output path")
    args = parser.parse_args(argv)

    if args.quick:
        size_bytes, repeats = 192 * 1024, 2
    else:
        size_bytes, repeats = args.size_kb * 1024, args.repeats

    report = build_report(size_bytes, repeats)
    report["min_speedup"] = args.min_speedup

    from benchmarks.conftest import save_exhibit

    save_exhibit("adaptive_splitter", render(report))
    args.json.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.json}")
    check_speedup(report, args.min_speedup)
    print("all outputs round-trip; speedup and size checks passed")
    return 0


def test_adaptive_splitter_smoke(benchmark, sample_bytes):
    """pytest-benchmark entry: quick sweep on the bench sample size."""
    from benchmarks.conftest import run_once, save_exhibit

    report = run_once(
        benchmark, lambda: build_report(sample_bytes // 2, 1)
    )
    save_exhibit("adaptive_splitter", render(report))
    check_speedup(report, 1.2)  # single-repeat smoke: looser bound


if __name__ == "__main__":
    sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(
        __file__))))
    sys.exit(main())
