"""Single-pass adaptive splitter vs the pre-PR scratch-encode pricer.

The old splitter priced every block's dynamic coding by *encoding it
into a scratch BitWriter* and throwing the bits away, then encoded the
winner a second time for real — every dynamic block was Huffman-coded
twice, and every stored/fixed block still paid one full dynamic encode
just to be priced. The replacement prices all three codings from one
histogram pass (zlib's ``opt_len``/``static_len`` bookkeeping) and
reuses the pricing plan for emission, so each block is tokenised,
priced, and emitted exactly once.

This benchmark reconstructs the old flow (from git history, inlined
below so the comparison survives the old code's deletion) and times
both on the same pre-tokenised inputs; only the block-splitting and
entropy-coding stage is measured. Every output is verified to decode
back to the input before a number is reported.

Two further tables cover the cost-driven splitter features:

* cut-point search vs the blind fixed cadence on the same tokens —
  the heterogeneous workload (alternating 32 KiB text/noise runs) must
  compress at least 1% smaller at no more than ``--max-cut-ratio``
  (1.15x) the cadence split's wall time;
* the incompressible-shard stored bypass (entropy sniff) vs the full
  tokenise-then-store path — must be at least 3x faster for identical
  output.

Results go to ``benchmarks/results/`` (rendered) and
``BENCH_adaptive.json`` at the repo root (machine-readable, consumed by
the CI perf-smoke job, which fails the build when the single-pass
splitter drops below ``--min-speedup`` — 1.5x by default).

Runs standalone (CI smoke)::

    PYTHONPATH=src python benchmarks/bench_adaptive.py --quick

or in full (1 MiB workloads, the acceptance configuration) without
``--quick``.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import platform
import sys
import time
import zlib
from typing import Callable, Dict, List, Optional

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
JSON_PATH = REPO_ROOT / "BENCH_adaptive.json"


def _best_seconds(fn: Callable[[], object], repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


# --------------------------------------------------------------------
# Pre-PR baseline, inlined from git history (scratch-encode pricing).
# --------------------------------------------------------------------

def _old_deflate_adaptive(tokens, original: bytes,
                          tokens_per_block: int = 16384) -> bytes:
    """The splitter as it stood before single-pass pricing landed."""
    from repro.bitio.writer import BitWriter
    from repro.deflate.block_writer import (
        BlockStrategy,
        fixed_block_cost_bits,
        write_fixed_block,
        write_stored_block,
    )
    from repro.deflate.dynamic import write_dynamic_block
    from repro.lzss.tokens import TokenArray

    def slice_tokens(start, stop):
        out = TokenArray()
        out.lengths = tokens.lengths[start:stop]
        out.values = tokens.values[start:stop]
        return out

    writer = BitWriter()
    n = len(tokens)
    block_starts = list(range(0, n, tokens_per_block)) or [0]
    consumed = 0
    for index, start in enumerate(block_starts):
        block = slice_tokens(start, min(start + tokens_per_block, n))
        raw_len = block.uncompressed_size()
        final = index == len(block_starts) - 1
        fixed_bits = fixed_block_cost_bits(block)
        if len(block):
            scratch = BitWriter()  # priced by encoding, bits discarded
            write_dynamic_block(scratch, block, final=False)
            dynamic_bits = scratch.bit_length
        else:
            dynamic_bits = fixed_bits
        stored_bits = 3 + 7 + 32 + 8 * raw_len  # single-chunk mispricing
        best = min(
            (fixed_bits, BlockStrategy.FIXED),
            (dynamic_bits, BlockStrategy.DYNAMIC),
            (stored_bits, BlockStrategy.STORED),
            key=lambda pair: pair[0],
        )[1]
        if best is BlockStrategy.FIXED:
            write_fixed_block(writer, block, final=final)
        elif best is BlockStrategy.DYNAMIC:
            write_dynamic_block(writer, block, final=final)  # 2nd encode
        else:
            write_stored_block(
                writer, original[consumed:consumed + raw_len], final=final
            )
        consumed += raw_len
    return writer.flush()


def splitter_workloads(size_bytes: int) -> Dict[str, bytes]:
    from repro.workloads.logs import syslog_text
    from repro.workloads.synthetic import incompressible, mixed

    return {
        "synthetic_mixed": mixed(size_bytes, seed=7),
        "syslog": syslog_text(size_bytes, seed=7),
        # Stored-heavy: the old pricer still paid a full dynamic encode
        # per block before choosing STORED.
        "incompressible": incompressible(size_bytes, seed=7),
    }


def heterogeneous(size_bytes: int, run_bytes: int = 32 * 1024) -> bytes:
    """Alternating text/noise runs — the cut search's target texture.

    Run length is comparable to a default block's raw span, so the
    blind cadence straddles every texture change while the search can
    align its boundaries to them.
    """
    from repro.workloads.logs import syslog_text
    from repro.workloads.synthetic import incompressible

    out = bytearray()
    index = 0
    while len(out) < size_bytes:
        if index % 2 == 0:
            out += syslog_text(run_bytes, seed=index)
        else:
            out += incompressible(run_bytes, seed=index)
        index += 1
    return bytes(out[:size_bytes])


def cut_search_workloads(size_bytes: int) -> Dict[str, bytes]:
    from repro.workloads.logs import syslog_text
    from repro.workloads.synthetic import incompressible, mixed

    return {
        "heterogeneous": heterogeneous(size_bytes),
        "synthetic_mixed": mixed(size_bytes, seed=7),
        "syslog": syslog_text(size_bytes, seed=7),
        "incompressible": incompressible(size_bytes, seed=7),
    }


def measure_cut_search(size_bytes: int, repeats: int) -> List[dict]:
    """Blind cadence vs cost-driven cut-point search, same tokens."""
    from repro.deflate.splitter import deflate_adaptive
    from repro.lzss.compressor import compress_tokens

    rows: List[dict] = []
    for workload, data in sorted(cut_search_workloads(size_bytes).items()):
        tokens = compress_tokens(data, 32768, backend="fast").tokens
        cadence = deflate_adaptive(tokens, data, cut_search=False)
        searched = deflate_adaptive(tokens, data, cut_search=True)
        for label, split in (("cadence", cadence), ("cut", searched)):
            if zlib.decompress(split.body, -15) != data:
                raise AssertionError(
                    f"{workload}: {label} round-trip failed")
        cadence_s = _best_seconds(
            lambda: deflate_adaptive(tokens, data, cut_search=False),
            repeats,
        )
        searched_s = _best_seconds(
            lambda: deflate_adaptive(tokens, data, cut_search=True),
            repeats,
        )
        rows.append({
            "workload": workload,
            # Keys reuse the trend checker's vocabulary: ``old`` is the
            # cadence, ``output`` the search, ``speedup`` old/new.
            "old_bytes": len(cadence.body),
            "output_bytes": len(searched.body),
            "size_gain_pct": round(
                100.0 * (len(cadence.body) - len(searched.body))
                / len(cadence.body), 3),
            "speedup": round(cadence_s / searched_s, 3),
            "blocks": {"cadence": len(cadence.choices),
                       "cut": len(searched.choices)},
        })
    return rows


def measure_stored_bypass(size_bytes: int, repeats: int) -> List[dict]:
    """Entropy-sniffed stored bypass vs full tokenization, per shard."""
    from repro.deflate.block_writer import BlockStrategy
    from repro.parallel.engine import compress_shard_body
    from repro.workloads.synthetic import incompressible

    data = incompressible(size_bytes, seed=17)
    sniffed_body = compress_shard_body(
        data, strategy=BlockStrategy.ADAPTIVE, sniff=True)
    tokenized_body = compress_shard_body(
        data, strategy=BlockStrategy.ADAPTIVE, sniff=False)
    for label, body in (("sniffed", sniffed_body),
                        ("tokenized", tokenized_body)):
        if zlib.decompressobj(wbits=-15).decompress(body) != data:
            raise AssertionError(f"stored bypass: {label} fragment "
                                 "does not inflate")
    tokenized_s = _best_seconds(
        lambda: compress_shard_body(
            data, strategy=BlockStrategy.ADAPTIVE, sniff=False),
        repeats,
    )
    sniffed_s = _best_seconds(
        lambda: compress_shard_body(
            data, strategy=BlockStrategy.ADAPTIVE, sniff=True),
        repeats,
    )
    return [{
        "workload": "incompressible_shard",
        "old_bytes": len(tokenized_body),
        "output_bytes": len(sniffed_body),
        "speedup": round(tokenized_s / sniffed_s, 3),
        "sniffed_mbps": round(len(data) / sniffed_s / 1e6, 3),
        "tokenized_mbps": round(len(data) / tokenized_s / 1e6, 3),
    }]


def measure_splitter(size_bytes: int, repeats: int) -> List[dict]:
    """Old scratch-encode flow vs single-pass pricing, per workload."""
    from repro.deflate.splitter import deflate_adaptive
    from repro.lzss.compressor import compress_tokens

    rows: List[dict] = []
    for workload, data in sorted(splitter_workloads(size_bytes).items()):
        tokens = compress_tokens(data, 32768, backend="fast").tokens
        old_body = _old_deflate_adaptive(tokens, data)
        new = deflate_adaptive(tokens, data)
        if zlib.decompress(old_body, -15) != data:
            raise AssertionError(f"{workload}: baseline round-trip failed")
        if zlib.decompress(new.body, -15) != data:
            raise AssertionError(f"{workload}: single-pass round-trip failed")
        old_s = _best_seconds(
            lambda: _old_deflate_adaptive(tokens, data), repeats
        )
        new_s = _best_seconds(
            lambda: deflate_adaptive(tokens, data), repeats
        )
        rows.append({
            "workload": workload,
            "old_mbps": round(len(data) / old_s / 1e6, 3),
            "new_mbps": round(len(data) / new_s / 1e6, 3),
            "speedup": round(old_s / new_s, 3),
            "old_bytes": len(old_body),
            "output_bytes": len(new.body),
            "strategies": {
                s.value: c for s, c in sorted(
                    new.strategy_counts().items(), key=lambda kv: kv[0].value
                )
            },
        })
    return rows


def render(report: dict) -> str:
    lines = [
        f"single-pass adaptive splitter vs scratch-encode pricer "
        f"({report['size_bytes']} B/workload)",
        f"{'workload':>16s} {'old':>10s} {'new':>10s} {'speedup':>8s} "
        f"{'old B':>8s} {'new B':>8s}",
    ]
    for row in report["splitter"]:
        lines.append(
            f"{row['workload']:>16s} {row['old_mbps']:>8.2f}MB "
            f"{row['new_mbps']:>8.2f}MB {row['speedup']:>7.2f}x "
            f"{row['old_bytes']:>8d} {row['output_bytes']:>8d}"
        )
    lines += [
        "",
        "cost-driven cut-point search vs blind cadence (same tokens)",
        f"{'workload':>16s} {'cadence B':>10s} {'cut B':>10s} "
        f"{'gain':>7s} {'time':>7s} {'blocks':>12s}",
    ]
    for row in report["cut_search"]:
        blocks = row["blocks"]
        lines.append(
            f"{row['workload']:>16s} {row['old_bytes']:>10d} "
            f"{row['output_bytes']:>10d} {row['size_gain_pct']:>6.2f}% "
            f"{1 / row['speedup']:>6.2f}x "
            f"{blocks['cadence']:>5d}->{blocks['cut']:<5d}"
        )
    lines += [
        "",
        "incompressible-shard stored bypass (entropy sniff) vs tokenizing",
        f"{'workload':>20s} {'tokenized':>12s} {'sniffed':>12s} "
        f"{'speedup':>8s} {'bytes':>9s}",
    ]
    for row in report["stored_bypass"]:
        lines.append(
            f"{row['workload']:>20s} {row['tokenized_mbps']:>10.2f}MB "
            f"{row['sniffed_mbps']:>10.2f}MB {row['speedup']:>7.1f}x "
            f"{row['output_bytes']:>9d}"
        )
    return "\n".join(lines)


def check_speedup(report: dict, min_speedup: float) -> None:
    """Pricing once must beat pricing-by-encoding-twice, everywhere."""
    for row in report["splitter"]:
        assert row["speedup"] >= min_speedup, (
            f"{row['workload']}: single-pass splitter only "
            f"{row['speedup']:.2f}x over scratch-encode pricing "
            f"(required >= {min_speedup:.1f}x)"
        )
        # The new exact stored/dynamic pricing must never compress worse.
        assert row["output_bytes"] <= row["old_bytes"], (
            f"{row['workload']}: single-pass output grew "
            f"({row['old_bytes']} -> {row['output_bytes']} B)"
        )


def check_cut_search(report: dict, min_hetero_gain_pct: float,
                     max_time_ratio: float) -> None:
    """The search must pay for itself where textures actually vary."""
    for row in report["cut_search"]:
        ratio = 1.0 / row["speedup"]
        assert ratio <= max_time_ratio, (
            f"{row['workload']}: cut search costs {ratio:.2f}x the "
            f"cadence split (budget {max_time_ratio:.2f}x)"
        )
        # Never meaningfully worse than the cadence: merges are only
        # accepted when they price no worse, and emission alignment can
        # move stored blocks by at most a byte each.
        slack = row["blocks"]["cadence"]
        assert row["output_bytes"] <= row["old_bytes"] + slack, (
            f"{row['workload']}: searched output grew "
            f"({row['old_bytes']} -> {row['output_bytes']} B)"
        )
        if row["workload"] == "heterogeneous":
            assert row["size_gain_pct"] >= min_hetero_gain_pct, (
                f"heterogeneous: cut search saved only "
                f"{row['size_gain_pct']:.2f}% "
                f"(required >= {min_hetero_gain_pct:.1f}%)"
            )


def check_stored_bypass(report: dict, min_speedup: float) -> None:
    """Skipping tokenization on noise must be a large, free win."""
    for row in report["stored_bypass"]:
        assert row["speedup"] >= min_speedup, (
            f"{row['workload']}: stored bypass only "
            f"{row['speedup']:.1f}x faster (required >= "
            f"{min_speedup:.1f}x)"
        )
        assert row["output_bytes"] <= row["old_bytes"] + 16, (
            f"{row['workload']}: bypassed output grew "
            f"({row['old_bytes']} -> {row['output_bytes']} B)"
        )


def build_report(size_bytes: int, repeats: int) -> dict:
    return {
        "benchmark": "adaptive_splitter",
        "python": platform.python_version(),
        "size_bytes": size_bytes,
        "repeats": repeats,
        "splitter": measure_splitter(size_bytes, repeats),
        "cut_search": measure_cut_search(size_bytes, repeats),
        "stored_bypass": measure_stored_bypass(size_bytes, repeats),
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="CI smoke: 192 KiB workloads, two repeats",
    )
    parser.add_argument("--size-kb", type=int, default=1024,
                        help="workload size in KiB (full mode)")
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--min-speedup", type=float, default=1.5,
                        help="fail if any workload is below this")
    parser.add_argument("--max-cut-ratio", type=float, default=1.15,
                        help="fail if the cut search costs more than "
                        "this multiple of the cadence split's time")
    parser.add_argument("--json", type=pathlib.Path, default=JSON_PATH,
                        help="machine-readable output path")
    args = parser.parse_args(argv)

    if args.quick:
        size_bytes, repeats = 192 * 1024, 2
    else:
        size_bytes, repeats = args.size_kb * 1024, args.repeats

    report = build_report(size_bytes, repeats)
    report["min_speedup"] = args.min_speedup

    from benchmarks.conftest import save_exhibit

    save_exhibit("adaptive_splitter", render(report))
    args.json.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.json}")
    check_speedup(report, args.min_speedup)
    # The 1% acceptance bar is calibrated at the full 1 MiB size; the
    # 192 KiB smoke run has too few texture runs to amortise framing.
    check_cut_search(report, min_hetero_gain_pct=0.5 if args.quick else 1.0,
                     max_time_ratio=args.max_cut_ratio)
    check_stored_bypass(report, min_speedup=3.0)
    print("all outputs round-trip; speedup and size checks passed")
    return 0


def test_adaptive_splitter_smoke(benchmark, sample_bytes):
    """pytest-benchmark entry: quick sweep on the bench sample size."""
    from benchmarks.conftest import run_once, save_exhibit

    report = run_once(
        benchmark, lambda: build_report(sample_bytes // 2, 1)
    )
    save_exhibit("adaptive_splitter", render(report))
    # Single-repeat smoke on a small sample: looser timing bounds, but
    # the size invariants (never worse than cadence/tokenized) hold at
    # any scale.
    check_speedup(report, 1.2)
    check_cut_search(report, min_hetero_gain_pct=0.0, max_time_ratio=2.0)
    check_stored_bypass(report, min_speedup=2.0)


if __name__ == "__main__":
    sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(
        __file__))))
    sys.exit(main())
