"""Throughput of the numpy vector matcher vs the scalar fast path.

Times ``backend="vector"`` (:mod:`repro.lzss.vector`, the batched numpy
kernel modelled on the paper's widened compare datapath) against
``backend="fast"`` (the scalar production tokenizer) on three workloads:

* ``incompressible`` — the headline row. Random bytes are the paper's
  worst case for a sequential matcher: every position hashes, probes
  and fails, so per-position overhead dominates and batching pays most.
  The CI gate applies **only** to this row, on the greedy insert-all
  (``hw_max``) parser the kernel is built for.
* ``synthetic_mixed`` / ``syslog`` — reported honestly, ungated.
  Match-rich data amortises the scalar loop over long matches (one
  iteration per match instead of per byte), so the vector margin
  shrinks and can invert; see docs/PERFORMANCE.md.

Every vector output is verified bit-identical to the fast path before a
number is reported (the fast path is itself differentially tested
against the traced oracle). Results go to ``benchmarks/results/``
(rendered) and ``BENCH_matcher.json`` at the repo root, consumed by the
CI perf-smoke job via ``check_bench_trend.py``.

Runs standalone (the acceptance configuration, 1 MiB per workload)::

    PYTHONPATH=src python benchmarks/bench_matcher_backends.py

or quickly (256 KiB, two repeats) with ``--quick``. On a machine
without numpy the vector backend resolves to ``fast`` and there is
nothing to measure: the script reports that and exits successfully.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import platform
import sys
import time
from typing import Callable, Dict, List, Optional

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
JSON_PATH = REPO_ROOT / "BENCH_matcher.json"

#: The gated configuration: greedy insert-all on incompressible input.
HEADLINE = ("incompressible", "hw_max")


def _best_mbps(fn: Callable[[], object], nbytes: int, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return nbytes / best / 1e6


def matcher_workloads(size_bytes: int) -> Dict[str, bytes]:
    from repro.workloads.logs import syslog_text
    from repro.workloads.synthetic import incompressible, mixed

    return {
        "incompressible": incompressible(size_bytes, seed=7),
        "synthetic_mixed": mixed(size_bytes, seed=7),
        "syslog": syslog_text(size_bytes, seed=7),
    }


def matcher_parsers():
    from repro.lzss.policy import HW_MAX_POLICY, ZLIB_LEVELS

    return [("hw_max", HW_MAX_POLICY), ("lazy6", ZLIB_LEVELS[6])]


def measure_backends(size_bytes: int, repeats: int) -> List[dict]:
    """Fast vs vector tokenization per workload and parser."""
    from repro.lzss.backends import resolve
    from repro.lzss.compressor import compress_tokens

    rows: List[dict] = []
    for workload, data in sorted(matcher_workloads(size_bytes).items()):
        for parser, policy in matcher_parsers():
            fast = compress_tokens(data, 32768, policy=policy,
                                   backend="fast")
            vector = compress_tokens(data, 32768, policy=policy,
                                     backend="vector")
            if vector.backend != "vector":
                raise AssertionError(
                    f"vector backend resolved to {vector.backend!r} "
                    f"for {workload}/{parser}"
                )
            if (
                vector.tokens.lengths != fast.tokens.lengths
                or vector.tokens.values != fast.tokens.values
            ):
                raise AssertionError(
                    f"vector tokens diverge from fast: {workload}/{parser}"
                )
            fast_mbps = _best_mbps(
                lambda: compress_tokens(data, 32768, policy=policy,
                                        backend="fast"),
                len(data), repeats,
            )
            vector_mbps = _best_mbps(
                lambda: compress_tokens(data, 32768, policy=policy,
                                        backend="vector"),
                len(data), repeats,
            )
            rows.append({
                "workload": workload,
                "parser": parser,
                "fast_mbps": round(fast_mbps, 3),
                "vector_mbps": round(vector_mbps, 3),
                "speedup": round(vector_mbps / fast_mbps, 3),
                "tokens": len(vector.tokens),
                "resolved": resolve("vector", policy),
            })
    return rows


def render(report: dict) -> str:
    lines = [
        f"vector matcher backend vs scalar fast path "
        f"({report['size_bytes']} B/workload)",
        f"{'workload':>16s} {'parser':>7s} {'fast':>9s} {'vector':>9s} "
        f"{'speedup':>8s}",
    ]
    for row in report["backends"]:
        gated = "*" if (row["workload"], row["parser"]) == HEADLINE else " "
        lines.append(
            f"{row['workload']:>16s} {row['parser']:>7s} "
            f"{row['fast_mbps']:>7.2f}MB {row['vector_mbps']:>7.2f}MB "
            f"{row['speedup']:>6.2f}x{gated}"
        )
    lines.append("(* = CI-gated headline row; others informational)")
    return "\n".join(lines)


def check_speedup(report: dict, min_speedup: float) -> None:
    """Gate the headline row only: incompressible input, hw_max parser.

    Match-rich workloads legitimately favour the scalar loop (fewer,
    longer matches mean fewer loop iterations), so they are reported
    but never gated.
    """
    for row in report["backends"]:
        if (row["workload"], row["parser"]) != HEADLINE:
            continue
        assert row["speedup"] >= min_speedup, (
            f"{row['workload']}/{row['parser']}: vector only "
            f"{row['speedup']:.2f}x over fast "
            f"(required >= {min_speedup:.1f}x)"
        )
        return
    raise AssertionError("headline row missing from report")


def build_report(size_bytes: int, repeats: int) -> dict:
    import numpy

    return {
        "benchmark": "matcher_backends",
        "python": platform.python_version(),
        "numpy": numpy.__version__,
        "size_bytes": size_bytes,
        "repeats": repeats,
        "backends": measure_backends(size_bytes, repeats),
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="CI smoke: 256 KiB workloads, two repeats",
    )
    parser.add_argument("--size-kb", type=int, default=1024,
                        help="workload size in KiB (full mode; the "
                             "acceptance configuration is 1024)")
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--min-speedup", type=float, default=2.0,
                        help="fail if the headline row is below this")
    parser.add_argument("--json", type=pathlib.Path, default=JSON_PATH,
                        help="machine-readable output path")
    args = parser.parse_args(argv)

    from repro.lzss.backends import available

    if "vector" not in available():
        print("vector backend unavailable (no usable numpy); "
              "nothing to measure")
        return 0

    if args.quick:
        size_bytes, repeats = 256 * 1024, 2
    else:
        size_bytes, repeats = args.size_kb * 1024, args.repeats

    report = build_report(size_bytes, repeats)
    report["min_speedup"] = args.min_speedup

    from benchmarks.conftest import save_exhibit

    save_exhibit("matcher_backends", render(report))
    args.json.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.json}")
    check_speedup(report, args.min_speedup)
    print("all vector outputs bit-identical to fast; "
          "headline speedup check passed")
    return 0


def test_matcher_backends_smoke(benchmark, sample_bytes):
    """pytest-benchmark entry: quick sweep on the bench sample size."""
    import pytest

    pytest.importorskip("numpy")

    from benchmarks.conftest import run_once, save_exhibit

    report = run_once(benchmark, lambda: build_report(sample_bytes, 1))
    save_exhibit("matcher_backends", render(report))
    check_speedup(report, 1.5)  # sub-MiB single-repeat smoke: looser bound


if __name__ == "__main__":
    sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(
        __file__))))
    sys.exit(main())
