"""Throughput of the numpy vector matcher vs the scalar fast path.

Times ``backend="vector"`` (:mod:`repro.lzss.vector`, the batched numpy
kernel modelled on the paper's widened compare datapath) against
``backend="fast"`` (the scalar production tokenizer) on three workloads:

* ``incompressible`` — the headline row. Random bytes are the paper's
  worst case for a sequential matcher: every position hashes, probes
  and fails, so per-position overhead dominates and batching pays most.
  The CI gate applies **only** to this row, on the greedy insert-all
  (``hw_max``) parser the kernel is built for.
* ``synthetic_mixed`` / ``syslog`` — reported honestly, ungated.
  Match-rich data amortises the scalar loop over long matches (one
  iteration per match instead of per byte), so the vector margin
  shrinks and can invert; see docs/PERFORMANCE.md.

A second table times the per-shard router end to end: probe-routed
``backend="auto"`` (probe cost included) against static ``fast`` on the
same workloads, gated both ways — the router must keep the vector win
on the headline row *and* stay within tolerance of ``fast`` on the
match-rich rows it routes away from the kernel. The per-shard routing
decisions (probe signals and outcomes, including an alternating
noise/log sequence) are published as the ``matcher_routing`` exhibit.

Every vector and routed output is verified bit-identical to the fast
path before a number is reported (the fast path is itself
differentially tested against the traced oracle). Results go to
``benchmarks/results/`` (rendered) and ``BENCH_matcher.json`` at the
repo root, consumed by the CI perf-smoke job via
``check_bench_trend.py``.

Runs standalone (the acceptance configuration, 1 MiB per workload)::

    PYTHONPATH=src python benchmarks/bench_matcher_backends.py

or quickly (256 KiB, two repeats) with ``--quick``. On a machine
without numpy the vector backend resolves to ``fast`` and there is
nothing to measure: the script reports that and exits successfully.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import platform
import sys
import time
from typing import Callable, Dict, List, Optional

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
JSON_PATH = REPO_ROOT / "BENCH_matcher.json"

#: The gated configuration: greedy insert-all on incompressible input.
HEADLINE = ("incompressible", "hw_max")

#: Probe-routed ``auto`` vs static ``fast``, gated per workload (full
#: mode): the router must keep ~all of the vector win on the headline
#: workload while costing at most the probe (a few ms/MiB) on the
#: match-rich rows the scalar path wins.
ROUTED_GATES = {
    "incompressible": 1.8,
    "synthetic_mixed": 0.95,
    "syslog": 0.95,
}

#: Sub-MiB single-repeat smoke bounds (timer noise dominates there).
ROUTED_GATES_QUICK = {
    "incompressible": 1.5,
    "synthetic_mixed": 0.75,
    "syslog": 0.75,
}

#: Per-shard decision artifact: every workload is cut into this many
#: shards (count, not size, so the artifact's structure is identical in
#: quick and full modes).
DECISION_SHARDS = 4


def _best_mbps(fn: Callable[[], object], nbytes: int, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return nbytes / best / 1e6


def matcher_workloads(size_bytes: int) -> Dict[str, bytes]:
    from repro.workloads.logs import syslog_text
    from repro.workloads.synthetic import incompressible, mixed

    return {
        "incompressible": incompressible(size_bytes, seed=7),
        "synthetic_mixed": mixed(size_bytes, seed=7),
        "syslog": syslog_text(size_bytes, seed=7),
    }


def matcher_parsers():
    from repro.lzss.policy import HW_MAX_POLICY, ZLIB_LEVELS

    return [("hw_max", HW_MAX_POLICY), ("lazy6", ZLIB_LEVELS[6])]


def measure_backends(size_bytes: int, repeats: int) -> List[dict]:
    """Fast vs vector tokenization per workload and parser."""
    from repro.lzss.backends import resolve
    from repro.lzss.compressor import compress_tokens

    rows: List[dict] = []
    for workload, data in sorted(matcher_workloads(size_bytes).items()):
        for parser, policy in matcher_parsers():
            fast = compress_tokens(data, 32768, policy=policy,
                                   backend="fast")
            vector = compress_tokens(data, 32768, policy=policy,
                                     backend="vector")
            if vector.backend != "vector":
                raise AssertionError(
                    f"vector backend resolved to {vector.backend!r} "
                    f"for {workload}/{parser}"
                )
            if (
                vector.tokens.lengths != fast.tokens.lengths
                or vector.tokens.values != fast.tokens.values
            ):
                raise AssertionError(
                    f"vector tokens diverge from fast: {workload}/{parser}"
                )
            fast_mbps = _best_mbps(
                lambda: compress_tokens(data, 32768, policy=policy,
                                        backend="fast"),
                len(data), repeats,
            )
            vector_mbps = _best_mbps(
                lambda: compress_tokens(data, 32768, policy=policy,
                                        backend="vector"),
                len(data), repeats,
            )
            rows.append({
                "workload": workload,
                "parser": parser,
                "fast_mbps": round(fast_mbps, 3),
                "vector_mbps": round(vector_mbps, 3),
                "speedup": round(vector_mbps / fast_mbps, 3),
                "tokens": len(vector.tokens),
                "resolved": resolve("vector", policy),
            })
    return rows


def measure_routing(size_bytes: int, repeats: int) -> List[dict]:
    """Probe-routed ``auto`` vs static ``fast``, per workload.

    The routed timing is honest end-to-end: it includes the probe
    (entropy + density windows) *and* the tokenization on whatever
    backend the probe picked, so the reported speedup is what a
    ``--route probe`` user actually gets over ``--backend fast``.
    """
    from repro.lzss.compressor import compress_tokens
    from repro.lzss.policy import HW_MAX_POLICY
    from repro.lzss.router import RouterConfig, route_shard

    config = RouterConfig(route="probe")
    rows: List[dict] = []
    for workload, data in sorted(matcher_workloads(size_bytes).items()):
        decision = route_shard(data, backend="auto",
                               policy=HW_MAX_POLICY, config=config)
        fast = compress_tokens(data, 32768, policy=HW_MAX_POLICY,
                               backend="fast")
        routed = compress_tokens(data, 32768, policy=HW_MAX_POLICY,
                                 backend=decision.backend)
        if (
            routed.tokens.lengths != fast.tokens.lengths
            or routed.tokens.values != fast.tokens.values
        ):
            raise AssertionError(
                f"routed tokens diverge from fast: {workload}"
            )

        def routed_once(data=data):
            picked = route_shard(data, backend="auto",
                                 policy=HW_MAX_POLICY, config=config)
            compress_tokens(data, 32768, policy=HW_MAX_POLICY,
                            backend=picked.backend)

        fast_mbps = _best_mbps(
            lambda data=data: compress_tokens(
                data, 32768, policy=HW_MAX_POLICY, backend="fast"
            ),
            len(data), repeats,
        )
        routed_mbps = _best_mbps(routed_once, len(data), repeats)
        rows.append({
            "workload": workload,
            "parser": "hw_max",
            "path": "routed",
            "fast_mbps": round(fast_mbps, 3),
            "routed_mbps": round(routed_mbps, 3),
            "speedup": round(routed_mbps / fast_mbps, 3),
            "backend": decision.backend,
            "reason": decision.reason,
        })
    return rows


def routing_decisions(size_bytes: int) -> dict:
    """The per-shard decision artifact (published by the CI bench job).

    Each workload — plus an alternating noise/log sequence, the case
    static resolution cannot serve — is cut into
    :data:`DECISION_SHARDS` shards and every shard's probe signals and
    routing outcome are recorded.
    """
    from repro.lzss.policy import HW_MAX_POLICY
    from repro.lzss.router import RouterConfig, route_shard

    config = RouterConfig(route="probe")
    workloads = matcher_workloads(size_bytes)
    noise, logs = workloads["incompressible"], workloads["syslog"]
    shard = max(1, size_bytes // DECISION_SHARDS)
    workloads["mixed_sequence"] = b"".join(
        (noise if i % 2 == 0 else logs)[:shard]
        for i in range(DECISION_SHARDS)
    )
    decisions: List[dict] = []
    for workload, data in sorted(workloads.items()):
        for index in range(DECISION_SHARDS):
            piece = data[index * shard:(index + 1) * shard]
            decision = route_shard(piece, backend="auto",
                                   policy=HW_MAX_POLICY, config=config,
                                   index=index)
            probe = decision.probe
            decisions.append({
                "workload": workload,
                "shard": index,
                "backend": decision.backend,
                "reason": decision.reason,
                "entropy_bits": round(probe.entropy_bits, 3),
                "match_density": round(probe.match_density, 4),
            })
    return {
        "shard_bytes_each": shard,
        "shards_per_workload": DECISION_SHARDS,
        "decisions": decisions,
    }


def render(report: dict) -> str:
    lines = [
        f"vector matcher backend vs scalar fast path "
        f"({report['size_bytes']} B/workload)",
        f"{'workload':>16s} {'parser':>7s} {'fast':>9s} {'vector':>9s} "
        f"{'speedup':>8s}",
    ]
    for row in report["backends"]:
        gated = "*" if (row["workload"], row["parser"]) == HEADLINE else " "
        lines.append(
            f"{row['workload']:>16s} {row['parser']:>7s} "
            f"{row['fast_mbps']:>7.2f}MB {row['vector_mbps']:>7.2f}MB "
            f"{row['speedup']:>6.2f}x{gated}"
        )
    lines.append("(* = CI-gated headline row; others informational)")
    return "\n".join(lines)


def render_routing(report: dict) -> str:
    lines = [
        f"probe-routed auto vs static fast "
        f"({report['size_bytes']} B/workload, hw_max parser)",
        f"{'workload':>16s} {'fast':>9s} {'routed':>9s} {'speedup':>8s} "
        f"{'picked':>7s} reason",
    ]
    for row in report["routing"]:
        lines.append(
            f"{row['workload']:>16s} {row['fast_mbps']:>7.2f}MB "
            f"{row['routed_mbps']:>7.2f}MB {row['speedup']:>6.2f}x "
            f"{row['backend']:>7s} {row['reason']}"
        )
    artifact = report["routing_artifact"]
    lines.append(
        f"per-shard decisions ({artifact['shards_per_workload']} shards "
        f"x {artifact['shard_bytes_each']} B):"
    )
    for d in artifact["decisions"]:
        lines.append(
            f"{d['workload']:>16s} shard {d['shard']}: "
            f"{d['backend']:>7s} [{d['reason']}]  "
            f"H={d['entropy_bits']:.2f} bits  "
            f"density={d['match_density']:.3f}"
        )
    return "\n".join(lines)


def check_routing(report: dict, gates: Dict[str, float]) -> None:
    """Gate probe-routed auto against static fast, per workload.

    The router exists to capture the vector win on match-poor data
    without giving back the scalar win on match-rich data; both sides
    are enforced (``gates`` maps workload -> minimum routed/fast
    speedup).
    """
    rows = {row["workload"]: row for row in report["routing"]}
    for workload, floor in gates.items():
        row = rows.get(workload)
        assert row is not None, f"routing row missing: {workload}"
        assert row["speedup"] >= floor, (
            f"{workload}: probe-routed auto only {row['speedup']:.2f}x "
            f"of static fast (required >= {floor:.2f}x, "
            f"picked {row['backend']} [{row['reason']}])"
        )


def check_speedup(report: dict, min_speedup: float) -> None:
    """Gate the headline row only: incompressible input, hw_max parser.

    Match-rich workloads legitimately favour the scalar loop (fewer,
    longer matches mean fewer loop iterations), so they are reported
    but never gated.
    """
    for row in report["backends"]:
        if (row["workload"], row["parser"]) != HEADLINE:
            continue
        assert row["speedup"] >= min_speedup, (
            f"{row['workload']}/{row['parser']}: vector only "
            f"{row['speedup']:.2f}x over fast "
            f"(required >= {min_speedup:.1f}x)"
        )
        return
    raise AssertionError("headline row missing from report")


def build_report(size_bytes: int, repeats: int) -> dict:
    import numpy

    return {
        "benchmark": "matcher_backends",
        "python": platform.python_version(),
        "numpy": numpy.__version__,
        "size_bytes": size_bytes,
        "repeats": repeats,
        "backends": measure_backends(size_bytes, repeats),
        "routing": measure_routing(size_bytes, repeats),
        "routing_artifact": routing_decisions(size_bytes),
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="CI smoke: 256 KiB workloads, two repeats",
    )
    parser.add_argument("--size-kb", type=int, default=1024,
                        help="workload size in KiB (full mode; the "
                             "acceptance configuration is 1024)")
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--min-speedup", type=float, default=2.0,
                        help="fail if the headline row is below this")
    parser.add_argument("--json", type=pathlib.Path, default=JSON_PATH,
                        help="machine-readable output path")
    args = parser.parse_args(argv)

    from repro.lzss.backends import available

    if "vector" not in available():
        print("vector backend unavailable (no usable numpy); "
              "nothing to measure")
        return 0

    if args.quick:
        size_bytes, repeats = 256 * 1024, 2
    else:
        size_bytes, repeats = args.size_kb * 1024, args.repeats

    report = build_report(size_bytes, repeats)
    report["min_speedup"] = args.min_speedup

    from benchmarks.conftest import save_exhibit

    save_exhibit("matcher_backends", render(report))
    save_exhibit("matcher_routing", render_routing(report))
    args.json.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.json}")
    check_speedup(report, args.min_speedup)
    check_routing(report,
                  ROUTED_GATES_QUICK if args.quick else ROUTED_GATES)
    print("all vector and routed outputs bit-identical to fast; "
          "headline and routing speedup checks passed")
    return 0


def test_matcher_backends_smoke(benchmark, sample_bytes):
    """pytest-benchmark entry: quick sweep on the bench sample size."""
    import pytest

    pytest.importorskip("numpy")

    from benchmarks.conftest import run_once, save_exhibit

    report = run_once(benchmark, lambda: build_report(sample_bytes, 1))
    save_exhibit("matcher_backends", render(report))
    save_exhibit("matcher_routing", render_routing(report))
    check_speedup(report, 1.5)  # sub-MiB single-repeat smoke: looser bound
    check_routing(report, ROUTED_GATES_QUICK)


if __name__ == "__main__":
    sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(
        __file__))))
    sys.exit(main())
