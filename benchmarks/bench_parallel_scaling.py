"""Throughput scaling of the sharded parallel engine vs worker count.

Runs the same wiki input through :class:`repro.parallel.ShardedCompressor`
at 1/2/4/8 workers, verifies every output against CPython's zlib, and
records MB/s per worker count to ``benchmarks/results/`` (rendered) and
``BENCH_parallel.json`` at the repo root (machine-readable, uploaded as
a CI artifact alongside ``BENCH_tokenizer.json``). The speedup
assertion is gated on the CPUs actually schedulable in this environment:
on an N-core box worker counts beyond N cannot scale, so only the
counts the hardware can honour are required to beat the serial path.

Runs standalone (CI smoke)::

    PYTHONPATH=src python benchmarks/bench_parallel_scaling.py --quick

or in full (8 MiB input, workers 1/2/4/8) without ``--quick``.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import platform
import sys
import time
import zlib
from typing import List, Optional, Tuple

JSON_PATH = pathlib.Path(__file__).resolve().parent.parent / (
    "BENCH_parallel.json"
)


def available_cpus() -> int:
    """CPUs this process may actually run on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def measure_scaling(
    size_bytes: int,
    worker_counts: List[int],
    shard_size: int,
    repeats: int = 2,
) -> List[Tuple[int, float, int]]:
    """Compress a wiki sample at each worker count.

    Returns ``(workers, best_mbps, compressed_size)`` rows; every output
    is required to round-trip through zlib and to be bit-identical to
    the serial output (sharding is deterministic).

    ``repeats`` defaults to 2 so the *warm* pool is what gets measured:
    the first repeat at each worker count pays the one-time worker fork
    (the persistent pool keeps it for every later repeat and count), and
    best-of-N reports the steady-state throughput a long-lived caller
    actually sees.
    """
    from repro.parallel import ShardedCompressor
    from repro.workloads.wiki import wiki_text

    data = wiki_text(size_bytes, seed=77)
    rows: List[Tuple[int, float, int]] = []
    reference: Optional[bytes] = None
    for workers in worker_counts:
        engine = ShardedCompressor(workers=workers, shard_size=shard_size)
        best = 0.0
        stream = b""
        for _ in range(repeats):
            start = time.perf_counter()
            stream = engine.compress(data).data
            elapsed = time.perf_counter() - start
            best = max(best, len(data) / elapsed / 1e6)
        if zlib.decompress(stream) != data:
            raise AssertionError(f"round-trip failed at workers={workers}")
        if reference is None:
            reference = stream
        elif stream != reference:
            raise AssertionError(
                f"workers={workers} output differs from serial output"
            )
        rows.append((workers, best, len(stream)))
    return rows


def render(rows: List[Tuple[int, float, int]], size_bytes: int) -> str:
    serial = rows[0][1]
    lines = [
        f"parallel scaling on {size_bytes} bytes of wiki text "
        f"({available_cpus()} CPUs available)",
        f"{'workers':>8s} {'MB/s':>8s} {'speedup':>8s} {'output B':>10s}",
    ]
    for workers, mbps, size in rows:
        lines.append(
            f"{workers:>8d} {mbps:>8.2f} {mbps / serial:>7.2f}x {size:>10d}"
        )
    return "\n".join(lines)


def check_scaling(rows: List[Tuple[int, float, int]]) -> None:
    """Require parallel speedup where the hardware can deliver it.

    A worker count the box cannot schedule (``workers >
    available_cpus()``) is *recorded* but never *gated*: asserting
    speedup there would test the scheduler, not the code. The skip is
    printed so a CI log shows exactly which gates applied — and the
    JSON rows carry the same ``gated`` flag for the trend checker.
    """
    cpus = available_cpus()
    serial = rows[0][1]
    for workers, mbps, _ in rows[1:]:
        if workers > cpus:
            print(f"  ~ workers={workers}: speedup gate skipped "
                  f"(only {cpus} CPU(s) schedulable)")
            continue
        if workers >= 4:
            assert mbps >= 2.0 * serial, (
                f"{workers} workers gave {mbps / serial:.2f}x over serial "
                f"(expected >= 2x on {cpus} CPUs)"
            )
        else:
            assert mbps >= 1.2 * serial, (
                f"{workers} workers gave {mbps / serial:.2f}x over serial "
                f"(expected >= 1.2x on {cpus} CPUs)"
            )


def save_json(
    rows: List[Tuple[int, float, int]],
    size_bytes: int,
    shard_size: int,
    path: pathlib.Path = JSON_PATH,
) -> None:
    """Write the machine-readable scaling report next to the repo root."""
    serial = rows[0][1]
    cpus = available_cpus()
    # gated=False marks rows this box could not schedule (workers >
    # CPUs): their speedup is a fact about the recording machine, not
    # the code, so the trend checker must not hold future runs to it.
    report = {
        "benchmark": "parallel_scaling",
        "python": platform.python_version(),
        "cpus": cpus,
        "input_bytes": size_bytes,
        "shard_bytes": shard_size,
        "rows": [
            {
                "workers": workers,
                "mbps": round(mbps, 3),
                "speedup": round(mbps / serial, 3),
                "gated": workers <= cpus,
                "output_bytes": out_bytes,
            }
            for workers, mbps, out_bytes in rows
        ],
    }
    path.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {path}")


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="CI smoke: 512 KiB input, workers 1/2, small shards",
    )
    parser.add_argument("--size-mb", type=float, default=8.0,
                        help="wiki input size in MiB (full mode)")
    parser.add_argument("--shard-kb", type=int, default=1024)
    parser.add_argument("--workers", default="1,2,4,8",
                        help="comma-separated worker counts")
    args = parser.parse_args(argv)

    if args.quick:
        size = 512 * 1024
        worker_counts = [1, 2]
        shard = 64 * 1024
    else:
        size = int(args.size_mb * 1024 * 1024)
        worker_counts = [int(v) for v in args.workers.split(",")]
        shard = args.shard_kb * 1024

    rows = measure_scaling(size, worker_counts, shard)
    text = render(rows, size)
    from benchmarks.conftest import save_exhibit

    save_exhibit("parallel_scaling", text)
    save_json(rows, size, shard)
    check_scaling(rows)
    print("all outputs verified against zlib; scaling checks passed")
    return 0


def test_parallel_scaling_smoke(benchmark, sample_bytes):
    """pytest-benchmark entry: quick scaling sweep on the bench sample."""
    from benchmarks.conftest import run_once, save_exhibit

    rows = run_once(
        benchmark,
        lambda: measure_scaling(
            sample_bytes, [1, 2], shard_size=64 * 1024
        ),
    )
    save_exhibit("parallel_scaling", render(rows, sample_bytes))
    check_scaling(rows)


if __name__ == "__main__":
    sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(
        __file__))))
    sys.exit(main())
