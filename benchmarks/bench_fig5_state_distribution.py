"""Fig. 5 — time spent on different operations (16 KB dict, 15-bit hash).

Paper slices: finding match 68.5 %, updating hash 11.6 %, producing
output 11.0 %, waiting for data 8.4 %, rotating hash 0.3 %, fetching
data 0.2 %.
"""

from benchmarks.conftest import run_once, save_exhibit
from repro.analysis.figures import fig5_state_distribution


def test_fig5(benchmark, sample_bytes):
    fig = run_once(
        benchmark,
        lambda: fig5_state_distribution(sample_bytes=sample_bytes),
    )
    save_exhibit("fig5_state_distribution", fig.render())

    f = fig.fractions
    assert abs(sum(f.values()) - 1.0) < 1e-9
    # Comparison dominates, as in the paper.
    assert f["Finding match"] == max(f.values())
    assert 0.5 < f["Finding match"] < 0.85
    # Update/output in the ~10 % band; waiting below them; rotation and
    # fetch negligible.
    assert 0.03 < f["Updating hash table"] < 0.25
    assert 0.03 < f["Producing output"] < 0.25
    assert f["Rotating hash"] < 0.02
    assert f["Fetching data"] < 0.02
