"""Extension bench: preset dictionaries for small-record logging.

When a logger compresses records *individually* (random access per
record, no shared stream state — the seekable-container regime taken to
its extreme), the sliding window never warms up and ratios collapse. A
trained preset dictionary (RFC 1950 FDICT) restores most of the loss.

Runs standalone (writes ``BENCH_preset_dict.json`` for the CI trend
checker)::

    PYTHONPATH=src python benchmarks/bench_preset_dict.py

or as a pytest-benchmark case. The JSON row's ``speedup`` field is the
*size* factor ``plain / primed`` — how many times smaller the trained
dictionary makes the per-record output — so a dictionary whose value
collapses fails ``check_bench_trend.py`` exactly like an eroded fast
path would.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import platform
import sys
from typing import List, Optional

RECORD = 512

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
JSON_PATH = REPO_ROOT / "BENCH_preset_dict.json"

FULL_BYTES = 256 * 1024
QUICK_BYTES = 64 * 1024


def build_report(sample_bytes: int) -> dict:
    from repro.deflate.preset_dict import (
        compress_with_dict,
        train_dictionary,
    )
    from repro.deflate.zlib_container import compress
    from repro.workloads.corpus import sample

    rows = []
    for name in ("x2e", "syslog", "telemetry"):
        data = sample(name, sample_bytes)
        half = len(data) // 2
        train = [data[i:i + RECORD] for i in range(0, half, RECORD)]
        dictionary = train_dictionary(train, size=2048)
        test_records = [
            data[i:i + RECORD]
            for i in range(half, min(half + 50 * RECORD, len(data)),
                           RECORD)
        ]
        bulk = len(compress(data))
        plain = sum(len(compress(r)) for r in test_records)
        primed = sum(
            len(compress_with_dict(r, dictionary))
            for r in test_records
        ) if dictionary else plain
        raw = sum(len(r) for r in test_records)
        rows.append({
            "workload": name,
            "raw_bytes": raw,
            "old_bytes": plain,
            "output_bytes": primed,
            "bulk_bytes": bulk,
            "total_bytes": len(data),
            "speedup": round(plain / primed, 3) if primed else 1.0,
        })
    return {
        "benchmark": "preset_dict",
        "python": platform.python_version(),
        "size_bytes": sample_bytes,
        "record_bytes": RECORD,
        "rows": rows,
    }


def render(report: dict) -> str:
    lines = [
        "EXTENSION — PRESET DICTIONARIES (per-record compression, "
        f"{RECORD} B records)",
        f"{'set':<10s} {'raw':>8s} {'no dict':>8s} {'trained':>8s} "
        f"{'bulk-ratio':>10s}",
    ]
    for row in report["rows"]:
        lines.append(
            f"{row['workload']:<10s} {row['raw_bytes']:>8d} "
            f"{row['old_bytes']:>8d} {row['output_bytes']:>8d} "
            f"{row['total_bytes'] / row['bulk_bytes']:>10.2f}"
        )
    return "\n".join(lines)


def check(report: dict) -> None:
    for row in report["rows"]:
        # Per-record compression without a dictionary is much worse
        # than bulk; the trained dictionary claws a chunk back.
        assert row["output_bytes"] <= row["old_bytes"], row["workload"]
        assert row["output_bytes"] < row["raw_bytes"], row["workload"]


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help=f"CI smoke: {QUICK_BYTES // 1024} KiB per corpus",
    )
    parser.add_argument("--json", type=pathlib.Path, default=JSON_PATH,
                        help="machine-readable output path")
    args = parser.parse_args(argv)

    report = build_report(QUICK_BYTES if args.quick else FULL_BYTES)

    from benchmarks.conftest import save_exhibit

    save_exhibit("extension_preset_dict", render(report))
    args.json.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.json}")
    check(report)
    print("trained dictionary beats plain per-record on every corpus")
    return 0


def test_preset_dictionary_value(benchmark, sample_bytes):
    from benchmarks.conftest import run_once, save_exhibit

    report = run_once(benchmark, lambda: build_report(sample_bytes))
    save_exhibit("extension_preset_dict", render(report))
    check(report)


if __name__ == "__main__":
    sys.path.insert(0, str(REPO_ROOT))
    sys.exit(main())
