"""Extension bench: preset dictionaries for small-record logging.

When a logger compresses records *individually* (random access per
record, no shared stream state — the seekable-container regime taken to
its extreme), the sliding window never warms up and ratios collapse. A
trained preset dictionary (RFC 1950 FDICT) restores most of the loss.
"""

from benchmarks.conftest import run_once, save_exhibit
from repro.deflate.preset_dict import compress_with_dict, train_dictionary
from repro.deflate.zlib_container import compress
from repro.workloads.corpus import sample

RECORD = 512


def test_preset_dictionary_value(benchmark, sample_bytes):
    def build():
        rows = []
        for name in ("x2e", "syslog", "telemetry"):
            data = sample(name, sample_bytes)
            half = len(data) // 2
            train = [
                data[i:i + RECORD] for i in range(0, half, RECORD)
            ]
            dictionary = train_dictionary(train, size=2048)
            test_records = [
                data[i:i + RECORD]
                for i in range(half, min(half + 50 * RECORD, len(data)),
                               RECORD)
            ]
            bulk = len(compress(data))
            plain = sum(len(compress(r)) for r in test_records)
            primed = sum(
                len(compress_with_dict(r, dictionary))
                for r in test_records
            ) if dictionary else plain
            raw = sum(len(r) for r in test_records)
            rows.append((name, raw, plain, primed, bulk, len(data)))
        return rows

    rows = run_once(benchmark, build)
    lines = [
        "EXTENSION — PRESET DICTIONARIES (per-record compression, "
        f"{RECORD} B records)",
        f"{'set':<10s} {'raw':>8s} {'no dict':>8s} {'trained':>8s} "
        f"{'bulk-ratio':>10s}",
    ]
    for name, raw, plain, primed, bulk, total in rows:
        lines.append(
            f"{name:<10s} {raw:>8d} {plain:>8d} {primed:>8d} "
            f"{total / bulk:>10.2f}"
        )
    save_exhibit("extension_preset_dict", "\n".join(lines))

    for name, raw, plain, primed, bulk, total in rows:
        # Per-record compression without a dictionary is much worse
        # than bulk; the trained dictionary claws a chunk back.
        assert primed <= plain, name
        assert primed < raw, name
