"""Extension bench: CPU offload (§V's "high-level tasks in parallel").

Quantifies the paper's secondary claim: with DMA feeding the fabric
compressor, the PowerPC stays essentially idle at stream rates that
would saturate it many times over under software compression.
"""

from benchmarks.conftest import run_once, save_exhibit
from repro.testbench.cpu_load import CPULoadModel
from repro.workloads.corpus import sample


def test_cpu_offload(benchmark, sample_bytes):
    def build():
        data = sample("x2e", sample_bytes)
        model = CPULoadModel()
        rows = []
        for rate in (1.0, 2.0, 5.0, 10.0, 30.0):
            rows.append(model.software_path(data, rate))
            rows.append(model.hardware_path(data, rate))
        return rows, model.max_stream_mbps(data)

    rows, limits = run_once(benchmark, build)
    lines = ["EXTENSION — CPU OFFLOAD (X2E stream)"]
    lines += [row.format() for row in rows]
    lines.append(
        f"sustainable: software {limits['software']:.1f} MB/s, "
        f"hardware {limits['hardware']:.1f} MB/s"
    )
    save_exhibit("extension_cpu_offload", "\n".join(lines))

    by_key = {(r.label, r.stream_mbps): r for r in rows}
    # At 2 MB/s the software path is near-saturated, the hardware path
    # leaves the CPU >99 % free.
    assert by_key[("software", 2.0)].cpu_busy_fraction > 0.5
    assert by_key[("hardware", 2.0)].cpu_busy_fraction < 0.01
    # The software path is infeasible well below the hardware ceiling.
    assert not by_key[("software", 5.0)].feasible
    assert by_key[("hardware", 30.0)].feasible
