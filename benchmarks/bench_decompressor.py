"""Extension bench: hardware decompression on the same memory fabric.

The paper's related work ([10]) uses fast hardware LZSS decompression
for FPGA self-reconfiguration. Expected shape: decompression beats
compression by a wide margin (no search), approaching the output-port
bandwidth bound of 4 B/cycle on redundant data.
"""

from benchmarks.conftest import run_once, save_exhibit
from repro.hw.compressor import HardwareCompressor
from repro.hw.decompressor_model import HardwareDecompressor
from repro.hw.params import HardwareParams
from repro.workloads.corpus import sample


def test_decompression_speed(benchmark, sample_bytes):
    def build():
        rows = []
        params = HardwareParams()
        for name in ("wiki", "x2e", "zeros"):
            data = sample(name, sample_bytes)
            comp = HardwareCompressor(params).run(data)
            dec = HardwareDecompressor(params).run(comp.lzss.tokens)
            rows.append((name, comp, dec))
        return rows

    rows = run_once(benchmark, build)
    lines = [
        "EXTENSION — HARDWARE DECOMPRESSION (same BRAM fabric, 100 MHz)",
        f"{'set':<6s} {'compress':>10s} {'decompress':>11s} "
        f"{'factor':>7s} {'dec cpb':>8s}",
    ]
    for name, comp, dec in rows:
        lines.append(
            f"{name:<6s} {comp.throughput_mbps:>8.1f}MB {dec.throughput_mbps:>9.1f}MB "
            f"{dec.throughput_mbps / comp.throughput_mbps:>6.1f}x "
            f"{dec.cycles_per_byte:>8.3f}"
        )
    save_exhibit("extension_decompressor", "\n".join(lines))

    for name, comp, dec in rows:
        assert dec.throughput_mbps > comp.throughput_mbps, name
        # Output bandwidth bound: never below 1 cycle per bus beat.
        assert dec.cycles_per_byte >= 0.25 - 1e-9, name
