"""Extension bench: hardware decompression on the same memory fabric.

The paper's related work ([10]) uses fast hardware LZSS decompression
for FPGA self-reconfiguration. Expected shape: decompression beats
compression by a wide margin (no search), approaching the output-port
bandwidth bound of 4 B/cycle on redundant data.

Each workload's token stream is also serialised to a raw Deflate block
and decoded with the table-driven software inflate, so the exhibit
shows the modelled hardware rate next to the *measured* software rate
on identical data — and every software decode is byte-verified against
the original input.
"""

import time

from benchmarks.conftest import run_once, save_exhibit
from repro.deflate.block_writer import BlockStrategy, deflate_tokens
from repro.deflate.inflate import inflate
from repro.hw.compressor import HardwareCompressor
from repro.hw.decompressor_model import HardwareDecompressor
from repro.hw.params import HardwareParams
from repro.workloads.corpus import sample


def _sw_inflate_mbps(stream: bytes, expected: bytes, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        decoded = inflate(stream)
        best = min(best, time.perf_counter() - start)
    assert decoded == expected
    return len(expected) / best / 1e6


def test_decompression_speed(benchmark, sample_bytes):
    def build():
        rows = []
        params = HardwareParams()
        for name in ("wiki", "x2e", "zeros"):
            data = sample(name, sample_bytes)
            comp = HardwareCompressor(params).run(data)
            dec = HardwareDecompressor(params).run(comp.lzss.tokens)
            stream = deflate_tokens(comp.lzss.tokens, BlockStrategy.DYNAMIC)
            sw_mbps = _sw_inflate_mbps(stream, data)
            rows.append((name, comp, dec, sw_mbps))
        return rows

    rows = run_once(benchmark, build)
    lines = [
        "EXTENSION — HARDWARE DECOMPRESSION (same BRAM fabric, 100 MHz)",
        f"{'set':<6s} {'compress':>10s} {'decompress':>11s} "
        f"{'factor':>7s} {'dec cpb':>8s} {'sw inflate':>11s}",
    ]
    for name, comp, dec, sw_mbps in rows:
        lines.append(
            f"{name:<6s} {comp.throughput_mbps:>8.1f}MB {dec.throughput_mbps:>9.1f}MB "
            f"{dec.throughput_mbps / comp.throughput_mbps:>6.1f}x "
            f"{dec.cycles_per_byte:>8.3f} {sw_mbps:>9.1f}MB"
        )
    save_exhibit("extension_decompressor", "\n".join(lines))

    for name, comp, dec, sw_mbps in rows:
        assert dec.throughput_mbps > comp.throughput_mbps, name
        # Output bandwidth bound: never below 1 cycle per bus beat.
        assert dec.cycles_per_byte >= 0.25 - 1e-9, name
        assert sw_mbps > 0, name
