"""Table II — FPGA utilisation across (hash, dictionary) configurations.

Paper point: LUT/register counts are "insignificant and almost the same"
across configurations; only block RAM scales with the tables.
"""

from benchmarks.conftest import run_once, save_exhibit
from repro.analysis.tables import table2_utilization


def test_table2(benchmark):
    table = run_once(benchmark, table2_utilization)
    save_exhibit("table2_utilization", table.render())

    assert table.lut_spread() < 0.3
    for row in table.rows:
        assert row.luts / table.device_luts < 0.10
    brams = [row.bram36 for row in table.rows]
    assert brams == sorted(brams, reverse=True)
