"""Ablation: the fixed-table Huffman commitment (§IV's declined option).

Quantifies the sentence "The cost for the high performance is less
efficient compression compared to the dynamic huffman coders, however,
it can be also compensated by increasing LZSS compression level":

1. fixed vs per-block dynamic tables on both workloads (size);
2. the modelled *hardware* cost of a dynamic-table encoder (cycles +
   extra BRAM);
3. whether raising the LZSS level under fixed tables really recovers
   the dynamic-table ratio, as the paper claims.
"""

from benchmarks.conftest import run_once, save_exhibit
from repro.deflate.block_writer import BlockStrategy, deflate_tokens
from repro.hw.dynamic_cost import compare_dynamic_encoder
from repro.hw.params import HardwareParams
from repro.lzss.compressor import compress_tokens
from repro.lzss.policy import HW_MAX_POLICY
from repro.workloads.corpus import sample


def test_fixed_table_penalty_and_compensation(benchmark, sample_bytes):
    def build():
        rows = []
        params = HardwareParams()
        for name in ("wiki", "x2e"):
            data = sample(name, sample_bytes)
            lzss = compress_tokens(
                data, params.window_size, params.hash_spec, params.policy
            )
            report = compare_dynamic_encoder(params, lzss)
            # The paper's compensation: same fixed tables, max level.
            best = compress_tokens(
                data, 16384, params.hash_spec, HW_MAX_POLICY
            )
            compensated = len(
                deflate_tokens(best.tokens, BlockStrategy.FIXED)
            )
            rows.append((name, report, compensated))
        return rows

    rows = run_once(benchmark, build)
    lines = [
        "ABLATION — FIXED vs DYNAMIC HUFFMAN",
        f"{'set':<5s} {'fixed':>9s} {'dynamic':>9s} {'gain':>6s} "
        f"{'dyn cost':>9s} {'+BRAM18':>8s} {'fixed@max-level':>16s}",
    ]
    for name, report, compensated in rows:
        lines.append(
            f"{name:<5s} {report.fixed_bytes:>9d} "
            f"{report.dynamic_bytes:>9d} "
            f"{100 * report.ratio_gain:>5.1f}% "
            f"{100 * report.speed_loss:>8.1f}% "
            f"{report.extra_bram18:>8d} {compensated:>16d}"
        )
    save_exhibit("ablation_huffman", "\n".join(lines))

    for name, report, compensated in rows:
        # Dynamic tables always win on size but cost cycles and BRAM.
        assert report.dynamic_bytes < report.fixed_bytes, name
        assert report.dynamic_cycles > report.fixed_cycles, name
        assert report.extra_bram18 > 0, name
        # The paper's compensation claim ("can be also compensated by
        # increasing LZSS compression level"): the max level recovers
        # most of the dynamic-table size gap under fixed tables.
        gap = report.fixed_bytes - report.dynamic_bytes
        recovered = report.fixed_bytes - compensated
        assert recovered > 0.45 * gap, (name, recovered / gap)
