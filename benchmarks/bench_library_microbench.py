"""Library micro-benchmarks: host-Python throughput of the hot paths.

These are genuine repeated-measurement benchmarks (unlike the exhibit
regenerations, which run once): they track the performance of the
estimation tool itself so regressions in the Python implementation are
visible. Sizes are kept small for tight measurement loops.
"""

import pytest

from repro.checksums.adler32 import adler32
from repro.checksums.crc32 import crc32
from repro.deflate.block_writer import deflate_tokens
from repro.deflate.inflate import inflate
from repro.deflate.zlib_container import compress
from repro.hw.cycle_model import CycleModel
from repro.hw.params import HardwareParams
from repro.lzss.compressor import compress_tokens
from repro.lzss.hashchain import HashSpec, hash_all
from repro.workloads.wiki import wiki_text

SIZE = 64 * 1024


@pytest.fixture(scope="module")
def data():
    return wiki_text(SIZE, seed=7)


@pytest.fixture(scope="module")
def tokens(data):
    return compress_tokens(data).tokens


def test_hash_all_throughput(benchmark, data):
    spec = HashSpec(15)
    benchmark(hash_all, data, spec)


def test_lzss_compress_throughput(benchmark, data):
    benchmark(compress_tokens, data)


def test_fixed_block_encode_throughput(benchmark, tokens):
    benchmark(deflate_tokens, tokens)


def test_inflate_throughput(benchmark, data):
    body = deflate_tokens(compress_tokens(data).tokens)
    benchmark(inflate, body)


def test_end_to_end_zlib_compress(benchmark, data):
    benchmark(compress, data)


def test_cycle_model_throughput(benchmark, data):
    trace = compress_tokens(data).trace
    model = CycleModel(HardwareParams())
    benchmark(model.run, trace)


def test_adler32_throughput(benchmark, data):
    benchmark(adler32, data)


def test_crc32_throughput(benchmark, data):
    benchmark(crc32, data)
