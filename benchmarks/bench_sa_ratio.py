"""Exact-match (sa) + refine ratio gate: best profile vs its old self.

The ``best`` profile now runs the suffix-array matcher (exact
longest-match queries, no ``max_chain`` budget) and the iterative
re-tokenisation loop (each block re-parsed against its own emerging
Huffman code lengths). This benchmark measures what those two changes
buy over the previous ``best`` configuration — the same window, policy
and adaptive splitter, but the hash-chain ``vector``/``fast`` tokenizer
and no refine loop — and gates the headline claim:

* on the **heterogeneous** workload (alternating text/noise runs, the
  corpus the cut search is calibrated on) the sa+refine output must be
  at least ``--min-gain-pct`` (1.5%) smaller;
* within a wall-time ceiling (``--max-time-ratio`` x the baseline —
  the exact matcher is allowed to cost more, not to be unbounded);
* every stream (both paths, every workload) must decode byte-identically
  through CPython's ``zlib.decompress`` before any number is reported.

Remaining workloads are recorded and held to "never meaningfully worse"
(the exact matcher dominates the heuristic; parse-order effects get a
small slack), but only the heterogeneous row carries the 1.5% gate —
single-texture inputs leave less on the table.

Results go to ``benchmarks/results/sa_ratio.txt`` (rendered) and
``BENCH_sa.json`` at the repo root (machine-readable, consumed by the
CI perf-smoke job via ``check_bench_trend.py``).

Runs standalone (CI smoke)::

    PYTHONPATH=src python benchmarks/bench_sa_ratio.py --quick

or in full (1 MiB workloads, the acceptance configuration) without
``--quick``.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import platform
import sys
import time
import zlib
from typing import Dict, List, Optional

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
JSON_PATH = REPO_ROOT / "BENCH_sa.json"

#: Non-headline rows may not grow more than this over the baseline.
SLACK_PCT = 0.6


def heterogeneous_mix(size_bytes: int, run_bytes: int = 32 * 1024) -> bytes:
    """Equal-share alternating runs over every workload family.

    One ``run_bytes`` run per family, cycling: syslog, JSON telemetry,
    wiki prose, packed JSON messages, incompressible noise. Each run is
    seeded by its index so repeats of a family differ. This is the
    corpus the headline gate runs on — heterogeneous in texture *and*
    in compressibility, with every family the workload suite ships
    represented at equal input share (``bench_adaptive``'s two-texture
    blend is half noise by input, which measures the splitter's stored
    fallback more than the tokenizer).
    """
    from repro.workloads.logs import json_telemetry, syslog_text
    from repro.workloads.messages import packed_messages
    from repro.workloads.synthetic import incompressible
    from repro.workloads.wiki import wiki_text

    makers = (
        lambda n, seed: syslog_text(n, seed=seed),
        lambda n, seed: json_telemetry(n, seed=seed),
        lambda n, seed: wiki_text(n, seed=seed),
        lambda n, seed: packed_messages("json", n, seed=seed),
        lambda n, seed: incompressible(n, seed=seed),
    )
    parts = []
    total = 0
    index = 0
    while total < size_bytes:
        run = makers[index % len(makers)](run_bytes, index)
        parts.append(run)
        total += len(run)
        index += 1
    return b"".join(parts)[:size_bytes]


def workloads(size_bytes: int) -> Dict[str, bytes]:
    from repro.workloads.logs import syslog_text
    from repro.workloads.synthetic import mixed
    from repro.workloads.wiki import wiki_text

    return {
        "heterogeneous": heterogeneous_mix(size_bytes),
        "syslog": syslog_text(size_bytes, seed=7),
        "synthetic_mixed": mixed(size_bytes, seed=7),
        "wiki": wiki_text(size_bytes, seed=7),
    }


def _run(data: bytes, backend: str, refine: bool) -> bytes:
    from repro.deflate.splitter import zlib_compress_adaptive
    from repro.lzss.policy import ZLIB_LEVELS

    return zlib_compress_adaptive(
        data, window_size=32768, policy=ZLIB_LEVELS[9],
        backend=backend, refine=refine,
    )


def measure(size_bytes: int) -> List[dict]:
    """best(sa+refine) vs best-with-vector/refine-off, per workload.

    One timed round each: both paths are deterministic and the gate
    ratio (new/old wall time) is far from its ceiling, so repeat
    variance cannot flip the verdict.
    """
    rows: List[dict] = []
    for workload, data in sorted(workloads(size_bytes).items()):
        start = time.perf_counter()
        old = _run(data, backend="vector", refine=False)
        old_s = time.perf_counter() - start
        start = time.perf_counter()
        new = _run(data, backend="sa", refine=True)
        new_s = time.perf_counter() - start
        for label, stream in (("vector", old), ("sa+refine", new)):
            if zlib.decompress(stream) != data:
                raise AssertionError(
                    f"{workload}: {label} stream does not decode")
        rows.append({
            "workload": workload,
            "gated": workload == "heterogeneous",
            # Trend-checker vocabulary: old is the hash-chain best,
            # output the sa+refine best; speedup old/new (< 1 — the
            # exact matcher pays time for ratio).
            "old_bytes": len(old),
            "output_bytes": len(new),
            "size_gain_pct": round(
                100.0 * (len(old) - len(new)) / len(old), 3),
            "old_s": round(old_s, 4),
            "new_s": round(new_s, 4),
            "time_ratio": round(new_s / old_s, 2),
            "verified": True,
        })
    return rows


def render(report: dict) -> str:
    lines = [
        f"best profile: sa matcher + refine loop vs hash-chain best "
        f"({report['size_bytes']} B/workload)",
        f"{'workload':>16s} {'vector B':>10s} {'sa+refine B':>12s} "
        f"{'gain':>7s} {'time':>7s} {'gate':>6s}",
    ]
    for row in report["sa_ratio"]:
        gate = "1.5%" if row["gated"] else "-"
        lines.append(
            f"{row['workload']:>16s} {row['old_bytes']:>10d} "
            f"{row['output_bytes']:>12d} {row['size_gain_pct']:>6.2f}% "
            f"{row['time_ratio']:>6.1f}x {gate:>6s}"
        )
    return "\n".join(lines)


def check(report: dict, min_gain_pct: float,
          max_time_ratio: float) -> None:
    """The headline gate plus never-meaningfully-worse everywhere."""
    for row in report["sa_ratio"]:
        assert row["size_gain_pct"] >= -SLACK_PCT, (
            f"{row['workload']}: sa+refine output grew "
            f"{-row['size_gain_pct']:.2f}% over the hash-chain best "
            f"(slack {SLACK_PCT}%)"
        )
        assert row["time_ratio"] <= max_time_ratio, (
            f"{row['workload']}: sa+refine costs {row['time_ratio']:.1f}x "
            f"the baseline wall time (ceiling {max_time_ratio:.0f}x)"
        )
        if row["gated"]:
            assert row["size_gain_pct"] >= min_gain_pct, (
                f"{row['workload']}: sa+refine saved only "
                f"{row['size_gain_pct']:.2f}% "
                f"(gate >= {min_gain_pct:.1f}%)"
            )


def build_report(size_bytes: int) -> dict:
    return {
        "benchmark": "sa_ratio",
        "python": platform.python_version(),
        "size_bytes": size_bytes,
        "sa_ratio": measure(size_bytes),
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="CI smoke: 256 KiB workloads",
    )
    parser.add_argument("--size-kb", type=int, default=1024,
                        help="workload size in KiB (full mode)")
    parser.add_argument("--min-gain-pct", type=float, default=1.5,
                        help="fail if the gated heterogeneous row saves "
                        "less than this")
    parser.add_argument("--max-time-ratio", type=float, default=60.0,
                        help="fail if sa+refine costs more than this "
                        "multiple of the baseline wall time")
    parser.add_argument("--json", type=pathlib.Path, default=JSON_PATH,
                        help="machine-readable output path")
    args = parser.parse_args(argv)

    size_bytes = 256 * 1024 if args.quick else args.size_kb * 1024
    report = build_report(size_bytes)
    report["min_gain_pct"] = args.min_gain_pct

    from benchmarks.conftest import save_exhibit

    save_exhibit("sa_ratio", render(report))
    args.json.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.json}")
    check(report, args.min_gain_pct, args.max_time_ratio)
    print("all streams decode; ratio gate and time ceiling passed")
    return 0


def test_sa_ratio_smoke(benchmark, sample_bytes):
    """pytest-benchmark entry: quick sweep on the bench sample size."""
    from benchmarks.conftest import run_once, save_exhibit

    report = run_once(benchmark, lambda: build_report(sample_bytes))
    save_exhibit("sa_ratio", render(report))
    check(report, min_gain_pct=1.5, max_time_ratio=120.0)


if __name__ == "__main__":
    sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(
        __file__))))
    sys.exit(main())
