"""Throughput of the batched small-message engine vs per-payload loops.

Real high-traffic workloads are millions of *small* (0.5-16 KiB)
similar payloads — templated JSON API responses, HTML fragments — where
per-call setup (hash tables, Huffman planning, framing) swamps the
actual matching work. ``repro.batch.compress_batch`` amortises that
setup: one packed tokenization pass over all payloads and one pooled
dynamic Huffman plan shared by every payload that prices cheaper under
it (see docs/PERFORMANCE.md).

This bench times three ways of compressing the same message corpus:

* ``loop`` — the baseline a user writes today: per-payload
  ``repro.zlib_compress(p)`` with library defaults. The CI gate
  applies to the **4 KiB templated-JSON row** only: the batch engine
  must deliver ``--min-speedup`` (3x by default) the payloads/sec of
  this loop at equal-or-better total compressed size.
* ``fast_loop`` — the same loop pinned to the fast backend and the
  batch greedy policy, reported so the batch win is not mistaken for
  a traced-vs-fast artefact.
* ``batch`` — one ``compress_batch(payloads)`` call (auto routing,
  shared plans on).

CPython ``zlib.compress(p, 6)`` is reported per row as an honest
external reference (a C library; never gated).

Every batched stream is verified against CPython ``zlib.decompress``
before any number is reported. Results go to ``benchmarks/results/``
(rendered) and ``BENCH_batch.json`` at the repo root, consumed by the
CI perf-smoke job via ``check_bench_trend.py``.

Runs standalone (the acceptance configuration)::

    PYTHONPATH=src python benchmarks/bench_batch.py

or quickly (smaller corpora, two repeats) with ``--quick``.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import platform
import sys
import time
import zlib
from typing import Callable, Dict, List, Optional, Tuple

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
JSON_PATH = REPO_ROOT / "BENCH_batch.json"

#: The gated configuration: 4 KiB templated-JSON messages.
HEADLINE = ("json", 4096)

#: Payload sizes from the ISSUE's small-message band.
PAYLOAD_SIZES = (512, 2048, 4096, 16384)

#: Bytes of messages per row (payload count = budget // size, floored
#: at 16 so the smallest rows still amortise batch setup).
FULL_BUDGET = 512 * 1024
QUICK_BUDGET = 128 * 1024


def _best_pps(fn: Callable[[], object], payloads: int,
              repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return payloads / best


def batch_corpora(budget: int) -> List[Tuple[str, int, List[bytes]]]:
    from repro.workloads.messages import messages

    corpora = []
    for kind in ("json", "html"):
        for size in PAYLOAD_SIZES:
            count = max(16, budget // size)
            corpora.append((kind, size, messages(kind, count, size)))
    return corpora


def measure_row(kind: str, size: int, payloads: List[bytes],
                repeats: int) -> dict:
    from repro.batch import compress_batch
    from repro.deflate.zlib_container import compress as zlib_compress
    from repro.lzss.batch import BATCH_GREEDY_POLICY

    result = compress_batch(payloads)
    for original, stream in zip(payloads, result.streams):
        if zlib.decompress(stream) != original:
            raise AssertionError(
                f"batched stream does not round-trip: {kind}/{size}"
            )
    loop_streams = [zlib_compress(p) for p in payloads]
    for original, stream in zip(payloads, loop_streams):
        if zlib.decompress(stream) != original:
            raise AssertionError(
                f"loop stream does not round-trip: {kind}/{size}"
            )

    count = len(payloads)
    loop_pps = _best_pps(
        lambda: [zlib_compress(p) for p in payloads], count, repeats
    )
    fast_loop_pps = _best_pps(
        lambda: [
            zlib_compress(p, backend="fast", policy=BATCH_GREEDY_POLICY)
            for p in payloads
        ],
        count, repeats,
    )
    batch_pps = _best_pps(
        lambda: compress_batch(payloads), count, repeats
    )
    zlib_pps = _best_pps(
        lambda: [zlib.compress(p, 6) for p in payloads], count, repeats
    )

    input_bytes = sum(len(p) for p in payloads)
    loop_bytes = sum(len(s) for s in loop_streams)
    zlib_bytes = sum(len(zlib.compress(p, 6)) for p in payloads)
    return {
        "workload": f"{kind}-{size}",
        "payloads": count,
        "payload_bytes": size,
        "loop_pps": round(loop_pps, 1),
        "fast_loop_pps": round(fast_loop_pps, 1),
        "batch_pps": round(batch_pps, 1),
        "zlib_pps": round(zlib_pps, 1),
        "speedup": round(batch_pps / loop_pps, 3),
        "input_bytes": input_bytes,
        "output_bytes": result.stats.output_bytes,
        "loop_bytes": loop_bytes,
        "zlib_bytes": zlib_bytes,
        "ratio": round(result.stats.output_bytes / input_bytes, 4),
        "loop_ratio": round(loop_bytes / input_bytes, 4),
        "backend": result.routing.backend,
        "reason": result.routing.reason,
        "choices": dict(sorted(result.stats.choice_counts.items())),
    }


def build_report(budget: int, repeats: int) -> dict:
    rows = [
        measure_row(kind, size, payloads, repeats)
        for kind, size, payloads in batch_corpora(budget)
    ]
    report = {
        "benchmark": "batch_messages",
        "python": platform.python_version(),
        "size_bytes": budget,
        "repeats": repeats,
        "rows": rows,
    }
    try:
        import numpy
        report["numpy"] = numpy.__version__
    except ImportError:
        report["numpy"] = None
    return report


def render(report: dict) -> str:
    lines = [
        f"batched small-message engine vs per-payload loops "
        f"(~{report['size_bytes'] // 1024} KiB/row)",
        f"{'workload':>12s} {'n':>5s} {'loop':>8s} {'fast-loop':>9s} "
        f"{'batch':>8s} {'zlib-C':>8s} {'speedup':>8s} "
        f"{'ratio':>6s} {'loop-ratio':>10s}",
    ]
    for row in report["rows"]:
        kind, size = row["workload"].rsplit("-", 1)
        gated = "*" if (kind, int(size)) == HEADLINE else " "
        lines.append(
            f"{row['workload']:>12s} {row['payloads']:>5d} "
            f"{row['loop_pps']:>7.0f}/s {row['fast_loop_pps']:>8.0f}/s "
            f"{row['batch_pps']:>7.0f}/s {row['zlib_pps']:>7.0f}/s "
            f"{row['speedup']:>7.2f}x{gated} "
            f"{row['ratio']:>6.3f} {row['loop_ratio']:>10.3f}"
        )
    lines.append("(* = CI-gated headline row; zlib-C is CPython's C "
                 "library, reported for scale, never gated)")
    return "\n".join(lines)


def check_headline(report: dict, min_speedup: float) -> None:
    """Gate the 4 KiB templated-JSON row: speedup AND size.

    The batch engine's claim is *free* throughput — same API surface,
    strictly better output (shared plans only win when they price
    cheaper than fixed tables), so the gate holds both.
    """
    kind, size = HEADLINE
    for row in report["rows"]:
        if row["workload"] != f"{kind}-{size}":
            continue
        assert row["speedup"] >= min_speedup, (
            f"{row['workload']}: batch only {row['speedup']:.2f}x the "
            f"per-payload loop (required >= {min_speedup:.1f}x)"
        )
        assert row["output_bytes"] <= row["loop_bytes"], (
            f"{row['workload']}: batch output {row['output_bytes']} B "
            f"exceeds the per-payload loop's {row['loop_bytes']} B"
        )
        return
    raise AssertionError("headline row missing from report")


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="CI smoke: 128 KiB per row, two repeats",
    )
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--min-speedup", type=float, default=3.0,
                        help="fail if the headline row is below this")
    parser.add_argument("--json", type=pathlib.Path, default=JSON_PATH,
                        help="machine-readable output path")
    args = parser.parse_args(argv)

    if args.quick:
        budget, repeats = QUICK_BUDGET, 2
    else:
        budget, repeats = FULL_BUDGET, args.repeats

    report = build_report(budget, repeats)
    report["min_speedup"] = args.min_speedup

    from benchmarks.conftest import save_exhibit

    save_exhibit("batch_messages", render(report))
    args.json.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.json}")
    check_headline(report, args.min_speedup)
    print("all batched streams verified against CPython zlib; "
          "headline speedup and size checks passed")
    return 0


def test_batch_messages_smoke(benchmark):
    """pytest-benchmark entry: quick sweep, looser single-repeat bound."""
    from benchmarks.conftest import run_once, save_exhibit

    report = run_once(benchmark, lambda: build_report(QUICK_BUDGET, 1))
    save_exhibit("batch_messages", render(report))
    check_headline(report, 2.0)  # single-repeat smoke: looser bound


if __name__ == "__main__":
    sys.path.insert(0, str(REPO_ROOT))
    sys.exit(main())
