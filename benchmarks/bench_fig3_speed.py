"""Fig. 3 — compression speed (MB/s) vs dictionary size per hash size.

Paper shape: speed decreases slightly with dictionary size and
increases with hash size; ~49 MB/s at (15-bit, 4 KB).
"""

from benchmarks.conftest import run_once, save_exhibit
from repro.analysis.figures import fig3_speed


def test_fig3(benchmark, sample_bytes):
    fig = run_once(
        benchmark, lambda: fig3_speed(sample_bytes=sample_bytes)
    )
    save_exhibit("fig3_speed", fig.render())

    series = fig.series()
    # Bigger dictionary -> slightly slower (every hash size).
    for name, speeds in series.items():
        assert speeds[-1] < speeds[0], name
    # Bigger hash -> faster at every dictionary size.
    for i in range(len(series["hash=9"])):
        assert series["hash=15"][i] > series["hash=9"][i]
    # Headline point near the paper's 49 MB/s.
    windows = fig.windows()
    at_4k = series["hash=15"][windows.index(4096)]
    assert 25 < at_4k < 60
