"""Extension bench: the algorithm lineage LZ77 → LZSS → ZLib-variant.

§II traces the design's ancestry; this bench quantifies each step's
contribution on both workloads. Expected shape: LZSS's flag bit beats
LZ77's forced triples everywhere; the Deflate variant (long matches +
Huffman-coded commands) wins once its dynamic tables are allowed, and
its *fixed*-table form trades a little ratio for hardware speed.
"""

from benchmarks.conftest import run_once, save_exhibit
from repro.deflate.block_writer import BlockStrategy
from repro.deflate.zlib_container import compress
from repro.lzss.classic import ClassicLZSSCodec, LZ77Codec
from repro.workloads.corpus import sample


def test_lineage_comparison(benchmark, sample_bytes):
    def build():
        rows = []
        for name in ("wiki", "x2e"):
            data = sample(name, sample_bytes)
            rows.append({
                "workload": name,
                "input": len(data),
                "lz77": len(LZ77Codec().compress(data)),
                "lzss": len(ClassicLZSSCodec().compress(data)),
                "deflate_fixed": len(
                    compress(data, strategy=BlockStrategy.FIXED)
                ),
                "deflate_dynamic": len(
                    compress(data, strategy=BlockStrategy.DYNAMIC)
                ),
            })
        return rows

    rows = run_once(benchmark, build)
    lines = [
        "EXTENSION — ALGORITHM LINEAGE (bytes, 4 KB window throughout)",
        f"{'set':<5s} {'input':>8s} {'LZ77':>8s} {'LZSS':>8s} "
        f"{'dfl-fix':>8s} {'dfl-dyn':>8s}",
    ]
    for row in rows:
        lines.append(
            f"{row['workload']:<5s} {row['input']:>8d} {row['lz77']:>8d} "
            f"{row['lzss']:>8d} {row['deflate_fixed']:>8d} "
            f"{row['deflate_dynamic']:>8d}"
        )
    save_exhibit("extension_lineage", "\n".join(lines))

    for row in rows:
        # Each step of the lineage earns its keep.
        assert row["lzss"] < row["lz77"], row["workload"]
        assert row["deflate_dynamic"] < row["lzss"], row["workload"]
        # And everything beats storing raw.
        assert row["deflate_fixed"] < row["input"], row["workload"]


def test_fmax_aware_throughput(benchmark, sample_bytes):
    """Speeds at the modelled achievable clock (paper: 133.477 MHz
    post-route vs the 100 MHz system clock actually used)."""
    from repro.hw.compressor import HardwareCompressor
    from repro.hw.params import HardwareParams
    from repro.hw.timing import estimate_fmax

    def build():
        data = sample("wiki", sample_bytes)
        rows = []
        for window in (4096, 16384):
            params = HardwareParams(window_size=window)
            result = HardwareCompressor(params).run(data)
            timing = estimate_fmax(params)
            rows.append((params, result, timing))
        return rows

    rows = run_once(benchmark, build)
    lines = [
        "EXTENSION — THROUGHPUT AT ACHIEVABLE CLOCK",
        f"{'config':<12s} {'fmax':>8s} {'@100MHz':>9s} {'@fmax':>9s}",
    ]
    for params, result, timing in rows:
        at_fmax = timing.throughput_at_fmax(result.stats.cycles_per_byte)
        lines.append(
            f"{params.window_size // 1024:>3d}KB/15-bit "
            f"{timing.fmax_mhz:>7.1f}M {result.throughput_mbps:>8.1f} "
            f"{at_fmax:>8.1f}"
        )
        assert timing.meets_nominal
        assert at_fmax > result.throughput_mbps
    save_exhibit("extension_fmax", "\n".join(lines))
