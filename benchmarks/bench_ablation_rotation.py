"""Ablation: the rotation-avoidance design space (§IV's three tricks).

Beyond Table III's single on/off row, this sweeps the *amount* of each
rotation optimisation:

* generation bits G ∈ 0..6 — rotation rarity vs head-table width;
* head-split factor M ∈ 1..32 — rotation cycles vs rotation logic.

Expected shape: rotation overhead falls geometrically with G and
linearly with M, with diminishing returns once it is below ~1 % (the
paper stops at "1-2%"), while the head table's BRAM cost grows with G.
"""

from benchmarks.conftest import run_once, save_exhibit
from repro.estimator.sweep import ParameterSweep
from repro.hw.stats import FSMState
from repro.workloads.corpus import sample


def _rotation_fraction(row):
    return row.stats.fraction(FSMState.ROTATING_HASH)


def test_generation_bits_sweep(benchmark, sample_bytes):
    data = sample("wiki", sample_bytes)
    report = run_once(
        benchmark,
        lambda: ParameterSweep(
            "gen_bits", [0, 1, 2, 3, 4, 5, 6]
        ).run(data, workload="wiki"),
    )
    lines = ["ABLATION — GENERATION BITS (4KB dict, 15-bit hash)",
             f"{'G':>3s} {'MB/s':>7s} {'rotation%':>10s} {'BRAM36':>7s}"]
    fractions = []
    for row in report.rows:
        frac = _rotation_fraction(row)
        fractions.append(frac)
        lines.append(
            f"{row.params.gen_bits:>3d} {row.throughput_mbps:>7.1f} "
            f"{100 * frac:>9.2f}% {row.bram36:>7d}"
        )
    save_exhibit("ablation_gen_bits", "\n".join(lines))

    # Rotation share decreases monotonically with G...
    for earlier, later in zip(fractions, fractions[1:]):
        assert later <= earlier + 1e-9
    # ...reaching the paper's "1-2%" regime by the default G=4.
    assert fractions[4] < 0.02
    # BRAM grows (weakly) with entry width.
    assert report.rows[-1].bram36 >= report.rows[0].bram36


def test_head_split_sweep(benchmark, sample_bytes):
    data = sample("wiki", sample_bytes)
    # Make rotation expensive (G=0) so M's effect is visible.
    from repro.hw.params import HardwareParams

    base = HardwareParams(gen_bits=0)
    report = run_once(
        benchmark,
        lambda: ParameterSweep(
            "head_split", [1, 2, 4, 8, 16, 32], base=base
        ).run(data, workload="wiki"),
    )
    lines = ["ABLATION — HEAD-TABLE SPLIT FACTOR (G=0 so rotation "
             "dominates)",
             f"{'M':>3s} {'MB/s':>7s} {'rotation%':>10s}"]
    speeds = []
    for row in report.rows:
        speeds.append(row.throughput_mbps)
        lines.append(
            f"{row.params.head_split:>3d} {row.throughput_mbps:>7.1f} "
            f"{100 * _rotation_fraction(row):>9.2f}%"
        )
    save_exhibit("ablation_head_split", "\n".join(lines))

    # Speed improves monotonically with the split factor.
    for earlier, later in zip(speeds, speeds[1:]):
        assert later >= earlier
    # "The rotation happens in parallel and requires M times less
    # cycles": M=32 vs M=1 must be a big win at G=0.
    assert speeds[-1] > 1.5 * speeds[0]
