"""Extension bench: one configuration across the full workload corpus.

The paper evaluates Wiki and X2E; a logging-system integrator's payload
mix is wider. This exhibit shows how data-dependent the design point is
— ratio, speed and the Fig. 5-style profile per workload — which is the
flip side of the systolic array's data-independence (see
``bench_alt_architectures``).
"""

from benchmarks.conftest import run_once, save_exhibit
from repro.estimator.workload_report import compare_workloads


def test_workload_matrix(benchmark, sample_bytes):
    comparison = run_once(
        benchmark,
        lambda: compare_workloads(sample_bytes=sample_bytes),
    )
    save_exhibit("extension_workload_matrix", comparison.format_table())

    rows = comparison.rows
    # Sanity ordering across the compressibility spectrum.
    assert rows["zeros"].ratio > rows["telemetry"].ratio > (
        rows["random"].ratio
    )
    assert rows["random"].ratio < 1.05
    # Speed is strongly data-dependent (FSM design's hallmark).
    assert comparison.speed_spread() > 1.5
    # All workloads stay in the design's sane operating envelope:
    # bounded below by the 4 B/cycle fill port, above by deep-chain text.
    for name, row in rows.items():
        assert 0.25 <= row.cycles_per_byte < 6.0, name
