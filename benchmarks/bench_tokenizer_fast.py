"""Throughput of the trace-free fast path vs the instrumented tokenizer.

Times the same inputs through ``backend="traced"`` (the instrumented
reproduction path feeding the cycle models) and ``backend="fast"`` (the
production path: :mod:`repro.lzss.fast` + fused Huffman emission), for
greedy and lazy parsing on a synthetic mixed workload and syslog text.
Two end-to-end one-shot paths ride along: :func:`compress_parallel` and
:class:`ZLibStreamCompressor` on 1 MiB of synthetic data.

Every fast output is verified bit-identical to its traced twin before a
number is reported. Results go to ``benchmarks/results/`` (rendered) and
``BENCH_tokenizer.json`` at the repo root (machine-readable, consumed by
the CI perf-smoke job, which fails the build when the fast path drops
below ``--min-speedup`` — 1.5x by default).

Runs standalone (CI smoke)::

    PYTHONPATH=src python benchmarks/bench_tokenizer_fast.py --quick

or in full (1 MiB end-to-end, the acceptance configuration) without
``--quick``.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import platform
import sys
import time
import zlib
from typing import Callable, Dict, List, Optional

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
JSON_PATH = REPO_ROOT / "BENCH_tokenizer.json"


def _best_mbps(fn: Callable[[], object], nbytes: int, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return nbytes / best / 1e6


def tokenizer_workloads(size_bytes: int) -> Dict[str, bytes]:
    from repro.workloads.logs import syslog_text
    from repro.workloads.synthetic import mixed

    return {
        "synthetic_mixed": mixed(size_bytes, seed=7),
        "syslog": syslog_text(size_bytes, seed=7),
    }


def measure_tokenizers(size_bytes: int, repeats: int) -> List[dict]:
    """Traced vs fast tokenization, greedy and lazy, per workload."""
    from repro.lzss.compressor import compress_tokens
    from repro.lzss.policy import ZLIB_LEVELS

    parsers = [("greedy", ZLIB_LEVELS[1]), ("lazy", ZLIB_LEVELS[6])]
    rows: List[dict] = []
    for workload, data in sorted(tokenizer_workloads(size_bytes).items()):
        for parser, policy in parsers:
            traced = compress_tokens(data, 32768, policy=policy,
                                     backend="traced")
            fast = compress_tokens(data, 32768, policy=policy,
                                   backend="fast")
            if (
                fast.tokens.lengths != traced.tokens.lengths
                or fast.tokens.values != traced.tokens.values
            ):
                raise AssertionError(
                    f"fast tokens diverge from traced: {workload}/{parser}"
                )
            traced_mbps = _best_mbps(
                lambda: compress_tokens(data, 32768, policy=policy,
                                        backend="traced"),
                len(data), repeats,
            )
            fast_mbps = _best_mbps(
                lambda: compress_tokens(data, 32768, policy=policy,
                                        backend="fast"),
                len(data), repeats,
            )
            rows.append({
                "workload": workload,
                "parser": parser,
                "traced_mbps": round(traced_mbps, 3),
                "fast_mbps": round(fast_mbps, 3),
                "speedup": round(fast_mbps / traced_mbps, 3),
                "tokens": len(fast.tokens),
            })
    return rows


def measure_end_to_end(size_bytes: int, repeats: int) -> List[dict]:
    """One-shot parallel engine and stream compressor, traced vs fast."""
    from repro.deflate.stream import ZLibStreamCompressor
    from repro.parallel import compress_parallel
    from repro.workloads.synthetic import mixed

    data = mixed(size_bytes, seed=7)

    def stream_once(backend: str) -> bytes:
        stream = ZLibStreamCompressor(window_size=32768, backend=backend)
        return stream.compress(data) + stream.finish()

    def parallel_once(backend: str) -> bytes:
        return compress_parallel(data, workers=1, backend=backend)

    rows: List[dict] = []
    for path, run in (("parallel", parallel_once), ("stream", stream_once)):
        fast_out = run("fast")
        if run("traced") != fast_out:
            raise AssertionError(f"{path}: fast output != traced output")
        if zlib.decompress(fast_out) != data:
            raise AssertionError(f"{path}: round-trip failed")
        traced_mbps = _best_mbps(lambda: run("traced"), len(data), repeats)
        fast_mbps = _best_mbps(lambda: run("fast"), len(data), repeats)
        rows.append({
            "path": path,
            "traced_mbps": round(traced_mbps, 3),
            "fast_mbps": round(fast_mbps, 3),
            "speedup": round(fast_mbps / traced_mbps, 3),
            "output_bytes": len(fast_out),
        })
    return rows


def render(report: dict) -> str:
    lines = [
        f"fast-path tokenizer vs traced "
        f"({report['tokenizer_bytes']} B/workload, "
        f"{report['end_to_end_bytes']} B end-to-end)",
        f"{'workload':>16s} {'parser':>7s} {'traced':>9s} {'fast':>9s} "
        f"{'speedup':>8s}",
    ]
    for row in report["tokenizer"]:
        lines.append(
            f"{row['workload']:>16s} {row['parser']:>7s} "
            f"{row['traced_mbps']:>7.2f}MB {row['fast_mbps']:>7.2f}MB "
            f"{row['speedup']:>7.2f}x"
        )
    lines.append(f"{'end-to-end':>16s}")
    for row in report["end_to_end"]:
        lines.append(
            f"{row['path']:>16s} {'':>7s} "
            f"{row['traced_mbps']:>7.2f}MB {row['fast_mbps']:>7.2f}MB "
            f"{row['speedup']:>7.2f}x"
        )
    return "\n".join(lines)


def check_speedup(report: dict, min_speedup: float) -> None:
    """The fast path must actually be fast — everywhere it is offered."""
    for row in report["tokenizer"] + report["end_to_end"]:
        name = row.get("path") or f"{row['workload']}/{row['parser']}"
        assert row["speedup"] >= min_speedup, (
            f"{name}: fast path only {row['speedup']:.2f}x over traced "
            f"(required >= {min_speedup:.1f}x)"
        )


def build_report(tokenizer_bytes: int, end_to_end_bytes: int,
                 repeats: int) -> dict:
    return {
        "benchmark": "tokenizer_fast",
        "python": platform.python_version(),
        "tokenizer_bytes": tokenizer_bytes,
        "end_to_end_bytes": end_to_end_bytes,
        "repeats": repeats,
        "tokenizer": measure_tokenizers(tokenizer_bytes, repeats),
        "end_to_end": measure_end_to_end(end_to_end_bytes, repeats),
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="CI smoke: 128 KiB workloads, two repeats",
    )
    parser.add_argument("--size-kb", type=int, default=256,
                        help="tokenizer workload size in KiB (full mode)")
    parser.add_argument("--e2e-kb", type=int, default=1024,
                        help="end-to-end input size in KiB (full mode)")
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--min-speedup", type=float, default=1.5,
                        help="fail if any fast path is below this")
    parser.add_argument("--json", type=pathlib.Path, default=JSON_PATH,
                        help="machine-readable output path")
    args = parser.parse_args(argv)

    if args.quick:
        tokenizer_bytes, e2e_bytes, repeats = 192 * 1024, 256 * 1024, 2
    else:
        tokenizer_bytes = args.size_kb * 1024
        e2e_bytes = args.e2e_kb * 1024
        repeats = args.repeats

    report = build_report(tokenizer_bytes, e2e_bytes, repeats)
    report["min_speedup"] = args.min_speedup

    from benchmarks.conftest import save_exhibit

    save_exhibit("tokenizer_fast", render(report))
    args.json.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.json}")
    check_speedup(report, args.min_speedup)
    print("all fast outputs bit-identical to traced; speedup checks passed")
    return 0


def test_tokenizer_fast_smoke(benchmark, sample_bytes):
    """pytest-benchmark entry: quick sweep on the bench sample size."""
    from benchmarks.conftest import run_once, save_exhibit

    report = run_once(
        benchmark,
        lambda: build_report(sample_bytes // 2, sample_bytes // 2, 1),
    )
    save_exhibit("tokenizer_fast", render(report))
    check_speedup(report, 1.2)  # single-repeat smoke: looser bound


if __name__ == "__main__":
    sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(
        __file__))))
    sys.exit(main())
