"""Load-generator benchmark for the compression service (BENCH_serve).

Hosts a :class:`repro.serve.CompressionService` on an ephemeral port,
sweeps concurrent client streams against it, and records aggregate
throughput plus per-stream p50/p99 wall time to ``benchmarks/results/``
(rendered) and ``BENCH_serve.json`` at the repo root (machine-readable,
uploaded as a CI artifact). Every stream's response is verified:
decodable back to the payload and — in zlib format — byte-identical to
the single-threaded :class:`~repro.deflate.stream.ZLibStreamCompressor`
reference. The whole sweep runs on **one** warm pool; ``pool_spawns``
in the JSON pins the workers-start-once contract.

Runs standalone (CI smoke)::

    PYTHONPATH=src python benchmarks/bench_serve_load.py --quick

or in full (8 concurrent streams, 256 KiB payloads) without ``--quick``.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import platform
import sys
from typing import List, Optional

JSON_PATH = pathlib.Path(__file__).resolve().parent.parent / (
    "BENCH_serve.json"
)


def run_sweep(
    streams_list: List[int],
    payload_bytes: int,
    chunk_bytes: int,
    shard_bytes: int,
    workers: Optional[int],
) -> dict:
    from repro.serve import run_loadgen

    return run_loadgen(
        streams_list=streams_list,
        payload_bytes=payload_bytes,
        chunk_bytes=chunk_bytes,
        shard_size=shard_bytes,
        workers=workers,
    )


def save_json(report: dict, path: pathlib.Path = JSON_PATH) -> None:
    report = dict(report)
    report["python"] = platform.python_version()
    path.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {path}")


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="CI smoke: 64 KiB payloads, 1/2/4 streams",
    )
    parser.add_argument("--streams", default="1,2,4,8",
                        help="comma-separated concurrency sweep")
    parser.add_argument("--payload-kb", type=int, default=256,
                        help="payload per stream in KiB (full mode)")
    parser.add_argument("--chunk-kb", type=int, default=64,
                        help="client chunk size in KiB")
    parser.add_argument("--shard-kb", type=int, default=64,
                        help="service shard size in KiB")
    parser.add_argument("--workers", type=int, default=None,
                        help="pool workers (default: CPUs)")
    args = parser.parse_args(argv)

    if args.quick:
        streams_list = [1, 2, 4]
        payload = 64 * 1024
        chunk = 16 * 1024
        shard = 16 * 1024
    else:
        streams_list = [int(v) for v in args.streams.split(",")]
        payload = args.payload_kb * 1024
        chunk = args.chunk_kb * 1024
        shard = args.shard_kb * 1024

    report = run_sweep(streams_list, payload, chunk, shard, args.workers)

    from benchmarks.conftest import save_exhibit
    from repro.serve import format_report

    text = format_report(report)
    print(text)
    save_exhibit("serve_load", text)
    save_json(report)

    if not report["all_verified"]:
        print("FAIL: a served stream was not byte-identical to the "
              "reference (or did not round-trip)", file=sys.stderr)
        return 1
    if report["pool_spawns"] != 1:
        print(f"FAIL: pool spawned {report['pool_spawns']} times across "
              f"the sweep (warm-pool contract is exactly once)",
              file=sys.stderr)
        return 1
    print("all streams verified; one pool spawn across the sweep")
    return 0


def test_serve_load_smoke(benchmark):
    """pytest-benchmark entry: small sweep, verified responses."""
    from benchmarks.conftest import run_once, save_exhibit
    from repro.serve import format_report

    report = run_once(
        benchmark,
        lambda: run_sweep([1, 2], 48 * 1024, 16 * 1024, 16 * 1024, 2),
    )
    save_exhibit("serve_load", format_report(report))
    assert report["all_verified"]
    assert report["pool_spawns"] == 1


if __name__ == "__main__":
    sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(
        __file__))))
    sys.exit(main())
