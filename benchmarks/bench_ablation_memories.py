"""Ablation: hash cache and lookahead sizing (§IV's remaining knobs).

* ``hash_cache`` off forces the main FSM to compute hashes inline
  (1 extra cycle per search) — the background-fill precompute is one of
  the paper's "advanced caching/prefetching techniques".
* ``lookahead_size`` trades one BRAM against fetch-stall immunity; at
  the paper's 512 B default stalls are already negligible.
"""

from benchmarks.conftest import run_once, save_exhibit
from repro.estimator.sweep import ParameterSweep
from repro.hw.stats import FSMState
from repro.workloads.corpus import sample


def test_hash_cache_ablation(benchmark, sample_bytes):
    data = sample("wiki", sample_bytes)
    report = run_once(
        benchmark,
        lambda: ParameterSweep(
            "hash_cache", [True, False]
        ).run(data, workload="wiki"),
    )
    on, off = report.rows
    text = (
        "ABLATION — HASH CACHE\n"
        f"enabled : {on.throughput_mbps:6.1f} MB/s\n"
        f"disabled: {off.throughput_mbps:6.1f} MB/s "
        f"({100 * (1 - off.throughput_mbps / on.throughput_mbps):.1f}% "
        "slower)"
    )
    save_exhibit("ablation_hash_cache", text)
    assert off.throughput_mbps < on.throughput_mbps


def test_lookahead_sweep(benchmark, sample_bytes):
    data = sample("wiki", sample_bytes)
    report = run_once(
        benchmark,
        lambda: ParameterSweep(
            "lookahead_size", [512, 1024, 2048, 4096]
        ).run(data, workload="wiki"),
    )
    lines = ["ABLATION — LOOKAHEAD BUFFER SIZE",
             f"{'bytes':>6s} {'MB/s':>7s} {'fetch%':>8s} {'BRAM36':>7s}"]
    for row in report.rows:
        lines.append(
            f"{row.params.lookahead_size:>6d} "
            f"{row.throughput_mbps:>7.1f} "
            f"{100 * row.stats.fraction(FSMState.FETCHING_DATA):>7.2f}% "
            f"{row.bram36:>7d}"
        )
    save_exhibit("ablation_lookahead", "\n".join(lines))

    # The paper's 512 B is already sufficient: growing the buffer buys
    # essentially nothing (< 1 % spread).
    speeds = report.series("throughput_mbps")
    assert (max(speeds) - min(speeds)) / max(speeds) < 0.01
