"""Benchmark harness helpers.

Each benchmark module regenerates one paper exhibit (table or figure),
asserts its qualitative shape and writes the rendered text to
``benchmarks/results/``. Model runs are deterministic, so every exhibit
is measured with a single round (``run_once``); the timing numbers show
the cost of the estimation itself, the *content* is the reproduction.

``REPRO_BENCH_KB`` scales the workload sample (default 256 KiB — the
paper uses a 100 MB fragment; trends converge far below that, see
EXPERIMENTS.md).
"""

from __future__ import annotations

import os
import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def bench_sample_bytes() -> int:
    """Benchmark sample size (KiB via REPRO_BENCH_KB, default 256)."""
    return int(os.environ.get("REPRO_BENCH_KB", 256)) * 1024


def run_once(benchmark, fn):
    """Run a deterministic exhibit generator exactly once, timed."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


def save_exhibit(name: str, text: str) -> None:
    """Persist the rendered exhibit for EXPERIMENTS.md and inspection."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print("\n" + text)


@pytest.fixture(scope="session")
def sample_bytes() -> int:
    return bench_sample_bytes()
