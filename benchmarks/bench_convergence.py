"""Methodology bench: sample-size convergence of the reported metrics.

EXPERIMENTS.md reproduces the paper's 100 MB exhibits from 256 KiB
samples, on the claim that ratio and cycles/byte converge far below
100 MB for these stationary sources. This bench *is* that claim: it
sweeps the sample size and asserts the two headline metrics move by
under 3 % across the final doubling.
"""

from benchmarks.conftest import run_once, save_exhibit
from repro.hw.compressor import HardwareCompressor
from repro.hw.params import HardwareParams
from repro.workloads.wiki import wiki_text
from repro.workloads.x2e import x2e_can_log

SIZES_KB = (32, 64, 128, 256, 512)


def test_metric_convergence(benchmark):
    def build():
        results = {}
        for name, gen in (("wiki", wiki_text), ("x2e", x2e_can_log)):
            rows = []
            for kb in SIZES_KB:
                data = gen(kb * 1024, seed=2012)
                run = HardwareCompressor(HardwareParams()).run(data)
                rows.append((kb, run.ratio, run.stats.cycles_per_byte))
            results[name] = rows
        return results

    results = run_once(benchmark, build)
    lines = ["METHODOLOGY — SAMPLE-SIZE CONVERGENCE (paper-speed config)"]
    for name, rows in results.items():
        lines.append(f"  {name}:")
        for kb, ratio, cpb in rows:
            lines.append(
                f"    {kb:>4d} KiB  ratio {ratio:.4f}  cpb {cpb:.4f}"
            )
    save_exhibit("methodology_convergence", "\n".join(lines))

    for name, rows in results.items():
        (_, r256, c256), (_, r512, c512) = rows[-2], rows[-1]
        assert abs(r512 - r256) / r512 < 0.03, name
        assert abs(c512 - c256) / c512 < 0.03, name
