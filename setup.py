"""Setuptools entry point.

The pyproject.toml [build-system] table is intentionally omitted so that
``pip install -e .`` works in offline environments whose setuptools
predates PEP 660 editable wheels (pip then uses the legacy
``setup.py develop`` path, which needs this file).
"""

from setuptools import setup

setup()
