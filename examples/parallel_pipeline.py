#!/usr/bin/env python3
"""Sharded parallel compression producing a single ZLib stream.

The pigz-style scaling axis: cut the input into shards, compress them
concurrently in worker processes, stitch the fragments with sync-flush
joins and a combined Adler-32. The result is one stream CPython's
``zlib.decompress`` accepts unchanged — no custom container, no index.

Demonstrates the three front-ends:

1. :func:`repro.parallel.compress_parallel` — one-shot;
2. the carried-window trade (per-shard isolation vs. ratio);
3. :class:`repro.parallel.ParallelDeflateWriter` — streaming with
   bounded in-flight shards (backpressure), as a log shipper would use.
"""

import io
import zlib

from repro.parallel import (
    ParallelDeflateWriter,
    ShardedCompressor,
    compress_parallel,
)
from repro.workloads.wiki import wiki_text

INPUT_BYTES = 512 * 1024
SHARD_SIZE = 64 * 1024
WORKERS = 2


def main() -> None:
    data = wiki_text(INPUT_BYTES, seed=42)

    # --- one-shot parallel compression -> single ZLib stream.
    engine = ShardedCompressor(workers=WORKERS, shard_size=SHARD_SIZE)
    result = engine.compress(data)
    assert zlib.decompress(result.data) == data
    stats = result.stats
    print(f"one-shot : {len(data)} -> {len(result.data)} bytes "
          f"(ratio {result.ratio:.3f}) in {stats.wall_s:.2f} s "
          f"= {stats.throughput_mbps:.2f} MB/s "
          f"across {stats.shard_count} shards on {WORKERS} workers")

    # --- the isolation/ratio trade: carry the dictionary window.
    carried = compress_parallel(
        data, workers=WORKERS, shard_size=SHARD_SIZE, carry_window=True
    )
    assert zlib.decompress(carried) == data
    saved = len(result.data) - len(carried)
    print(f"carried  : {len(carried)} bytes with carried windows "
          f"({saved} bytes smaller; shards still compress in parallel "
          f"because the window is plaintext already in hand)")

    # --- streaming writer with backpressure (bounded memory).
    sink = io.BytesIO()
    with ParallelDeflateWriter(
        sink, workers=WORKERS, shard_size=SHARD_SIZE, max_inflight=3
    ) as writer:
        for start in range(0, len(data), 10_000):  # arbitrary chunking
            writer.write(data[start:start + 10_000])
    blob = sink.getvalue()
    assert zlib.decompress(blob) == data
    assert blob == result.data  # same bytes, bounded memory
    print(f"streaming: {writer.stats.shard_count} shards through a "
          f"peak queue depth of {writer.stats.peak_inflight} "
          f"(bound 3) -> identical {len(blob)}-byte stream")


if __name__ == "__main__":
    main()
