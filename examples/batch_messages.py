#!/usr/bin/env python3
"""Batched small-message compression: the high-traffic-service regime.

A service compressing millions of small, similar payloads (templated
JSON responses, log records) pays the per-call fixed costs — hash
tables, Huffman planning, framing — over and over for a few KiB of
actual matching work. ``repro.compress_batch`` amortises them:

1. one vectorised tokenization pass over all payloads packed together
   (matches never cross payload boundaries);
2. one pooled dynamic Huffman plan, priced per payload against fixed
   and stored coding so the batch is never larger than the loop;
3. each payload still emerges as its own independent zlib stream any
   standard inflater accepts.

Also shown: priming the batch with a trained preset dictionary
(RFC 1950 FDICT), which pays off most on sub-KiB records where the
window never warms up.
"""

import time
import zlib

from repro import compress_batch, zlib_compress
from repro.deflate.preset_dict import train_dictionary
from repro.lzss.batch import effective_dictionary
from repro.workloads.messages import messages


def main() -> None:
    payloads = messages("json", 200, 2048, seed="example")

    print("1) one batched pass vs the per-payload loop")
    start = time.perf_counter()
    loop_streams = [zlib_compress(p) for p in payloads]
    loop_s = time.perf_counter() - start
    start = time.perf_counter()
    result = compress_batch(payloads)
    batch_s = time.perf_counter() - start
    loop_bytes = sum(len(s) for s in loop_streams)
    batch_bytes = sum(len(s) for s in result.streams)
    print(f"   loop : {len(payloads) / loop_s:7.0f} payloads/s, "
          f"{loop_bytes} bytes")
    print(f"   batch: {len(payloads) / batch_s:7.0f} payloads/s, "
          f"{batch_bytes} bytes "
          f"({loop_s / batch_s:.1f}x faster, "
          f"{loop_bytes - batch_bytes} bytes smaller)")

    print("2) every stream stays independently zlib-decodable")
    for original, stream in zip(payloads, result.streams):
        assert zlib.decompress(stream) == original
    choices = dict(sorted(result.stats.choice_counts.items()))
    print(f"   {len(result.streams)} streams verified; "
          f"block choices: {choices}")
    print(f"   routing: {result.routing.backend} "
          f"[{result.routing.reason}]")

    print("3) a trained preset dictionary squeezes small records more")
    zdict = train_dictionary(payloads[:50], size=2048)
    primed = compress_batch(payloads, zdict=zdict)
    primed_bytes = sum(len(s) for s in primed.streams)
    effective = effective_dictionary(zdict, 4096)
    for original, stream in zip(payloads, primed.streams):
        decoder = zlib.decompressobj(zdict=effective)
        assert decoder.decompress(stream) + decoder.flush() == original
    print(f"   plain batch : {batch_bytes} bytes")
    print(f"   FDICT batch : {primed_bytes} bytes "
          f"({100 * (batch_bytes - primed_bytes) / batch_bytes:.1f}% "
          "smaller, all streams verified with zlib.decompressobj)")


if __name__ == "__main__":
    main()
