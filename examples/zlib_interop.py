#!/usr/bin/env python3
"""Interoperability demonstration: our streams and everyone else's.

Shows the four compatibility directions the library supports:

1. our compressor -> CPython ``zlib`` inflater (the paper's claim);
2. CPython ``zlib`` compressor -> our inflate;
3. gzip framing both ways (extension);
4. the fixed-vs-dynamic Huffman trade-off the paper accepts for speed,
   quantified per workload.
"""

import gzip as stdgzip
import zlib

from repro import (
    BlockStrategy,
    gzip_compress,
    gzip_decompress,
    zlib_compress,
    zlib_decompress,
)
from repro.workloads.wiki import wiki_text
from repro.workloads.x2e import x2e_can_log


def main() -> None:
    samples = {
        "wiki": wiki_text(128 * 1024, seed=1),
        "x2e": x2e_can_log(128 * 1024, seed=1),
    }

    print("1) our stream -> zlib.decompress")
    for name, data in samples.items():
        stream = zlib_compress(data)
        assert zlib.decompress(stream) == data
        print(f"   {name}: {len(data)} -> {len(stream)} bytes, verified")

    print("2) zlib.compress -> our inflate")
    for name, data in samples.items():
        assert zlib_decompress(zlib.compress(data, 6)) == data
        print(f"   {name}: verified")

    print("3) gzip framing both ways")
    for name, data in samples.items():
        assert stdgzip.decompress(gzip_compress(data)) == data
        assert gzip_decompress(stdgzip.compress(data, 6)) == data
        print(f"   {name}: verified")

    print("4) fixed vs dynamic Huffman (the paper's speed trade-off)")
    print(f"   {'workload':<6s} {'fixed':>8s} {'dynamic':>8s} {'penalty':>8s}")
    for name, data in samples.items():
        fixed = len(zlib_compress(data, strategy=BlockStrategy.FIXED))
        dynamic = len(zlib_compress(data, strategy=BlockStrategy.DYNAMIC))
        print(f"   {name:<6s} {fixed:>8d} {dynamic:>8d} "
              f"{100 * (fixed - dynamic) / dynamic:>7.1f}%")
    print("   (the hardware pays this to keep the encoder table-free "
          "and stall-free, §IV)")


if __name__ == "__main__":
    main()
