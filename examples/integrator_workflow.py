#!/usr/bin/env python3
"""The integrator workflow, end to end.

A team wants to drop the paper's compressor into their logger. The
workflow the estimation tooling supports:

1. **analyze** the payload — what kind of data is this?
2. **recommend** a configuration under the project's constraints;
3. **diff** the recommendation against the paper's default to see
   exactly where the cycles and BRAM go;
4. **verify** the datapath on representative data before committing.
"""

from repro.estimator.diff import diff_configurations
from repro.estimator.recommend import Constraints, recommend
from repro.hw.params import HardwareParams
from repro.verification import run_soak
from repro.workloads.logs import json_telemetry
from repro.workloads.stats import profile_workload


def main() -> None:
    payload = json_telemetry(256 * 1024, seed=31)

    print("=== 1. analyze the payload ===")
    profile = profile_workload(payload)
    print(profile.format())

    print("\n=== 2. recommend under constraints ===")
    constraints = Constraints(min_throughput_mbps=40.0, max_bram36=12)
    rec = recommend(payload, constraints=constraints, objective="ratio")
    print(rec.format())
    assert rec.found

    print("\n=== 3. diff against the paper default ===")
    diff = diff_configurations(
        HardwareParams(), rec.best.params, payload
    )
    print(diff.format())

    print("\n=== 4. soak-verify the datapath ===")
    report = run_soak(
        total_bytes=512 * 1024,
        segment_bytes=64 * 1024,
        params=rec.best.params,
        sim_check_every=4,
    )
    print(report.format())
    print("\nconfiguration signed off:", rec.best.params.describe())


if __name__ == "__main__":
    main()
