#!/usr/bin/env python3
"""Embedded CAN logger with real-time compression — the paper's motivating
application (§I: "Compressing the logged stream in real time would relax
the size and bandwidth requirements for the underlying storage media").

Simulates a logging session on the ML-507 board model: CAN traffic
arrives in bursts, each burst is DMA'd through the hardware compressor,
and the example reports the storage/bandwidth the compressor saves and
how much real time the 100 MHz core needs versus the stream rate — the
real-time feasibility check an integrator would do.
"""

from repro.deflate.zlib_container import decompress
from repro.hw import HardwareCompressor, HardwareParams
from repro.testbench.dma import DMAEngine
from repro.workloads.x2e import x2e_can_log

#: A typical high-load CAN FD channel produces a few Mbit/s of log data.
STREAM_MBPS = 2.0
BURST_BYTES = 256 * 1024
BURSTS = 8


def main() -> None:
    params = HardwareParams()  # 4 KB dictionary, 15-bit hash
    compressor = HardwareCompressor(params)
    dma = DMAEngine()

    total_in = 0
    total_out = 0
    busy_s = 0.0
    print(f"logger configuration: {params.describe()}")
    print(f"{'burst':>5s} {'bytes':>9s} {'out':>8s} {'ratio':>6s} "
          f"{'HW time':>9s} {'arrival':>9s}")
    for burst in range(BURSTS):
        data = x2e_can_log(BURST_BYTES, seed=1000 + burst)
        result = compressor.run(data, keep_output=True)
        # Verify losslessness before committing to storage.
        assert decompress(result.output) == data

        hw_time = (
            dma.setup_time_s(len(data)) + result.compression_time_s
        )
        arrival_time = len(data) / (STREAM_MBPS * 1e6)
        total_in += len(data)
        total_out += result.compressed_size
        busy_s += hw_time
        print(f"{burst:>5d} {len(data):>9d} {result.compressed_size:>8d} "
              f"{result.ratio:>6.2f} {1e3 * hw_time:>7.2f}ms "
              f"{1e3 * arrival_time:>7.1f}ms")

    session_s = total_in / (STREAM_MBPS * 1e6)
    print(f"\nsession: {total_in} bytes logged, {total_out} stored "
          f"({100 * (1 - total_out / total_in):.0f}% storage saved)")
    print(f"compressor busy {busy_s:.3f}s of {session_s:.3f}s "
          f"({100 * busy_s / session_s:.1f}% duty cycle) — headroom of "
          f"{total_in / 1e6 / busy_s:.0f} MB/s against a "
          f"{STREAM_MBPS:.0f} MB/s stream")
    print("the on-chip CPU stays free for higher-level tasks (§I)")


if __name__ == "__main__":
    main()
