#!/usr/bin/env python3
"""Design-space exploration with the estimation tool (§V, tool [17]).

Answers the question the paper's tool was published for: *given my data
sample and an FPGA budget, which configuration should I synthesise?*

The script sweeps dictionary and hash sizes on a user-representative
sample, prints the trade-off grid (speed / ratio / block RAM), then
picks the best-ratio configuration that satisfies a speed floor and a
BRAM budget.
"""

from repro.estimator.sweep import grid_sweep
from repro.hw.bram import XC5VFX70T
from repro.workloads.wiki import wiki_text

#: Integrator's constraints.
MIN_SPEED_MBPS = 30.0
MAX_BRAM36 = 20  # of the device's 148

WINDOWS = (1024, 2048, 4096, 8192, 16384)
HASH_BITS = (9, 11, 13, 15)


def main() -> None:
    sample = wiki_text(256 * 1024, seed=2012)
    print(f"exploring {len(WINDOWS) * len(HASH_BITS)} configurations on a "
          f"{len(sample) // 1024} KiB sample...\n")
    reports = grid_sweep(sample, WINDOWS, HASH_BITS)

    print(f"{'config':<24s} {'MB/s':>6s} {'ratio':>6s} {'BRAM36':>7s} "
          f"{'fits?':>6s}")
    candidates = []
    for report in reports:
        for row in report.rows:
            ok = (
                row.throughput_mbps >= MIN_SPEED_MBPS
                and row.bram36 <= MAX_BRAM36
            )
            label = (
                f"{row.params.window_size // 1024}KB dict / "
                f"{row.params.hash_bits}-bit hash"
            )
            print(f"{label:<24s} {row.throughput_mbps:>6.1f} "
                  f"{row.ratio:>6.3f} {row.bram36:>7d} "
                  f"{'yes' if ok else '-':>6s}")
            if ok:
                candidates.append(row)

    if not candidates:
        print("\nno configuration satisfies the constraints; "
              "relax the speed floor or the BRAM budget")
        return
    best = max(candidates, key=lambda row: row.ratio)
    print(f"\nselected: {best.params.describe()}")
    print(f"  speed {best.throughput_mbps:.1f} MB/s, "
          f"ratio {best.ratio:.3f}, {best.bram36} of "
          f"{XC5VFX70T['bram36']} BRAM blocks "
          f"({100 * best.bram36 / XC5VFX70T['bram36']:.1f}%)")
    print("  cycle breakdown:")
    for state, fraction in best.state_fractions().items():
        if fraction > 0:
            print(f"    {state:<22s} {100 * fraction:5.1f}%")


if __name__ == "__main__":
    main()
