#!/usr/bin/env python3
"""Random access into a compressed log archive (the [6] use case).

A debugging session rarely reads a multi-gigabyte log front to back —
it jumps to time windows. This example packs a CAN log into the
block-indexed seekable container and services range queries, reporting
how little data each query actually decompressed.
"""

import struct

from repro.deflate.seekable import blocks_touched, create, read_range
from repro.workloads.x2e import x2e_can_log

LOG_BYTES = 512 * 1024
BLOCK = 32 * 1024
RECORD = 16


def main() -> None:
    log = x2e_can_log(LOG_BYTES, seed=77)
    archive = create(log, block_size=BLOCK)
    print(f"log: {len(log)} bytes -> archive {len(archive)} bytes "
          f"(ratio {len(log) / len(archive):.2f}), "
          f"block size {BLOCK // 1024} KiB")

    queries = [
        ("first 10 records", 0, 10 * RECORD),
        ("records around byte 200k", 200_000, 50 * RECORD),
        ("a single record near the end", LOG_BYTES - 5 * RECORD, RECORD),
        ("a range spanning two blocks", BLOCK - 64, 128),
    ]
    print(f"\n{'query':<32s} {'bytes':>6s} {'blocks':>7s} "
          f"{'decompressed':>13s}")
    for label, start, length in queries:
        data = read_range(archive, start, length)
        assert data == log[start:start + length]
        touched = blocks_touched(archive, start, length)
        print(f"{label:<32s} {len(data):>6d} {touched:>7d} "
              f"{touched * BLOCK:>12d}B")

    # Decode a record from a range read to show it is usable data.
    raw = read_range(archive, 200_000 - 200_000 % RECORD, RECORD)
    ts, can_id, dlc, flags, payload = struct.unpack("<IHBB8s", raw)
    print(f"\nsample record @200k: t={ts}us id=0x{can_id:03x} "
          f"dlc={dlc} payload={payload.hex()}")
    print(f"full scan would have decompressed all "
          f"{len(log) // BLOCK} blocks; queries above touched at most "
          f"{max(blocks_touched(archive, s, n) for _, s, n in queries)}")


if __name__ == "__main__":
    main()
