#!/usr/bin/env python3
"""Crash-safe compressed logging with streaming flushes.

Extends the paper's logging scenario with the property embedded
integrators actually need: if power is lost mid-stream, everything up to
the last sync flush must be recoverable. The example writes a compressed
log with a flush per "transaction", simulates a crash by truncating the
stream at a random point, and recovers the decodable prefix.
"""

import random

from repro.deflate.stream import ZLibStreamCompressor, decompress_prefix
from repro.workloads.x2e import x2e_can_log

TRANSACTIONS = 12
TRANSACTION_BYTES = 8 * 1024


def main() -> None:
    rng = random.Random(7)
    stream = ZLibStreamCompressor(window_size=4096)
    log = bytearray()
    plain = bytearray()
    boundaries = []  # (compressed offset, plain offset) at each flush

    for index in range(TRANSACTIONS):
        record = x2e_can_log(TRANSACTION_BYTES, seed=500 + index)
        plain += record
        log += stream.compress(record)
        log += stream.flush_sync()
        boundaries.append((len(log), len(plain)))
    log += stream.finish()

    print(f"wrote {TRANSACTIONS} transactions: {len(plain)} bytes plain, "
          f"{len(log)} bytes compressed "
          f"(ratio {len(plain) / len(log):.2f})")

    # --- simulate a crash: the tail of the log never hits the disk.
    cut = rng.randrange(boundaries[2][0], len(log))
    damaged = bytes(log[:cut])
    recovered = decompress_prefix(damaged)

    # Recovery is exact up to the last flush before the cut.
    safe_plain = max(
        plain_off for comp_off, plain_off in boundaries if comp_off <= cut
    )
    assert recovered[:safe_plain] == bytes(plain[:safe_plain])
    complete = sum(1 for c, _ in boundaries if c <= cut)
    print(f"crash at compressed byte {cut}: recovered {len(recovered)} "
          f"bytes — all {complete} flushed transactions intact")

    # And the undamaged log decodes fully.
    assert decompress_prefix(bytes(log)) == bytes(plain)
    print("undamaged log decodes fully; nothing lost at flush boundaries")


if __name__ == "__main__":
    main()
