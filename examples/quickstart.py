#!/usr/bin/env python3
"""Quickstart: compress data the way the paper's hardware does.

Runs the full datapath — LZSS (hash-chain matcher) + fixed-table Huffman
+ ZLib framing — on a small text, verifies the stream with CPython's own
zlib (proving the "ZLib-compatible" claim), and prints the hardware
model's cycle report for the same input.
"""

import zlib

from repro import zlib_compress, zlib_decompress
from repro.hw import HardwareCompressor, HardwareParams


def main() -> None:
    text = (
        b"The increasing growth of embedded networking applications has "
        b"created a demand for high-performance logging systems capable "
        b"of storing huge amounts of high-bandwidth, typically redundant "
        b"data. " * 64
    )

    # --- 1. One-call compression (paper defaults: 4 KB dict, 15-bit hash).
    stream = zlib_compress(text)
    print(f"input      : {len(text)} bytes")
    print(f"compressed : {len(stream)} bytes "
          f"(ratio {len(text) / len(stream):.2f})")

    # --- 2. Anyone's inflater accepts the output; ours decodes zlib's.
    assert zlib.decompress(stream) == text
    assert zlib_decompress(zlib.compress(text)) == text
    print("zlib interop: both directions verified")

    # --- 3. What would the FPGA do with this input?
    params = HardwareParams()  # Table I's speed-optimised configuration
    result = HardwareCompressor(params).run(text)
    print(f"\nhardware model ({params.describe()}):")
    print(result.stats.format_table())


if __name__ == "__main__":
    main()
