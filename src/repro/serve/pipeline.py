"""Async shard pipeline: one compression stream over the warm pool.

:class:`StreamSession` is the event-loop generalisation of
:class:`repro.parallel.writer.ParallelDeflateWriter`'s backpressure
latch. Input bytes are buffered until a full shard is cut; shards go to
the shared :class:`~repro.parallel.pool.WarmPool` (payloads ride shared
memory); at most ``max_inflight`` shards are outstanding per session —
further ``feed()`` calls *await* the oldest result instead of blocking
a thread, so hundreds of connections can share one pool with each
connection's memory bounded at ``O(max_inflight * shard_size)``.

Completed fragments are emitted strictly in shard order through the
session's async ``emit`` callable, so the sink receives a valid stream
incrementally. Two framings share the pipeline:

* ``zlib`` — ZLib header, sync-flushed shard fragments, final empty
  block + Adler-32 stitched with
  :func:`repro.checksums.adler32.adler32_combine`. Byte-identical to
  :class:`repro.deflate.stream.ZLibStreamCompressor` fed shard-size
  chunks with a ``flush_sync()`` between each (the differential tests
  pin this).
* ``gzip`` — gzip member header, the *same* Deflate fragments, and a
  CRC-32 + ISIZE trailer stitched with
  :func:`repro.checksums.crc32.crc32_combine`; shard workers compute
  per-shard CRCs (``want_crc``) so the parent never re-reads the input.

A shard worker failure latches the session (mirroring the writer's
``failed`` state): the emitted stream is truncated, stays observably
unfinished (no trailer, no end frame on the wire), and later calls
raise instead of pretending the stream completed.
"""

from __future__ import annotations

import asyncio
import time
from collections import deque
from typing import Awaitable, Callable, Optional

from repro.bitio.writer import BitWriter
from repro.checksums.adler32 import adler32_combine
from repro.checksums.crc32 import crc32_combine
from repro.deflate.block_writer import write_fixed_block
from repro.deflate.gzip_container import member_header, member_trailer
from repro.deflate.zlib_container import make_header
from repro.errors import ConfigError
from repro.lzss.tokens import MIN_LOOKAHEAD, TokenArray
from repro.parallel.engine import ShardTask, ShardedCompressor, close_stream
from repro.parallel.pool import WarmPool
from repro.parallel.stats import ParallelStats, ShardStat
from repro.serve.protocol import FORMATS

Emit = Callable[[bytes], Awaitable[None]]


class StreamSession:
    """One compression stream: feed plaintext, emit framed compressed bytes.

    ``config`` is a :class:`~repro.parallel.engine.ShardedCompressor`
    used purely as the resolved parameter bundle (window, policy,
    strategy, backend, router, shard size, carry-window) — the session
    never calls its one-shot ``compress()``. ``pool`` is the shared
    warm pool; ``emit`` is an async callable receiving compressed byte
    runs in order (header first, trailer last).
    """

    def __init__(
        self,
        config: ShardedCompressor,
        pool: WarmPool,
        emit: Emit,
        fmt: str = "zlib",
        max_inflight: Optional[int] = None,
    ) -> None:
        if fmt not in FORMATS:
            raise ConfigError(
                f"unknown stream format {fmt!r} (want one of "
                f"{sorted(FORMATS)})"
            )
        self._config = config
        self._pool = pool
        self._emit = emit
        self.format = fmt
        # Same sizing rule as the writer: two in-flight shards per
        # worker keeps the pool fed while fragments stitch; floor 2.
        self.max_inflight = max_inflight or max(2 * pool.workers, 2)
        if self.max_inflight < 1:
            raise ConfigError(
                f"max_inflight must be >= 1: {self.max_inflight}"
            )
        self._buffer = bytearray()
        self._tail = b""  # carried window material (plaintext)
        self._pending: deque = deque()
        self._adler = 1
        self._crc = 0
        self._next_index = 0
        self._total_in = 0
        self._total_out = 0
        self._started = time.perf_counter()
        self._header_sent = False
        self._finished = False
        self._failed = False
        self.stats = ParallelStats(workers=pool.workers,
                                   shard_size=config.shard_size)

    # -- plumbing ----------------------------------------------------

    async def _send(self, data: bytes) -> None:
        self._total_out += len(data)
        await self._emit(data)

    async def _send_header(self) -> None:
        if self._header_sent:
            return
        self._header_sent = True
        if self.format == "gzip":
            await self._send(member_header())
        else:
            await self._send(make_header(self._config.window_size))

    async def _submit(self, shard: bytes) -> None:
        # The writer's backpressure latch, await-shaped: block this
        # session (only) on its oldest shard, not the event loop.
        while len(self._pending) >= self.max_inflight:
            await self._drain_one()
        cfg = self._config
        task = ShardTask(
            index=self._next_index,
            data=shard,
            history=self._tail if cfg.carry_window else b"",
            window_size=cfg.window_size,
            hash_spec=cfg.hash_spec,
            policy=cfg.policy,
            strategy=cfg.strategy,
            backend=cfg.backend,
            tokens_per_block=cfg.tokens_per_block,
            cut_search=cfg.cut_search,
            sniff=cfg.sniff,
            router=cfg.router,
            want_crc=(self.format == "gzip"),
        )
        self._next_index += 1
        self._total_in += len(shard)
        if cfg.carry_window:
            keep = cfg.window_size + MIN_LOOKAHEAD
            self._tail = (self._tail + shard)[-keep:]
        self._pending.append(self._pool.submit_shard(task))
        self.stats.note_inflight(len(self._pending))

    async def _drain_one(self) -> None:
        future = self._pending.popleft()
        try:
            await asyncio.wrap_future(future)
        except asyncio.CancelledError:
            self._pending.appendleft(future)
            raise
        except BaseException:
            # Retrieval below re-raises with pool breakage translated
            # to ConfigError (and the broken executor discarded).
            pass
        result = self._pool.shard_result(future)
        await self._send(result.body)
        self._adler = adler32_combine(self._adler, result.adler,
                                      result.input_bytes)
        if self.format == "gzip":
            self._crc = crc32_combine(self._crc, result.crc,
                                      result.input_bytes)
        self.stats.add_shard(
            ShardStat(
                index=result.index,
                input_bytes=result.input_bytes,
                output_bytes=len(result.body),
                wall_s=result.wall_s,
                worker=result.worker,
                backend=result.backend,
                route_reason=result.route_reason,
                traced_sample=result.traced_sample,
            )
        )
        if result.telemetry is not None:
            self.stats.calibration.add(result.telemetry)

    def _guard(self) -> None:
        if self._failed:
            raise ConfigError(
                "stream failed: the emitted output is truncated"
            )
        if self._finished:
            raise ConfigError("stream already finished")

    # -- public API --------------------------------------------------

    @property
    def total_in(self) -> int:
        """Plaintext bytes accepted so far (buffered or submitted)."""
        return self._total_in + len(self._buffer)

    @property
    def total_out(self) -> int:
        """Compressed bytes emitted so far (framing included)."""
        return self._total_out

    @property
    def failed(self) -> bool:
        """True once a shard worker or the emit sink raised."""
        return self._failed

    async def feed(self, data: bytes) -> None:
        """Accept plaintext; submit every full shard it completes.

        Awaits (on the oldest in-flight shard, then on the sink's own
        backpressure) whenever the in-flight bound is hit.
        """
        self._guard()
        try:
            await self._send_header()
            self._buffer += data
            size = self._config.shard_size
            while len(self._buffer) >= size:
                shard = bytes(self._buffer[:size])
                del self._buffer[:size]
                await self._submit(shard)
        except asyncio.CancelledError:
            self.abandon()
            raise
        except BaseException:
            self._failed = True
            self.abandon()
            raise

    async def finish(self) -> ParallelStats:
        """Flush the tail shard, drain the pipeline, emit the trailer."""
        self._guard()
        try:
            await self._send_header()
            if self._buffer:
                shard = bytes(self._buffer)
                self._buffer.clear()
                await self._submit(shard)
            while self._pending:
                await self._drain_one()
            if self.format == "gzip":
                writer = BitWriter()
                write_fixed_block(writer, TokenArray(), final=True)
                await self._send(
                    writer.flush()
                    + member_trailer(self._crc, self._total_in)
                )
            else:
                await self._send(close_stream(self._adler))
        except asyncio.CancelledError:
            self.abandon()
            raise
        except BaseException:
            self._failed = True
            self.abandon()
            raise
        self._finished = True
        self.stats.wall_s = time.perf_counter() - self._started
        return self.stats

    def abandon(self) -> None:
        """Drop in-flight shards (connection gone or stream failed).

        The shared pool stays up; only this session's outstanding
        futures are cancelled or left to complete into the void (their
        done-callbacks still release the shared-memory segments).
        """
        while self._pending:
            self._pending.popleft().cancel()
