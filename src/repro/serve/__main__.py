"""``python -m repro.serve`` — run the compression service.

The minimal standalone entry point; the full-featured command (profiles,
backend routing, self-test mode) is ``lzss-estimator serve``.
"""

from __future__ import annotations

import argparse
import asyncio
import sys

from repro.serve.server import DEFAULT_SERVE_SHARD_SIZE, serve


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="zlib/gzip compression service (LZR1 protocol)",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=9123)
    parser.add_argument("--workers", type=int, default=None,
                        help="pool workers (default: CPU count)")
    parser.add_argument(
        "--shard-kb", type=int,
        default=DEFAULT_SERVE_SHARD_SIZE // 1024,
        help="shard size in KiB (default: %(default)s)",
    )
    args = parser.parse_args(argv)
    try:
        asyncio.run(serve(
            host=args.host, port=args.port, workers=args.workers,
            shard_size=args.shard_kb * 1024,
        ))
    except KeyboardInterrupt:
        pass
    return 0


if __name__ == "__main__":
    sys.exit(main())
