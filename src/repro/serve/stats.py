"""Server-side instrumentation riding the parallel engine's stats.

Each connection carries exactly one compression stream, whose shard
records already live in a :class:`~repro.parallel.stats.ParallelStats`.
The server keeps one :class:`ServeStats` and folds every finished
stream into it via :meth:`ParallelStats.merge`, adding the
connection-level view the engine cannot see: concurrent connections,
per-stream wall-time quantiles (the p99 the load generator reports),
and protocol/worker failure counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.parallel.stats import ParallelStats

#: Per-stream wall times kept for quantiles. A long-lived server caps
#: the list by dropping the oldest half — quantiles then describe
#: recent traffic, which is what an operator polls for anyway.
MAX_STREAM_SAMPLES = 4096


def quantile(samples: List[float], q: float) -> float:
    """The ``q``-quantile (nearest-rank) of ``samples``; 0.0 if empty."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = max(1, int(q * len(ordered) + 0.999999))
    return ordered[min(rank, len(ordered)) - 1]


@dataclass
class ServeStats:
    """Aggregate view of a compression service's lifetime."""

    connections_total: int = 0
    connections_active: int = 0
    peak_connections: int = 0
    streams_completed: int = 0
    protocol_errors: int = 0
    worker_failures: int = 0
    bytes_in: int = 0
    bytes_out: int = 0
    stream_wall_s: List[float] = field(default_factory=list)
    #: Shard-level aggregate across every completed stream.
    parallel: ParallelStats = field(
        default_factory=lambda: ParallelStats(workers=0, shard_size=0)
    )

    def note_open(self) -> None:
        self.connections_total += 1
        self.connections_active += 1
        if self.connections_active > self.peak_connections:
            self.peak_connections = self.connections_active

    def note_close(self) -> None:
        self.connections_active -= 1

    def note_stream(self, stats: ParallelStats, wall_s: float,
                    bytes_in: int, bytes_out: int) -> None:
        """Fold one completed stream into the server aggregate."""
        self.streams_completed += 1
        self.bytes_in += bytes_in
        self.bytes_out += bytes_out
        self.stream_wall_s.append(wall_s)
        if len(self.stream_wall_s) > MAX_STREAM_SAMPLES:
            del self.stream_wall_s[:MAX_STREAM_SAMPLES // 2]
        self.parallel.merge(stats)

    @property
    def p50_s(self) -> float:
        """Median per-stream wall time (recent streams)."""
        return quantile(self.stream_wall_s, 0.50)

    @property
    def p99_s(self) -> float:
        """99th-percentile per-stream wall time (recent streams)."""
        return quantile(self.stream_wall_s, 0.99)

    @property
    def ratio(self) -> float:
        if self.bytes_out == 0:
            return 0.0
        return self.bytes_in / self.bytes_out

    def format(self) -> str:
        """Render the operator report (the CLI's shutdown summary)."""
        lines = [
            f"connections     : {self.connections_total} total, "
            f"peak {self.peak_connections} concurrent",
            f"streams         : {self.streams_completed} completed, "
            f"{self.protocol_errors} protocol error(s), "
            f"{self.worker_failures} worker failure(s)",
            f"bytes           : {self.bytes_in} in -> "
            f"{self.bytes_out} out (ratio {self.ratio:.3f})",
            f"stream wall time: p50 {self.p50_s:.3f} s, "
            f"p99 {self.p99_s:.3f} s",
            f"shards          : {self.parallel.shard_count} "
            f"(peak queue depth {self.parallel.peak_inflight})",
        ]
        return "\n".join(lines)
