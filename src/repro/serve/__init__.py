"""repro.serve — compression-as-a-service over the warm shard pool.

The serving layer the persistent :class:`~repro.parallel.pool.WarmPool`
was built for: an asyncio server offers zlib/gzip content-encoding
offload, every connection carries one compression stream, and all
connections share one pool of long-lived workers (shard payloads ride
shared memory, results stitch through the sync-flush +
checksum-combine path).

* :class:`CompressionService` / :func:`serve` — the server;
* :class:`StreamSession` — one stream's async shard pipeline
  (per-connection backpressure latch);
* :func:`compress_stream` / :func:`compress_bytes` — the client;
* :class:`ServeStats` — connection-level stats riding
  :class:`~repro.parallel.stats.ParallelStats`;
* :func:`run_loadgen` — the self-hosting load generator behind
  ``BENCH_serve.json``.
"""

from repro.serve.client import compress_bytes, compress_stream
from repro.serve.loadgen import format_report, make_payload, run_loadgen
from repro.serve.pipeline import StreamSession
from repro.serve.protocol import FORMATS
from repro.serve.server import (
    DEFAULT_SERVE_SHARD_SIZE,
    CompressionService,
    serve,
)
from repro.serve.stats import ServeStats

__all__ = [
    "DEFAULT_SERVE_SHARD_SIZE",
    "FORMATS",
    "CompressionService",
    "ServeStats",
    "StreamSession",
    "compress_bytes",
    "compress_stream",
    "format_report",
    "make_payload",
    "run_loadgen",
    "serve",
]
