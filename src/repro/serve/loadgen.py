"""Load generator for the compression service (BENCH_serve feed).

Self-hosting by design: it starts a :class:`CompressionService` on an
ephemeral port inside its own event loop, drives N concurrent client
streams against it, and reports aggregate throughput plus per-stream
wall-time quantiles. Every stream's response is verified — decodable
back to the payload, and (zlib format) **byte-identical** to the
single-threaded :class:`~repro.deflate.stream.ZLibStreamCompressor`
reference, the acceptance contract that pins the served stream to the
library's canonical chunked output.
"""

from __future__ import annotations

import asyncio
import os
import time
import zlib
from typing import Optional, Sequence

from repro.deflate.stream import ZLibStreamCompressor
from repro.parallel.engine import ShardedCompressor
from repro.serve.client import compress_stream
from repro.serve.server import CompressionService
from repro.serve.stats import quantile

_WORDS = (
    b"stream", b"shard", b"window", b"match", b"literal", b"huffman",
    b"deflate", b"adler", b"pipeline", b"latency", b"backlog", b"pool",
)


def make_payload(size: int, seed: int = 20260807) -> bytes:
    """Deterministic compressible text of exactly ``size`` bytes."""
    out = bytearray()
    state = seed & 0xFFFFFFFF
    while len(out) < size:
        state = (state * 1103515245 + 12345) & 0xFFFFFFFF
        word = _WORDS[state % len(_WORDS)]
        out += word
        out += b" " if state & 0x10000 else b"\n"
    return bytes(out[:size])


def reference_stream(payload: bytes, config: ShardedCompressor) -> bytes:
    """The canonical single-threaded output the service must match.

    :class:`ZLibStreamCompressor` fed shard-size chunks with a
    ``flush_sync()`` after each one, then finished — exactly the block
    and sync-marker cadence the sharded pipeline stitches, so the
    served zlib stream is byte-identical by construction (the carried
    window supplies the same cross-shard history both sides).
    """
    stream = ZLibStreamCompressor(
        window_size=config.window_size,
        hash_spec=config.hash_spec,
        policy=config.policy,
        strategy=config.strategy,
        backend=config.backend,
        tokens_per_block=config.tokens_per_block,
        cut_search=config.cut_search,
        sniff=config.sniff,
    )
    out = bytearray()
    for start in range(0, len(payload), config.shard_size):
        out += stream.compress(payload[start:start + config.shard_size])
        out += stream.flush_sync()
    out += stream.finish()
    return bytes(out)


async def _timed_stream(host: str, port: int, payload: bytes,
                        chunk_size: int, fmt: str):
    chunks = [payload[i:i + chunk_size]
              for i in range(0, len(payload), chunk_size)]
    started = time.perf_counter()
    compressed, total_in = await compress_stream(
        host, port, chunks, fmt=fmt
    )
    return time.perf_counter() - started, compressed, total_in


def _verify(compressed: bytes, total_in: int, payload: bytes,
            fmt: str, reference: Optional[bytes]) -> bool:
    if total_in != len(payload):
        return False
    if fmt == "gzip":
        import gzip as _gzip

        return _gzip.decompress(compressed) == payload
    if zlib.decompress(compressed) != payload:
        return False
    return reference is None or compressed == reference


async def _drive(
    streams_list: Sequence[int],
    payload: bytes,
    chunk_size: int,
    fmt: str,
    workers: Optional[int],
    shard_size: Optional[int],
    max_inflight: Optional[int],
    config_kwargs: dict,
) -> dict:
    service = CompressionService(
        workers=workers, shard_size=shard_size,
        max_inflight=max_inflight, **config_kwargs
    )
    await service.start(host="127.0.0.1", port=0)
    port = service.port
    reference = (reference_stream(payload, service.config)
                 if fmt == "zlib" else None)
    rows = []
    try:
        for streams in streams_list:
            started = time.perf_counter()
            results = await asyncio.gather(*[
                _timed_stream("127.0.0.1", port, payload,
                              chunk_size, fmt)
                for _ in range(streams)
            ])
            wall = time.perf_counter() - started
            walls = [r[0] for r in results]
            verified = all(
                _verify(compressed, total_in, payload, fmt, reference)
                for _, compressed, total_in in results
            )
            total_bytes = len(payload) * streams
            rows.append({
                "streams": streams,
                "wall_s": round(wall, 4),
                "throughput_mbps": round(
                    total_bytes / wall / 1e6, 3
                ) if wall > 0 else 0.0,
                "p50_s": round(quantile(walls, 0.50), 4),
                "p99_s": round(quantile(walls, 0.99), 4),
                "verified": verified,
            })
    finally:
        await service.close()
    return {
        "benchmark": "serve_load",
        "format": fmt,
        "cpus": os.cpu_count(),
        "workers": service.pool.workers,
        "payload_bytes": len(payload),
        "chunk_bytes": chunk_size,
        "shard_bytes": service.config.shard_size,
        "pool_spawns": service.pool.spawn_count,
        "streams_completed": service.stats.streams_completed,
        "worker_failures": service.stats.worker_failures,
        "protocol_errors": service.stats.protocol_errors,
        "all_verified": all(row["verified"] for row in rows),
        "rows": rows,
    }


def run_loadgen(
    streams_list: Sequence[int] = (1, 2, 4, 8),
    payload_bytes: int = 256 * 1024,
    chunk_bytes: int = 64 * 1024,
    fmt: str = "zlib",
    workers: Optional[int] = None,
    shard_size: Optional[int] = 64 * 1024,
    max_inflight: Optional[int] = None,
    **config_kwargs,
) -> dict:
    """Run the load sweep against a self-hosted service; returns the report.

    One warm pool serves every concurrency level — ``pool_spawns`` in
    the report asserts the workers started exactly once across the
    whole sweep. Extra keyword arguments configure the service's
    :class:`~repro.parallel.engine.ShardedCompressor` (profile,
    strategy, backend, ...).
    """
    payload = make_payload(payload_bytes)
    return asyncio.run(_drive(
        streams_list, payload, chunk_bytes, fmt,
        workers, shard_size, max_inflight, config_kwargs,
    ))


def format_report(report: dict) -> str:
    """Render the sweep as the plain-text exhibit."""
    lines = [
        f"serve load: {report['format']} format, "
        f"{report['payload_bytes']} B/stream, "
        f"shard {report['shard_bytes']} B, "
        f"workers={report['workers']} (cpus={report['cpus']}, "
        f"pool spawns={report['pool_spawns']})",
        f"{'streams':>8} {'wall_s':>8} {'MB/s':>8} "
        f"{'p50_s':>8} {'p99_s':>8} {'verified':>9}",
    ]
    for row in report["rows"]:
        lines.append(
            f"{row['streams']:>8} {row['wall_s']:>8.3f} "
            f"{row['throughput_mbps']:>8.2f} {row['p50_s']:>8.3f} "
            f"{row['p99_s']:>8.3f} {str(row['verified']):>9}"
        )
    return "\n".join(lines)
