"""The LZR1 wire protocol: length-prefixed frames over one connection.

The compression service speaks a deliberately tiny binary protocol —
one compression stream per connection, so concurrency maps 1:1 onto
connections and the server needs no multiplexing state:

* the client opens with an 8-byte stream header: magic ``LZR1``, a
  version byte, a format byte (0 = zlib, 1 = gzip) and two reserved
  zero bytes;
* input then flows as frames — a 4-byte big-endian length followed by
  that many payload bytes; a zero-length frame marks end-of-input;
* the server answers with the same framing carrying compressed bytes
  (emitted incrementally, shard by shard), ends with a zero-length
  frame, and appends an 8-byte big-endian count of input bytes it
  consumed (a cheap end-to-end sanity check for clients).

Frame payloads are capped at :data:`MAX_FRAME` so a corrupt or hostile
length prefix cannot make the server buffer gigabytes.
"""

from __future__ import annotations

import asyncio

from repro.errors import ServeProtocolError

MAGIC = b"LZR1"
VERSION = 1

FORMAT_ZLIB = 0
FORMAT_GZIP = 1

#: Wire format byte by name — the public spelling used by the CLI.
FORMATS = {"zlib": FORMAT_ZLIB, "gzip": FORMAT_GZIP}
FORMAT_NAMES = {code: name for name, code in FORMATS.items()}

#: Stream header: MAGIC + version + format + 2 reserved bytes.
STREAM_HEADER_SIZE = 8

#: Largest accepted frame payload (16 MiB).
MAX_FRAME = 1 << 24

#: The zero-length frame closing either direction of a stream.
END_FRAME = (0).to_bytes(4, "big")


def stream_header(fmt: str) -> bytes:
    """Encode the 8-byte stream opener for ``fmt`` (zlib/gzip)."""
    if fmt not in FORMATS:
        raise ServeProtocolError(
            f"unknown stream format {fmt!r} (want one of "
            f"{sorted(FORMATS)})"
        )
    return MAGIC + bytes([VERSION, FORMATS[fmt], 0, 0])


def parse_stream_header(header: bytes) -> str:
    """Decode a stream opener; returns the format name."""
    if len(header) != STREAM_HEADER_SIZE or header[:4] != MAGIC:
        raise ServeProtocolError("missing LZR1 stream magic")
    if header[4] != VERSION:
        raise ServeProtocolError(
            f"unsupported protocol version {header[4]}"
        )
    fmt = FORMAT_NAMES.get(header[5])
    if fmt is None:
        raise ServeProtocolError(f"unknown format byte {header[5]}")
    return fmt


def encode_frame(payload: bytes) -> bytes:
    """Frame ``payload`` with its 4-byte big-endian length prefix."""
    if len(payload) > MAX_FRAME:
        raise ServeProtocolError(
            f"frame of {len(payload)} bytes exceeds MAX_FRAME"
        )
    return len(payload).to_bytes(4, "big") + payload


async def read_stream_header(reader: asyncio.StreamReader) -> str:
    """Read and decode the stream opener from ``reader``."""
    try:
        header = await reader.readexactly(STREAM_HEADER_SIZE)
    except asyncio.IncompleteReadError as exc:
        raise ServeProtocolError(
            "connection closed before the stream header"
        ) from exc
    return parse_stream_header(header)


async def read_frame(reader: asyncio.StreamReader) -> bytes:
    """Read one frame; returns ``b""`` for the end-of-stream frame."""
    try:
        prefix = await reader.readexactly(4)
    except asyncio.IncompleteReadError as exc:
        raise ServeProtocolError(
            "connection closed mid-stream (no end frame)"
        ) from exc
    length = int.from_bytes(prefix, "big")
    if length == 0:
        return b""
    if length > MAX_FRAME:
        raise ServeProtocolError(
            f"frame of {length} bytes exceeds MAX_FRAME"
        )
    try:
        return await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise ServeProtocolError(
            "connection closed inside a frame payload"
        ) from exc
