"""The asyncio compression service: zlib/gzip offload over one warm pool.

The deployment shape the warm pool exists for: a long-lived process
accepts connections, each carrying one compression stream (LZR1
framing, :mod:`repro.serve.protocol`), and every connection's shards
run on the **same** :class:`~repro.parallel.pool.WarmPool` — workers
fork once at startup (or on the first stream) and are shared by all
connections for the life of the server, with shard payloads riding
shared memory. Concurrency is per-connection bounded (the session's
in-flight latch) and globally bounded by the pool's worker count; the
event loop only ever shuttles bytes and awaits futures.

A crashed shard worker surfaces as a truncated response (no end frame),
never a hang: the pool translates the breakage to
:class:`~repro.errors.ConfigError`, the session latches failed, the
connection closes, and the pool respawns workers for the next stream.
"""

from __future__ import annotations

import asyncio
from typing import Optional

from repro.errors import ConfigError, ReproError, ServeProtocolError
from repro.parallel.engine import ShardedCompressor
from repro.parallel.pool import WarmPool, get_default_pool
from repro.serve.pipeline import StreamSession
from repro.serve.protocol import (
    END_FRAME,
    encode_frame,
    read_frame,
    read_stream_header,
)
from repro.serve.stats import ServeStats

#: Serving shard size: 256 KiB. Small enough that typical request
#: bodies still fan out across workers, large enough that per-shard
#: framing and pool dispatch stay noise.
DEFAULT_SERVE_SHARD_SIZE = 256 * 1024


class CompressionService:
    """A shared-pool compression server (one stream per connection).

    ``pool=`` injects a caller-owned warm pool; by default the service
    borrows the process-wide default pool for ``workers``. All other
    keyword arguments configure the per-stream compression exactly like
    :class:`~repro.parallel.engine.ShardedCompressor` (profiles,
    strategy, backend routing, ...); ``carry_window`` defaults to True
    here — a served stream is one document, so cross-shard matches are
    pure ratio win.
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        pool: Optional[WarmPool] = None,
        shard_size: Optional[int] = None,
        max_inflight: Optional[int] = None,
        carry_window: bool = True,
        **config_kwargs,
    ) -> None:
        self.pool = pool or get_default_pool(workers)
        self.config = ShardedCompressor(
            workers=self.pool.workers,
            shard_size=(DEFAULT_SERVE_SHARD_SIZE if shard_size is None
                        else shard_size),
            carry_window=carry_window,
            pool=self.pool,
            **config_kwargs,
        )
        self.max_inflight = max_inflight
        self.stats = ServeStats()
        self._server: Optional[asyncio.AbstractServer] = None

    # -- connection handling -----------------------------------------

    async def handle_connection(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        """Serve one LZR1 stream, then close the connection."""
        self.stats.note_open()
        session: Optional[StreamSession] = None

        async def emit(data: bytes) -> None:
            writer.write(encode_frame(data))
            # Transport backpressure: a slow reader slows its own
            # stream (and only its own) instead of growing the buffer.
            await writer.drain()

        try:
            fmt = await read_stream_header(reader)
            session = StreamSession(
                self.config, self.pool, emit, fmt=fmt,
                max_inflight=self.max_inflight,
            )
            while True:
                payload = await read_frame(reader)
                if payload == b"":
                    break
                await session.feed(payload)
            pstats = await session.finish()
            writer.write(END_FRAME
                         + session.total_in.to_bytes(8, "big"))
            await writer.drain()
            self.stats.note_stream(pstats, pstats.wall_s,
                                   session.total_in, session.total_out)
        except ServeProtocolError:
            self.stats.protocol_errors += 1
        except ConfigError:
            # Shard worker died (or config rejected mid-stream): the
            # client sees a truncated response — no end frame — so the
            # failure is observable on the wire, and the pool respawns
            # for the next connection.
            self.stats.worker_failures += 1
        except (ConnectionError, asyncio.IncompleteReadError,
                ReproError):
            self.stats.protocol_errors += 1
        finally:
            if session is not None and not session.failed:
                session.abandon()
            self.stats.note_close()
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    # -- lifecycle ---------------------------------------------------

    async def start(self, host: str = "127.0.0.1",
                    port: int = 0) -> asyncio.AbstractServer:
        """Bind and start accepting connections; returns the server.

        ``port=0`` binds an ephemeral port — read it back from
        :attr:`port` (the load generator and tests do).
        """
        self._server = await asyncio.start_server(
            self.handle_connection, host, port
        )
        return self._server

    @property
    def port(self) -> int:
        """The bound TCP port (after :meth:`start`)."""
        if self._server is None:
            raise ConfigError("service not started")
        return self._server.sockets[0].getsockname()[1]

    async def close(self) -> None:
        """Stop accepting and close the listener (pool stays up)."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None


async def serve(
    host: str = "127.0.0.1",
    port: int = 9123,
    workers: Optional[int] = None,
    **kwargs,
) -> None:
    """Run a compression service until cancelled (the CLI entry path)."""
    service = CompressionService(workers=workers, **kwargs)
    server = await service.start(host, port)
    async with server:
        await server.serve_forever()
