"""Minimal LZR1 client: stream chunks up, collect the compressed stream.

Sender and receiver run concurrently on purpose — the server emits
compressed frames *while* input is still arriving (that is the whole
point of the streaming pipeline), so a client that wrote everything
before reading anything would deadlock both sides' flow control on
large streams.
"""

from __future__ import annotations

import asyncio
from typing import Iterable, Tuple

from repro.errors import ServeProtocolError
from repro.serve.protocol import (
    END_FRAME,
    encode_frame,
    read_frame,
    stream_header,
)


async def compress_stream(
    host: str,
    port: int,
    chunks: Iterable[bytes],
    fmt: str = "zlib",
) -> Tuple[bytes, int]:
    """Send ``chunks`` to the service; returns ``(compressed, total_in)``.

    ``total_in`` is the byte count the *server* reports having consumed
    (the trailer of the response) — callers compare it against what
    they sent as an end-to-end sanity check. A server-side failure
    shows up as a truncated response (no end frame) and raises
    :class:`~repro.errors.ServeProtocolError`.
    """
    reader, writer = await asyncio.open_connection(host, port)
    try:
        async def sender() -> None:
            writer.write(stream_header(fmt))
            for chunk in chunks:
                if chunk:
                    writer.write(encode_frame(bytes(chunk)))
                    await writer.drain()
            writer.write(END_FRAME)
            await writer.drain()

        async def receiver() -> Tuple[bytes, int]:
            parts = []
            while True:
                frame = await read_frame(reader)
                if frame == b"":
                    break
                parts.append(frame)
            try:
                trailer = await reader.readexactly(8)
            except asyncio.IncompleteReadError as exc:
                raise ServeProtocolError(
                    "response ended without the byte-count trailer"
                ) from exc
            return b"".join(parts), int.from_bytes(trailer, "big")

        _, received = await asyncio.gather(sender(), receiver())
        return received
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass


def compress_bytes(
    host: str,
    port: int,
    data: bytes,
    chunk_size: int = 64 * 1024,
    fmt: str = "zlib",
) -> bytes:
    """Synchronous convenience: compress one buffer via the service."""
    chunks = [data[i:i + chunk_size]
              for i in range(0, len(data), chunk_size)]
    compressed, total_in = asyncio.run(
        compress_stream(host, port, chunks, fmt=fmt)
    )
    if total_in != len(data):
        raise ServeProtocolError(
            f"server consumed {total_in} bytes, sent {len(data)}"
        )
    return compressed
