"""32-bit word stream packing, modelling the hardware stream interfaces.

The paper's compressor "consumes 32-bit words (LSBF/MSBF format can be
selected) and produces ... a stream of packed 32-bit words" (§IV). These
helpers convert between byte streams and 32-bit word streams in either
byte order, and are used by the hardware fill model and the pipelined
Huffman encoder model.
"""

from __future__ import annotations

import enum
from typing import Iterable, List

from repro.errors import ConfigError


class ByteOrder(enum.Enum):
    """Byte order of a 32-bit stream word.

    ``LSBF``: the first byte of the stream occupies bits [7:0] of the word.
    ``MSBF``: the first byte of the stream occupies bits [31:24].
    """

    LSBF = "lsbf"
    MSBF = "msbf"


WORD_BYTES = 4


class WordPacker:
    """Packs a byte stream into 32-bit words.

    The final word, if partial, is zero-padded in the unused byte lanes;
    :attr:`valid_bytes_last` records how many lanes of the last word carry
    data (the hardware signals this out-of-band on its handshake bus).
    """

    def __init__(self, order: ByteOrder = ByteOrder.LSBF) -> None:
        if not isinstance(order, ByteOrder):
            raise ConfigError(f"invalid byte order: {order!r}")
        self.order = order
        self._pending = bytearray()
        self._words: List[int] = []
        self.valid_bytes_last = 0

    def push(self, data: bytes) -> None:
        """Append bytes to the stream."""
        self._pending.extend(data)
        while len(self._pending) >= WORD_BYTES:
            chunk = bytes(self._pending[:WORD_BYTES])
            del self._pending[:WORD_BYTES]
            self._words.append(self._pack_word(chunk))

    def finish(self) -> List[int]:
        """Flush any partial word and return the full word list."""
        if self._pending:
            self.valid_bytes_last = len(self._pending)
            chunk = bytes(self._pending) + b"\x00" * (
                WORD_BYTES - len(self._pending)
            )
            self._pending.clear()
            self._words.append(self._pack_word(chunk))
        elif self._words:
            self.valid_bytes_last = WORD_BYTES
        return list(self._words)

    def _pack_word(self, chunk: bytes) -> int:
        if self.order is ByteOrder.LSBF:
            return int.from_bytes(chunk, "little")
        return int.from_bytes(chunk, "big")


class WordUnpacker:
    """Unpacks a 32-bit word stream back into bytes."""

    def __init__(self, order: ByteOrder = ByteOrder.LSBF) -> None:
        if not isinstance(order, ByteOrder):
            raise ConfigError(f"invalid byte order: {order!r}")
        self.order = order

    def unpack(self, words: Iterable[int], total_bytes: int) -> bytes:
        """Convert ``words`` into exactly ``total_bytes`` bytes.

        ``total_bytes`` trims the padding lanes of a final partial word.
        """
        out = bytearray()
        for word in words:
            if not 0 <= word < (1 << 32):
                raise ConfigError(f"word out of 32-bit range: {word:#x}")
            if self.order is ByteOrder.LSBF:
                out.extend(word.to_bytes(WORD_BYTES, "little"))
            else:
                out.extend(word.to_bytes(WORD_BYTES, "big"))
        if total_bytes > len(out):
            raise ConfigError(
                f"requested {total_bytes} bytes from a "
                f"{len(out)}-byte word stream"
            )
        return bytes(out[:total_bytes])


def pack_words(data: bytes, order: ByteOrder = ByteOrder.LSBF) -> List[int]:
    """One-shot helper: pack ``data`` into 32-bit words."""
    packer = WordPacker(order)
    packer.push(data)
    return packer.finish()


def unpack_words(
    words: Iterable[int], total_bytes: int, order: ByteOrder = ByteOrder.LSBF
) -> bytes:
    """One-shot helper: unpack 32-bit ``words`` into ``total_bytes`` bytes."""
    return WordUnpacker(order).unpack(words, total_bytes)
