"""LSB-first bit reader used to parse Deflate streams."""

from __future__ import annotations

from repro.errors import BitstreamError


class BitReader:
    """Reads bits LSB-first from a byte string.

    The reader keeps a small integer bit buffer refilled from the input a
    byte at a time, matching the classic inflate inner loop. It tracks its
    position so callers can detect trailing garbage or resume at a byte
    boundary (needed for Deflate *stored* blocks).
    """

    def __init__(self, data: bytes) -> None:
        self._data = bytes(data)
        self._pos = 0          # next byte index to load into the bit buffer
        self._bitbuf = 0
        self._bitcount = 0

    @property
    def bits_consumed(self) -> int:
        """Total number of bits consumed from the input so far."""
        return self._pos * 8 - self._bitcount

    @property
    def exhausted(self) -> bool:
        """True when no unread bits remain."""
        return self._bitcount == 0 and self._pos >= len(self._data)

    def read_bits(self, nbits: int) -> int:
        """Read ``nbits`` bits, LSB first. Raises at end of input."""
        if nbits < 0:
            raise BitstreamError(f"negative bit count: {nbits}")
        while self._bitcount < nbits:
            if self._pos >= len(self._data):
                raise BitstreamError("unexpected end of bitstream")
            self._bitbuf |= self._data[self._pos] << self._bitcount
            self._pos += 1
            self._bitcount += 8
        value = self._bitbuf & ((1 << nbits) - 1)
        self._bitbuf >>= nbits
        self._bitcount -= nbits
        return value

    def peek_bits(self, nbits: int) -> int:
        """Return up to ``nbits`` upcoming bits without consuming them.

        Unlike :meth:`read_bits`, running off the end of the input pads
        with zero bits — this is how table-driven inflate decoders peek a
        full window near the end of the stream.
        """
        if self._bitcount < nbits:
            self.refill(nbits)
        return self._bitbuf & ((1 << nbits) - 1)

    def refill(self, nbits: int) -> None:
        """Top up the bit buffer to at least ``nbits`` available bits.

        Loads the input a 64-bit *word* at a time instead of byte by
        byte — the software analogue of the paper's 32-bit stream
        interface, and the refill strategy the fast inflate loop relies
        on (one ``int.from_bytes`` per iteration instead of up to eight
        byte loads). Stops silently at end of input: like
        :meth:`peek_bits`, the caller observes zero-padding and detects
        overrun from its own bit accounting.
        """
        data, pos = self._data, self._pos
        while self._bitcount < nbits:
            chunk = data[pos:pos + 8]
            if not chunk:
                break
            self._bitbuf |= int.from_bytes(chunk, "little") << self._bitcount
            pos += len(chunk)
            self._bitcount += len(chunk) << 3
        self._pos = pos

    def load_state(self):
        """Expose ``(data, pos, bitbuf, bitcount)`` for an inlined loop.

        The fast inflate path hoists the reader state into function
        locals (the classic zlib ``LOAD``/``RESTORE`` macro pair);
        :meth:`save_state` writes the locals back before control leaves
        the loop (end of block, stored-block handoff).
        """
        return self._data, self._pos, self._bitbuf, self._bitcount

    def save_state(self, pos: int, bitbuf: int, bitcount: int) -> None:
        """Inverse of :meth:`load_state` (see there)."""
        if bitcount < 0:
            raise BitstreamError("unexpected end of bitstream")
        self._pos = pos
        self._bitbuf = bitbuf
        self._bitcount = bitcount

    def skip_bits(self, nbits: int) -> None:
        """Consume ``nbits`` bits previously seen via :meth:`peek_bits`."""
        if nbits > self._bitcount:
            raise BitstreamError("skip past end of bitstream")
        self._bitbuf >>= nbits
        self._bitcount -= nbits

    def align_to_byte(self) -> None:
        """Discard bits up to the next byte boundary."""
        discard = self._bitcount % 8
        self._bitbuf >>= discard
        self._bitcount -= discard

    def read_bytes(self, count: int) -> bytes:
        """Read ``count`` raw bytes; requires byte alignment."""
        if self._bitcount % 8:
            raise BitstreamError(
                "read_bytes requires byte alignment "
                f"({self._bitcount % 8} bits pending)"
            )
        out = bytearray()
        while self._bitcount and count:
            out.append(self._bitbuf & 0xFF)
            self._bitbuf >>= 8
            self._bitcount -= 8
            count -= 1
        if count:
            if self._pos + count > len(self._data):
                raise BitstreamError("unexpected end of bitstream")
            out.extend(self._data[self._pos:self._pos + count])
            self._pos += count
        return bytes(out)
