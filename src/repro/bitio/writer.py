"""LSB-first bit writer used to emit Deflate streams.

The writer accumulates bits into an integer *bit buffer* and flushes full
bytes into a :class:`bytearray`. This mirrors how both ZLib and the
paper's pipelined Huffman encoder assemble their output words: new bits
are appended above the existing ones, and whole bytes leave from the
bottom.
"""

from __future__ import annotations

from repro.errors import BitstreamError


class BitWriter:
    """Accumulates bits LSB-first and yields a growing byte string.

    Example
    -------
    >>> w = BitWriter()
    >>> w.write_bits(0b1, 1)
    >>> w.write_bits(0b01, 2)   # stream so far (LSB first): 1, 1, 0
    >>> w.align_to_byte()
    >>> bytes(w.getvalue())
    b'\\x03'
    """

    def __init__(self) -> None:
        self._out = bytearray()
        self._bitbuf = 0
        self._bitcount = 0

    def __len__(self) -> int:
        """Number of *complete* bytes emitted so far."""
        return len(self._out)

    @property
    def bit_length(self) -> int:
        """Total number of bits written (including unflushed ones)."""
        return len(self._out) * 8 + self._bitcount

    def write_bits(self, value: int, nbits: int) -> None:
        """Append the low ``nbits`` bits of ``value``, LSB first.

        ``nbits`` may be 0 (a no-op). ``value`` must fit in ``nbits`` bits;
        a value with stray high bits would silently corrupt the stream, so
        it is rejected.
        """
        if nbits < 0:
            raise BitstreamError(f"negative bit count: {nbits}")
        if value < 0 or value >> nbits:
            raise BitstreamError(
                f"value {value:#x} does not fit in {nbits} bits"
            )
        self._bitbuf |= value << self._bitcount
        self._bitcount += nbits
        while self._bitcount >= 8:
            self._out.append(self._bitbuf & 0xFF)
            self._bitbuf >>= 8
            self._bitcount -= 8

    def write_bits_unchecked(self, value: int, nbits: int) -> None:
        """Append bits without range validation.

        For trusted callers only (the fused emission tables, whose
        entries are validated once at construction). A ``value`` with
        stray bits above ``nbits`` would corrupt the stream silently —
        that is the contract the validation in :meth:`write_bits` exists
        to enforce for everyone else.
        """
        self._bitbuf |= value << self._bitcount
        self._bitcount += nbits
        while self._bitcount >= 8:
            self._out.append(self._bitbuf & 0xFF)
            self._bitbuf >>= 8
            self._bitcount -= 8

    def extend_fused(self, bitbuf: int, bitcount: int) -> None:
        """Merge an externally accumulated LSB-first bit run, batched.

        ``bitbuf`` holds ``bitcount`` bits in the same orientation as
        the internal buffer (new bits above old). The whole run is
        spliced above the pending bits and every complete byte is
        flushed in one ``int.to_bytes`` call instead of byte-at-a-time —
        the batched flush the fused block emitters rely on.
        """
        bitbuf = (bitbuf << self._bitcount) | self._bitbuf
        bitcount += self._bitcount
        nbytes = bitcount >> 3
        if nbytes:
            self._out += (
                bitbuf & ((1 << (nbytes << 3)) - 1)
            ).to_bytes(nbytes, "little")
            bitbuf >>= nbytes << 3
        self._bitbuf = bitbuf
        self._bitcount = bitcount & 7

    def write_huffman_code(self, code: int, nbits: int) -> None:
        """Append a Huffman code of ``nbits`` bits.

        Deflate stores Huffman codes most-significant-bit first while
        everything else is LSB-first, so the code's bits are reversed
        before being written.
        """
        self.write_bits(_reverse_bits(code, nbits), nbits)

    def align_to_byte(self) -> None:
        """Pad with zero bits up to the next byte boundary."""
        if self._bitcount:
            self._out.append(self._bitbuf & 0xFF)
            self._bitbuf = 0
            self._bitcount = 0

    def write_bytes(self, data: bytes) -> None:
        """Append raw bytes; the stream must be byte-aligned."""
        if self._bitcount:
            raise BitstreamError(
                "write_bytes requires byte alignment "
                f"({self._bitcount} bits pending)"
            )
        self._out.extend(data)

    def getvalue(self) -> bytes:
        """Return the complete bytes emitted so far (excludes partial byte)."""
        return bytes(self._out)

    def pending(self) -> "tuple[int, int]":
        """The partial byte in flight, as ``(bits, nbits)`` with nbits 0-7.

        Lets a caller snapshot a bit stream mid-byte — the batch emitter
        renders a shared table transmission once, then splices its
        completed bytes *and* this tail into every payload's stream.
        """
        return self._bitbuf, self._bitcount

    def take_bytes(self) -> bytes:
        """Return *and remove* the completed bytes, keeping pending bits.

        Used by streaming encoders to drain finalised output while a
        partial byte is still accumulating.
        """
        out = bytes(self._out)
        self._out.clear()
        return out

    def flush(self) -> bytes:
        """Byte-align and return the final stream."""
        self.align_to_byte()
        return bytes(self._out)


def _reverse_bits(value: int, nbits: int) -> int:
    """Reverse the low ``nbits`` bits of ``value``."""
    result = 0
    for _ in range(nbits):
        result = (result << 1) | (value & 1)
        value >>= 1
    return result


def reverse_bits(value: int, nbits: int) -> int:
    """Public bit-reversal helper (used by Huffman table builders)."""
    if value < 0 or (nbits and value >> nbits):
        raise BitstreamError(f"value {value:#x} does not fit in {nbits} bits")
    return _reverse_bits(value, nbits)
