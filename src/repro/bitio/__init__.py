"""Bit-level I/O primitives.

Deflate (RFC 1951) packs bits LSB-first within each byte: the first bit
written goes into the least-significant bit of the first output byte.
Huffman *codes*, however, are packed starting from the most-significant
bit of the code — :meth:`BitWriter.write_huffman_code` handles the
reversal.

The hardware described in the paper exchanges data as 32-bit words whose
byte order (LSB-first / MSB-first) is selectable; :mod:`repro.bitio.wordio`
models that interface.
"""

from repro.bitio.reader import BitReader
from repro.bitio.writer import BitWriter
from repro.bitio.wordio import WordPacker, WordUnpacker, ByteOrder

__all__ = [
    "BitReader",
    "BitWriter",
    "WordPacker",
    "WordUnpacker",
    "ByteOrder",
]
