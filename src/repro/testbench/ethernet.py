"""Ethernet host link model.

The ML-507's tri-mode MAC moves test data between the PC and DDR2. The
paper *excludes* this time from the measured compression speed; the
model exists so the end-to-end examples can report realistic session
times and so tests can assert the exclusion actually matters.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError


@dataclass(frozen=True)
class EthernetTiming:
    """Transfer timing for one direction."""

    payload_bytes: int
    wire_s: float

    @property
    def effective_mbps(self) -> float:
        if self.wire_s == 0:
            return 0.0
        return self.payload_bytes / 1e6 / self.wire_s


class EthernetLink:
    """Gigabit link with protocol overhead."""

    def __init__(
        self,
        link_mbit: float = 1000.0,
        efficiency: float = 0.75,  # TCP/IP + lwIP stack on the PPC
    ) -> None:
        if not 0 < efficiency <= 1:
            raise ConfigError(f"efficiency must be in (0, 1]: {efficiency}")
        if link_mbit <= 0:
            raise ConfigError(f"link_mbit must be positive: {link_mbit}")
        self.link_mbit = link_mbit
        self.efficiency = efficiency

    @property
    def goodput_mbps(self) -> float:
        """Usable payload bandwidth in MB/s."""
        return self.link_mbit / 8 * self.efficiency

    def transfer(self, payload_bytes: int) -> EthernetTiming:
        """Time to move ``payload_bytes`` over the link."""
        return EthernetTiming(
            payload_bytes=payload_bytes,
            wire_s=payload_bytes / 1e6 / self.goodput_mbps,
        )
