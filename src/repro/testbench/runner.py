"""Table I regeneration: software vs hardware on Wiki and X2E data.

The paper runs 10 MB and 50 MB fragments of each data set through both
implementations "to factor out DMA setup time". We measure cycles/byte
on a generated sample and extrapolate to the paper's fragment sizes —
legitimate because both models are linear in the input once the sample
is large enough for the statistics to converge (verified by tests).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.hw.params import HardwareParams
from repro.testbench.board import ML507Board
from repro.workloads.corpus import sample

#: The paper's fragment sizes.
FRAGMENT_SIZES_MB = (50, 10)


@dataclass
class PerformanceRow:
    """One row of Table I."""

    data_sample: str
    sw_mbps: float
    hw_mbps: float
    speedup: float
    ratio: float

    def format(self) -> str:
        return (
            f"{self.data_sample:<12s} {self.sw_mbps:>8.2f} "
            f"{self.hw_mbps:>8.1f} {self.speedup:>7.1f}x {self.ratio:>6.2f}"
        )


def run_performance_comparison(
    sample_bytes: int | None = None,
    hw_params: HardwareParams | None = None,
    workloads: Sequence[str] = ("wiki", "x2e"),
) -> List[PerformanceRow]:
    """Regenerate Table I's four rows.

    ``sample_bytes`` sets the measured sample size (defaults to the
    corpus default); rows are extrapolated to 50 MB and 10 MB.
    """
    board = ML507Board(hw_params=hw_params)
    rows: List[PerformanceRow] = []
    for name in workloads:
        data = sample(name, sample_bytes)
        for size_mb in FRAGMENT_SIZES_MB:
            modeled = size_mb * 1000 * 1000
            hw_run, _ = board.run_hardware(data, modeled_bytes=modeled)
            sw_run, _ = board.run_software(data, modeled_bytes=modeled)
            rows.append(
                PerformanceRow(
                    data_sample=f"{name.capitalize()} {size_mb}MB",
                    sw_mbps=sw_run.speed_mbps,
                    hw_mbps=hw_run.speed_mbps,
                    speedup=hw_run.speed_mbps / sw_run.speed_mbps,
                    ratio=hw_run.ratio,
                )
            )
    return rows


def format_table(rows: List[PerformanceRow]) -> str:
    """Render rows in the paper's Table I layout."""
    header = (
        f"{'Data sample':<12s} {'SW MB/s':>8s} {'HW MB/s':>8s} "
        f"{'Speedup':>8s} {'Ratio':>6s}"
    )
    return "\n".join([header] + [row.format() for row in rows])
