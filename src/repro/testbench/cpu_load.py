"""CPU offload accounting — §V's parallelism claim, quantified.

"Additionally to the 15-20x performance increase, the use of the DMA
engine to transfer the data between the DRAM and the hardware
compressor allows running high-level tasks on the CPU in parallel with
the compression."

For a given logging duty (bytes per second of wall time), this model
compares what fraction of the PowerPC the two integration styles burn:

* **software path** — the CPU runs deflate itself: busy time is the
  modelled compression time;
* **hardware path** — the CPU only programs DMA descriptors and handles
  completion interrupts; compression proper runs in fabric.

The headroom difference is the paper's real selling point for the
logging use case: at stream rates where the software path saturates the
core outright, the hardware path leaves it essentially idle.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.hw.compressor import HardwareCompressor
from repro.hw.params import HardwareParams
from repro.swmodel.zlib_cost import SoftwareBaseline
from repro.testbench.dma import DMAEngine

#: CPU cycles to service one DMA completion interrupt (context switch +
#: handler + descriptor recycling) on the PowerPC.
IRQ_CYCLES = 2500
#: CPU cycles to build and post one DMA descriptor.
DESCRIPTOR_CYCLES = 400


@dataclass
class CPULoadReport:
    """CPU utilisation of one integration style at one stream rate."""

    label: str
    stream_mbps: float
    cpu_busy_fraction: float  # of the 400 MHz PowerPC
    compressor_busy_fraction: float  # of the fabric engine (hw only)
    feasible: bool  # the pipeline keeps up with the stream

    def format(self) -> str:
        state = "ok" if self.feasible else "OVERRUN"
        return (
            f"{self.label:<10s} @ {self.stream_mbps:5.1f} MB/s: "
            f"CPU {100 * self.cpu_busy_fraction:6.1f}% busy, "
            f"engine {100 * self.compressor_busy_fraction:5.1f}% "
            f"[{state}]"
        )


class CPULoadModel:
    """Busy-fraction calculator for both integration styles."""

    def __init__(
        self,
        hw_params: HardwareParams | None = None,
        dma: DMAEngine | None = None,
        chunk_bytes: int = 256 * 1024,
    ) -> None:
        if chunk_bytes <= 0:
            raise ConfigError(f"chunk_bytes must be positive: {chunk_bytes}")
        self.hw_params = hw_params or HardwareParams()
        self.dma = dma or DMAEngine()
        self.chunk_bytes = chunk_bytes
        self._hw = HardwareCompressor(self.hw_params)
        self._sw = SoftwareBaseline(
            window_size=self.hw_params.window_size,
            hash_bits=self.hw_params.hash_bits,
            policy=self.hw_params.policy,
        )

    def _calibrate(self, data: bytes) -> tuple:
        hw_run = self._hw.run(data)
        sw_run = self._sw.run(data)
        return hw_run.stats.cycles_per_byte, sw_run.cycles_per_byte

    def software_path(
        self, data: bytes, stream_mbps: float
    ) -> CPULoadReport:
        """CPU runs ZLib itself."""
        _, sw_cpb = self._calibrate(data)
        cpu_hz = self._sw.cpu.clock_mhz * 1e6
        bytes_per_s = stream_mbps * 1e6
        busy = bytes_per_s * sw_cpb / cpu_hz
        return CPULoadReport(
            label="software",
            stream_mbps=stream_mbps,
            cpu_busy_fraction=busy,
            compressor_busy_fraction=0.0,
            feasible=busy <= 1.0,
        )

    def hardware_path(
        self, data: bytes, stream_mbps: float
    ) -> CPULoadReport:
        """CPU only drives the DMA engine; fabric compresses."""
        hw_cpb, _ = self._calibrate(data)
        cpu_hz = self._sw.cpu.clock_mhz * 1e6
        engine_hz = self.hw_params.clock_mhz * 1e6
        bytes_per_s = stream_mbps * 1e6

        chunks_per_s = bytes_per_s / self.chunk_bytes
        descriptors_per_chunk = -(-self.chunk_bytes
                                  // self.dma.descriptor_bytes)
        cpu_cycles_per_s = chunks_per_s * (
            IRQ_CYCLES + descriptors_per_chunk * DESCRIPTOR_CYCLES
        )
        engine_busy = bytes_per_s * hw_cpb / engine_hz
        return CPULoadReport(
            label="hardware",
            stream_mbps=stream_mbps,
            cpu_busy_fraction=cpu_cycles_per_s / cpu_hz,
            compressor_busy_fraction=engine_busy,
            feasible=engine_busy <= 1.0,
        )

    def max_stream_mbps(self, data: bytes) -> dict:
        """Highest sustainable stream rate per integration style."""
        hw_cpb, sw_cpb = self._calibrate(data)
        return {
            "software": self._sw.cpu.clock_mhz / sw_cpb,
            "hardware": self.hw_params.clock_mhz / hw_cpb,
        }
