"""ML-507 board testbench model (§V).

"Our test system is the ML-507 development board based on a Virtex-5
FPGA. We have developed a testbench that receives a data block from the
PC over Ethernet, stores it in the DDR2 memory, compresses it and sends
the result back. The compression time includes the DMA setup times, but
excludes Ethernet transmission time."

This package models that measurement setup: a DDR2-backed buffer, a
LocalLink DMA engine with explicit setup costs, the Ethernet host link
(modelled but excluded from the timed region, as in the paper), the
400 MHz PowerPC running the software baseline, and the 100 MHz hardware
compressor. :func:`run_performance_comparison` regenerates Table I.
"""

from repro.testbench.dma import DMAEngine, DMATransfer
from repro.testbench.ethernet import EthernetLink
from repro.testbench.board import ML507Board
from repro.testbench.runner import (
    PerformanceRow,
    run_performance_comparison,
)

__all__ = [
    "DMAEngine",
    "DMATransfer",
    "EthernetLink",
    "ML507Board",
    "PerformanceRow",
    "run_performance_comparison",
]
