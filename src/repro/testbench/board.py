"""ML-507 board model: DDR2, DMA, Ethernet, CPU and compressor.

Wires the sub-models into the paper's measurement flow: host → Ethernet
→ DDR2 → (DMA → hardware compressor | PowerPC software ZLib) → DDR2 →
Ethernet → host, with the timed region spanning DMA setup + compression
only.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.hw.compressor import HardwareCompressor, HardwareRunResult
from repro.hw.params import HardwareParams
from repro.swmodel.zlib_cost import SoftwareBaseline, SoftwareRunResult
from repro.testbench.dma import DMAEngine
from repro.testbench.ethernet import EthernetLink

#: ML-507 DDR2 SODIMM capacity.
DDR2_BYTES = 256 * 1024 * 1024


@dataclass
class TimedRun:
    """One timed compression run on the board."""

    label: str
    payload_bytes: int
    compression_s: float    # timed region: DMA setup + compression
    session_s: float        # + Ethernet both ways (not timed in paper)
    compressed_bytes: int

    @property
    def speed_mbps(self) -> float:
        """The paper's reported metric (timed region only)."""
        if self.compression_s == 0:
            return 0.0
        return self.payload_bytes / 1e6 / self.compression_s

    @property
    def ratio(self) -> float:
        if self.compressed_bytes == 0:
            return 0.0
        return self.payload_bytes / self.compressed_bytes


class ML507Board:
    """The complete test system."""

    def __init__(
        self,
        hw_params: HardwareParams | None = None,
        sw_level: int | None = None,
        dma: DMAEngine | None = None,
        ethernet: EthernetLink | None = None,
    ) -> None:
        self.hw_params = hw_params or HardwareParams()
        self.hw = HardwareCompressor(self.hw_params)
        # The paper states "parameters, input and output streams were
        # equal": by default the software run uses the hardware's exact
        # policy so both sides emit identical streams. ``sw_level``
        # switches the software side to a standard ZLib level instead.
        self.sw = SoftwareBaseline(
            window_size=self.hw_params.window_size,
            hash_bits=self.hw_params.hash_bits,
            policy=None if sw_level is not None else self.hw_params.policy,
            level=sw_level if sw_level is not None else 1,
        )
        self.dma = dma or DMAEngine()
        self.ethernet = ethernet or EthernetLink()

    def _check_capacity(self, payload_bytes: int) -> None:
        if payload_bytes > DDR2_BYTES:
            raise ConfigError(
                f"payload of {payload_bytes} bytes exceeds the board's "
                f"{DDR2_BYTES}-byte DDR2"
            )

    def run_hardware(
        self, data: bytes, modeled_bytes: int | None = None
    ) -> tuple:
        """Hardware path: DMA setup + streaming through the compressor.

        ``modeled_bytes`` extrapolates the measured cycles/byte to a
        larger payload (the paper's 10/50 MB fragments) without
        simulating every byte; ``None`` times the actual sample.
        """
        size = modeled_bytes or len(data)
        self._check_capacity(size)
        result: HardwareRunResult = self.hw.run(data)
        cpb = result.stats.cycles_per_byte
        compress_s = size * cpb / (self.hw_params.clock_mhz * 1e6)
        timed = self.dma.setup_time_s(size) + compress_s
        compressed = round(size * result.compressed_size / max(len(data), 1))
        session = (
            timed
            + self.ethernet.transfer(size).wire_s
            + self.ethernet.transfer(compressed).wire_s
        )
        return TimedRun(
            label="hardware",
            payload_bytes=size,
            compression_s=timed,
            session_s=session,
            compressed_bytes=compressed,
        ), result

    def run_software(
        self, data: bytes, modeled_bytes: int | None = None
    ) -> tuple:
        """Software path: ZLib on the PowerPC (no DMA involved)."""
        size = modeled_bytes or len(data)
        self._check_capacity(size)
        result: SoftwareRunResult = self.sw.run(data)
        cpb = result.cycles_per_byte
        timed = size * cpb / (self.sw.cpu.clock_mhz * 1e6)
        compressed = round(size * result.compressed_size / max(len(data), 1))
        session = (
            timed
            + self.ethernet.transfer(size).wire_s
            + self.ethernet.transfer(compressed).wire_s
        )
        return TimedRun(
            label="software",
            payload_bytes=size,
            compression_s=timed,
            session_s=session,
            compressed_bytes=compressed,
        ), result
