"""LocalLink DMA engine model.

The paper's testbench moves data between DDR2 and the compressor with
the Xilinx LocalLink DMA, and its timed region *includes* DMA setup.
Running 10 MB and 50 MB fragments "to factor out DMA setup time"
implies the setup cost is a per-run constant plus a small per-descriptor
term — which is how it is modelled here.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError


@dataclass(frozen=True)
class DMATransfer:
    """Timing of one DMA-driven streaming run."""

    payload_bytes: int
    setup_s: float
    streaming_s: float

    @property
    def total_s(self) -> float:
        return self.setup_s + self.streaming_s

    @property
    def effective_mbps(self) -> float:
        if self.total_s == 0:
            return 0.0
        return self.payload_bytes / 1e6 / self.total_s


class DMAEngine:
    """Descriptor-based scatter-gather DMA cost model."""

    def __init__(
        self,
        setup_us: float = 120.0,        # driver + descriptor ring init
        per_descriptor_us: float = 1.5,  # fetch + completion per chunk
        descriptor_bytes: int = 64 * 1024,
        bandwidth_mbps: float = 400.0,   # PLB/DDR2 streaming ceiling
    ) -> None:
        if descriptor_bytes <= 0:
            raise ConfigError(
                f"descriptor_bytes must be positive: {descriptor_bytes}"
            )
        if bandwidth_mbps <= 0:
            raise ConfigError(
                f"bandwidth_mbps must be positive: {bandwidth_mbps}"
            )
        self.setup_us = setup_us
        self.per_descriptor_us = per_descriptor_us
        self.descriptor_bytes = descriptor_bytes
        self.bandwidth_mbps = bandwidth_mbps

    def setup_time_s(self, payload_bytes: int) -> float:
        """One-time plus per-descriptor setup cost for a payload."""
        descriptors = -(-payload_bytes // self.descriptor_bytes) if (
            payload_bytes
        ) else 0
        return (self.setup_us + descriptors * self.per_descriptor_us) / 1e6

    def transfer(
        self, payload_bytes: int, consumer_mbps: float
    ) -> DMATransfer:
        """Stream ``payload_bytes`` into a consumer of given throughput.

        The streaming phase runs at the slower of the DMA ceiling and
        the consumer (the compressor is always the bottleneck here).
        """
        rate = min(self.bandwidth_mbps, consumer_mbps)
        streaming = payload_bytes / 1e6 / rate if rate > 0 else 0.0
        return DMATransfer(
            payload_bytes=payload_bytes,
            setup_s=self.setup_time_s(payload_bytes),
            streaming_s=streaming,
        )
