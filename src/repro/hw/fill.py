"""Background filling logic model (§IV).

"both ring buffers reside in dual-port block RAMs and are filled in the
background requiring no extra clock cycles of the main FSM. If the hash
caching was enabled, hash values for every offset of the source stream
are computed during background filling and stored in a separate memory."

:class:`FillModel` captures the *bandwidth* contract the analytic cycle
model and the FSM simulator both rely on: the fill port delivers one
``data_bus_bytes``-wide beat per cycle into the lookahead ring (bounded
by its capacity) and trails the dictionary ring by at most
``MIN_LOOKAHEAD`` bytes past the consumption point so that no reachable
candidate is ever overwritten.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.params import HardwareParams
from repro.lzss.tokens import MIN_LOOKAHEAD


@dataclass
class FillState:
    """Progress of the background fill at some cycle count."""

    delivered: int      # bytes written into the lookahead ring
    dict_filled: int    # bytes written into the dictionary ring
    occupancy: int      # unconsumed bytes available to the FSM


class FillModel:
    """Analytic background-fill progress tracker."""

    def __init__(self, params: HardwareParams, total_bytes: int) -> None:
        self.rate = params.data_bus_bytes
        self.capacity = params.lookahead_size
        self.total = total_bytes

    def state_at(self, cycles: int, consumed: int) -> FillState:
        """Fill progress after ``cycles`` with ``consumed`` bytes taken."""
        delivered = min(self.total, cycles * self.rate,
                        consumed + self.capacity)
        dict_filled = min(delivered, consumed + MIN_LOOKAHEAD)
        return FillState(
            delivered=delivered,
            dict_filled=dict_filled,
            occupancy=delivered - consumed,
        )

    def cycles_until(self, target_bytes: int) -> int:
        """Cycles needed for the fill port to deliver ``target_bytes``."""
        target = min(target_bytes, self.total)
        return -(-target // self.rate)

    def stall_cycles(self, cycles: int, consumed: int) -> int:
        """FSM stall needed before ``MIN_LOOKAHEAD`` bytes are available.

        Zero when enough data is buffered, or when the stream has fewer
        bytes left than the threshold (end-of-stream flush).
        """
        needed = min(MIN_LOOKAHEAD, self.total - consumed)
        occupancy = self.state_at(cycles, consumed).occupancy
        if occupancy >= needed:
            return 0
        return -(-(needed - occupancy) // self.rate)
