"""Hardware LZSS decompressor cycle model (related work [10] direction).

The paper cites fast hardware *decompression* (for dynamic FPGA
self-reconfiguration) as an application of the same architecture family.
Decompression is far simpler than compression — no searching — and this
model quantifies it for the same memory architecture:

* a literal command writes 1 byte: 1 cycle;
* a copy command reads the dictionary ring through the same
  ``data_bus_bytes``-wide port and writes through the second port:
  ``1 + ceil((L-1)/W)`` cycles for an L-byte copy (first beat as in the
  compressor's comparator), except **overlapping** copies
  (``distance < W``) which degrade to byte-rate because each output
  byte depends on one just written;
* command fetch is pipelined behind the Huffman decoder (1 command per
  cycle sustained), so it never adds cycles.

This supports the headline observation of [10]: decompression runs
close to the output bandwidth bound, i.e. several times faster than
compression on the same data.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.params import HardwareParams
from repro.lzss.tokens import TokenArray


@dataclass
class DecompressStats:
    """Cycle accounting for one decompression run."""

    output_bytes: int
    commands: int
    literal_cycles: int
    copy_cycles: int
    overlap_copy_cycles: int
    clock_mhz: float = 100.0

    @property
    def total_cycles(self) -> int:
        return (
            self.literal_cycles + self.copy_cycles
            + self.overlap_copy_cycles
        )

    @property
    def cycles_per_byte(self) -> float:
        if self.output_bytes == 0:
            return 0.0
        return self.total_cycles / self.output_bytes

    @property
    def throughput_mbps(self) -> float:
        cpb = self.cycles_per_byte
        if cpb == 0:
            return 0.0
        return self.clock_mhz / cpb


class HardwareDecompressor:
    """Cycle model of an LZSS decompressor on the §IV memory fabric."""

    def __init__(self, params: HardwareParams | None = None) -> None:
        self.params = params or HardwareParams()

    def run(self, tokens: TokenArray) -> DecompressStats:
        """Price the decompression of a token stream."""
        bus = self.params.data_bus_bytes
        literal_cycles = 0
        copy_cycles = 0
        overlap_cycles = 0
        out_bytes = 0
        for length, value in zip(tokens.lengths, tokens.values):
            if length == 0:
                literal_cycles += 1
                out_bytes += 1
            else:
                out_bytes += length
                if value < bus:
                    # Overlapping copy: serialised byte by byte.
                    overlap_cycles += length
                else:
                    copy_cycles += 1 + (length - 1 + bus - 1) // bus
        return DecompressStats(
            output_bytes=out_bytes,
            commands=len(tokens),
            literal_cycles=literal_cycles,
            copy_cycles=copy_cycles,
            overlap_copy_cycles=overlap_cycles,
            clock_mhz=self.params.clock_mhz,
        )
