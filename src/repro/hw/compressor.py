"""Hardware compressor facade: one call = one estimation-tool run.

Combines the functional LZSS core (which decides the *token stream* —
identical to what the RTL would emit, §III/§IV), the analytic cycle
model (which prices it in clock cycles) and the Deflate writer (which
gives the exact ZLib-compatible output size). This mirrors the paper's
C++ model: "compresses reference data blocks and produces various
cycle-accurate statistics".
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.deflate.block_writer import BlockStrategy, deflate_tokens
from repro.deflate.zlib_container import make_header
from repro.checksums.adler32 import adler32
from repro.hw.cycle_model import CycleModel
from repro.hw.params import HardwareParams
from repro.hw.stats import CycleStats
from repro.lzss.compressor import CompressResult, LZSSCompressor


@dataclass
class HardwareRunResult:
    """Everything one hardware-model run reports."""

    params: HardwareParams
    lzss: CompressResult
    stats: CycleStats
    compressed_size: int
    output: bytes | None = None

    @property
    def input_size(self) -> int:
        return self.lzss.input_size

    @property
    def ratio(self) -> float:
        """Uncompressed/compressed ratio (Table I's metric)."""
        if self.compressed_size == 0:
            return 0.0
        return self.input_size / self.compressed_size

    @property
    def throughput_mbps(self) -> float:
        """Modelled throughput at the configured hardware clock."""
        return self.stats.throughput_mbps

    @property
    def compression_time_s(self) -> float:
        """Modelled wall time for this input at the hardware clock."""
        return self.stats.total_cycles / (self.params.clock_mhz * 1e6)


class HardwareCompressor:
    """The paper's compressor under one parameter set."""

    def __init__(self, params: HardwareParams | None = None) -> None:
        self.params = params or HardwareParams()
        self._lzss = LZSSCompressor(
            window_size=self.params.window_size,
            hash_spec=self.params.hash_spec,
            policy=self.params.policy,
        )
        self._cycle_model = CycleModel(self.params)

    def run(self, data: bytes, keep_output: bool = False) -> HardwareRunResult:
        """Compress ``data`` and report size + cycle statistics.

        ``keep_output=True`` additionally materialises the complete
        ZLib stream (header + fixed-Huffman Deflate body + Adler-32);
        by default only its exact size is computed.
        """
        lzss_result = self._lzss.compress(data)
        stats = self._cycle_model.run(lzss_result.trace)
        body = deflate_tokens(lzss_result.tokens, BlockStrategy.FIXED)
        size = len(make_header(self.params.window_size)) + len(body) + 4
        output = None
        if keep_output:
            output = (
                make_header(self.params.window_size)
                + body
                + adler32(data).to_bytes(4, "big")
            )
        return HardwareRunResult(
            params=self.params,
            lzss=lzss_result,
            stats=stats,
            compressed_size=size,
            output=output,
        )

    def run_many(self, segments) -> "SessionResult":
        """Compress a sequence of independent segments (a logger session).

        Each segment is a separate compression (fresh dictionary, own
        ZLib stream, as a burst-oriented logger would store them);
        cycle statistics are merged across the session.
        """
        session = SessionResult(params=self.params,
                                stats=CycleStats(
                                    clock_mhz=self.params.clock_mhz))
        for segment in segments:
            result = self.run(segment)
            session.runs.append(result)
            session.stats.merge(result.stats)
            session.input_bytes += result.input_size
            session.compressed_bytes += result.compressed_size
        return session


@dataclass
class SessionResult:
    """Merged outcome of a multi-segment compression session."""

    params: HardwareParams
    stats: CycleStats
    runs: list = field(default_factory=list)
    input_bytes: int = 0
    compressed_bytes: int = 0

    @property
    def ratio(self) -> float:
        if self.compressed_bytes == 0:
            return 0.0
        return self.input_bytes / self.compressed_bytes

    @property
    def throughput_mbps(self) -> float:
        return self.stats.throughput_mbps

    @property
    def segment_count(self) -> int:
        return len(self.runs)
