"""Explicit FSM simulation through the modelled memories.

Unlike :class:`~repro.hw.cycle_model.CycleModel` (which prices a trace
produced by the fast functional matcher), this simulator *re-derives*
every decision by walking the §IV state machine against the behavioural
memory models of :mod:`repro.hw.memories`:

* candidates come from the head table's truncated generation-bit
  arithmetic and the relative next table — not from ideal absolute
  tables;
* string comparison reads bytes out of the lookahead and dictionary
  ring buffers, so window aliasing would corrupt output immediately;
* the background fill (with its 262-byte dictionary write-ahead margin)
  and the rotation schedule run exactly as the RTL would.

Its contract, enforced by the test suite: **identical token stream** to
:class:`~repro.lzss.compressor.LZSSCompressor` and **identical cycle
statistics** to the analytic model. This is the design-equivalence
argument of the paper (rotation avoidance does not change behaviour)
made executable.
"""

from __future__ import annotations

from typing import Tuple

from repro.errors import ConfigError, SimulationError
from repro.hw.memories import build_memories
from repro.hw.params import HardwareParams
from repro.hw.stats import CycleStats, FSMState
from repro.lzss.tokens import MAX_MATCH, MIN_LOOKAHEAD, MIN_MATCH, TokenArray


class FSMSimulator:
    """Per-token FSM walk over behavioural memories."""

    def __init__(self, params: HardwareParams) -> None:
        if params.data_bus_bytes not in (1, 4):
            raise ConfigError(
                "the FSM simulator supports 1- and 4-byte data buses: "
                f"{params.data_bus_bytes}"
            )
        self.params = params

    def simulate(self, data: bytes) -> Tuple[TokenArray, CycleStats]:
        """Run the FSM over ``data``; returns tokens and cycle stats."""
        p = self.params
        mems = build_memories(p)
        lookahead = mems["lookahead"]
        dictionary = mems["dictionary"]
        hash_cache = mems["hash_cache"]
        head = mems["head"]
        nxt = mems["next"]
        spec = p.hash_spec

        tokens = TokenArray()
        stats = CycleStats(clock_mhz=p.clock_mhz)
        n = len(data)
        stats.input_bytes = n
        if n == 0:
            return tokens, stats

        pol = p.policy
        max_dist = p.window_size - MIN_LOOKAHEAD
        hash_limit = n - MIN_MATCH
        fill_rate = p.data_bus_bytes
        cache_penalty = 0 if p.hash_cache else 1
        rotation_period = p.rotation_period_bytes
        rotation_cycles = p.head_rotation_cycles
        next_rotation_at = rotation_period
        # The [11]-style baseline also rotates the (absolute) next
        # table: D fixup cycles every D bytes. Our behavioural next
        # table is relative, so only the cycles are charged.
        next_table_at = p.window_size if not p.relative_next else None
        wide_bus = p.data_bus_bytes == 4

        delivered = 0      # bytes written into the lookahead ring
        dict_filled = 0    # bytes written into the dictionary ring
        consumed = 0       # bytes the FSM has advanced past
        cycles_so_far = 0

        def advance_fill() -> None:
            """Background fill: lookahead first, dictionary 262 B behind.

            The dictionary write-ahead is capped at
            ``consumed + MIN_LOOKAHEAD`` so a background write can never
            clobber a candidate the matcher may still reach — this is
            the architectural reason ZLib's MAX_DIST margin exists.
            """
            nonlocal delivered, dict_filled
            target = min(n, cycles_so_far * fill_rate,
                         consumed + p.lookahead_size)
            while delivered < target:
                lookahead.write_byte(delivered, data[delivered])
                if delivered >= MIN_MATCH - 1 and p.hash_cache:
                    hpos = delivered - (MIN_MATCH - 1)
                    hash_cache.store(
                        hpos,
                        spec.hash3(data[hpos], data[hpos + 1],
                                   data[hpos + 2]),
                    )
                delivered += 1
            dict_target = min(delivered, consumed + MIN_LOOKAHEAD)
            while dict_filled < dict_target:
                dictionary.write_byte(dict_filled, data[dict_filled])
                dict_filled += 1

        def compare(cand: int, pos: int, limit: int) -> int:
            """Prefix length via ring-buffer reads (the comparator)."""
            k = 0
            while k < limit and (
                dictionary.read_byte(cand + k) == lookahead.read_byte(pos + k)
            ):
                k += 1
            return k

        # Initial fill until MIN_LOOKAHEAD (or whole input) is present.
        startup_target = min(MIN_LOOKAHEAD, n)
        startup_cycles = -(-startup_target // fill_rate)
        stats.add(FSMState.FETCHING_DATA, startup_cycles)
        cycles_so_far += startup_cycles
        advance_fill()

        pos = 0
        prev_was_literal = False
        while pos < n:
            token_cycles = 0

            # WAIT: skipped when the prefetched hash is useful.
            if not (p.hash_prefetch and prev_was_literal):
                stats.add(FSMState.WAITING_FOR_DATA, 1)
                token_cycles += 1

            # FETCH stall against the background fill.
            needed = min(MIN_LOOKAHEAD, n - consumed)
            occupancy = delivered - consumed
            if occupancy < needed:
                stall = -(-(needed - occupancy) // fill_rate)
                stats.add(FSMState.FETCHING_DATA, stall)
                token_cycles += stall
                cycles_so_far += token_cycles
                token_cycles = 0
                advance_fill()

            if pos > hash_limit:
                # Flush tail: literals without a search.
                stats.add(FSMState.FINDING_MATCH, 1 + cache_penalty)
                stats.add(FSMState.PRODUCING_OUTPUT, 1)
                token_cycles += 2 + cache_penalty
                tokens.append_literal(data[pos])
                pos += 1
                consumed = pos
                cycles_so_far += token_cycles
                while consumed >= next_rotation_at:
                    head.rotate(consumed)
                    stats.add(FSMState.ROTATING_HASH, rotation_cycles)
                    cycles_so_far += rotation_cycles
                    next_rotation_at += rotation_period
                if next_table_at is not None:
                    while consumed >= next_table_at:
                        stats.add(FSMState.ROTATING_HASH, p.window_size)
                        cycles_so_far += p.window_size
                        next_table_at += p.window_size
                advance_fill()
                prev_was_literal = True
                continue

            # PREPARE: hash cache read, head lookup, head/next insert.
            if p.hash_cache:
                h = hash_cache.load(pos)
            else:
                h = spec.hash3(data[pos], data[pos + 1], data[pos + 2])
            first_cand = head.lookup(h, pos)
            head.insert(h, pos)
            nxt.link(pos, first_cand)

            # MATCH: walk the chain through the ring buffers.
            finding = 1 + cache_penalty  # the preparation cycle(s)
            limit = min(MAX_MATCH, n - pos)
            best_len = MIN_MATCH - 1
            best_dist = 0
            chain = pol.max_chain
            cand = first_cand
            min_pos = pos - max_dist
            while cand >= min_pos and cand >= 0 and chain > 0:
                chain -= 1
                k = compare(cand, pos, limit)
                examined = k + 1 if k < limit else k
                if wide_bus:
                    finding += 1 + (examined + 2) // 4
                else:
                    finding += examined
                if k > best_len:
                    best_len = k
                    best_dist = pos - cand
                    if k >= pol.nice_length or k >= limit:
                        break
                    if k >= pol.good_length:
                        chain >>= 2
                cand = nxt.follow(cand)
            stats.add(FSMState.FINDING_MATCH, finding)
            token_cycles += finding

            # OUTPUT (prefetch of the next hash runs in parallel).
            stats.add(FSMState.PRODUCING_OUTPUT, 1)
            token_cycles += 1

            if best_len >= MIN_MATCH:
                tokens.append_match(best_len, best_dist)
                if best_len <= pol.max_insert_length:
                    stop = min(pos + best_len, hash_limit + 1)
                    inserted = 0
                    for q in range(pos + 1, stop):
                        if p.hash_cache:
                            hq = hash_cache.load(q)
                        else:
                            hq = spec.hash3(
                                data[q], data[q + 1], data[q + 2]
                            )
                        prev_head = head.lookup(hq, q)
                        head.insert(hq, q)
                        nxt.link(q, prev_head)
                        inserted += 1
                    if inserted:
                        stats.add(FSMState.UPDATING_HASH, inserted)
                        token_cycles += inserted
                pos += best_len
                prev_was_literal = False
            else:
                tokens.append_literal(data[pos])
                pos += 1
                prev_was_literal = True

            consumed = pos
            cycles_so_far += token_cycles

            # ROTATE on schedule (the relative next table never
            # rotates; the absolute-address baseline charges fixups).
            while consumed >= next_rotation_at:
                head.rotate(consumed)
                stats.add(FSMState.ROTATING_HASH, rotation_cycles)
                cycles_so_far += rotation_cycles
                next_rotation_at += rotation_period
            if next_table_at is not None:
                while consumed >= next_table_at:
                    stats.add(FSMState.ROTATING_HASH, p.window_size)
                    cycles_so_far += p.window_size
                    next_table_at += p.window_size

            advance_fill()

        if consumed != n:
            raise SimulationError(
                f"FSM ended at {consumed} of {n} bytes"
            )
        return tokens, stats
