"""Main FSM state graph (§IV's "typical state flow").

This module is the single written-down source of the state machine both
cycle engines implement; :func:`transition_table` returns the graph so
tests can assert the engines and the documentation cannot drift apart.

States
------

WAIT
    Wait for >= 262 lookahead bytes and the front hash value. Typically
    1 cycle (fill runs in background); skipped entirely on a prefetch
    hit after a literal.
PREPARE
    Head-table read routed from the hash; head/next updated for the
    current position in the same cycle. 1 cycle (plus 1 when the hash
    cache is disabled and the hash must be computed here).
MATCH
    Chain walk; the next table is read in parallel so the comparator is
    the bottleneck: ``1 + ceil((examined-1)/4)`` cycles per candidate on
    the 32-bit buses.
OUTPUT
    Emit the D/L command; 1 cycle unless the sink stalls (the pipelined
    fixed-table Huffman encoder never does). The prefetch FSM computes
    hash(pos+1) in parallel.
UPDATE
    For a short match (length <= max_insert_length), insert every
    remaining byte into head/next: 1 cycle per byte.
ROTATE
    Every ``D * (2**G - 1)`` input bytes, scan the head table's M
    sub-memories in parallel: ``2**H / M`` cycles.
"""

from __future__ import annotations

import enum
from typing import Dict, Tuple


class MainFSM(enum.Enum):
    """The six states of the main controller."""

    WAIT = "wait"
    PREPARE = "prepare"
    MATCH = "match"
    OUTPUT = "output"
    UPDATE = "update"
    ROTATE = "rotate"


def transition_table() -> Dict[MainFSM, Tuple[MainFSM, ...]]:
    """Legal successor states for each state."""
    return {
        MainFSM.WAIT: (MainFSM.PREPARE,),
        MainFSM.PREPARE: (MainFSM.MATCH, MainFSM.OUTPUT),
        MainFSM.MATCH: (MainFSM.OUTPUT,),
        MainFSM.OUTPUT: (
            MainFSM.UPDATE,
            MainFSM.ROTATE,
            MainFSM.WAIT,
            # Prefetch hit: straight back to PREPARE, skipping WAIT.
            MainFSM.PREPARE,
        ),
        MainFSM.UPDATE: (MainFSM.ROTATE, MainFSM.WAIT, MainFSM.PREPARE),
        MainFSM.ROTATE: (MainFSM.WAIT, MainFSM.PREPARE),
    }


#: Which Fig. 5 bucket each FSM state's cycles land in.
FIG5_BUCKETS = {
    MainFSM.WAIT: "Waiting for data",
    MainFSM.PREPARE: "Finding match",
    MainFSM.MATCH: "Finding match",
    MainFSM.OUTPUT: "Producing output",
    MainFSM.UPDATE: "Updating hash table",
    MainFSM.ROTATE: "Rotating hash",
}
