"""Alternative hardware matcher architectures (§II related work).

The paper positions its FSM+BRAM design against two classic families:

* **Systolic arrays** ([8] Chen & Wei, [9] Jung & Burleson): a linear
  array of processing elements holds the dictionary; input bytes march
  through the array and each PE compares its dictionary byte against
  the passing stream. Throughput is a steady ~1 byte/cycle regardless
  of data, but the PE count scales with the *window size* (one PE per
  dictionary byte in the canonical design), which is why such designs
  ship with small windows.

* **Content-addressable memories** ([7] Rauschert et al.): every window
  position is compared against the lookahead head *in parallel* every
  cycle; a match of length L completes in ~L cycles independent of how
  many candidates exist. Speed is data-dependent like the paper's
  design but without chain-walk costs; the price is the CAM itself —
  storage with per-bit comparators, an order of magnitude more area per
  bit than block RAM.

Both models consume the same token stream/trace as the main design (the
*search result* is held fixed; what differs is what the search costs),
giving the estimator an apples-to-apples architecture comparison: MB/s
against resource cost.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.hw.params import HardwareParams
from repro.lzss.trace import MatchTrace

#: Area cost of one CAM bit relative to one BRAM bit (comparator +
#: match-line per bit; conservative ASIC/FPGA literature ratio).
CAM_AREA_FACTOR = 10.0

#: LUTs per systolic PE: byte register + comparator + match-length
#: counter slice + forwarding mux.
LUTS_PER_PE = 18


@dataclass
class SystolicReport:
    """Cycle/resource estimate for a systolic-array matcher."""

    window_size: int
    input_bytes: int
    cycles: int
    pe_count: int
    luts: int
    clock_mhz: float

    @property
    def cycles_per_byte(self) -> float:
        if self.input_bytes == 0:
            return 0.0
        return self.cycles / self.input_bytes

    @property
    def throughput_mbps(self) -> float:
        cpb = self.cycles_per_byte
        return self.clock_mhz / cpb if cpb else 0.0


class SystolicArrayModel:
    """Cycle model of a [8]/[9]-style systolic LZ matcher.

    The canonical array sustains one input byte per cycle: each byte is
    broadcast/shifted past the window PEs, and both match selection and
    command emission are pipelined behind the array. Cost model:
    ``input_bytes + pipeline_flush`` cycles with one PE per window byte
    — deliberately data-independent, which is the architecture's
    defining property (and its appeal for worst-case-bound systems).
    """

    def __init__(self, params: HardwareParams | None = None) -> None:
        self.params = params or HardwareParams()

    def run(self, trace: MatchTrace) -> SystolicReport:
        """Price the systolic design for the same input."""
        p = self.params
        pipeline_depth = p.window_size.bit_length() + 4  # match select tree
        cycles = trace.input_size + pipeline_depth
        return SystolicReport(
            window_size=p.window_size,
            input_bytes=trace.input_size,
            cycles=cycles,
            pe_count=p.window_size,
            luts=LUTS_PER_PE * p.window_size,
            clock_mhz=p.clock_mhz,
        )


@dataclass
class CAMReport:
    """Cycle/resource estimate for a CAM-based matcher."""

    window_size: int
    input_bytes: int
    cycles: int
    cam_bits: int
    bram_bit_equivalent: float
    clock_mhz: float

    @property
    def cycles_per_byte(self) -> float:
        if self.input_bytes == 0:
            return 0.0
        return self.cycles / self.input_bytes

    @property
    def throughput_mbps(self) -> float:
        cpb = self.cycles_per_byte
        return self.clock_mhz / cpb if cpb else 0.0


class CAMMatcherModel:
    """Cycle model of a [7]-style CAM gzip matcher.

    Per token: one CAM lookup cycle resolves *all* candidates at once,
    then the match extends one byte per cycle (every extension step is
    another parallel compare over the surviving candidate set), then
    one output cycle. Literals cost lookup + output. No chain walks, no
    hash tables, no rotation — the costs the paper's design pays are
    exchanged for CAM area.
    """

    def __init__(self, params: HardwareParams | None = None) -> None:
        self.params = params or HardwareParams()

    def run(self, trace: MatchTrace) -> CAMReport:
        """Price the CAM design on the same token stream."""
        p = self.params
        cycles = 0
        for kind, length in zip(trace.kinds, trace.lengths):
            if kind:
                cycles += 1 + length + 1  # lookup + extend + emit
            else:
                cycles += 2               # lookup miss + emit
        cam_bits = p.window_size * 8
        return CAMReport(
            window_size=p.window_size,
            input_bytes=trace.input_size,
            cycles=cycles,
            cam_bits=cam_bits,
            bram_bit_equivalent=cam_bits * CAM_AREA_FACTOR,
            clock_mhz=p.clock_mhz,
        )


@dataclass
class ArchitectureComparison:
    """Side-by-side of the three matcher architectures on one input."""

    fsm_mbps: float
    fsm_bram36: int
    fsm_luts: int
    systolic: SystolicReport
    cam: CAMReport

    def format_table(self) -> str:
        lines = [
            "ARCHITECTURE COMPARISON (same input, same window)",
            f"{'architecture':<22s} {'MB/s':>7s} {'area proxy':>24s}",
            f"{'FSM + BRAM (paper)':<22s} {self.fsm_mbps:>7.1f} "
            f"{self.fsm_bram36:>5d} BRAM36 + {self.fsm_luts} LUTs",
            f"{'systolic array [8,9]':<22s} "
            f"{self.systolic.throughput_mbps:>7.1f} "
            f"{self.systolic.pe_count:>5d} PEs ≈ {self.systolic.luts} LUTs",
            f"{'CAM-based [7]':<22s} {self.cam.throughput_mbps:>7.1f} "
            f"{self.cam.cam_bits:>5d} CAM bits ≈ "
            f"{self.cam.bram_bit_equivalent / 1024:.0f} Kb BRAM-equiv",
        ]
        return "\n".join(lines)


def compare_architectures(
    params: HardwareParams, data: bytes
) -> ArchitectureComparison:
    """Run all three matcher architectures on ``data``."""
    from repro.hw.compressor import HardwareCompressor
    from repro.hw.resources import estimate_resources

    if params.data_bus_bytes not in (1, 4):
        raise ConfigError("comparison needs a 1- or 4-byte bus")
    result = HardwareCompressor(params).run(data)
    resources = estimate_resources(params)
    return ArchitectureComparison(
        fsm_mbps=result.throughput_mbps,
        fsm_bram36=resources.bram36_total,
        fsm_luts=resources.luts,
        systolic=SystolicArrayModel(params).run(result.lzss.trace),
        cam=CAMMatcherModel(params).run(result.lzss.trace),
    )
