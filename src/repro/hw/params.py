"""Hardware configuration (the paper's compile-time generics + run-time
parameters).

"Dictionary size, hash bit count, exact hash function, generation bit
count, and the head table division factor can be customized during
compile-time. Run-time parameters (e.g. matching iteration limit), can
also be changed." (§IV)

:class:`HardwareParams` carries all of them plus the three optimisation
switches Table III ablates:

* ``data_bus_bytes`` — 4 for the paper's wide buses, 1 for the 8-bit
  bus of the [11] baseline;
* ``hash_prefetch`` — the side-FSM that turns the 3-cycle literal path
  into 2 cycles;
* ``gen_bits`` / ``head_split`` / ``relative_next`` — the three rotation
  optimisations (row D reduces ``gen_bits`` to 0; the [11] baseline
  additionally uses absolute next-table addresses and no splitting).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict

from repro.errors import ConfigError
from repro.lzss.hashchain import HashSpec
from repro.lzss.policy import HW_MAX_POLICY, HW_SPEED_POLICY, MatchPolicy


@dataclass(frozen=True)
class HardwareParams:
    """Complete configuration of the hardware compressor."""

    window_size: int = 4096
    hash_bits: int = 15
    gen_bits: int = 4
    head_split: int = 0  # 0 = auto: one sub-memory per BRAM primitive
    data_bus_bytes: int = 4
    hash_prefetch: bool = True
    hash_cache: bool = True
    relative_next: bool = True
    lookahead_size: int = 512
    clock_mhz: float = 100.0
    policy: MatchPolicy = field(default_factory=lambda: HW_SPEED_POLICY)

    def __post_init__(self) -> None:
        if self.window_size & (self.window_size - 1):
            raise ConfigError(
                f"window_size must be a power of two: {self.window_size}"
            )
        if not 1024 <= self.window_size <= 32768:
            raise ConfigError(
                "window_size must be in [1024, 32768] "
                f"(the paper explores 1K-16K): {self.window_size}"
            )
        if not 6 <= self.hash_bits <= 20:
            raise ConfigError(f"hash_bits must be in [6, 20]: {self.hash_bits}")
        if not 0 <= self.gen_bits <= 8:
            raise ConfigError(f"gen_bits must be in [0, 8]: {self.gen_bits}")
        if self.head_split < 0 or (
            self.head_split and self.head_split & (self.head_split - 1)
        ):
            raise ConfigError(
                "head_split must be 0 (auto) or a power of two: "
                f"{self.head_split}"
            )
        if self.head_split > (1 << self.hash_bits):
            raise ConfigError(
                f"head_split {self.head_split} exceeds head entries"
            )
        if self.data_bus_bytes not in (1, 2, 4):
            raise ConfigError(
                f"data_bus_bytes must be 1, 2 or 4: {self.data_bus_bytes}"
            )
        if self.lookahead_size & (self.lookahead_size - 1):
            raise ConfigError(
                f"lookahead_size must be a power of two: {self.lookahead_size}"
            )
        if not 512 <= self.lookahead_size <= 4096:
            raise ConfigError(
                "lookahead_size must be in [512, 4096] (must hold at "
                f"least MIN_LOOKAHEAD=262 bytes): {self.lookahead_size}"
            )
        if self.clock_mhz <= 0:
            raise ConfigError(f"clock_mhz must be positive: {self.clock_mhz}")
        if self.policy.lazy:
            raise ConfigError(
                "the hardware FSM is greedy-only; lazy policies apply "
                "to the software baseline"
            )

    @property
    def hash_spec(self) -> HashSpec:
        """Hash function derived from the configured bit count."""
        return HashSpec(self.hash_bits)

    @property
    def head_entries(self) -> int:
        """Number of head-table entries (2**hash_bits)."""
        return 1 << self.hash_bits

    @property
    def head_entry_bits(self) -> int:
        """Head-table entry width: ``log2(D) + G`` bits (§V, Fig. 3 text)."""
        return (self.window_size.bit_length() - 1) + self.gen_bits

    @property
    def next_entry_bits(self) -> int:
        """Next-table entry width (relative offsets: ``log2(D)`` bits)."""
        return self.window_size.bit_length() - 1

    @property
    def resolved_head_split(self) -> int:
        """Effective sub-memory count M.

        The paper splits the head table so that "each [sub-memory has]
        the size of a single block RAM inside the FPGA"; with
        ``head_split == 0`` we derive M from the BRAM geometry, otherwise
        the explicit value is used (Table III-style ablations set 1).
        """
        if self.head_split:
            return self.head_split
        from repro.hw.bram import bram36_count

        blocks = bram36_count(self.head_entries, self.head_entry_bits)
        # Round up to a power of two so the entry space divides evenly.
        split = 1
        while split < blocks:
            split <<= 1
        return min(split, self.head_entries)

    @property
    def rotation_period_bytes(self) -> int:
        """Input bytes between head-table rotations.

        With G generation bits an entry's stored position covers a
        ``D * 2**G`` range; rotating every ``D * (2**G - 1)`` bytes
        guarantees no surviving entry's age can alias (each rotation
        drops entries older than the dictionary). G=0 degenerates to
        ZLib's every-D-bytes rotation — and matches the paper's "if k is
        1, rotation happens every D bytes".
        """
        if self.gen_bits == 0:
            return self.window_size
        return self.window_size * ((1 << self.gen_bits) - 1)

    @property
    def head_rotation_cycles(self) -> int:
        """Cycles per head rotation: entries scanned / split factor."""
        return self.head_entries // self.resolved_head_split

    def with_overrides(self, **kwargs) -> "HardwareParams":
        """Return a copy with the given fields replaced."""
        return replace(self, **kwargs)

    def describe(self) -> str:
        """Short human-readable configuration summary."""
        return (
            f"{self.window_size // 1024}KB dict, {self.hash_bits}-bit hash, "
            f"G={self.gen_bits}, M={self.head_split}, "
            f"bus={8 * self.data_bus_bytes}b, "
            f"prefetch={'on' if self.hash_prefetch else 'off'}, "
            f"chain<={self.policy.max_chain}"
        )


def _baseline_rigler() -> HardwareParams:
    """The [11]-style baseline: byte bus, no prefetch, naive rotation."""
    return HardwareParams(
        data_bus_bytes=1,
        hash_prefetch=False,
        gen_bits=0,
        head_split=1,
        relative_next=False,
    )


#: Named configurations used throughout the benchmarks. ``paper-speed``
#: is Table I's hardware config ("parameters optimized for speed (4KB
#: dictionary, 15-bit hash)").
PRESETS: Dict[str, HardwareParams] = {
    "paper-speed": HardwareParams(),
    "paper-ratio": HardwareParams(
        window_size=16384, hash_bits=15, policy=HW_MAX_POLICY
    ),
    "small": HardwareParams(window_size=1024, hash_bits=9),
    "baseline-rigler": _baseline_rigler(),
    "table2-a": HardwareParams(window_size=16384, hash_bits=15),
    "table2-b": HardwareParams(window_size=8192, hash_bits=13),
    "table2-c": HardwareParams(window_size=4096, hash_bits=9),
}


def preset(name: str) -> HardwareParams:
    """Look up a named preset configuration."""
    try:
        return PRESETS[name]
    except KeyError:
        raise ConfigError(
            f"unknown preset {name!r}; available: {sorted(PRESETS)}"
        ) from None
