"""Behavioural models of the compressor's five dual-port memories (§IV).

These classes serve two purposes:

* they define each memory's *geometry* (entries × width) for the
  resource estimator;
* they implement the *semantics* the RTL would have — most importantly
  the head table's truncated, generation-bit position arithmetic, whose
  equivalence to ideal absolute positions is a key design claim of the
  paper (the whole rotation-avoidance scheme rests on it). The FSM
  simulator uses these models, and property tests compare them against
  the ideal structures.
"""

from __future__ import annotations

from typing import List

from repro.errors import SimulationError
from repro.hw.bram import MemoryGeometry
from repro.hw.params import HardwareParams


class RingBuffer:
    """Byte ring buffer with a wide read port (lookahead / dictionary).

    The paper stores both as 32-bit-wide rings in dual-port BRAMs: one
    port streams data in (background fill), the other serves the
    comparator with up to 4 bytes per cycle.
    """

    def __init__(self, name: str, size_bytes: int, bus_bytes: int) -> None:
        self.name = name
        self.size = size_bytes
        self.bus_bytes = bus_bytes
        self._data = bytearray(size_bytes)
        self._mask = size_bytes - 1

    def geometry(self) -> MemoryGeometry:
        return MemoryGeometry(
            self.name, self.size // self.bus_bytes, 8 * self.bus_bytes
        )

    def write_byte(self, pos: int, value: int) -> None:
        """Store one byte at absolute stream position ``pos``."""
        self._data[pos & self._mask] = value

    def read_byte(self, pos: int) -> int:
        """Read the byte at absolute stream position ``pos``."""
        return self._data[pos & self._mask]

    def read_word(self, pos: int) -> bytes:
        """Read one bus-width beat starting at ``pos`` (may wrap)."""
        index = pos & self._mask
        end = index + self.bus_bytes
        if end <= self.size:
            return bytes(self._data[index:end])
        return bytes(self._data[index:]) + bytes(self._data[:end - self.size])


class HashCache:
    """Precomputed hash values for lookahead offsets (§IV).

    "hash values for every offset of the source stream are computed
    during background filling and stored in a separate memory."
    """

    def __init__(self, params: HardwareParams) -> None:
        self.size = params.lookahead_size
        self.hash_bits = params.hash_bits
        self._values: List[int] = [0] * self.size
        self._mask = self.size - 1

    def geometry(self) -> MemoryGeometry:
        return MemoryGeometry("hash cache", self.size, self.hash_bits)

    def store(self, pos: int, value: int) -> None:
        self._values[pos & self._mask] = value

    def load(self, pos: int) -> int:
        return self._values[pos & self._mask]


class HeadTable:
    """Head table with generation bits and M-way splitting (§IV).

    Entries hold positions truncated to ``log2(D) + G`` bits ("as if the
    dictionary was 2^k times bigger"). :meth:`lookup` reconstructs the
    absolute candidate position from the current position; entries whose
    implied distance exceeds the real dictionary are reported invalid.
    :meth:`rotate` performs the periodic invalidation scan; the split
    factor M only affects its cycle cost, tracked by the caller.
    """

    INVALID = -1

    def __init__(self, params: HardwareParams) -> None:
        from repro.lzss.tokens import MIN_LOOKAHEAD

        self.entries = params.head_entries
        self.entry_bits = params.head_entry_bits
        self.split = params.resolved_head_split
        self.window = params.window_size
        # Rotation drops entries beyond ZLib's MAX_DIST — the matcher
        # can never follow them anyway, and the MIN_LOOKAHEAD slack is
        # exactly what keeps truncated ages strictly below the modulus
        # between rotations (age < R + MAX_DIST + MAX_MATCH < D*2^G).
        self.usable_dist = params.window_size - MIN_LOOKAHEAD
        # Stored positions live modulo D * 2**G. With G=0 the arithmetic
        # needs headroom beyond the window (ZLib gets it from its
        # fixed-width 16-bit Pos type); model that as one implicit bit.
        if params.gen_bits == 0:
            self.position_modulus = 2 * params.window_size
        else:
            self.position_modulus = 1 << self.entry_bits
        self._table: List[int] = [self.INVALID] * self.entries
        self._stale_before = 0  # oldest absolute position still valid

    def geometry(self) -> MemoryGeometry:
        # +1 bit: a valid flag (the RTL encodes invalid as a reserved
        # pattern; we count it explicitly to be conservative).
        return MemoryGeometry("head table", self.entries, self.entry_bits + 1)

    def insert(self, h: int, pos: int) -> None:
        """Record ``pos`` as the most recent string with hash ``h``."""
        self._table[h] = pos % self.position_modulus

    def lookup(self, h: int, current_pos: int) -> int:
        """Absolute position of the chain head, or -1 if none/stale.

        ``current_pos`` anchors the truncated arithmetic: the stored
        value is interpreted as the unique position within the last
        ``D * 2**G`` bytes. Entries older than that were invalidated by
        rotation; entries older than the *window* but not yet rotated
        out are detected here by the distance check ("The real
        dictionary size is still used to detect whether a record points
        outside the dictionary").
        """
        stored = self._table[h]
        if stored == self.INVALID:
            return -1
        delta = (current_pos - stored) % self.position_modulus
        candidate = current_pos - delta
        if candidate < self._stale_before:
            # Rotation should have cleared this; reaching here means the
            # rotation schedule was violated.
            raise SimulationError(
                f"head entry for hash {h:#x} survived past rotation"
            )
        return candidate

    def rotate(self, current_pos: int) -> int:
        """Invalidate entries pointing outside the usable dictionary.

        Returns the number of entries scanned (== entries; the split
        factor parallelises the scan so the *cycle* cost is
        ``entries / M``, charged by the caller).
        """
        horizon = current_pos - self.usable_dist
        for h in range(self.entries):
            stored = self._table[h]
            if stored == self.INVALID:
                continue
            delta = (current_pos - stored) % self.position_modulus
            if current_pos - delta < horizon:
                self._table[h] = self.INVALID
        self._stale_before = max(self._stale_before, horizon)
        return self.entries

    @property
    def rotation_cycles(self) -> int:
        """Cycles one rotation occupies the FSM for."""
        return self.entries // self.split


class NextTable:
    """Next table with relative addressing (§IV).

    "The next table contains relative addresses. This requires 1 extra
    adder, to compute the absolute address, but eliminates the need to
    rotate the next table." An offset of 0 (impossible for a real
    predecessor) encodes *no predecessor*; offsets that would not fit in
    ``log2(D)`` bits are clamped to 0 as well, which is safe because the
    matcher never follows distances beyond MAX_DIST < D.
    """

    def __init__(self, params: HardwareParams) -> None:
        self.entries = params.window_size
        self.entry_bits = params.next_entry_bits
        self._mask = self.entries - 1
        self._table: List[int] = [0] * self.entries

    def geometry(self) -> MemoryGeometry:
        return MemoryGeometry("next table", self.entries, self.entry_bits)

    def link(self, pos: int, predecessor: int) -> None:
        """Store the chain link from ``pos`` back to ``predecessor``."""
        if predecessor < 0:
            self._table[pos & self._mask] = 0
            return
        offset = pos - predecessor
        if 0 < offset < self.entries:
            self._table[pos & self._mask] = offset
        else:
            self._table[pos & self._mask] = 0

    def follow(self, pos: int) -> int:
        """Absolute predecessor position of ``pos``, or -1 if none."""
        offset = self._table[pos & self._mask]
        if offset == 0:
            return -1
        return pos - offset


def build_memories(params: HardwareParams) -> dict:
    """Instantiate all five memories for one configuration."""
    return {
        "lookahead": RingBuffer(
            "lookahead buffer", params.lookahead_size, params.data_bus_bytes
        ),
        "dictionary": RingBuffer(
            "dictionary", params.window_size, params.data_bus_bytes
        ),
        "hash_cache": HashCache(params),
        "head": HeadTable(params),
        "next": NextTable(params),
    }
