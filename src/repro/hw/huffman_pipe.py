"""Pipelined fixed-table Huffman encoder model (§IV).

"The output interface of the LZSS compressor is connected to a
fixed-table pipelined Huffman encoder that produces a ZLib-compatible
stream. As the table is fixed, no additional clock cycles or memories
are required to build it and the encoder does not introduce any delays
to the stream produced by the LZSS compressor."

The model consumes one D/L command per cycle, translates it through the
static tables into at most 31 bits (worst case: 8-bit length code +
5 extra bits + 5-bit distance code + 13 extra bits), packs bits into
32-bit words and emits them. Because every command fits within one
output word of bits, a one-command-per-cycle pipeline never back-
pressures the LZSS core — :meth:`PipelinedHuffmanEncoder.encode_stream`
verifies that invariant while producing the bit-exact Deflate body.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Tuple, Union

from repro.bitio.writer import BitWriter
from repro.deflate.constants import (
    END_OF_BLOCK,
    distance_symbol,
    length_symbol,
)
from repro.huffman.fixed import fixed_dist_encoder, fixed_litlen_encoder
from repro.lzss.tokens import Literal, Match, Token, TokenArray

#: Maximum bits one command can contribute (length 8+5, distance 5+13).
MAX_BITS_PER_COMMAND = 31


@dataclass
class HuffmanPipeReport:
    """Outcome of a pipelined encoding run."""

    body: bytes            # the Deflate fixed-block body (with header/EOB)
    commands: int          # D/L commands consumed
    cycles: int            # pipeline cycles taken
    max_bits_in_flight: int
    stall_cycles: int      # cycles the LZSS core would have been stalled

    @property
    def zero_stall(self) -> bool:
        """The §IV claim: the encoder introduces no delays."""
        return self.stall_cycles == 0


class PipelinedHuffmanEncoder:
    """One-command-per-cycle fixed-table encoder."""

    def __init__(self) -> None:
        self._litlen = fixed_litlen_encoder()
        self._dist = fixed_dist_encoder()

    def command_bits(self, token: Union[Token, Tuple[int, int]]) -> int:
        """Bit cost of one command under the fixed tables."""
        if isinstance(token, Literal):
            length, value = 0, token.value
        elif isinstance(token, Match):
            length, value = token.length, token.distance
        else:
            length, value = token
        if length == 0:
            return self._litlen.cost_bits(value)
        lsym, lextra, _ = length_symbol(length)
        dsym, dextra, _ = distance_symbol(value)
        return (
            self._litlen.cost_bits(lsym) + lextra
            + self._dist.cost_bits(dsym) + dextra
        )

    def encode_stream(
        self, tokens: Union[TokenArray, Iterable[Token]]
    ) -> HuffmanPipeReport:
        """Encode a whole token stream, tracking pipeline occupancy.

        The bit accumulator plays the role of the output packing stage:
        each cycle accepts one command's bits and drains up to 32 bits
        as a completed word. A stall would occur only if a command could
        contribute more bits than one output word — which the fixed
        tables make impossible (asserted per command).
        """
        writer = BitWriter()
        writer.write_bits(1, 1)      # BFINAL
        writer.write_bits(0b01, 2)   # BTYPE = fixed
        cycles = 0
        commands = 0
        stall = 0
        max_in_flight = 0
        pending_bits = 3

        items: Iterable[Tuple[int, int]]
        if isinstance(tokens, TokenArray):
            items = zip(tokens.lengths, tokens.values)
        else:
            items = (
                (0, t.value) if isinstance(t, Literal)
                else (t.length, t.distance)
                for t in tokens
            )
        for length, value in items:
            bits = self.command_bits((length, value))
            if bits > MAX_BITS_PER_COMMAND:
                stall += 1  # cannot happen with the fixed tables
            pending_bits += bits
            max_in_flight = max(max_in_flight, pending_bits)
            pending_bits = max(0, pending_bits - 32)  # word drained
            if length == 0:
                self._litlen.encode(writer, value)
            else:
                lsym, lextra, lval = length_symbol(length)
                self._litlen.encode(writer, lsym)
                if lextra:
                    writer.write_bits(lval, lextra)
                dsym, dextra, dval = distance_symbol(value)
                self._dist.encode(writer, dsym)
                if dextra:
                    writer.write_bits(dval, dextra)
            cycles += 1
            commands += 1
        self._litlen.encode(writer, END_OF_BLOCK)
        cycles += 1
        return HuffmanPipeReport(
            body=writer.flush(),
            commands=commands,
            cycles=cycles,
            max_bits_in_flight=max_in_flight,
            stall_cycles=stall,
        )
