"""What would a *dynamic*-table hardware Huffman encoder cost? (§IV's
declined trade-off, quantified.)

"The cost for the high performance is less efficient compression
compared to the dynamic huffman coders, however, it can be also
compensated by increasing LZSS compression level."

A dynamic-table hardware encoder needs, per block:

* a histogram pass over the block's symbols (dual-port counting BRAM:
  1 symbol/cycle — overlappable with LZSS output, so *free* in cycles
  but costs a BRAM and forces block buffering);
* a code-construction pass (sorting + package-merge style length
  assignment in hardware; modelled as ``K_BUILD * alphabet`` cycles);
* the block's tokens must be *buffered* (they cannot be emitted before
  the tables exist), so the pipeline stalls for the build time at every
  block boundary and needs a token-buffer memory sized to the block.

This module prices that design on the same trace so the estimator can
report cycles, extra BRAM and ratio side by side with the fixed-table
design — turning §IV's qualitative sentence into numbers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.deflate.block_writer import BlockStrategy, deflate_tokens
from repro.deflate.constants import MAX_DIST_SYMBOLS, MAX_LITLEN_SYMBOLS
from repro.hw.bram import bram18_units
from repro.hw.cycle_model import CycleModel
from repro.hw.params import HardwareParams
from repro.lzss.compressor import CompressResult

#: Hardware code-construction cost per alphabet symbol (sort network +
#: length assignment iterations), a conservative literature figure.
K_BUILD = 6


@dataclass
class DynamicEncoderReport:
    """Fixed vs dynamic hardware encoder comparison on one input."""

    fixed_bytes: int
    dynamic_bytes: int
    fixed_cycles: int
    dynamic_cycles: int
    extra_bram18: int
    input_bytes: int
    clock_mhz: float

    @property
    def ratio_gain(self) -> float:
        """Relative output-size reduction from dynamic tables."""
        if self.fixed_bytes == 0:
            return 0.0
        return 1 - self.dynamic_bytes / self.fixed_bytes

    @property
    def speed_loss(self) -> float:
        """Relative throughput cost of the dynamic design."""
        if self.dynamic_cycles == 0:
            return 0.0
        return 1 - self.fixed_cycles / self.dynamic_cycles

    @property
    def fixed_mbps(self) -> float:
        return self.clock_mhz * self.input_bytes / self.fixed_cycles if (
            self.fixed_cycles
        ) else 0.0

    @property
    def dynamic_mbps(self) -> float:
        return self.clock_mhz * self.input_bytes / self.dynamic_cycles if (
            self.dynamic_cycles
        ) else 0.0


def compare_dynamic_encoder(
    params: HardwareParams,
    lzss: CompressResult,
    tokens_per_block: int = 16384,
) -> DynamicEncoderReport:
    """Price the dynamic-table alternative against the fixed design."""
    base_stats = CycleModel(params).run(lzss.trace)
    fixed_body = deflate_tokens(lzss.tokens, BlockStrategy.FIXED)
    dynamic_body = deflate_tokens(lzss.tokens, BlockStrategy.DYNAMIC)

    blocks = max(1, -(-len(lzss.tokens) // tokens_per_block))
    build_cycles_per_block = K_BUILD * (
        MAX_LITLEN_SYMBOLS + MAX_DIST_SYMBOLS
    )
    dynamic_cycles = base_stats.total_cycles + blocks * (
        build_cycles_per_block
    )

    # Extra memories: histogram counters (alphabet x 16-bit) and the
    # token buffer for one block (tokens_per_block x ~24-bit commands).
    extra_bram = bram18_units(
        MAX_LITLEN_SYMBOLS + MAX_DIST_SYMBOLS, 16
    ) + bram18_units(max(tokens_per_block, 512), 24)

    return DynamicEncoderReport(
        fixed_bytes=len(fixed_body),
        dynamic_bytes=len(dynamic_body),
        fixed_cycles=base_stats.total_cycles,
        dynamic_cycles=dynamic_cycles,
        extra_bram18=extra_bram,
        input_bytes=lzss.input_size,
        clock_mhz=params.clock_mhz,
    )
