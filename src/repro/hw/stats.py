"""Per-FSM-state cycle statistics (the paper's Fig. 5 breakdown).

The paper buckets main-FSM time into six categories; :class:`FSMState`
reproduces them exactly so the Fig. 5 bench can print the same pie:

* ``FINDING_MATCH`` — match preparation (head/next reads) plus the
  comparator cycles (68.5 % in the paper's 16 KB/15-bit run);
* ``PRODUCING_OUTPUT`` — one cycle per emitted D/L command, with the
  hash prefetch running in parallel (11.0 %);
* ``UPDATING_HASH`` — one cycle per inserted byte of a short match
  (11.6 %);
* ``WAITING_FOR_DATA`` — head-table-read wait when the prefetched hash
  is not useful, i.e. after a match skipped several bytes (8.4 %);
* ``ROTATING_HASH`` — head/next table rotation (0.3 %);
* ``FETCHING_DATA`` — lookahead underrun stalls against the background
  fill (0.2 %).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict


class FSMState(enum.Enum):
    """Fig. 5's six time buckets."""

    FINDING_MATCH = "Finding match"
    PRODUCING_OUTPUT = "Producing output"
    UPDATING_HASH = "Updating hash table"
    WAITING_FOR_DATA = "Waiting for data"
    ROTATING_HASH = "Rotating hash"
    FETCHING_DATA = "Fetching data"


@dataclass
class CycleStats:
    """Cycle totals per FSM state plus derived throughput metrics."""

    cycles: Dict[FSMState, int] = field(
        default_factory=lambda: {state: 0 for state in FSMState}
    )
    input_bytes: int = 0
    clock_mhz: float = 100.0

    def add(self, state: FSMState, count: int = 1) -> None:
        """Charge ``count`` cycles to ``state``."""
        self.cycles[state] += count

    @property
    def total_cycles(self) -> int:
        """All main-FSM cycles for the run."""
        return sum(self.cycles.values())

    @property
    def cycles_per_byte(self) -> float:
        """Average cycles per input byte (the paper reports ~2)."""
        if self.input_bytes == 0:
            return 0.0
        return self.total_cycles / self.input_bytes

    @property
    def throughput_mbps(self) -> float:
        """Modelled throughput in MB/s at the configured clock.

        MB/s = clock(MHz) * 1e6 cycles/s / (cycles/byte) / 1e6 B/MB
             = clock_mhz / cycles_per_byte.
        """
        cpb = self.cycles_per_byte
        if cpb == 0:
            return 0.0
        return self.clock_mhz / cpb

    def fraction(self, state: FSMState) -> float:
        """Fraction of total cycles spent in ``state`` (Fig. 5 slices)."""
        total = self.total_cycles
        if total == 0:
            return 0.0
        return self.cycles[state] / total

    def breakdown(self) -> Dict[str, float]:
        """State-name → fraction mapping sorted by descending share."""
        items = sorted(
            ((state.value, self.fraction(state)) for state in FSMState),
            key=lambda pair: -pair[1],
        )
        return dict(items)

    def merge(self, other: "CycleStats") -> "CycleStats":
        """Accumulate another run's stats into this one (same clock)."""
        for state in FSMState:
            self.cycles[state] += other.cycles[state]
        self.input_bytes += other.input_bytes
        return self

    def format_table(self) -> str:
        """Readable multi-line summary used by reports and the CLI."""
        lines = [
            f"input bytes        : {self.input_bytes}",
            f"total cycles       : {self.total_cycles}",
            f"cycles/byte        : {self.cycles_per_byte:.3f}",
            f"throughput         : {self.throughput_mbps:.1f} MB/s "
            f"@ {self.clock_mhz:.0f} MHz",
        ]
        for state in FSMState:
            lines.append(
                f"  {state.value:<20s}: {self.cycles[state]:>12d} "
                f"({100 * self.fraction(state):5.1f}%)"
            )
        return "\n".join(lines)
