"""Handshake stream interfaces (§IV).

"The LZSS compressor uses handshake interfaces for both input and output
streams. ... The use of stream interfaces allows connecting to
high-performance interfaces (e.g. LocalLink) and compressing real-time
streaming data on-the-fly without separate buffering and compressing
stages."

These classes model a valid/ready (LocalLink-style) handshake at
cycle granularity: producers offer a beat, consumers accept it, and
either side can stall. They are used by the pipelined Huffman encoder
model and the board testbench to measure back-pressure effects.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Iterable, Iterator, Optional

from repro.errors import SimulationError


@dataclass(frozen=True)
class Beat:
    """One transfer beat: a data word plus framing flags."""

    data: int
    last: bool = False
    valid_bytes: int = 4  # byte lanes carrying data in the final beat


class StreamQueue:
    """A bounded FIFO linking a producer and a consumer.

    ``capacity`` models the skid buffer depth between pipeline stages;
    a full queue back-pressures the producer (its ``push`` returns
    False), an empty one stalls the consumer.
    """

    def __init__(self, capacity: int = 2) -> None:
        if capacity < 1:
            raise SimulationError(f"capacity must be >= 1: {capacity}")
        self.capacity = capacity
        self._fifo: Deque[Beat] = deque()
        self.pushed_beats = 0
        self.stall_cycles = 0

    def can_push(self) -> bool:
        return len(self._fifo) < self.capacity

    def push(self, beat: Beat) -> bool:
        """Offer a beat; returns False (and counts a stall) when full."""
        if not self.can_push():
            self.stall_cycles += 1
            return False
        self._fifo.append(beat)
        self.pushed_beats += 1
        return True

    def can_pop(self) -> bool:
        return bool(self._fifo)

    def pop(self) -> Optional[Beat]:
        """Take a beat, or None when empty."""
        if not self._fifo:
            return None
        return self._fifo.popleft()

    def __len__(self) -> int:
        return len(self._fifo)


def drive_words(words: Iterable[int], valid_bytes_last: int = 4) -> Iterator[Beat]:
    """Wrap a 32-bit word sequence as a framed beat stream."""
    items = list(words)
    for index, word in enumerate(items):
        last = index == len(items) - 1
        yield Beat(
            data=word,
            last=last,
            valid_bytes=valid_bytes_last if last else 4,
        )
