"""Cycle-accurate model of the paper's Virtex-5 LZSS compressor (§IV).

This package is the Python re-implementation of the paper's estimation
tool: given a :class:`HardwareParams` configuration and input data, it
reports exactly what the paper's C++ model reported — block-RAM usage,
compression ratio, per-FSM-state clock-cycle statistics and the derived
throughput at the hardware clock rate.

Two independent cycle engines are provided:

* :class:`~repro.hw.cycle_model.CycleModel` — analytic accounting over
  the match trace (fast; used by all benchmarks);
* :class:`~repro.hw.fsm_sim.FSMSimulator` — an explicit per-cycle FSM
  walk with modelled memories and background fill (slow; used in tests
  to cross-validate the analytic engine).
"""

from repro.hw.params import HardwareParams, PRESETS, preset
from repro.hw.stats import CycleStats, FSMState
from repro.hw.compressor import HardwareCompressor, HardwareRunResult
from repro.hw.resources import ResourceEstimator, ResourceReport

__all__ = [
    "HardwareParams",
    "PRESETS",
    "preset",
    "CycleStats",
    "FSMState",
    "HardwareCompressor",
    "HardwareRunResult",
    "ResourceEstimator",
    "ResourceReport",
]
