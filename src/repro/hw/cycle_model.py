"""Analytic cycle accounting for the hardware FSM (§IV state walk).

The model consumes the greedy parser's :class:`~repro.lzss.trace.MatchTrace`
(one row per emitted token) and charges cycles per the paper's state
flow:

* **WAITING_FOR_DATA** — 1 cycle per token, *skipped* when the previous
  token was a literal and hash prefetching is enabled ("requiring only 2
  non-matching cycles instead of 3");
* **FINDING_MATCH** — 1 match-preparation cycle (head read + next
  routed + insert) plus the comparator cycles recorded in the trace
  (``1 + ceil((examined-1)/4)`` per candidate on the 32-bit buses, or
  ``examined`` on the [11]-style 8-bit bus), plus 1 extra cycle per
  search when the hash cache is disabled (the hash must be computed in
  the main FSM);
* **PRODUCING_OUTPUT** — 1 cycle per token (the fixed-table Huffman
  encoder is pipelined and never stalls, §IV);
* **UPDATING_HASH** — 1 cycle per inserted byte of a short match;
* **ROTATING_HASH** — ``head_entries / M`` cycles every rotation period,
  plus, for the absolute-address baseline, ``D`` next-table fixup
  cycles every ``D`` bytes;
* **FETCHING_DATA** — stalls of the 262-byte lookahead threshold against
  the background fill, tracked with an explicit occupancy walk (the fill
  port delivers ``data_bus_bytes`` per cycle).
"""

from __future__ import annotations

from repro.errors import ConfigError
from repro.hw.params import HardwareParams
from repro.hw.stats import CycleStats, FSMState
from repro.lzss.tokens import MIN_LOOKAHEAD
from repro.lzss.trace import MatchTrace


class CycleModel:
    """Analytic cycle-count engine for one hardware configuration."""

    def __init__(self, params: HardwareParams) -> None:
        if params.data_bus_bytes not in (1, 4):
            raise ConfigError(
                "the cycle model supports 1- and 4-byte data buses "
                f"(the paper's two design points): {params.data_bus_bytes}"
            )
        self.params = params

    def run(self, trace: MatchTrace) -> CycleStats:
        """Charge the whole trace and return per-state cycle totals."""
        p = self.params
        stats = CycleStats(clock_mhz=p.clock_mhz)
        stats.input_bytes = trace.input_size

        wide_bus = p.data_bus_bytes == 4
        compare_col = (
            trace.compare_cycles_w4 if wide_bus else trace.compare_cycles_w1
        )
        prefetch = p.hash_prefetch
        cache_penalty = 0 if p.hash_cache else 1
        fill_rate = p.data_bus_bytes  # bytes per cycle into the lookahead

        rotation_period = p.rotation_period_bytes
        rotation_cycles = p.head_rotation_cycles
        next_rotation_at = rotation_period
        # The [11] baseline rotates the next table too: D fixup cycles
        # every D bytes (absolute addresses all shift together).
        next_table_period = p.window_size
        next_table_at = next_table_period if not p.relative_next else None

        total_bytes = trace.input_size
        lookahead_cap = p.lookahead_size

        consumed = 0        # input bytes consumed by the FSM
        delivered = 0       # input bytes delivered into the lookahead
        cycles_so_far = 0   # running total, drives the background fill

        # Initial fill: the FSM waits until MIN_LOOKAHEAD bytes (or the
        # whole input, if shorter) are present.
        startup_target = min(MIN_LOOKAHEAD, total_bytes)
        startup_cycles = -(-startup_target // fill_rate) if total_bytes else 0
        stats.add(FSMState.FETCHING_DATA, startup_cycles)
        cycles_so_far += startup_cycles
        delivered = min(total_bytes, cycles_so_far * fill_rate)

        kinds = trace.kinds
        lengths = trace.lengths
        inserted = trace.inserted

        prev_kind = 1  # stream start behaves like "after a match": wait
        for i in range(len(kinds)):
            token_cycles = 0

            # WAIT state.
            if not (prefetch and prev_kind == 0):
                stats.add(FSMState.WAITING_FOR_DATA, 1)
                token_cycles += 1

            # Lookahead occupancy check (FETCH stall).
            needed = min(MIN_LOOKAHEAD, total_bytes - consumed)
            occupancy = delivered - consumed
            if occupancy < needed:
                stall = -(-(needed - occupancy) // fill_rate)
                stats.add(FSMState.FETCHING_DATA, stall)
                token_cycles += stall
                delivered = min(
                    total_bytes, (cycles_so_far + token_cycles) * fill_rate
                )

            # FINDING_MATCH: preparation + comparator + optional hash calc.
            finding = 1 + compare_col[i] + cache_penalty
            stats.add(FSMState.FINDING_MATCH, finding)
            token_cycles += finding

            # PRODUCING_OUTPUT (prefetch runs in parallel here).
            stats.add(FSMState.PRODUCING_OUTPUT, 1)
            token_cycles += 1

            # UPDATING_HASH.
            if inserted[i]:
                stats.add(FSMState.UPDATING_HASH, inserted[i])
                token_cycles += inserted[i]

            consumed += lengths[i]
            cycles_so_far += token_cycles

            # ROTATING_HASH: head table on its generation-stretched
            # period, next table (baseline only) every D bytes.
            while consumed >= next_rotation_at:
                stats.add(FSMState.ROTATING_HASH, rotation_cycles)
                cycles_so_far += rotation_cycles
                next_rotation_at += rotation_period
            if next_table_at is not None:
                while consumed >= next_table_at:
                    stats.add(FSMState.ROTATING_HASH, p.window_size)
                    cycles_so_far += p.window_size
                    next_table_at += next_table_period

            delivered = min(total_bytes, cycles_so_far * fill_rate)
            prev_kind = kinds[i]

        return stats


def analyze(params: HardwareParams, trace: MatchTrace) -> CycleStats:
    """One-shot convenience wrapper."""
    return CycleModel(params).run(trace)
