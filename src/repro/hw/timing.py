"""Clock-frequency (Fmax) model.

The paper runs the compressor at 100 MHz and notes that "post-route
analysis reported a maximum clock frequency of 133.477 MHz" for the
speed configuration. This model estimates how the achievable clock
moves with the configuration so the estimator can report throughput at
the *achievable* clock, not just the nominal one:

* the comparator's byte-compare + priority-encode chain deepens with
  the bus width;
* address adders/comparators deepen with ``log2(D) + G`` and the hash
  width;
* BRAM clock-to-out is a fixed term.

Delays are picked so the paper's configuration lands at its reported
133 MHz; scaling terms use generic Virtex-5 logic-level figures. As
with the LUT model, this is a calibrated estimate, documented as such.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.params import HardwareParams

#: Fixed path: BRAM clock-to-out + routing + FF setup (ns).
_T_FIXED_NS = 2.8
#: Per logic level (LUT + local route) on Virtex-5 (ns).
_T_LEVEL_NS = 0.5


def _logic_levels(params: HardwareParams) -> float:
    """Depth of the critical path in logic levels."""
    compare_levels = 2 + params.data_bus_bytes.bit_length()
    window_bits = params.window_size.bit_length() - 1
    address_levels = (window_bits + params.gen_bits) / 6  # carry chains
    hash_levels = params.hash_bits / 8
    return compare_levels + address_levels + hash_levels


@dataclass
class TimingReport:
    """Achievable clock estimate for one configuration."""

    params: HardwareParams
    fmax_mhz: float

    @property
    def meets_nominal(self) -> bool:
        """Whether the design closes timing at its nominal clock."""
        return self.fmax_mhz >= self.params.clock_mhz

    @property
    def headroom(self) -> float:
        """Fmax / nominal clock."""
        return self.fmax_mhz / self.params.clock_mhz

    def throughput_at_fmax(self, cycles_per_byte: float) -> float:
        """MB/s if the design were clocked at its Fmax."""
        if cycles_per_byte == 0:
            return 0.0
        return self.fmax_mhz / cycles_per_byte


def estimate_fmax(params: HardwareParams) -> TimingReport:
    """Estimate the post-route maximum clock for a configuration."""
    period_ns = _T_FIXED_NS + _T_LEVEL_NS * _logic_levels(params)
    return TimingReport(params=params, fmax_mhz=1000.0 / period_ns)
