"""Virtex-5 block RAM primitive model.

Virtex-5 BRAMs are 36 Kbit true-dual-port blocks, each splittable into
two independent 18 Kbit halves. Both sizes support the classic aspect
ratios (depth × width): 36 Kb from 32K×1 to 1K×36, 18 Kb from 16K×1 to
512×36. A logical memory of ``entries × width_bits`` is mapped onto a
grid of primitives by choosing the ratio minimising the primitive count
(what XST's block-RAM packer does for simple dual-port memories).

Counts are expressed in 18 Kb *units* (one 36 Kb block = 2 units) so
that two small memories can honestly share one physical block, and
reported as 36 Kb block equivalents at the top level.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Tuple

from repro.errors import ConfigError

#: (depth, width) configurations of a 36 Kb primitive.
ASPECT_RATIOS_36K: List[Tuple[int, int]] = [
    (32768, 1), (16384, 2), (8192, 4), (4096, 9), (2048, 18), (1024, 36),
]

#: (depth, width) configurations of an 18 Kb primitive.
ASPECT_RATIOS_18K: List[Tuple[int, int]] = [
    (16384, 1), (8192, 2), (4096, 4), (2048, 9), (1024, 18), (512, 36),
]


def _primitive_count(
    entries: int, width_bits: int, ratios: List[Tuple[int, int]]
) -> int:
    """Fewest primitives covering an ``entries × width_bits`` memory."""
    best = None
    for depth, width in ratios:
        count = math.ceil(width_bits / width) * math.ceil(entries / depth)
        if best is None or count < best:
            best = count
    assert best is not None
    return best


def bram18_units(entries: int, width_bits: int) -> int:
    """Memory cost in 18 Kb units (a 36 Kb block counts as 2 units)."""
    if entries <= 0 or width_bits <= 0:
        raise ConfigError(
            f"invalid memory geometry: {entries} x {width_bits}"
        )
    with_18k = _primitive_count(entries, width_bits, ASPECT_RATIOS_18K)
    with_36k = 2 * _primitive_count(entries, width_bits, ASPECT_RATIOS_36K)
    return min(with_18k, with_36k)


def bram36_count(entries: int, width_bits: int) -> int:
    """Memory cost in whole 36 Kb blocks (for split-factor derivation)."""
    return math.ceil(bram18_units(entries, width_bits) / 2)


@dataclass(frozen=True)
class MemoryGeometry:
    """One logical memory and its BRAM cost."""

    name: str
    entries: int
    width_bits: int

    @property
    def total_bits(self) -> int:
        return self.entries * self.width_bits

    @property
    def bram18(self) -> int:
        return bram18_units(self.entries, self.width_bits)

    def describe(self) -> str:
        return (
            f"{self.name}: {self.entries} x {self.width_bits}b "
            f"= {self.total_bits / 1024:.1f} Kb -> {self.bram18} x 18Kb"
        )


#: XC5VFX70T device limits (Virtex-5 FXT, the paper's ML-507 part).
XC5VFX70T = {
    "luts": 44800,
    "registers": 44800,
    "bram36": 148,
    "dsp48": 128,
}
