"""FPGA resource estimation (Table II).

BRAM counts are exact arithmetic over the five memories' geometries
(the paper gives the head-table bit formula ``2**H * (log2 D + G)``
explicitly in §V). LUT/register counts come from a small calibrated area
model; the paper's own observation — utilisation "remains insignificant
and almost the same (~5.2+0.6 % of the Virtex-5) for all reasonable
dictionary sizes and hash sizes" — is the invariant our model must and
does reproduce: only the comparator datapath and a handful of address
bits vary with the configuration.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List

from repro.hw.bram import MemoryGeometry, XC5VFX70T
from repro.hw.memories import build_memories
from repro.hw.params import HardwareParams

# Calibrated area model constants (4-input-LUT-pair equivalents of the
# Virtex-5 6-LUT fabric). Chosen so the paper-speed configuration lands
# near the paper's ~5.2 % LZSS + ~0.6 % Huffman of the XC5VFX70T.
_LUTS_MAIN_FSM = 620
_LUTS_FILL_LOGIC = 240
_LUTS_PREFETCH_FSM = 160
_LUTS_PER_COMPARE_BYTE = 70      # byte comparator + mux + priority logic
_LUTS_PER_ADDRESS_BIT = 14       # adders, wrap logic, distance compare
_LUTS_ROTATION_PER_SPLIT = 22    # per-sub-memory rotation scanner
_LUTS_HASH_FUNCTION = 90
_LUTS_HUFFMAN_ENCODER = 270      # fixed-table pipelined encoder (§IV)
_REGISTER_FRACTION = 0.82        # FF/LUT ratio of pipelined datapaths


@dataclass
class ResourceReport:
    """Resource usage of one configuration on the XC5VFX70T."""

    params: HardwareParams
    memories: List[MemoryGeometry]
    luts: int
    registers: int

    @property
    def bram18_total(self) -> int:
        return sum(mem.bram18 for mem in self.memories)

    @property
    def bram36_total(self) -> int:
        """Whole 36 Kb blocks (two 18 Kb memories can share one)."""
        return math.ceil(self.bram18_total / 2)

    @property
    def lut_percent(self) -> float:
        return 100.0 * self.luts / XC5VFX70T["luts"]

    @property
    def register_percent(self) -> float:
        return 100.0 * self.registers / XC5VFX70T["registers"]

    @property
    def bram_percent(self) -> float:
        return 100.0 * self.bram36_total / XC5VFX70T["bram36"]

    def per_memory(self) -> Dict[str, int]:
        """Memory-name → 18 Kb unit count."""
        return {mem.name: mem.bram18 for mem in self.memories}

    def fits_device(self) -> bool:
        """Whether the configuration fits the paper's FPGA."""
        return (
            self.luts <= XC5VFX70T["luts"]
            and self.registers <= XC5VFX70T["registers"]
            and self.bram36_total <= XC5VFX70T["bram36"]
        )

    def format_table(self) -> str:
        lines = [
            f"configuration      : {self.params.describe()}",
            f"LUTs               : {self.luts} ({self.lut_percent:.1f}%)",
            f"registers          : {self.registers} "
            f"({self.register_percent:.1f}%)",
            f"BRAM (36Kb blocks) : {self.bram36_total} "
            f"({self.bram_percent:.1f}%)",
        ]
        for mem in self.memories:
            lines.append(f"  {mem.describe()}")
        return "\n".join(lines)


class ResourceEstimator:
    """Computes :class:`ResourceReport` for a configuration."""

    def __init__(self, params: HardwareParams) -> None:
        self.params = params

    def memory_geometries(self) -> List[MemoryGeometry]:
        """Geometries of the five §IV memories."""
        return [m.geometry() for m in build_memories(self.params).values()]

    def estimate_luts(self) -> int:
        p = self.params
        window_bits = p.window_size.bit_length() - 1
        luts = _LUTS_MAIN_FSM + _LUTS_FILL_LOGIC + _LUTS_HASH_FUNCTION
        if p.hash_prefetch:
            luts += _LUTS_PREFETCH_FSM
        luts += _LUTS_PER_COMPARE_BYTE * p.data_bus_bytes
        # Address datapath scales with position/hash widths.
        luts += _LUTS_PER_ADDRESS_BIT * (
            window_bits + p.gen_bits + p.hash_bits
        )
        luts += _LUTS_ROTATION_PER_SPLIT * p.resolved_head_split
        luts += _LUTS_HUFFMAN_ENCODER
        return luts

    def estimate(self) -> ResourceReport:
        luts = self.estimate_luts()
        return ResourceReport(
            params=self.params,
            memories=self.memory_geometries(),
            luts=luts,
            registers=int(luts * _REGISTER_FRACTION),
        )


def estimate_resources(params: HardwareParams) -> ResourceReport:
    """One-shot convenience wrapper."""
    return ResourceEstimator(params).estimate()
