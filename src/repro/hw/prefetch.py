"""Hash prefetching FSM model (§IV).

"A separate FSM is active during the match preparation and matching. It
buffers the data from the lookahead buffer and the hash cache and uses
the available clock cycles to prefetch (or precompute) the hash value at
offset 1 in the lookahead buffer. If no match was found (i.e. the
lookahead buffer is going to be advanced by 1 byte), the prefetched
value is routed to the head table address and the FSM goes directly to
match preparation state skipping the waiting state — requiring only 2
non-matching cycles instead of 3."

The behavioural content is a one-entry prediction: the prefetch is a
*hit* iff the main FSM advances by exactly one byte (a literal). The
class tracks hit statistics so ablation benches can report the
mechanism's value independently of the cycle model.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class PrefetchStats:
    """Hit/miss counts of the prefetch FSM."""

    hits: int = 0
    misses: int = 0

    @property
    def total(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.total if self.total else 0.0

    @property
    def cycles_saved(self) -> int:
        """Each hit removes one WAIT cycle from the main FSM."""
        return self.hits


class HashPrefetcher:
    """Prefetch FSM: predicts the next search starts at offset +1."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self.stats = PrefetchStats()
        self._armed_for: int | None = None

    def arm(self, current_pos: int) -> None:
        """During matching at ``current_pos``, prefetch hash(pos+1)."""
        if self.enabled:
            self._armed_for = current_pos + 1

    def consume(self, next_pos: int) -> bool:
        """Main FSM moves to ``next_pos``; returns True on a hit.

        A hit means the WAIT state is skipped; any other advance (a
        match skipping several bytes) wastes the prefetched value.
        """
        hit = self.enabled and self._armed_for == next_pos
        if self.enabled and self._armed_for is not None:
            if hit:
                self.stats.hits += 1
            else:
                self.stats.misses += 1
        self._armed_for = None
        return hit
