"""repro — reproduction of the IPDPSW 2012 FPGA LZSS compressor paper.

A production-quality Python library implementing:

* the ZLib-variant LZSS algorithm + fixed-table Deflate Huffman coding
  (the paper's datapath, producing ZLib-compatible streams);
* a cycle-accurate model of the paper's Virtex-5 hardware architecture
  (dual-port block RAMs, 32-bit compare buses, hash prefetch,
  generation-bit rotation avoidance);
* the design-space **estimation tool** the paper publishes: parameter
  sweeps reporting block-RAM usage, compression ratio and cycle counts;
* a pigz-style sharded parallel engine stitching concurrently
  compressed shards into single ZLib streams (:mod:`repro.parallel`);
* workload generators standing in for the paper's Wikipedia and
  automotive-CAN data sets;
* a software-baseline cost model (ZLib on the FPGA's 400 MHz PowerPC)
  used for the paper's speedup comparison.

Quickstart::

    from repro import zlib_compress, zlib_decompress
    stream = zlib_compress(b"snowy snow" * 100)
    assert zlib_decompress(stream) == b"snowy snow" * 100

    import zlib                      # CPython's inflater accepts it too
    assert zlib.decompress(stream) == b"snowy snow" * 100
"""

from repro.api import CompressRequest, compress
from repro.batch import BatchResult, compress_batch
from repro.deflate import (
    BlockStrategy,
    gzip_compress,
    gzip_decompress,
    zlib_compress,
    zlib_decompress,
)
from repro.errors import ReproError
from repro.lzss import (
    LZSSCompressor,
    Literal,
    Match,
    MatchPolicy,
    TokenArray,
    compress_tokens,
    decompress_tokens,
    policy_for_level,
)
from repro.lzss.hashchain import HashSpec
from repro.parallel import ParallelDeflateWriter, compress_parallel
from repro.profile import CompressionProfile

__version__ = "1.0.0"

__all__ = [
    "BatchResult",
    "BlockStrategy",
    "CompressionProfile",
    "CompressRequest",
    "compress",
    "compress_batch",
    "HashSpec",
    "ParallelDeflateWriter",
    "compress_parallel",
    "LZSSCompressor",
    "Literal",
    "Match",
    "MatchPolicy",
    "ReproError",
    "TokenArray",
    "compress_tokens",
    "decompress_tokens",
    "gzip_compress",
    "gzip_decompress",
    "policy_for_level",
    "zlib_compress",
    "zlib_decompress",
    "__version__",
]
