"""Streaming (chunked) compression with flush semantics.

The paper's compressor processes an unbounded stream "on-the-fly without
separate buffering and compressing stages" (§IV). This module gives the
software library the same capability: a :class:`ZLibStreamCompressor`
accepts input in arbitrary chunks, emits Deflate blocks incrementally,
and supports ZLib's ``Z_SYNC_FLUSH`` convention (an empty stored block
that byte-aligns the stream) so a log reader can decode everything
written so far — the property embedded loggers need for crash-safe logs.

Matches continue *across* chunk boundaries: the compressor keeps the
sliding window's worth of history, so chunked output is only marginally
larger than one-shot output (block framing + flush markers).
"""

from __future__ import annotations

import time
from typing import Optional

from repro.bitio.writer import BitWriter
from repro.checksums.adler32 import Adler32
from repro.deflate.block_writer import (
    BlockStrategy,
    write_block_header,
    write_fixed_block,
    write_stored_block,
)
from repro.deflate.dynamic import write_dynamic_block
from repro.deflate.splitter import (
    RefineConfig,
    write_adaptive_blocks,
)
from repro.deflate.zlib_container import make_header
from repro.errors import ConfigError
from repro.estimator.calibration import CalibrationLog, point_from_trace
from repro.lzss.compressor import LZSSCompressor
from repro.lzss.hashchain import HashSpec
from repro.lzss.policy import MatchPolicy
from repro.lzss.router import (
    RoutingDecision,
    probe_shard,
    route_shard,
)
from repro.lzss.tokens import MIN_LOOKAHEAD, TokenArray


def tokenize_chunk_with_result(
    lzss: LZSSCompressor,
    history: bytes,
    chunk: bytes,
    backend: Optional[str] = None,
):
    """Tokenise ``chunk`` with ``history`` as match source material.

    Re-runs the matcher over ``history + chunk`` and keeps only the
    tokens that start inside the new chunk. Token boundaries from any
    previous run over the history are irrelevant because the history was
    already emitted; it serves purely as the dictionary ring's contents.
    A match straddling the boundary is re-emitted as literals (boundary
    tokens cannot be split into valid shorter matches safely).

    ``history`` longer than the matcher can reach is capped here — the
    one place — so call sites never need to pre-trim; anything beyond
    ``window_size + MIN_LOOKAHEAD`` bytes back is unreachable by
    construction (ZLib's MAX_DIST).

    The split point is found by skip-scanning only the history-prefix
    tokens with a running position; the chunk's tokens — the bulk on any
    real chunk size — transfer in two C-level ``array.extend`` calls
    instead of a Python-level append per token.

    Returns ``(tokens, result)`` — the chunk's tokens plus the full
    :class:`~repro.lzss.compressor.CompressResult` of the underlying
    pass, whose ``trace`` (on the ``traced`` backend) feeds the
    traced-sampling telemetry. ``backend`` overrides the compressor's
    configured backend for this call only (the per-shard routing seam).

    Shared by :class:`ZLibStreamCompressor` (chunked streaming) and
    :mod:`repro.parallel` (carried-window shard compression); most
    callers want the :func:`tokenize_chunk` wrapper.
    """
    keep = lzss.window_size + MIN_LOOKAHEAD
    assert keep > 0
    if len(history) > keep:
        history = history[-keep:]
    base = len(history)
    data = history + chunk
    result = lzss.compress(data, backend=backend)
    src_lengths = result.tokens.lengths
    src_values = result.tokens.values
    if base == 0:
        return result.tokens, result
    tokens = TokenArray()
    # Skip tokens fully inside the history: O(tokens in history), which
    # is bounded by `keep` bytes regardless of chunk size.
    index = 0
    count = len(src_lengths)
    pos = 0
    while index < count:
        step = src_lengths[index] or 1
        if pos + step > base:
            break
        pos += step
        index += 1
    if index < count and pos < base:
        # A match straddling the boundary: its chunk-side bytes become
        # literals (it cannot be split into valid shorter matches).
        for q in range(base, pos + (src_lengths[index] or 1)):
            tokens.append_literal(data[q])
        index += 1
    tokens.lengths.extend(src_lengths[index:])
    tokens.values.extend(src_values[index:])
    return tokens, result


def tokenize_chunk(
    lzss: LZSSCompressor,
    history: bytes,
    chunk: bytes,
    backend: Optional[str] = None,
) -> TokenArray:
    """Tokenise ``chunk`` against ``history`` (tokens only).

    See :func:`tokenize_chunk_with_result` for the semantics; this
    wrapper drops the underlying :class:`CompressResult`.
    """
    return tokenize_chunk_with_result(lzss, history, chunk, backend)[0]


class ZLibStreamCompressor:
    """Incremental ZLib-compatible compressor.

    Usage::

        stream = ZLibStreamCompressor()
        out = stream.compress(chunk1)
        out += stream.flush_sync()     # decodable prefix boundary
        out += stream.compress(chunk2)
        out += stream.finish()

    The concatenated output is a valid ZLib stream decoding to
    ``chunk1 + chunk2``.
    """

    def __init__(
        self,
        window_size: Optional[int] = None,
        hash_spec: Optional[HashSpec] = None,
        policy: Optional[MatchPolicy] = None,
        strategy: Optional[BlockStrategy] = None,
        traced: Optional[bool] = None,
        tokens_per_block: Optional[int] = None,
        cut_search: Optional[bool] = None,
        sniff: Optional[bool] = None,
        backend: Optional[str] = None,
        refine: Optional[bool] = None,
        route: Optional[str] = None,
        probe_entropy_bits: Optional[float] = None,
        probe_match_density: Optional[float] = None,
        trace_fraction: Optional[float] = None,
        trace_seed: Optional[int] = None,
        router=None,
        profile=None,
    ) -> None:
        from repro.api import CompressRequest, reject_legacy_trace

        reject_legacy_trace("traced", traced)
        resolved = CompressRequest(
            profile=profile,
            window_size=window_size,
            hash_spec=hash_spec,
            policy=policy,
            strategy=strategy,
            tokens_per_block=tokens_per_block,
            cut_search=cut_search,
            sniff=sniff,
            backend=backend,
            refine=refine,
            route=route,
            probe_entropy_bits=probe_entropy_bits,
            probe_match_density=probe_match_density,
            trace_fraction=trace_fraction,
            trace_seed=trace_seed,
            router=router,
        ).resolve(backend="fast")
        if resolved.strategy is BlockStrategy.STORED:
            raise ConfigError(
                "use write_stored_block directly for stored streams"
            )
        self.window_size = resolved.window_size
        self.strategy = resolved.strategy
        self.tokens_per_block = resolved.tokens_per_block
        self.cut_search = resolved.cut_search
        self.sniff = resolved.sniff
        self.backend = resolved.backend
        # Refine applies per chunk, inside the adaptive emission, and
        # only when the cut search carries per-block plans to refine.
        self.refine = (
            RefineConfig(window_size=resolved.window_size)
            if resolved.refine and resolved.cut_search else None
        )
        # Chunks are this stream's routing unit: with route="probe" an
        # "auto" backend is re-decided per chunk from the probe, and the
        # sampling policy may divert chunks through "traced" for
        # telemetry. Bytes are identical either way.
        self.router = resolved.router
        #: One RoutingDecision per compressed chunk, in order.
        self.routing = []
        #: Traced-sample telemetry points (see repro.estimator.calibration).
        self.calibration = CalibrationLog()
        # Streams default to the trace-free production tokenizer; pass
        # backend="traced" only when the per-token record is needed.
        self._lzss = LZSSCompressor(
            resolved.window_size, resolved.hash_spec, resolved.policy,
            backend=resolved.backend,
        )
        self._chunk_index = 0
        self._writer = BitWriter()
        self._adler = Adler32()
        # History kept so matches can reach back across chunk borders.
        self._history = b""
        self._finished = False
        self._started = False
        self._total_in = 0
        # Bytes compressed since the last sync point (or stream start).
        # flush_sync() is a no-op while this is zero: the previous
        # marker already byte-aligned the stream, so another empty
        # stored block would add 5 bytes of pure overhead — the
        # empty-final-shard case a sharded writer hits whenever the
        # input ends exactly on a shard boundary.
        self._since_sync = 0

    def _header_once(self) -> None:
        if not self._started:
            self._writer.write_bytes(make_header(self.window_size))
            self._started = True

    def compress(self, chunk: bytes) -> bytes:
        """Compress one chunk; returns whatever output became final."""
        if self._finished:
            raise ConfigError("stream already finished")
        self._header_once()
        chunk = bytes(chunk)
        if not chunk:
            return self._drain()
        self._adler.update(chunk)
        self._total_in += len(chunk)
        self._since_sync += len(chunk)

        index = self._chunk_index
        self._chunk_index += 1
        config = self.router
        need_sniff = self.strategy is BlockStrategy.ADAPTIVE and self.sniff
        need_probe = config.route == "probe" and self.backend == "auto"
        probe = None
        if need_sniff or need_probe:
            # One probe per chunk, shared by the stored bypass and the
            # router — the chunk is never sniffed twice.
            probe = probe_shard(chunk, match_density=need_probe)
        if need_sniff and probe.incompressible:
            # Incompressible chunk: straight to stored blocks, no
            # tokenization. The bytes still enter the history — the
            # inflater's window holds them, so the next chunk's
            # matches may reach back into this one as usual.
            write_stored_block(self._writer, chunk, final=False)
            self.routing.append(RoutingDecision(
                backend="stored", requested=self.backend,
                route=config.route, reason="stored-bypass", probe=probe,
            ))
        else:
            decision = route_shard(
                chunk, backend=self.backend, policy=self._lzss.policy,
                config=config, index=index, probe=probe,
            )
            self.routing.append(decision)
            started = time.perf_counter()
            tokens, result = tokenize_chunk_with_result(
                self._lzss, self._history, chunk,
                backend=decision.backend,
            )
            if decision.traced_sample and result.trace is not None:
                self.calibration.add(point_from_trace(
                    index, result.trace,
                    time.perf_counter() - started,
                    policy=self._lzss.policy,
                ))
            self._emit_block(tokens, final=False, raw=chunk)
        keep = self.window_size + MIN_LOOKAHEAD
        self._history = (self._history + chunk)[-keep:]
        return self._drain()

    def flush_sync(self) -> bytes:
        """ZLib Z_SYNC_FLUSH: byte-align with an empty stored block.

        Everything emitted so far becomes independently decodable (up
        to this point) by any inflater fed the bytes so far plus this
        marker.

        Calling this when nothing was compressed since the previous
        sync point (or since the start of the stream) emits no marker:
        the stream is already byte-aligned there, so the empty stored
        block would be pure overhead. This is the empty-final-shard
        case — a chunked writer whose input ends exactly on a shard
        boundary flushes once more before finishing.
        """
        if self._finished:
            raise ConfigError("stream already finished")
        self._header_once()
        if self._since_sync == 0:
            return self._drain()
        self._since_sync = 0
        write_block_header(self._writer, 0b00, final=False)
        self._writer.align_to_byte()
        self._writer.write_bits(0, 16)
        self._writer.write_bits(0xFFFF, 16)
        return self._drain()

    def finish(self) -> bytes:
        """Terminate the stream: final block + Adler-32 trailer."""
        if self._finished:
            raise ConfigError("stream already finished")
        self._header_once()
        self._finished = True
        # An empty final block closes the Deflate layer.
        self._emit_block(TokenArray(), final=True)
        self._writer.align_to_byte()
        self._writer.write_bytes(self._adler.digest())
        return self._drain()

    @property
    def total_in(self) -> int:
        """Bytes consumed so far."""
        return self._total_in

    def _emit_block(
        self, tokens: TokenArray, final: bool, raw: bytes = b""
    ) -> None:
        if self.strategy is BlockStrategy.FIXED or len(tokens) == 0:
            write_fixed_block(self._writer, tokens, final=final)
        elif self.strategy is BlockStrategy.ADAPTIVE:
            # Per-chunk best-of-three; ``raw`` feeds stored blocks.
            write_adaptive_blocks(
                self._writer, tokens, raw, final=final,
                tokens_per_block=self.tokens_per_block,
                cut_search=self.cut_search,
                refine=self.refine,
            )
        else:
            write_dynamic_block(self._writer, tokens, final=final)

    def _drain(self) -> bytes:
        return self._writer.take_bytes()


def decompress_prefix(data: bytes) -> bytes:
    """Decode as much of a (possibly truncated) ZLib stream as possible.

    This is the crash-recovery read path for sync-flushed logs: decode
    block by block and return everything up to the last *complete*
    block, instead of raising on the truncated tail. A stream cut at a
    :meth:`ZLibStreamCompressor.flush_sync` boundary therefore yields
    exactly the data written before the flush.
    """
    from repro.bitio.reader import BitReader
    from repro.deflate.inflate import (
        _fixed_decoders,
        _inflate_compressed,
        _inflate_stored,
        _read_dynamic_tables,
    )
    from repro.deflate.zlib_container import parse_header_info
    from repro.errors import FormatError

    header = parse_header_info(data)
    reader = BitReader(data[header.size:])
    out = bytearray()
    good = 0
    try:
        while True:
            final = reader.read_bits(1)
            btype = reader.read_bits(2)
            if btype == 0b00:
                _inflate_stored(reader, out)
            elif btype == 0b01:
                litlen, dist = _fixed_decoders()
                _inflate_compressed(reader, out, litlen, dist, None)
            elif btype == 0b10:
                litlen, dist = _read_dynamic_tables(reader)
                _inflate_compressed(reader, out, litlen, dist, None)
            else:
                break
            good = len(out)
            if final:
                break
    except FormatError:
        pass
    return bytes(out[:good])


def compress_chunks(
    chunks,
    window_size: int = 4096,
    strategy: BlockStrategy = BlockStrategy.FIXED,
    sync_every_chunk: bool = False,
) -> bytes:
    """One-shot helper: compress an iterable of chunks incrementally."""
    stream = ZLibStreamCompressor(
        window_size=window_size, strategy=strategy
    )
    out = bytearray()
    for chunk in chunks:
        out += stream.compress(chunk)
        if sync_every_chunk:
            out += stream.flush_sync()
    out += stream.finish()
    return bytes(out)
