"""Seekable compressed container — the random-access direction of [6].

The paper's related work cites "LZ77-like compression with fast random
access" (Kreft & Navarro). For a logging system the practical form is a
*block-indexed* container: the stream is cut into independently
compressed blocks (each with its own dictionary, so any block decodes
alone) plus an index mapping uncompressed ranges to compressed offsets.
Reading an arbitrary byte range touches only the blocks covering it.

Layout::

    magic "LZSK" | version u8 | block_size u32 | block_count u32
    dict_size u32 | dictionary bytes          (version 2; v1 has neither)
    block_count x { compressed_offset u64, compressed_size u32,
                    uncompressed_size u32 }
    blocks... (each a complete ZLib stream; FDICT streams when a
               dictionary is present)

Version 2 embeds an optional preset dictionary shared by every block —
small blocks (fine random-access granularity) otherwise pay a heavy
cold-window penalty; the dictionary claws most of it back while keeping
blocks independently decodable.

The index lives in the header (written last, but the container is built
in memory), keeping readers single-pass-free.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import List, Optional

from repro.deflate.preset_dict import (
    compress_with_dict,
    decompress_with_dict,
)
from repro.deflate.zlib_container import compress as zlib_compress
from repro.deflate.zlib_container import decompress as zlib_decompress
from repro.errors import ConfigError, FormatError
from repro.lzss.hashchain import HashSpec
from repro.lzss.policy import MatchPolicy

_MAGIC = b"LZSK"
_VERSION_PLAIN = 1
_VERSION_DICT = 2
_HEADER = struct.Struct("<4sBII")
_DICT_LEN = struct.Struct("<I")
_ENTRY = struct.Struct("<QII")


@dataclass
class BlockEntry:
    """Index entry for one compressed block."""

    compressed_offset: int
    compressed_size: int
    uncompressed_size: int


@dataclass
class SeekableArchive:
    """A parsed seekable container."""

    block_size: int
    entries: List[BlockEntry]
    payload: bytes  # the concatenated compressed blocks
    dictionary: bytes = field(default=b"")

    @property
    def uncompressed_size(self) -> int:
        return sum(e.uncompressed_size for e in self.entries)

    @property
    def compressed_size(self) -> int:
        header = _HEADER.size + _ENTRY.size * len(self.entries)
        if self.dictionary:
            header += _DICT_LEN.size + len(self.dictionary)
        return header + len(self.payload)


def create(
    data: bytes,
    block_size: int = 64 * 1024,
    window_size: int = 4096,
    hash_spec: Optional[HashSpec] = None,
    policy: Optional[MatchPolicy] = None,
    dictionary: Optional[bytes] = None,
) -> bytes:
    """Build a seekable archive from ``data``.

    With ``dictionary`` (e.g. from
    :func:`repro.deflate.preset_dict.train_dictionary`) every block is
    an FDICT stream primed with it — worthwhile for small block sizes.
    """
    if block_size < 1024:
        raise ConfigError(f"block_size must be >= 1024: {block_size}")
    entries: List[BlockEntry] = []
    payload = bytearray()
    for start in range(0, len(data), block_size) or [0]:
        chunk = data[start:start + block_size]
        if dictionary:
            blob = compress_with_dict(
                chunk, dictionary, window_size=window_size,
                hash_spec=hash_spec, policy=policy,
            )
        else:
            blob = zlib_compress(
                chunk, window_size=window_size, hash_spec=hash_spec,
                policy=policy,
            )
        entries.append(
            BlockEntry(
                compressed_offset=len(payload),
                compressed_size=len(blob),
                uncompressed_size=len(chunk),
            )
        )
        payload += blob
    out = bytearray()
    version = _VERSION_DICT if dictionary else _VERSION_PLAIN
    out += _HEADER.pack(_MAGIC, version, block_size, len(entries))
    if dictionary:
        out += _DICT_LEN.pack(len(dictionary))
        out += dictionary
    for entry in entries:
        out += _ENTRY.pack(
            entry.compressed_offset,
            entry.compressed_size,
            entry.uncompressed_size,
        )
    out += payload
    return bytes(out)


def open_archive(blob: bytes) -> SeekableArchive:
    """Parse and validate an archive's header and index."""
    if len(blob) < _HEADER.size:
        raise FormatError("archive shorter than its header")
    magic, version, block_size, count = _HEADER.unpack_from(blob, 0)
    if magic != _MAGIC:
        raise FormatError(f"bad magic {magic!r}")
    if version not in (_VERSION_PLAIN, _VERSION_DICT):
        raise FormatError(f"unsupported version {version}")
    offset = _HEADER.size
    dictionary = b""
    if version == _VERSION_DICT:
        if offset + _DICT_LEN.size > len(blob):
            raise FormatError("truncated dictionary length")
        (dict_len,) = _DICT_LEN.unpack_from(blob, offset)
        offset += _DICT_LEN.size
        if offset + dict_len > len(blob):
            raise FormatError("truncated dictionary")
        dictionary = blob[offset:offset + dict_len]
        offset += dict_len
        if not dictionary:
            raise FormatError("version-2 archive with empty dictionary")
    entries: List[BlockEntry] = []
    for _ in range(count):
        if offset + _ENTRY.size > len(blob):
            raise FormatError("truncated block index")
        coff, csize, usize = _ENTRY.unpack_from(blob, offset)
        entries.append(BlockEntry(coff, csize, usize))
        offset += _ENTRY.size
    payload = blob[offset:]
    for entry in entries:
        if entry.compressed_offset + entry.compressed_size > len(payload):
            raise FormatError("block index points past the payload")
    # Every block but the last must be exactly block_size long.
    for entry in entries[:-1]:
        if entry.uncompressed_size != block_size:
            raise FormatError("non-final block with irregular size")
    return SeekableArchive(
        block_size=block_size, entries=entries, payload=payload,
        dictionary=dictionary,
    )


def _decode_block(archive: SeekableArchive, index: int) -> bytes:
    entry = archive.entries[index]
    blob = archive.payload[
        entry.compressed_offset:
        entry.compressed_offset + entry.compressed_size
    ]
    if archive.dictionary:
        data = decompress_with_dict(blob, archive.dictionary)
    else:
        data = zlib_decompress(blob)
    if len(data) != entry.uncompressed_size:
        raise FormatError(
            f"block {index} decoded to {len(data)} bytes, "
            f"index says {entry.uncompressed_size}"
        )
    return data


def read_range(blob: bytes, start: int, length: int) -> bytes:
    """Random-access read: decompress only the blocks covering the range.

    Returns fewer bytes than requested when the range passes the end of
    the archive (file-like semantics).
    """
    if start < 0 or length < 0:
        raise ConfigError("start and length must be non-negative")
    archive = open_archive(blob)
    total = archive.uncompressed_size
    if start >= total or length == 0:
        return b""
    end = min(start + length, total)
    first = start // archive.block_size
    last = (end - 1) // archive.block_size
    pieces = []
    for index in range(first, last + 1):
        pieces.append(_decode_block(archive, index))
    joined = b"".join(pieces)
    base = first * archive.block_size
    return joined[start - base:end - base]


def read_all(blob: bytes) -> bytes:
    """Decode the entire archive (sanity/round-trip path)."""
    archive = open_archive(blob)
    return b"".join(
        _decode_block(archive, i) for i in range(len(archive.entries))
    )


def blocks_touched(blob: bytes, start: int, length: int) -> int:
    """How many blocks a range read would decompress (for tests/benches)."""
    archive = open_archive(blob)
    total = archive.uncompressed_size
    if start >= total or length == 0:
        return 0
    end = min(start + length, total)
    return (end - 1) // archive.block_size - start // archive.block_size + 1
