"""Entropy sniff: route incompressible shards straight to STORED.

A shard of uniform random bytes pays the full LZSS tokenization — the
most expensive stage of the pipeline — only for the adaptive splitter to
discover that every block prices cheapest as STORED. The GPU/ASIC
accelerators make the same observation (GPULZ's prefix scan and the LZ4
accelerator's early reject both skip low-yield regions to sustain
throughput on incompressible data); the software analogue is a cheap
statistical sniff on the raw bytes *before* the tokenizer runs.

Two signals, both sampled so the sniff stays O(sample) not O(shard):

* **order-0 entropy** of a strided byte sample across the whole shard
  (:func:`sampled_entropy_bits`). Uniform random data measures ~7.99
  bits/byte; anything a Huffman stage could squeeze sits well below the
  :data:`ENTROPY_BYPASS_BITS` threshold.
* **trigram repeats** in short contiguous probe windows
  (:func:`trigram_repeat_fraction`). Order-0 entropy is blind to LZ
  structure — a 0,1,...,255 ramp has maximal byte entropy yet compresses
  almost entirely into matches — so the bypass additionally requires
  that almost no 3-byte window recurs within the probes (a recurring
  trigram is exactly what seeds an LZSS match).

Only when *both* signals say "no yield" does
:func:`looks_incompressible` return True and the shard pipeline
(:func:`repro.parallel.engine.compress_shard_body`,
:class:`repro.deflate.stream.ZLibStreamCompressor`) emit multi-chunk
stored blocks directly, skipping tokenization entirely. A false
negative merely runs the normal adaptive path; a false positive costs
at most the stored framing (~9 bytes per 64 KiB) on data that would
not have compressed anyway — the sniff never affects correctness, only
where the wall-clock goes.
"""

from __future__ import annotations

import math
from collections import Counter

#: Strided-sample budget for the order-0 entropy estimate.
SNIFF_SAMPLE_BYTES = 1 << 16

#: Length of each contiguous trigram probe window.
SNIFF_PROBE_BYTES = 1 << 13

#: Bypass only above this order-0 entropy (bits/byte). Random data
#: measures ~7.99 even on modest samples (the sample-size bias of the
#: plug-in estimator is ~K/(2N ln 2) ≈ 0.01 bits at 16 KiB); real text
#: and binaries sit at 4-7.5.
ENTROPY_BYPASS_BITS = 7.8

#: Bypass only when fewer than this fraction of probe trigrams recur.
#: A uniform random 8 KiB window repeats ~0.4% of its trigrams
#: (birthday bound over 2^24); LZ-compressible data repeats most.
TRIGRAM_REPEAT_LIMIT = 0.05

#: Below this size the tokenizer is cheap and the sniff is noise.
MIN_SNIFF_BYTES = 4096


def sampled_entropy_bits(data, sample_bytes: int = SNIFF_SAMPLE_BYTES
                         ) -> float:
    """Order-0 entropy (bits/byte) of a strided sample of ``data``.

    The stride spreads the sample across the whole buffer, so a shard
    that is half text and half noise measures the mixture's entropy,
    not the prefix's.
    """
    view = memoryview(data)
    n = len(view)
    if n == 0:
        return 0.0
    step = max(1, n // sample_bytes)
    sampled = view[::step] if step > 1 else view
    total = len(sampled)
    acc = 0.0
    for count in Counter(bytes(sampled)).values():
        p = count / total
        acc -= p * math.log2(p)
    return acc


def trigram_repeat_fraction(data, probe_bytes: int = SNIFF_PROBE_BYTES
                            ) -> float:
    """Fraction of probe-window trigrams that recur within their window.

    Probes the head and the middle of ``data`` (two windows of
    ``probe_bytes``), returning the larger repeat fraction — if either
    region shows match-seeding structure, the shard is worth
    tokenizing.
    """
    data = bytes(data)
    n = len(data)
    if n < 3:
        return 0.0
    starts = [0]
    mid = (n - probe_bytes) // 2
    if mid > probe_bytes:
        starts.append(mid)
    worst = 0.0
    for start in starts:
        window = data[start:start + probe_bytes]
        positions = len(window) - 2
        if positions <= 0:
            continue
        seen = set()
        repeats = 0
        for i in range(positions):
            trigram = window[i:i + 3]
            if trigram in seen:
                repeats += 1
            else:
                seen.add(trigram)
        worst = max(worst, repeats / positions)
    return worst


def incompressible_from_signals(
    input_bytes: int, entropy_bits: float, trigram_repeat: float
) -> bool:
    """The stored-bypass verdict from already-computed signals.

    Split out so a caller that measured the signals once (the per-shard
    router probe, :func:`repro.lzss.router.probe_shard`) can reuse them
    for the bypass decision instead of sniffing the shard a second
    time. Must stay the single source of the thresholds:
    :func:`looks_incompressible` and the router probe agree by
    construction because both call here.
    """
    if input_bytes < MIN_SNIFF_BYTES:
        return False
    if entropy_bits < ENTROPY_BYPASS_BITS:
        return False
    return trigram_repeat < TRIGRAM_REPEAT_LIMIT


def looks_incompressible(data) -> bool:
    """True when ``data`` should skip tokenization and go STORED.

    The decision point of the stored bypass: both the entropy and the
    trigram signal must clear their thresholds. Small buffers never
    bypass — their tokenization is cheap and the sample too noisy.
    """
    if len(data) < MIN_SNIFF_BYTES:
        return False
    entropy = sampled_entropy_bits(data)
    if entropy < ENTROPY_BYPASS_BITS:
        # Cheap short-circuit: no need for the trigram pass.
        return False
    return incompressible_from_signals(
        len(data), entropy, trigram_repeat_fraction(data)
    )
