"""Full Deflate decoder (RFC 1951): stored, fixed and dynamic blocks.

Independent of CPython's :mod:`zlib`; the test suite cross-validates it
in both directions (our inflate on zlib's output, zlib's inflate on
ours). The decoder enforces the structural rules a hardware decompressor
would: LEN/NLEN complement check, complete Huffman code sets (with the
single-code exceptions the spec allows), and in-range back-references.
"""

from __future__ import annotations

from typing import Optional

from repro.bitio.reader import BitReader
from repro.deflate.constants import (
    CODE_LENGTH_ORDER,
    END_OF_BLOCK,
    distance_from_symbol,
    length_from_symbol,
    DISTANCE_TABLE,
    LENGTH_TABLE,
)
from repro.errors import DeflateError
from repro.huffman.decoder import HuffmanDecoder
from repro.huffman.fixed import FIXED_DIST_LENGTHS, FIXED_LITLEN_LENGTHS

_FIXED_LITLEN_DECODER: Optional[HuffmanDecoder] = None
_FIXED_DIST_DECODER: Optional[HuffmanDecoder] = None


def _fixed_decoders():
    global _FIXED_LITLEN_DECODER, _FIXED_DIST_DECODER
    if _FIXED_LITLEN_DECODER is None:
        _FIXED_LITLEN_DECODER = HuffmanDecoder(FIXED_LITLEN_LENGTHS)
        _FIXED_DIST_DECODER = HuffmanDecoder(FIXED_DIST_LENGTHS)
    return _FIXED_LITLEN_DECODER, _FIXED_DIST_DECODER


def inflate(data: bytes, max_output: Optional[int] = None) -> bytes:
    """Decode a complete Deflate stream to bytes.

    ``max_output`` guards against decompression bombs in callers that
    feed untrusted input; ``None`` means unlimited.
    """
    reader = BitReader(data)
    out = bytearray()
    while True:
        final = reader.read_bits(1)
        btype = reader.read_bits(2)
        if btype == 0b00:
            _inflate_stored(reader, out)
        elif btype == 0b01:
            litlen, dist = _fixed_decoders()
            _inflate_compressed(reader, out, litlen, dist, max_output)
        elif btype == 0b10:
            litlen, dist = _read_dynamic_tables(reader)
            _inflate_compressed(reader, out, litlen, dist, max_output)
        else:
            raise DeflateError("reserved block type 11")
        if max_output is not None and len(out) > max_output:
            raise DeflateError(
                f"output exceeds max_output={max_output} bytes"
            )
        if final:
            return bytes(out)


def inflate_with_tail(data: bytes) -> tuple:
    """Like :func:`inflate` but also return the consumed byte count.

    Containers need this to locate their trailing checksum.
    """
    reader = BitReader(data)
    out = bytearray()
    while True:
        final = reader.read_bits(1)
        btype = reader.read_bits(2)
        if btype == 0b00:
            _inflate_stored(reader, out)
        elif btype == 0b01:
            litlen, dist = _fixed_decoders()
            _inflate_compressed(reader, out, litlen, dist, None)
        elif btype == 0b10:
            litlen, dist = _read_dynamic_tables(reader)
            _inflate_compressed(reader, out, litlen, dist, None)
        else:
            raise DeflateError("reserved block type 11")
        if final:
            consumed = (reader.bits_consumed + 7) // 8
            return bytes(out), consumed


def _inflate_stored(reader: BitReader, out: bytearray) -> None:
    reader.align_to_byte()
    length = reader.read_bits(16)
    nlen = reader.read_bits(16)
    if length ^ nlen != 0xFFFF:
        raise DeflateError(
            f"stored block LEN/NLEN mismatch: {length:#06x}/{nlen:#06x}"
        )
    out.extend(reader.read_bytes(length))


def _read_dynamic_tables(reader: BitReader):
    hlit = reader.read_bits(5) + 257
    hdist = reader.read_bits(5) + 1
    hclen = reader.read_bits(4) + 4
    if hlit > 286:
        raise DeflateError(f"HLIT {hlit} exceeds 286")
    if hdist > 30:
        raise DeflateError(f"HDIST {hdist} exceeds 30")
    cl_lengths = [0] * 19
    for index in range(hclen):
        cl_lengths[CODE_LENGTH_ORDER[index]] = reader.read_bits(3)
    cl_decoder = HuffmanDecoder(cl_lengths, max_bits=7)

    lengths = []
    while len(lengths) < hlit + hdist:
        symbol = cl_decoder.decode(reader)
        if symbol < 16:
            lengths.append(symbol)
        elif symbol == 16:
            if not lengths:
                raise DeflateError("repeat code with no previous length")
            repeat = reader.read_bits(2) + 3
            lengths.extend([lengths[-1]] * repeat)
        elif symbol == 17:
            repeat = reader.read_bits(3) + 3
            lengths.extend([0] * repeat)
        else:  # 18
            repeat = reader.read_bits(7) + 11
            lengths.extend([0] * repeat)
    if len(lengths) != hlit + hdist:
        raise DeflateError("code length run overflows HLIT+HDIST")

    litlen_lengths = lengths[:hlit]
    dist_lengths = lengths[hlit:]
    if litlen_lengths[END_OF_BLOCK] == 0:
        raise DeflateError("end-of-block symbol has no code")
    litlen = HuffmanDecoder(litlen_lengths)
    if any(dist_lengths):
        # A single distance code may legally be incomplete (one code of
        # one bit); used for e.g. whole-file RLE streams.
        dist = HuffmanDecoder(dist_lengths, allow_incomplete=True)
    else:
        dist = None
    return litlen, dist


def _inflate_compressed(
    reader: BitReader,
    out: bytearray,
    litlen: HuffmanDecoder,
    dist: Optional[HuffmanDecoder],
    max_output: Optional[int],
) -> None:
    while True:
        symbol = litlen.decode(reader)
        if symbol < 256:
            out.append(symbol)
        elif symbol == END_OF_BLOCK:
            return
        else:
            if symbol > 285:
                raise DeflateError(f"invalid length symbol {symbol}")
            extra = LENGTH_TABLE[symbol - 257][1]
            length = length_from_symbol(symbol, reader.read_bits(extra))
            if dist is None:
                raise DeflateError(
                    "length/distance pair in a block with no distance codes"
                )
            dsymbol = dist.decode(reader)
            if dsymbol > 29:
                raise DeflateError(f"invalid distance symbol {dsymbol}")
            dextra = DISTANCE_TABLE[dsymbol][1]
            distance = distance_from_symbol(dsymbol, reader.read_bits(dextra))
            start = len(out) - distance
            if start < 0:
                raise DeflateError(
                    f"back-reference distance {distance} precedes output "
                    f"start ({len(out)} bytes emitted)"
                )
            if distance >= length:
                out.extend(out[start:start + length])
            else:
                for i in range(length):
                    out.append(out[start + i])
        if max_output is not None and len(out) > max_output:
            raise DeflateError(
                f"output exceeds max_output={max_output} bytes"
            )
