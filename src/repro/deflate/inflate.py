"""Full Deflate decoder (RFC 1951): stored, fixed and dynamic blocks.

Independent of CPython's :mod:`zlib`; the test suite cross-validates it
in both directions (our inflate on zlib's output, zlib's inflate on
ours) and a differential fuzz suite feeds both decoders the same
malformed streams. The decoder enforces the structural rules a hardware
decompressor would: LEN/NLEN complement check, complete Huffman code
sets (with the single-code exceptions the spec allows), and in-range
back-references.

The compressed-block hot path is vectorised in spirit even where it is
scalar in code: the :class:`~repro.huffman.decoder.HuffmanDecoder`
tables resolve literal *runs* and fused length+extra records per
lookup, the bit buffer refills a 64-bit word at a time (one
``int.from_bytes`` per token instead of per byte), and back-reference
copies are slice/period-trick bulk operations. With numpy installed an
alternative engine decodes each block to token arrays and materialises
the output with a GPULZ-style gather (log-rounds pointer doubling
instead of a per-match Python loop); ``engine="auto"`` keeps the scalar
path, which benchmarks faster at typical block sizes — see
docs/PERFORMANCE.md for the measured crossover.

``max_output`` bounds are enforced *mid-stream*: stored blocks check
before extending, compressed blocks after each token, and the numpy
engine before materialising a block — a decompression bomb aborts
after at most one token (≤ 258 bytes) of overshoot, never after
inflating the whole stream.
"""

from __future__ import annotations

from array import array
from typing import Optional, Tuple

try:  # numpy accelerates back-reference materialisation; never required
    import numpy as _np
except ImportError:  # pragma: no cover - exercised by the no-numpy CI job
    _np = None

from repro.bitio.reader import BitReader
from repro.deflate.constants import CODE_LENGTH_ORDER, END_OF_BLOCK
from repro.errors import DeflateError
from repro.huffman.decoder import LITLEN_FAST_BITS, HuffmanDecoder
from repro.huffman.fixed import FIXED_DIST_LENGTHS, FIXED_LITLEN_LENGTHS

_FIXED_DECODERS: Optional[tuple] = None


def _fixed_decoders():
    global _FIXED_DECODERS
    if _FIXED_DECODERS is None:
        _FIXED_DECODERS = (
            HuffmanDecoder(FIXED_LITLEN_LENGTHS, role="litlen",
                           fast_bits=LITLEN_FAST_BITS),
            HuffmanDecoder(FIXED_DIST_LENGTHS, role="dist"),
        )
    return _FIXED_DECODERS


def inflate(
    data: bytes,
    max_output: Optional[int] = None,
    zdict: bytes = b"",
    engine: str = "auto",
) -> bytes:
    """Decode a complete Deflate stream to bytes.

    ``max_output`` guards against decompression bombs in callers that
    feed untrusted input (``None`` means unlimited); decoding aborts
    mid-stream, before the output can grow unboundedly. ``zdict``
    primes the back-reference history, as a preset dictionary (RFC 1950
    FDICT) does — the dictionary bytes are referenceable but not part
    of the returned payload. ``engine`` selects the block decoder:
    ``"scalar"``, ``"numpy"`` (gather-based materialisation, requires
    numpy) or ``"auto"``.
    """
    payload, _ = _decode_stream(data, max_output, zdict, engine)
    return payload


def inflate_with_tail(
    data: bytes,
    max_output: Optional[int] = None,
    zdict: bytes = b"",
    engine: str = "auto",
) -> Tuple[bytes, int]:
    """Like :func:`inflate` but also return the consumed byte count.

    Containers need this to locate their trailing checksum; they thread
    ``max_output`` through so the bomb guard holds *before* the
    checksum is ever reached.
    """
    return _decode_stream(data, max_output, zdict, engine)


def _decode_stream(
    data: bytes,
    max_output: Optional[int],
    zdict: bytes,
    engine: str = "auto",
) -> Tuple[bytes, int]:
    """The shared block loop behind :func:`inflate` and
    :func:`inflate_with_tail` (one implementation, two return shapes)."""
    if engine not in ("auto", "scalar", "numpy"):
        raise DeflateError(f"unknown inflate engine: {engine!r}")
    if engine == "numpy" and _np is None:
        raise DeflateError("inflate engine 'numpy' requires numpy")
    # "auto" resolves to the scalar path: slice-based copies beat the
    # gather rounds at zlib block sizes (docs/PERFORMANCE.md).
    compressed = (
        _inflate_compressed_np if engine == "numpy" else _inflate_compressed
    )
    reader = BitReader(data)
    out = bytearray(zdict)
    base = len(out)
    limit = None if max_output is None else base + max_output
    while True:
        final = reader.read_bits(1)
        btype = reader.read_bits(2)
        if btype == 0b00:
            _inflate_stored(reader, out, limit)
        elif btype == 0b01:
            litlen, dist = _fixed_decoders()
            compressed(reader, out, litlen, dist, limit)
        elif btype == 0b10:
            litlen, dist = _read_dynamic_tables(reader)
            compressed(reader, out, litlen, dist, limit)
        else:
            raise DeflateError("reserved block type 11")
        if final:
            break
    consumed = (reader.bits_consumed + 7) // 8
    if base:
        del out[:base]
    return bytes(out), consumed


def _inflate_stored(
    reader: BitReader,
    out: bytearray,
    limit: Optional[int] = None,
) -> None:
    reader.align_to_byte()
    length = reader.read_bits(16)
    nlen = reader.read_bits(16)
    if length ^ nlen != 0xFFFF:
        raise DeflateError(
            f"stored block LEN/NLEN mismatch: {length:#06x}/{nlen:#06x}"
        )
    # Checked *before* the copy: a stored bomb must not be able to
    # overshoot the guard by up to 64 KiB per block.
    if limit is not None and len(out) + length > limit:
        raise DeflateError(
            f"stored block of {length} bytes exceeds max_output"
        )
    out.extend(reader.read_bytes(length))


def _read_dynamic_tables(reader: BitReader):
    hlit = reader.read_bits(5) + 257
    hdist = reader.read_bits(5) + 1
    hclen = reader.read_bits(4) + 4
    if hlit > 286:
        raise DeflateError(f"HLIT {hlit} exceeds 286")
    if hdist > 30:
        raise DeflateError(f"HDIST {hdist} exceeds 30")
    cl_lengths = [0] * 19
    for index in range(hclen):
        cl_lengths[CODE_LENGTH_ORDER[index]] = reader.read_bits(3)
    cl_decoder = HuffmanDecoder(cl_lengths, max_bits=7)

    lengths = []
    while len(lengths) < hlit + hdist:
        symbol = cl_decoder.decode(reader)
        if symbol < 16:
            lengths.append(symbol)
        elif symbol == 16:
            if not lengths:
                raise DeflateError("repeat code with no previous length")
            repeat = reader.read_bits(2) + 3
            lengths.extend([lengths[-1]] * repeat)
        elif symbol == 17:
            repeat = reader.read_bits(3) + 3
            lengths.extend([0] * repeat)
        else:  # 18
            repeat = reader.read_bits(7) + 11
            lengths.extend([0] * repeat)
    if len(lengths) != hlit + hdist:
        raise DeflateError("code length run overflows HLIT+HDIST")

    litlen_lengths = lengths[:hlit]
    dist_lengths = lengths[hlit:]
    if litlen_lengths[END_OF_BLOCK] == 0:
        raise DeflateError("end-of-block symbol has no code")
    # Incomplete litlen/dist sets are rejected except zlib's one
    # tolerated shape — exactly one code of one bit (a lone EOB litlen
    # code, or the single distance code of an RLE-only stream). The
    # code-length code above gets no such exemption.
    litlen = HuffmanDecoder(litlen_lengths, allow_incomplete=True,
                            role="litlen", fast_bits=LITLEN_FAST_BITS)
    if any(dist_lengths):
        dist = HuffmanDecoder(dist_lengths, allow_incomplete=True,
                              role="dist")
    else:
        dist = None
    return litlen, dist


def _inflate_compressed(
    reader: BitReader,
    out: bytearray,
    litlen: HuffmanDecoder,
    dist: Optional[HuffmanDecoder],
    limit: Optional[int],
) -> None:
    """Decode one compressed block's symbols into ``out`` (scalar path).

    The reader state is hoisted into locals for the duration of the
    block (zlib's LOAD/RESTORE discipline); every iteration refills the
    bit buffer to >= 48 bits with at most one 64-bit word load — enough
    for the longest possible token (15+5 length bits, 15+13 distance
    bits). Table entries resolve literal runs and fused length /
    distance values; see :mod:`repro.huffman.decoder` for the layout.

    End-of-input is detected lazily: the refill branch raises once the
    buffer runs dry (every entry consumes >= 1 bit, so a truncated
    stream reaches ``bitcount <= 0`` after at most a few tokens of
    zero-padding garbage) instead of the loop body paying a bounds
    check per token. Callers discard ``out`` when the decoder raises,
    so the short-lived garbage never escapes.

    Unbounded decodes (``limit is None`` — the common trusted-input
    case, and the benchmarked one) dispatch to
    :func:`_inflate_compressed_uncapped`, which drops the per-token
    ``max_output`` accounting entirely; this loop is the guarded
    variant that pays the check on every token.
    """
    if limit is None:
        _inflate_compressed_uncapped(reader, out, litlen, dist)
        return
    data, pos, bitbuf, bitcount = reader.load_state()
    ltable = litlen._table
    lmask = litlen.fast_mask
    lbits = litlen.fast_bits
    if dist is not None:
        dtable = dist._table
        dmask = dist.fast_mask
        dbits = dist.fast_bits
    else:
        # Left unbound on purpose: a length code in a distance-free
        # block trips the NameError handler below, so the hot loop
        # never pays a per-match ``dist is None`` test.
        dmask = 0
    cap = limit
    from_bytes = int.from_bytes
    try:
        while True:
            if bitcount < 48:
                chunk = data[pos:pos + 16]
                if chunk:
                    n = len(chunk)
                    bitbuf |= from_bytes(chunk, "little") << bitcount
                    pos += n
                    bitcount += n << 3
                elif bitcount <= 0:
                    raise DeflateError("unexpected end of bitstream")
            kind, nbits, first, a, b = ltable[bitbuf & lmask]
            if kind == 4:
                kind, nbits, first, a, b = \
                    ltable[a + ((bitbuf >> lbits) & b)]
            # Dispatch in hot-loop frequency order: fused lengths lead
            # on match-heavy streams, literal runs on literal-heavy
            # ones, raw base+extra records and end-of-block trail.
            if kind == 1:
                bitbuf >>= nbits
                bitcount -= nbits
            elif kind == 0:
                bitbuf >>= nbits
                bitcount -= nbits
                out += a
                if len(out) > cap:
                    raise DeflateError("output exceeds max_output")
                continue
            elif kind == 3:
                a += (bitbuf >> first) & b
                bitbuf >>= nbits
                bitcount -= nbits
            elif kind == 2:
                bitcount -= nbits
                if bitcount < 0:
                    raise DeflateError("unexpected end of bitstream")
                reader.save_state(pos, bitbuf >> nbits, bitcount)
                return
            else:
                raise DeflateError("undecodable literal/length code")
            kind, nbits, first, distance, b = dtable[bitbuf & dmask]
            if kind == 3:
                distance += (bitbuf >> first) & b
                bitbuf >>= nbits
                bitcount -= nbits
            elif kind == 1:
                bitbuf >>= nbits
                bitcount -= nbits
            else:
                if kind != 4:
                    raise DeflateError(
                        "undecodable or invalid distance code"
                    )
                kind, nbits, first, distance, b = \
                    dtable[distance + ((bitbuf >> dbits) & b)]
                if kind == 3:
                    distance += (bitbuf >> first) & b
                elif kind != 1:
                    raise DeflateError(
                        "undecodable or invalid distance code"
                    )
                bitbuf >>= nbits
                bitcount -= nbits
            length = a
            start = len(out) - distance
            if start < 0:
                raise DeflateError(
                    f"back-reference distance {distance} precedes output "
                    f"start ({len(out)} bytes emitted)"
                )
            if distance >= length:
                out += out[start:start + length]
            elif distance == 1:
                out += out[start:] * length
            else:
                # Overlapping copy: tile the period, not a byte loop.
                segment = bytes(out[start:])
                out += (segment * (length // distance + 1))[:length]
            if len(out) > cap:
                raise DeflateError("output exceeds max_output")
    except NameError:
        raise DeflateError(
            "length/distance pair in a block with no distance codes"
        ) from None


def _inflate_compressed_uncapped(
    reader: BitReader,
    out: bytearray,
    litlen: HuffmanDecoder,
    dist: Optional[HuffmanDecoder],
) -> None:
    """The ``max_output=None`` specialisation of the scalar hot loop.

    Identical decode semantics to :func:`_inflate_compressed`, minus
    the per-token output-budget accounting (roughly one ``len`` call
    and compare per token), plus a literal-burst inner loop: once a
    literal-run entry hits, consecutive literal entries are drained
    without re-entering the outer dispatch. The burst only looks ahead
    while >= 24 buffered bits remain — more than any litlen entry
    consumes — so a rejected lookahead entry is simply re-decoded by
    the outer loop with identical state.
    """
    data, pos, bitbuf, bitcount = reader.load_state()
    ltable = litlen._table
    lmask = litlen.fast_mask
    lbits = litlen.fast_bits
    if dist is not None:
        dtable = dist._table
        dmask = dist.fast_mask
        dbits = dist.fast_bits
    else:
        # Unbound on purpose — see _inflate_compressed.
        dmask = 0
    from_bytes = int.from_bytes
    try:
        while True:
            if bitcount < 48:
                chunk = data[pos:pos + 16]
                if chunk:
                    n = len(chunk)
                    bitbuf |= from_bytes(chunk, "little") << bitcount
                    pos += n
                    bitcount += n << 3
                elif bitcount <= 0:
                    raise DeflateError("unexpected end of bitstream")
            kind, nbits, first, a, b = ltable[bitbuf & lmask]
            # The fused-length branch leads: on match-heavy streams it
            # takes nearly every iteration, and the rare long codes
            # (subtable links) re-dispatch inside the cold tail branch
            # so the hot branches never pay for them.
            if kind == 1:
                bitbuf >>= nbits
                bitcount -= nbits
            elif kind == 0:
                # Literal burst: drain consecutive literal-run entries
                # without re-entering the outer dispatch. Lookahead
                # only proceeds with >= 24 buffered bits — more than
                # any root entry consumes — so a rejected entry is
                # re-decoded by the outer loop with identical state.
                while True:
                    bitbuf >>= nbits
                    bitcount -= nbits
                    out += a
                    if bitcount < 24:
                        break
                    kind, nbits, first, a, b = ltable[bitbuf & lmask]
                    if kind:
                        break
                continue
            elif kind == 3:
                a += (bitbuf >> first) & b
                bitbuf >>= nbits
                bitcount -= nbits
            elif kind == 2:
                bitcount -= nbits
                if bitcount < 0:
                    raise DeflateError("unexpected end of bitstream")
                reader.save_state(pos, bitbuf >> nbits, bitcount)
                return
            else:
                if kind != 4:
                    raise DeflateError("undecodable literal/length code")
                kind, nbits, first, a, b = \
                    ltable[a + ((bitbuf >> lbits) & b)]
                if kind == 1:
                    bitbuf >>= nbits
                    bitcount -= nbits
                elif kind == 0:
                    bitbuf >>= nbits
                    bitcount -= nbits
                    out += a
                    continue
                elif kind == 3:
                    a += (bitbuf >> first) & b
                    bitbuf >>= nbits
                    bitcount -= nbits
                elif kind == 2:
                    bitcount -= nbits
                    if bitcount < 0:
                        raise DeflateError("unexpected end of bitstream")
                    reader.save_state(pos, bitbuf >> nbits, bitcount)
                    return
                else:
                    raise DeflateError("undecodable literal/length code")
            kind, nbits, first, distance, b = dtable[bitbuf & dmask]
            if kind == 3:
                distance += (bitbuf >> first) & b
                bitbuf >>= nbits
                bitcount -= nbits
            elif kind == 1:
                bitbuf >>= nbits
                bitcount -= nbits
            else:
                if kind != 4:
                    raise DeflateError(
                        "undecodable or invalid distance code"
                    )
                kind, nbits, first, distance, b = \
                    dtable[distance + ((bitbuf >> dbits) & b)]
                if kind == 3:
                    distance += (bitbuf >> first) & b
                elif kind != 1:
                    raise DeflateError(
                        "undecodable or invalid distance code"
                    )
                bitbuf >>= nbits
                bitcount -= nbits
            start = len(out) - distance
            if start < 0:
                raise DeflateError(
                    f"back-reference distance {distance} precedes output "
                    f"start ({len(out)} bytes emitted)"
                )
            if distance >= a:
                out += out[start:start + a]
            elif distance == 1:
                out += out[start:] * a
            else:
                # Overlapping copy: tile the period, not a byte loop.
                segment = bytes(out[start:])
                out += (segment * (a // distance + 1))[:a]
    except NameError:
        raise DeflateError(
            "length/distance pair in a block with no distance codes"
        ) from None


def _inflate_compressed_np(
    reader: BitReader,
    out: bytearray,
    litlen: HuffmanDecoder,
    dist: Optional[HuffmanDecoder],
    limit: Optional[int],
) -> None:
    """Numpy engine: decode to token arrays, then gather-materialise.

    Phase 1 runs the same table-driven bit loop as the scalar path but
    emits (literal bytes, per-match literal-run lengths, match lengths,
    match distances) instead of touching ``out``. Phase 2 resolves
    every back-reference with vectorised pointer doubling — the
    software shape of GPULZ's parallel decode — so no per-match Python
    loop runs at all. The bomb guard is enforced on the running token
    totals, before any output is allocated.
    """
    data, pos, bitbuf, bitcount = reader.load_state()
    ltable = litlen._table
    lmask = litlen.fast_mask
    lbits = litlen.fast_bits
    if dist is not None:
        dtable = dist._table
        dmask = dist.fast_mask
        dbits = dist.fast_bits
    cap = (1 << 63) if limit is None else limit
    history = len(out)
    produced = history  # running output size, for distance/limit checks

    lits = bytearray()
    runs = array("l")       # literals preceding each match
    lens = array("l")
    dists = array("l")
    run = 0                 # literals since the last match

    while True:
        if bitcount < 48:
            chunk = data[pos:pos + 16]
            if chunk:
                n = len(chunk)
                bitbuf |= int.from_bytes(chunk, "little") << bitcount
                pos += n
                bitcount += n << 3
            elif bitcount <= 0:
                raise DeflateError("unexpected end of bitstream")
        kind, nbits, first, a, b = ltable[bitbuf & lmask]
        if kind == 4:
            kind, nbits, first, a, b = ltable[a + ((bitbuf >> lbits) & b)]
        if kind == 3:
            # Extra bits sit right after the code: read them from the
            # unconsumed buffer, then one shift covers code + extras.
            length = a + ((bitbuf >> first) & b)
            bitbuf >>= nbits
            bitcount -= nbits
        else:
            bitbuf >>= nbits
            bitcount -= nbits
            if kind == 0:
                lits += a
                run += b
                produced += b
                if produced > cap:
                    raise DeflateError("output exceeds max_output")
                continue
            if kind == 1:
                length = a
            elif kind == 2:
                if bitcount < 0:
                    raise DeflateError("unexpected end of bitstream")
                reader.save_state(pos, bitbuf, bitcount)
                _materialize_np(out, lits, runs, lens, dists)
                return
            else:
                raise DeflateError("undecodable literal/length code")
        if dist is None:
            raise DeflateError(
                "length/distance pair in a block with no distance codes"
            )
        kind, nbits, first, a, b = dtable[bitbuf & dmask]
        if kind == 4:
            kind, nbits, first, a, b = dtable[a + ((bitbuf >> dbits) & b)]
        if kind == 3:
            distance = a + ((bitbuf >> first) & b)
        elif kind == 1:
            distance = a
        else:
            raise DeflateError("undecodable or invalid distance code")
        bitbuf >>= nbits
        bitcount -= nbits
        if distance > produced:
            raise DeflateError(
                f"back-reference distance {distance} precedes output "
                f"start ({produced} bytes emitted)"
            )
        runs.append(run)
        run = 0
        lens.append(length)
        dists.append(distance)
        produced += length
        if produced > cap:
            raise DeflateError("output exceeds max_output")


def _grouped_arange(counts):
    """``[0..counts[0]), [0..counts[1]), ...`` concatenated (numpy)."""
    np = _np
    total = int(counts.sum())
    ends = np.cumsum(counts)
    return np.arange(total, dtype=counts.dtype) - np.repeat(
        ends - counts, counts
    )


def _materialize_np(out, lits, runs, lens, dists) -> None:
    """Append one decoded block to ``out`` by vectorised gather.

    Every output byte's ultimate source is a literal (or history) byte:
    back-references form chains that pointer doubling collapses in
    O(log depth) full-array gathers. Overlapping matches
    (distance < length) are folded first — byte ``k`` of such a match
    reads ``source + (k mod distance)`` — so no chain ever points
    *inside* its own match.
    """
    np = _np
    history = len(out)
    if not lens:
        out += lits
        return
    dtype = np.int64 if history + len(lits) > 0x7FFF0000 else np.int32
    ctype = np.dtype("l")  # matches array("l") item width on this platform
    runs_a = np.frombuffer(runs, dtype=ctype).astype(dtype, copy=False)
    lens_a = np.frombuffer(lens, dtype=ctype).astype(dtype, copy=False)
    dists_a = np.frombuffer(dists, dtype=ctype).astype(dtype, copy=False)
    total = len(lits) + int(lens_a.sum())

    buf = np.empty(history + total, np.uint8)
    if history:
        buf[:history] = np.frombuffer(out, np.uint8)

    # Literal destinations: run i sits between match i-1 and match i,
    # plus the trailing run after the last match.
    tail = len(lits) - int(runs_a.sum())
    all_runs = np.concatenate([runs_a, np.asarray([tail], dtype)])
    steps = np.concatenate([runs_a + lens_a, np.asarray([tail], dtype)])
    run_starts = history + np.cumsum(steps) - steps
    lit_dst = (np.repeat(run_starts, all_runs)
               + _grouped_arange(all_runs))
    buf[lit_dst] = np.frombuffer(lits, np.uint8)

    # Match byte destinations and (overlap-folded) sources.
    match_starts = run_starts[:-1] + runs_a
    offsets = _grouped_arange(lens_a) % np.repeat(dists_a, lens_a)
    match_dst = (np.repeat(match_starts, lens_a)
                 + _grouped_arange(lens_a))
    match_src = np.repeat(match_starts - dists_a, lens_a) + offsets

    # Pointer doubling: F maps every byte to its source; literals and
    # history map to themselves, so chains shrink geometrically until
    # every position resolves to a self-mapped one.
    source = np.arange(history + total, dtype=dtype)
    source[match_dst] = match_src
    while True:
        folded = source[source]
        if np.array_equal(folded, source):
            break
        source = folded
    out += buf[source][history:].tobytes()
