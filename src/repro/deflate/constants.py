"""Deflate symbol alphabets (RFC 1951 §3.2.5).

Length/distance values are split into a Huffman-coded *symbol* plus a
fixed number of verbatim *extra bits*. The tables below are generated
from the spec's ranges and exposed both as per-symbol base/extra arrays
and as direct value→symbol lookup arrays (O(1) in the encoder hot path —
the same trick zlib's ``_length_code``/``_dist_code`` tables use).
"""

from __future__ import annotations

from array import array
from typing import List, Tuple

from repro.errors import DeflateError

END_OF_BLOCK = 256
MAX_LITLEN_SYMBOLS = 288
MAX_DIST_SYMBOLS = 30
MAX_CODE_BITS = 15

#: (base_length, extra_bits) for length symbols 257..285.
LENGTH_TABLE: List[Tuple[int, int]] = [
    (3, 0), (4, 0), (5, 0), (6, 0), (7, 0), (8, 0), (9, 0), (10, 0),
    (11, 1), (13, 1), (15, 1), (17, 1),
    (19, 2), (23, 2), (27, 2), (31, 2),
    (35, 3), (43, 3), (51, 3), (59, 3),
    (67, 4), (83, 4), (99, 4), (115, 4),
    (131, 5), (163, 5), (195, 5), (227, 5),
    (258, 0),
]

#: (base_distance, extra_bits) for distance symbols 0..29.
DISTANCE_TABLE: List[Tuple[int, int]] = [
    (1, 0), (2, 0), (3, 0), (4, 0),
    (5, 1), (7, 1),
    (9, 2), (13, 2),
    (17, 3), (25, 3),
    (33, 4), (49, 4),
    (65, 5), (97, 5),
    (129, 6), (193, 6),
    (257, 7), (385, 7),
    (513, 8), (769, 8),
    (1025, 9), (1537, 9),
    (2049, 10), (3073, 10),
    (4097, 11), (6145, 11),
    (8193, 12), (12289, 12),
    (16385, 13), (24577, 13),
]

#: Order in which code-length-alphabet lengths appear in a dynamic block
#: header (RFC 1951 §3.2.7).
CODE_LENGTH_ORDER = [
    16, 17, 18, 0, 8, 7, 9, 6, 10, 5, 11, 4, 12, 3, 13, 2, 14, 1, 15,
]


def _build_length_lookup() -> array:
    """length (3..258) -> litlen symbol, as symbol - 257 in a byte array."""
    lookup = array("B", [0] * 259)
    for symbol_offset, (base, extra) in enumerate(LENGTH_TABLE):
        span = 1 << extra
        for length in range(base, min(base + span, 259)):
            lookup[length] = symbol_offset
    # Length 258 must map to symbol 285 (offset 28), not to 284's range.
    lookup[258] = len(LENGTH_TABLE) - 1
    return lookup


def _build_distance_lookup() -> array:
    """distance (1..32768) -> distance symbol."""
    lookup = array("B", [0] * 32769)
    for symbol, (base, extra) in enumerate(DISTANCE_TABLE):
        span = 1 << extra
        for dist in range(base, min(base + span, 32769)):
            lookup[dist] = symbol
    return lookup


_LENGTH_LOOKUP = _build_length_lookup()
_DISTANCE_LOOKUP = _build_distance_lookup()

#: Extra (verbatim) bits carried by each litlen symbol: zero for the
#: 256 literals and END_OF_BLOCK, the spec's per-range counts for the
#: length symbols 257..285, zero for the reserved 286/287. Indexed by
#: symbol, so a symbol histogram prices a block's extra bits exactly
#: without revisiting the token values.
LITLEN_EXTRA_BITS = array(
    "B", [0] * 257 + [extra for _, extra in LENGTH_TABLE] + [0, 0]
)

#: Extra bits per distance symbol 0..29 (same role as above).
DIST_EXTRA_BITS = array("B", [extra for _, extra in DISTANCE_TABLE])


def length_symbol(length: int) -> Tuple[int, int, int]:
    """Map a match length to ``(symbol, extra_bits, extra_value)``."""
    if not 3 <= length <= 258:
        raise DeflateError(f"match length {length} outside [3, 258]")
    offset = _LENGTH_LOOKUP[length]
    base, extra = LENGTH_TABLE[offset]
    return 257 + offset, extra, length - base


def distance_symbol(distance: int) -> Tuple[int, int, int]:
    """Map a match distance to ``(symbol, extra_bits, extra_value)``."""
    if not 1 <= distance <= 32768:
        raise DeflateError(f"distance {distance} outside [1, 32768]")
    symbol = _DISTANCE_LOOKUP[distance]
    base, extra = DISTANCE_TABLE[symbol]
    return symbol, extra, distance - base


def length_from_symbol(symbol: int, extra_value: int) -> int:
    """Inverse of :func:`length_symbol` (decoder side)."""
    if not 257 <= symbol <= 285:
        raise DeflateError(f"invalid length symbol {symbol}")
    base, extra = LENGTH_TABLE[symbol - 257]
    if extra_value >> extra:
        raise DeflateError(
            f"extra value {extra_value} too large for symbol {symbol}"
        )
    return base + extra_value


def distance_from_symbol(symbol: int, extra_value: int) -> int:
    """Inverse of :func:`distance_symbol` (decoder side)."""
    if not 0 <= symbol <= 29:
        raise DeflateError(f"invalid distance symbol {symbol}")
    base, extra = DISTANCE_TABLE[symbol]
    if extra_value >> extra:
        raise DeflateError(
            f"extra value {extra_value} too large for symbol {symbol}"
        )
    return base + extra_value
