"""ZLib (RFC 1950) stream framing and the end-to-end compressor facade.

:func:`compress` is the software equivalent of the paper's complete
datapath — LZSS core feeding the fixed-table Huffman coder, wrapped in
the ZLib container so that any standard inflater accepts the output
("To make the compressed stream compatible with the ZLib library...",
§I). The test suite feeds our streams to CPython's ``zlib.decompress``
as the external oracle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.checksums.adler32 import adler32
from repro.deflate.block_writer import BlockStrategy, deflate_tokens
from repro.deflate.inflate import inflate_with_tail
from repro.errors import ZLibContainerError
from repro.lzss.compressor import CompressResult, LZSSCompressor
from repro.lzss.hashchain import HashSpec
from repro.lzss.policy import MatchPolicy

_CM_DEFLATE = 8


def make_header(window_size: int) -> bytes:
    """Build the 2-byte CMF/FLG header for a given window size.

    CINFO is ``log2(window) - 8``; windows below 256 are advertised as
    256. FCHECK makes ``CMF*256 + FLG`` a multiple of 31 (RFC 1950 §2.2).
    """
    cinfo = max(window_size.bit_length() - 1, 8) - 8
    if cinfo > 7:
        raise ZLibContainerError(
            f"window size {window_size} exceeds the 32 KB ZLib maximum"
        )
    cmf = (cinfo << 4) | _CM_DEFLATE
    flg = 0  # FLEVEL=0 (fastest — accurate for this design), FDICT=0
    rem = (cmf * 256 + flg) % 31
    if rem:
        flg += 31 - rem
    return bytes([cmf, flg])


@dataclass(frozen=True)
class ZLibHeader:
    """Parsed CMF/FLG header (plus DICTID when FDICT is set)."""

    window_size: int
    fdict: bool
    dictid: Optional[int]
    size: int  #: header bytes before the Deflate body (2, or 6 w/ FDICT)


def parse_header_info(data: bytes) -> ZLibHeader:
    """Validate the CMF/FLG header and return its parsed fields.

    FDICT streams (RFC 1950 §2.2) carry the dictionary's Adler-32 in
    the four bytes after FLG; the Deflate body starts after it.
    """
    if len(data) < 2:
        raise ZLibContainerError("stream shorter than the 2-byte header")
    cmf, flg = data[0], data[1]
    if cmf & 0x0F != _CM_DEFLATE:
        raise ZLibContainerError(f"unsupported compression method {cmf & 0xF}")
    if (cmf * 256 + flg) % 31:
        raise ZLibContainerError("FCHECK failure in CMF/FLG")
    window_size = 1 << ((cmf >> 4) + 8)
    if not flg & 0x20:
        return ZLibHeader(window_size, False, None, 2)
    if len(data) < 6:
        raise ZLibContainerError("FDICT stream shorter than its DICTID")
    return ZLibHeader(window_size, True,
                      int.from_bytes(data[2:6], "big"), 6)


def parse_header(data: bytes) -> int:
    """Validate the CMF/FLG header; return the advertised window size."""
    return parse_header_info(data).window_size


def effective_dict(dictionary: bytes, window_size: int) -> bytes:
    """The referenceable tail of a preset dictionary.

    Matches can reach back at most ``window_size - 262`` bytes (the
    window minus the lookahead guard band, matching the compressor's
    clamp in :mod:`repro.deflate.preset_dict`), so only that much of a
    longer dictionary ever primes the decoder.
    """
    max_dict = window_size - 262
    if len(dictionary) > max_dict:
        return dictionary[-max_dict:]
    return dictionary


@dataclass
class ZLibResult:
    """Full output of one container-level compression."""

    data: bytes
    lzss: CompressResult

    @property
    def compressed_size(self) -> int:
        return len(self.data)

    @property
    def ratio(self) -> float:
        """Uncompressed/compressed size (the paper's Table I metric)."""
        if not self.data:
            return 0.0
        return self.lzss.input_size / len(self.data)


class ZLibCompressor:
    """LZSS + Huffman + ZLib framing with the paper's parameter set.

    ``backend="traced"`` (default) keeps the instrumented reproduction
    path so ``ZLibResult.lzss.trace`` feeds the cost models; ``"fast"``,
    ``"vector"`` and ``"sa"`` are the trace-free production tokenizers.
    The removed ``trace=`` boolean raises
    :class:`~repro.errors.ConfigError`; knob resolution goes through
    :class:`repro.api.CompressRequest`.
    """

    def __init__(
        self,
        window_size: Optional[int] = None,
        hash_spec: Optional[HashSpec] = None,
        policy: Optional[MatchPolicy] = None,
        strategy: Optional[BlockStrategy] = None,
        trace: Optional[bool] = None,
        backend: Optional[str] = None,
        profile=None,
    ) -> None:
        from repro.api import CompressRequest, reject_legacy_trace

        reject_legacy_trace("trace", trace)
        resolved = CompressRequest(
            profile=profile,
            window_size=window_size,
            hash_spec=hash_spec,
            policy=policy,
            strategy=strategy,
            backend=backend,
        ).resolve(backend="traced")
        self._lzss = LZSSCompressor(
            resolved.window_size, resolved.hash_spec, resolved.policy,
            backend=resolved.backend,
        )
        self.strategy = resolved.strategy
        self.window_size = resolved.window_size

    def compress(self, data: bytes) -> ZLibResult:
        """Compress ``data`` into a complete ZLib stream."""
        result = self._lzss.compress(data)
        body = deflate_tokens(result.tokens, self.strategy)
        stream = (
            make_header(self.window_size)
            + body
            + adler32(data).to_bytes(4, "big")
        )
        return ZLibResult(data=stream, lzss=result)


def compress(
    data: bytes,
    window_size: Optional[int] = None,
    hash_spec: Optional[HashSpec] = None,
    policy: Optional[MatchPolicy] = None,
    strategy: Optional[BlockStrategy] = None,
    trace: Optional[bool] = None,
    backend: Optional[str] = None,
    profile=None,
) -> bytes:
    """One-shot ZLib-compatible compression (paper datapath defaults).

    >>> import zlib
    >>> stream = compress(b"snowy snow" * 100)
    >>> zlib.decompress(stream) == b"snowy snow" * 100
    True
    >>> decompress(stream) == b"snowy snow" * 100
    True
    """
    from repro.api import reject_legacy_trace

    reject_legacy_trace("trace", trace)
    return ZLibCompressor(
        window_size, hash_spec, policy, strategy, backend=backend,
        profile=profile,
    ).compress(data).data


def decompress(
    data: bytes,
    max_output: Optional[int] = None,
    zdict: Optional[bytes] = None,
) -> bytes:
    """Decode a ZLib stream with our own inflate; verifies Adler-32.

    ``max_output`` is enforced *inside* the Deflate decoder — a
    decompression bomb aborts mid-stream, never after inflating fully.
    FDICT streams (as :func:`repro.deflate.preset_dict.compress_with_dict`
    emits) decode when the matching ``zdict`` is supplied: the header's
    DICTID is checked against ``adler32(zdict)`` and the dictionary
    primes the back-reference history. A plain stream ignores ``zdict``,
    mirroring ``zlib.decompressobj``.
    """
    header = parse_header_info(data)
    prime = b""
    if header.fdict:
        if zdict is None:
            raise ZLibContainerError(
                "stream uses a preset dictionary (FDICT); pass zdict="
            )
        prime = effective_dict(zdict, header.window_size)
        if adler32(prime) != header.dictid \
                and adler32(zdict) != header.dictid:
            raise ZLibContainerError(
                f"DICTID {header.dictid:#010x} does not match the "
                "supplied dictionary"
            )
    payload, consumed = inflate_with_tail(
        data[header.size:], max_output=max_output, zdict=prime
    )
    trailer = data[header.size + consumed:header.size + consumed + 4]
    if len(trailer) < 4:
        raise ZLibContainerError("stream truncated before Adler-32 trailer")
    expected = int.from_bytes(trailer, "big")
    actual = adler32(payload)
    if actual != expected:
        raise ZLibContainerError(
            f"Adler-32 mismatch: stream says {expected:#010x}, "
            f"payload gives {actual:#010x}"
        )
    return payload
