"""Preset-dictionary compression (RFC 1950 FDICT).

Embedded loggers often compress *small independent records* (one CAN
burst, one telemetry batch) where the sliding window never warms up. The
ZLib spec's answer is a preset dictionary: compressor and decompressor
agree on a shared byte string that primes the window, and the stream
header carries its Adler-32 (DICTID) so a mismatch is detected up front.

This module implements both directions, interoperable with CPython's
``zlib.compressobj(zdict=...)`` / ``decompressobj(zdict=...)`` (tested),
plus a helper that builds a dictionary from sample records by frequency.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable, Optional

from repro.checksums.adler32 import adler32
from repro.deflate.block_writer import BlockStrategy, deflate_tokens
from repro.deflate.inflate import inflate_with_tail
from repro.deflate.zlib_container import effective_dict, make_header
from repro.errors import ConfigError, ZLibContainerError
from repro.lzss.compressor import LZSSCompressor
from repro.lzss.hashchain import HashSpec
from repro.lzss.policy import MatchPolicy
from repro.lzss.tokens import TokenArray

_CM_DEFLATE = 8
_FDICT_BIT = 0x20


def _make_fdict_header(window_size: int, dictionary: bytes) -> bytes:
    """CMF/FLG with FDICT set, followed by the 4-byte DICTID."""
    base = make_header(window_size)
    cmf = base[0]
    flg = _FDICT_BIT
    rem = (cmf * 256 + flg) % 31
    if rem:
        flg += 31 - rem
    return bytes([cmf, flg]) + adler32(dictionary).to_bytes(4, "big")


def fdict_header(window_size: int, dictionary: bytes) -> bytes:
    """Public FDICT framing hook (header + DICTID) for batch callers.

    The batched engine (:mod:`repro.batch`) primes N payloads with one
    shared dictionary and frames each as an independent FDICT stream;
    it builds the 6-byte prefix once through this hook. ``dictionary``
    must already be trimmed to the referenceable window tail
    (:func:`repro.lzss.batch.effective_dictionary`) — the DICTID is the
    Adler-32 of exactly the bytes the decompressor must preload.
    """
    if not dictionary:
        raise ConfigError("FDICT framing requires a non-empty dictionary")
    return _make_fdict_header(window_size, dictionary)


def compress_with_dict(
    data: bytes,
    dictionary: bytes,
    window_size: int = 4096,
    hash_spec: Optional[HashSpec] = None,
    policy: Optional[MatchPolicy] = None,
) -> bytes:
    """Compress ``data`` with ``dictionary`` priming the window.

    The output is a standard FDICT ZLib stream:
    ``zlib.decompressobj(zdict=dictionary)`` accepts it.
    """
    if not dictionary:
        raise ConfigError("dictionary must be non-empty (use compress())")
    # Only the last window's worth can ever be referenced.
    dictionary = effective_dict(dictionary, window_size)

    # Prime by compressing dictionary+data and keeping only the tokens
    # that start inside `data` (matches may reach back into the
    # dictionary; the decompressor's window is pre-loaded with it).
    compressor = LZSSCompressor(window_size, hash_spec, policy)
    base = len(dictionary)
    combined = dictionary + data
    result = compressor.compress(combined)
    tokens = TokenArray()
    pos = 0
    for length, value in zip(result.tokens.lengths, result.tokens.values):
        step = length if length else 1
        if pos >= base:
            tokens.lengths.append(length)
            tokens.values.append(value)
        elif pos + step > base:
            # Token straddling the boundary: re-emit its data-part as
            # literals (it cannot be safely truncated into a match).
            for q in range(base, pos + step):
                tokens.append_literal(combined[q])
        pos += step

    body = deflate_tokens(tokens, BlockStrategy.FIXED)
    return (
        _make_fdict_header(window_size, dictionary)
        + body
        + adler32(data).to_bytes(4, "big")
    )


def decompress_with_dict(
    stream: bytes,
    dictionary: bytes,
    max_output: Optional[int] = None,
) -> bytes:
    """Decode an FDICT ZLib stream produced with ``dictionary``."""
    if len(stream) < 6:
        raise ZLibContainerError("stream shorter than an FDICT header")
    cmf, flg = stream[0], stream[1]
    if cmf & 0x0F != _CM_DEFLATE:
        raise ZLibContainerError(
            f"unsupported compression method {cmf & 0xF}"
        )
    if (cmf * 256 + flg) % 31:
        raise ZLibContainerError("FCHECK failure in CMF/FLG")
    if not flg & _FDICT_BIT:
        raise ZLibContainerError(
            "stream has no FDICT flag; use plain decompress()"
        )
    dictid = int.from_bytes(stream[2:6], "big")
    window_size = 1 << ((cmf >> 4) + 8)
    effective = effective_dict(dictionary, window_size)
    if adler32(effective) != dictid and adler32(dictionary) != dictid:
        raise ZLibContainerError(
            f"DICTID {dictid:#010x} does not match the supplied dictionary"
        )

    # Decode with the history primed by the dictionary; ``max_output``
    # is enforced inside the decoder, aborting bombs mid-stream.
    payload, consumed = inflate_with_tail(
        stream[6:], max_output=max_output, zdict=effective
    )
    trailer = stream[6 + consumed:6 + consumed + 4]
    if len(trailer) < 4:
        raise ZLibContainerError("stream truncated before Adler-32 trailer")
    expected = int.from_bytes(trailer, "big")
    if adler32(payload) != expected:
        raise ZLibContainerError("Adler-32 mismatch")
    return payload


def train_dictionary(
    samples: Iterable[bytes],
    size: int = 2048,
    ngram: int = 8,
) -> bytes:
    """Build a preset dictionary from sample records.

    Greedy frequency heuristic: the most common ``ngram``-grams across
    the samples are concatenated (most frequent *last*, since shorter
    back-reference distances are cheaper in Deflate). Good enough to
    demonstrate the mechanism; production systems use suffix-automaton
    trainers (e.g. zstd's cover algorithm).
    """
    if size <= 0:
        raise ConfigError(f"size must be positive: {size}")
    counts: Counter = Counter()
    for sample in samples:
        for i in range(0, max(0, len(sample) - ngram + 1), 2):
            counts[bytes(sample[i:i + ngram])] += 1
    picked = []
    used = 0
    seen = set()
    for gram, count in counts.most_common():
        if count < 2 or used >= size:
            break
        if gram in seen:
            continue
        seen.add(gram)
        picked.append(gram)
        used += len(gram)
    picked.reverse()  # most frequent nearest the end (cheapest distances)
    return b"".join(picked)[-size:]
