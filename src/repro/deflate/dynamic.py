"""Dynamic-Huffman Deflate blocks (RFC 1951 §3.2.7).

The paper's hardware deliberately uses the fixed tables; this module is
the extension that quantifies what that choice costs. A dynamic block
transmits per-block optimal code lengths, themselves run-length coded
(symbols 16/17/18) and Huffman coded with the 19-symbol code-length
alphabet.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.bitio.writer import BitWriter
from repro.deflate.constants import (
    CODE_LENGTH_ORDER,
    END_OF_BLOCK,
    MAX_CODE_BITS,
    MAX_DIST_SYMBOLS,
    MAX_LITLEN_SYMBOLS,
    distance_symbol,
    length_symbol,
)
from repro.deflate.block_writer import write_block_header, _write_symbols
from repro.errors import DeflateError
from repro.huffman.canonical import build_code_lengths
from repro.huffman.encoder import HuffmanEncoder
from repro.huffman.histogram import SymbolHistogram
from repro.lzss.tokens import Literal, TokenArray


def _token_histograms(tokens) -> Tuple[SymbolHistogram, SymbolHistogram]:
    litlen = SymbolHistogram(MAX_LITLEN_SYMBOLS)
    dist = SymbolHistogram(MAX_DIST_SYMBOLS)
    if isinstance(tokens, TokenArray):
        items = zip(tokens.lengths, tokens.values)
    else:
        items = (
            (0, t.value) if isinstance(t, Literal) else (t.length, t.distance)
            for t in tokens
        )
    for length, value in items:
        if length == 0:
            litlen.add(value)
        else:
            litlen.add(length_symbol(length)[0])
            dist.add(distance_symbol(value)[0])
    litlen.add(END_OF_BLOCK)
    return litlen, dist


def rle_code_lengths(lengths: List[int]) -> List[Tuple[int, int]]:
    """Run-length code a length sequence per §3.2.7.

    Returns ``(symbol, extra_value)`` pairs where symbols 0-15 are
    literal lengths (extra ignored), 16 repeats the previous length 3-6
    times, 17 repeats zero 3-10 times, 18 repeats zero 11-138 times.
    """
    out: List[Tuple[int, int]] = []
    i = 0
    n = len(lengths)
    while i < n:
        value = lengths[i]
        j = i
        while j < n and lengths[j] == value:
            j += 1
        run = j - i
        if value == 0:
            while run >= 11:
                take = min(run, 138)
                out.append((18, take - 11))
                run -= take
            if run >= 3:
                out.append((17, run - 3))
                run = 0
            out.extend((0, 0) for _ in range(run))
        else:
            # The first occurrence must be sent literally; repeats of it
            # may then use symbol 16.
            out.append((value, 0))
            run -= 1
            while run >= 3:
                take = min(run, 6)
                out.append((16, take - 3))
                run -= take
            out.extend((value, 0) for _ in range(run))
        i = j
    return out


def write_dynamic_block(
    writer: BitWriter,
    tokens,
    final: bool = True,
    fused: bool = True,
) -> None:
    """Encode ``tokens`` as one dynamic-Huffman block (BTYPE=10).

    ``fused=True`` (default) emits :class:`TokenArray` symbols through
    per-block fused tables (:func:`repro.deflate.fused.fuse_encoders`);
    ``fused=False`` is the symbol-at-a-time reference path.
    """
    litlen_hist, dist_hist = _token_histograms(tokens)
    litlen_lengths = build_code_lengths(litlen_hist.counts, MAX_CODE_BITS)
    dist_lengths = build_code_lengths(dist_hist.counts, MAX_CODE_BITS)

    # HLIT/HDIST: trailing zero lengths may be trimmed, with minimums.
    hlit = MAX_LITLEN_SYMBOLS
    while hlit > 257 and litlen_lengths[hlit - 1] == 0:
        hlit -= 1
    hdist = MAX_DIST_SYMBOLS
    while hdist > 1 and dist_lengths[hdist - 1] == 0:
        hdist -= 1
    # Degenerate but legal: no distance codes at all. Deflate still
    # transmits one (possibly zero-length) entry; inflate treats a single
    # zero entry as "no distance codes".
    if dist_hist.total == 0:
        dist_lengths = [0] * MAX_DIST_SYMBOLS
        hdist = 1

    combined = litlen_lengths[:hlit] + dist_lengths[:hdist]
    rle = rle_code_lengths(combined)

    cl_hist = SymbolHistogram(19)
    for symbol, _ in rle:
        cl_hist.add(symbol)
    cl_lengths = build_code_lengths(cl_hist.counts, 7)
    hclen = 19
    while hclen > 4 and cl_lengths[CODE_LENGTH_ORDER[hclen - 1]] == 0:
        hclen -= 1

    write_block_header(writer, 0b10, final)
    writer.write_bits(hlit - 257, 5)
    writer.write_bits(hdist - 1, 5)
    writer.write_bits(hclen - 4, 4)
    for index in range(hclen):
        writer.write_bits(cl_lengths[CODE_LENGTH_ORDER[index]], 3)

    cl_encoder = HuffmanEncoder(cl_lengths)
    for symbol, extra in rle:
        cl_encoder.encode(writer, symbol)
        if symbol == 16:
            writer.write_bits(extra, 2)
        elif symbol == 17:
            writer.write_bits(extra, 3)
        elif symbol == 18:
            writer.write_bits(extra, 7)

    litlen_encoder = HuffmanEncoder(litlen_lengths)
    if any(dist_lengths):
        dist_encoder = HuffmanEncoder(dist_lengths)
    else:
        dist_encoder = None
    if fused and isinstance(tokens, TokenArray):
        from repro.deflate.fused import fuse_encoders, write_symbols_fused

        if dist_encoder is None and any(tokens.lengths):
            raise DeflateError(
                "token stream contains matches but the distance "
                "histogram was empty"
            )
        write_symbols_fused(
            writer, tokens, fuse_encoders(litlen_encoder, dist_encoder)
        )
        return
    _write_symbols(writer, tokens, litlen_encoder, _DistGuard(dist_encoder))
    litlen_encoder.encode(writer, END_OF_BLOCK)


class _DistGuard:
    """Raises a clear error if a distance is coded with no dist table."""

    def __init__(self, encoder) -> None:
        self._encoder = encoder

    def encode(self, writer, symbol) -> None:
        if self._encoder is None:
            raise DeflateError(
                "token stream contains matches but the distance "
                "histogram was empty"
            )
        self._encoder.encode(writer, symbol)
