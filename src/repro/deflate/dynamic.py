"""Dynamic-Huffman Deflate blocks (RFC 1951 §3.2.7).

The paper's hardware deliberately uses the fixed tables; this module is
the extension that quantifies what that choice costs. A dynamic block
transmits per-block optimal code lengths, themselves run-length coded
(symbols 16/17/18) and Huffman coded with the 19-symbol code-length
alphabet.

Table construction is separated from emission: :func:`plan_dynamic_block`
turns one pair of symbol histograms into a :class:`DynamicPlan` holding
the code lengths, the RLE'd table transmission and the **exact** bit
cost of the block — ZLib's ``opt_len`` counter, computed without a
scratch encode. :func:`write_dynamic_block` accepts a ready-made plan so
the adaptive splitter (:mod:`repro.deflate.splitter`) prices and emits
each block from a single histogram pass.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.bitio.writer import BitWriter
from repro.deflate.constants import (
    CODE_LENGTH_ORDER,
    DIST_EXTRA_BITS,
    END_OF_BLOCK,
    LITLEN_EXTRA_BITS,
    MAX_CODE_BITS,
    MAX_DIST_SYMBOLS,
    MAX_LITLEN_SYMBOLS,
    _DISTANCE_LOOKUP,
    _LENGTH_LOOKUP,
    distance_symbol,
    length_symbol,
)
from repro.deflate.block_writer import write_block_header, _write_symbols
from repro.errors import DeflateError
from repro.huffman.canonical import build_code_lengths
from repro.huffman.encoder import HuffmanEncoder
from repro.huffman.histogram import SymbolHistogram
from repro.lzss.tokens import Literal, TokenArray

#: Extra bits transmitted after code-length symbols 16/17/18 (§3.2.7).
_CL_EXTRA_BITS = {16: 2, 17: 3, 18: 7}


def token_histograms(tokens) -> Tuple[SymbolHistogram, SymbolHistogram]:
    """Count litlen/distance symbol occurrences for one block.

    The END_OF_BLOCK symbol is included (every block emits it), so the
    returned histograms price a block exactly. This is the single pass
    the adaptive splitter makes over each block's tokens.
    """
    litlen = SymbolHistogram(MAX_LITLEN_SYMBOLS)
    dist = SymbolHistogram(MAX_DIST_SYMBOLS)
    lit_counts = litlen.counts
    dist_counts = dist.counts
    if isinstance(tokens, TokenArray):
        llookup = _LENGTH_LOOKUP
        dlookup = _DISTANCE_LOOKUP
        for length, value in zip(tokens.lengths, tokens.values):
            if length == 0:
                lit_counts[value] += 1
            else:
                lit_counts[257 + llookup[length]] += 1
                dist_counts[dlookup[value]] += 1
    else:
        for token in tokens:
            if isinstance(token, Literal):
                lit_counts[token.value] += 1
            else:
                lit_counts[length_symbol(token.length)[0]] += 1
                dist_counts[distance_symbol(token.distance)[0]] += 1
    lit_counts[END_OF_BLOCK] += 1
    return litlen, dist


# Backwards-compatible private alias (pre-refactor name).
_token_histograms = token_histograms


def segment_histograms(
    tokens: TokenArray, start: int, stop: int
) -> Tuple[SymbolHistogram, SymbolHistogram, int]:
    """Histogram one candidate segment ``tokens[start:stop]``, mergeable.

    Unlike :func:`token_histograms` the END_OF_BLOCK symbol is **not**
    counted: a segment is not a block, it is a unit the cut-point search
    (:mod:`repro.deflate.splitter`) concatenates into blocks. Because
    histograms add, ``merge()``-ing two segment histograms gives exactly
    the histogram of the combined segment — the property that lets the
    search price every "cut here vs merge with the next candidate"
    decision without a second pass over the tokens (EOB is added once,
    at pricing time, per *block*).

    Returns ``(litlen_hist, dist_hist, raw_len)`` where ``raw_len`` is
    the number of source bytes the segment reconstructs — the stored
    price and the block's slice of the raw buffer both need it, and the
    loop is already walking the token lengths.
    """
    litlen = SymbolHistogram(MAX_LITLEN_SYMBOLS)
    dist = SymbolHistogram(MAX_DIST_SYMBOLS)
    lit_counts = litlen.counts
    dist_counts = dist.counts
    llookup = _LENGTH_LOOKUP
    dlookup = _DISTANCE_LOOKUP
    raw_len = 0
    for length, value in zip(tokens.lengths[start:stop],
                             tokens.values[start:stop]):
        if length == 0:
            lit_counts[value] += 1
            raw_len += 1
        else:
            lit_counts[257 + llookup[length]] += 1
            dist_counts[dlookup[value]] += 1
            raw_len += length
    return litlen, dist, raw_len


def rle_code_lengths(lengths: List[int]) -> List[Tuple[int, int]]:
    """Run-length code a length sequence per §3.2.7.

    Returns ``(symbol, extra_value)`` pairs where symbols 0-15 are
    literal lengths (extra ignored), 16 repeats the previous length 3-6
    times, 17 repeats zero 3-10 times, 18 repeats zero 11-138 times.
    """
    out: List[Tuple[int, int]] = []
    i = 0
    n = len(lengths)
    while i < n:
        value = lengths[i]
        j = i
        while j < n and lengths[j] == value:
            j += 1
        run = j - i
        if value == 0:
            while run >= 11:
                take = min(run, 138)
                out.append((18, take - 11))
                run -= take
            if run >= 3:
                out.append((17, run - 3))
                run = 0
            out.extend((0, 0) for _ in range(run))
        else:
            # The first occurrence must be sent literally; repeats of it
            # may then use symbol 16.
            out.append((value, 0))
            run -= 1
            while run >= 3:
                take = min(run, 6)
                out.append((16, take - 3))
                run -= take
            out.extend((value, 0) for _ in range(run))
        i = j
    return out


class DynamicPlan:
    """Everything needed to price *and* emit one dynamic block.

    Built by :func:`plan_dynamic_block` from the block's histograms;
    carried from the splitter's pricing step into
    :func:`write_dynamic_block` so the chosen block never recomputes its
    tables. The code-length tuples are immutable and double as the key
    of the fused-table cache (:func:`repro.deflate.fused.fused_tables_for`).
    """

    __slots__ = (
        "litlen_lengths",
        "dist_lengths",
        "hlit",
        "hdist",
        "hclen",
        "rle",
        "cl_lengths",
        "has_dist",
        "cost_bits",
        "table_bits",
    )

    def __init__(
        self,
        litlen_lengths: Tuple[int, ...],
        dist_lengths: Tuple[int, ...],
        hlit: int,
        hdist: int,
        hclen: int,
        rle: List[Tuple[int, int]],
        cl_lengths: Tuple[int, ...],
        cost_bits: int,
        table_bits: int = 0,
    ) -> None:
        self.litlen_lengths = litlen_lengths
        self.dist_lengths = dist_lengths
        self.hlit = hlit
        self.hdist = hdist
        self.hclen = hclen
        self.rle = rle
        self.cl_lengths = cl_lengths
        self.has_dist = any(dist_lengths)
        self.cost_bits = cost_bits
        self.table_bits = table_bits


def plan_dynamic_block(
    litlen_hist: SymbolHistogram, dist_hist: SymbolHistogram
) -> DynamicPlan:
    """Build per-block tables and their exact bit cost from histograms.

    ``cost_bits`` is the complete block cost — 3-bit header, HLIT/HDIST/
    HCLEN fields, RLE'd code-length transmission, every symbol's code and
    extra bits, and END_OF_BLOCK — identical to what a scratch encode of
    the block would measure (property-tested in
    ``tests/deflate/test_adaptive_pricing.py``).
    """
    litlen_lengths = build_code_lengths(litlen_hist.counts, MAX_CODE_BITS)
    dist_lengths = build_code_lengths(dist_hist.counts, MAX_CODE_BITS)

    # HLIT/HDIST: trailing zero lengths may be trimmed, with minimums.
    hlit = MAX_LITLEN_SYMBOLS
    while hlit > 257 and litlen_lengths[hlit - 1] == 0:
        hlit -= 1
    hdist = MAX_DIST_SYMBOLS
    while hdist > 1 and dist_lengths[hdist - 1] == 0:
        hdist -= 1
    # Degenerate but legal: no distance codes at all. Deflate still
    # transmits one (possibly zero-length) entry; inflate treats a single
    # zero entry as "no distance codes".
    if dist_hist.total == 0:
        dist_lengths = [0] * MAX_DIST_SYMBOLS
        hdist = 1

    combined = litlen_lengths[:hlit] + dist_lengths[:hdist]
    rle = rle_code_lengths(combined)

    cl_hist = SymbolHistogram(19)
    for symbol, _ in rle:
        cl_hist.add(symbol)
    cl_lengths = build_code_lengths(cl_hist.counts, 7)
    hclen = 19
    while hclen > 4 and cl_lengths[CODE_LENGTH_ORDER[hclen - 1]] == 0:
        hclen -= 1

    # Exact cost, zlib's opt_len accounting: header fields, then the
    # code-length transmission, then Σ count × (code_len + extra_bits).
    bits = 3 + 5 + 5 + 4 + 3 * hclen
    for symbol, _ in rle:
        bits += cl_lengths[symbol] + _CL_EXTRA_BITS.get(symbol, 0)
    # The table-transmission part alone (header fields + RLE'd code
    # lengths): what a *shared* plan costs each payload that carries it
    # (repro.deflate.batch_emit prices table_bits once per stream, then
    # adds that stream's symbol bits).
    table_bits = bits
    for symbol, count in enumerate(litlen_hist.counts):
        if count:
            bits += count * (
                litlen_lengths[symbol] + LITLEN_EXTRA_BITS[symbol]
            )
    for symbol, count in enumerate(dist_hist.counts):
        if count:
            bits += count * (dist_lengths[symbol] + DIST_EXTRA_BITS[symbol])

    return DynamicPlan(
        litlen_lengths=tuple(litlen_lengths),
        dist_lengths=tuple(dist_lengths),
        hlit=hlit,
        hdist=hdist,
        hclen=hclen,
        rle=rle,
        cl_lengths=tuple(cl_lengths),
        cost_bits=bits,
        table_bits=table_bits,
    )


def plan_for_tokens(tokens) -> DynamicPlan:
    """Convenience: histogram one token stream and plan its block."""
    litlen_hist, dist_hist = token_histograms(tokens)
    return plan_dynamic_block(litlen_hist, dist_hist)


def _write_table_transmission(
    writer: BitWriter, plan: DynamicPlan, final: bool
) -> None:
    """Emit the block header and the RLE'd code-length tables."""
    write_block_header(writer, 0b10, final)
    writer.write_bits(plan.hlit - 257, 5)
    writer.write_bits(plan.hdist - 1, 5)
    writer.write_bits(plan.hclen - 4, 4)
    for index in range(plan.hclen):
        writer.write_bits(plan.cl_lengths[CODE_LENGTH_ORDER[index]], 3)
    cl_encoder = HuffmanEncoder(plan.cl_lengths)
    for symbol, extra in plan.rle:
        cl_encoder.encode(writer, symbol)
        if symbol == 16:
            writer.write_bits(extra, 2)
        elif symbol == 17:
            writer.write_bits(extra, 3)
        elif symbol == 18:
            writer.write_bits(extra, 7)


def write_dynamic_block(
    writer: BitWriter,
    tokens,
    final: bool = True,
    fused: bool = True,
    plan: Optional[DynamicPlan] = None,
) -> None:
    """Encode ``tokens`` as one dynamic-Huffman block (BTYPE=10).

    ``fused=True`` (default) emits :class:`TokenArray` symbols through
    fused tables cached on the plan's code-length tuples
    (:func:`repro.deflate.fused.fused_tables_for`); ``fused=False`` is
    the symbol-at-a-time reference path. ``plan`` supplies precomputed
    tables (from :func:`plan_dynamic_block`) so a caller that already
    priced the block — the adaptive splitter — emits without rebuilding
    histograms or code lengths; it must have been built from *these*
    tokens' histograms.
    """
    if plan is None:
        plan = plan_for_tokens(tokens)
    _write_table_transmission(writer, plan, final)

    if fused and isinstance(tokens, TokenArray):
        from repro.deflate.fused import fused_tables_for, write_symbols_fused

        if not plan.has_dist and any(tokens.lengths):
            raise DeflateError(
                "token stream contains matches but the distance "
                "histogram was empty"
            )
        write_symbols_fused(
            writer,
            tokens,
            fused_tables_for(plan.litlen_lengths, plan.dist_lengths),
        )
        return
    litlen_encoder = HuffmanEncoder(plan.litlen_lengths)
    if plan.has_dist:
        dist_encoder = HuffmanEncoder(plan.dist_lengths)
    else:
        dist_encoder = None
    _write_symbols(writer, tokens, litlen_encoder, _DistGuard(dist_encoder))
    litlen_encoder.encode(writer, END_OF_BLOCK)


class _DistGuard:
    """Raises a clear error if a distance is coded with no dist table."""

    def __init__(self, encoder) -> None:
        self._encoder = encoder

    def encode(self, writer, symbol) -> None:
        if self._encoder is None:
            raise DeflateError(
                "token stream contains matches but the distance "
                "histogram was empty"
            )
        self._encoder.encode(writer, symbol)
