"""Shared-plan pricing and emission for the batched message engine.

A batch of N small payloads would normally pay N× the entropy-side
setup: N histogram passes, N ``plan_dynamic_block`` calls (package-merge
twice each), N fused-table builds. For similar payloads those N plans
are near-identical, and for *small* payloads the per-stream table
transmission (~50-100 bytes) often costs more than an individual
optimal table saves. This module pools instead:

* one histogram pass over **all** payloads' tokens (vectorised to a
  pair of ``np.bincount`` calls when numpy is present, a
  ``SymbolHistogram.merge`` fold otherwise);
* one :func:`~repro.deflate.dynamic.plan_dynamic_block` over the pooled
  histogram — the **shared plan** — and therefore one fused-table build
  per batch (the :func:`~repro.deflate.fused.fused_tables_for` LRU
  turns every payload's emission into a cache hit);
* an exact per-payload three-way price — shared-plan dynamic vs fixed
  vs stored, in bits, from the same histograms — so an outlier payload
  (incompressible blob in a batch of JSON) keeps the encoding that is
  actually smallest for *it*. The shared table is charged per stream
  (``DynamicPlan.table_bits``): each payload is an independent ZLib
  stream and must carry its own copy of the tables it decodes with.

Every payload still becomes a self-contained, final Deflate body;
:func:`repro.batch.compress_batch` adds the ZLib framing.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.bitio.writer import BitWriter
from repro.deflate.block_writer import (
    BlockStrategy,
    deflate_tokens,
    fixed_cost_from_histograms,
    stored_block_cost_bits,
    write_stored_block,
)
from repro.deflate.constants import (
    DIST_EXTRA_BITS,
    END_OF_BLOCK,
    LITLEN_EXTRA_BITS,
    MAX_DIST_SYMBOLS,
    MAX_LITLEN_SYMBOLS,
    _DISTANCE_LOOKUP,
    _LENGTH_LOOKUP,
)
from repro.deflate.dynamic import (
    DynamicPlan,
    _write_table_transmission,
    plan_dynamic_block,
    token_histograms,
    write_dynamic_block,
)
from repro.deflate.fused import FIXED_FUSED, fused_tables_for
from repro.huffman.fixed import FIXED_DIST_LENGTHS, FIXED_LITLEN_LENGTHS
from repro.huffman.histogram import SymbolHistogram
from repro.lzss.tokens import TokenArray

#: Per-payload encoding choices, in the order price ties are broken:
#: stored wins only when strictly cheaper, fixed beats shared on a tie
#: (no table to transmit, same bytes as the serial FIXED path).
CHOICE_SHARED = "shared"
CHOICE_FIXED = "fixed"
CHOICE_STORED = "stored"


def _numpy():
    try:
        import numpy as np
    except ImportError:  # pragma: no cover - no-numpy CI job
        return None
    return np


def _concat_tokens(tokens_list: Sequence[TokenArray], np):
    """All payloads' token columns concatenated, plus per-payload counts.

    The zero-copy ``np.frombuffer`` view over each ``TokenArray``'s
    backing buffers makes this the one place the batch pays for moving
    tokens into numpy; histograms and the stream packer both run off
    the same concatenation.
    """
    count = len(tokens_list)
    lengths = [np.frombuffer(ta.lengths, dtype=np.int32)
               for ta in tokens_list]
    values = [np.frombuffer(ta.values, dtype=np.int32)
              for ta in tokens_list]
    ntok = np.fromiter((a.size for a in lengths), dtype=np.int64,
                       count=count)
    if int(ntok.sum()) == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty, ntok
    tlen = np.concatenate(lengths).astype(np.int64)
    tval = np.concatenate(values).astype(np.int64)
    return tlen, tval, ntok


def _hist_rows(tlen, tval, ntok, np):
    """Dense per-payload histogram matrices from concatenated tokens."""
    count = ntok.size
    if tlen.size == 0:
        lit = np.zeros((count, MAX_LITLEN_SYMBOLS), dtype=np.int64)
        lit[:, END_OF_BLOCK] = 1
        return lit, np.zeros((count, MAX_DIST_SYMBOLS), dtype=np.int64)
    seg = np.repeat(np.arange(count, dtype=np.int64), ntok)
    llookup = np.frombuffer(_LENGTH_LOOKUP, dtype=np.uint8)
    dlookup = np.frombuffer(_DISTANCE_LOOKUP, dtype=np.uint8)
    is_match = tlen > 0
    litsym = np.where(
        is_match, 257 + llookup[tlen].astype(np.int64), tval
    )
    lit = np.bincount(
        seg * MAX_LITLEN_SYMBOLS + litsym,
        minlength=count * MAX_LITLEN_SYMBOLS,
    ).reshape(count, MAX_LITLEN_SYMBOLS)
    lit[:, END_OF_BLOCK] += 1

    mseg = seg[is_match]
    mval = tval[is_match]
    dist = np.bincount(
        mseg * MAX_DIST_SYMBOLS + dlookup[mval].astype(np.int64),
        minlength=count * MAX_DIST_SYMBOLS,
    ).reshape(count, MAX_DIST_SYMBOLS)
    return lit, dist


def batch_histograms_np(tokens_list: Sequence[TokenArray], np):
    """Per-payload litlen/dist histograms as two dense count matrices.

    Returns ``(lit, dist)`` with shapes ``(N, 288)`` / ``(N, 30)``; the
    END_OF_BLOCK column already counts 1 per payload, so each row prices
    that payload's block exactly (same contract as
    :func:`repro.deflate.dynamic.token_histograms`).
    """
    tlen, tval, ntok = _concat_tokens(tokens_list, np)
    return _hist_rows(tlen, tval, ntok, np)


def _histogram_from_row(row, size: int) -> SymbolHistogram:
    hist = SymbolHistogram(size)
    hist.counts[:] = [int(c) for c in row]
    return hist


def plan_shared(lit_rows, dist_rows) -> DynamicPlan:
    """One dynamic plan over the pooled (summed) batch histograms."""
    pooled_lit = _histogram_from_row(lit_rows.sum(axis=0),
                                     MAX_LITLEN_SYMBOLS)
    pooled_dist = _histogram_from_row(dist_rows.sum(axis=0),
                                      MAX_DIST_SYMBOLS)
    return plan_dynamic_block(pooled_lit, pooled_dist)


def price_payloads_np(lit_rows, dist_rows, raw_sizes, plan, np):
    """Exact per-payload bit prices for shared / fixed / stored.

    All three are full-block costs (3-bit header included); ``shared``
    additionally charges the plan's table transmission per payload,
    because every stream in the batch carries its own copy.
    """
    shared_lit = (
        np.asarray(plan.litlen_lengths, dtype=np.int64)
        + np.frombuffer(LITLEN_EXTRA_BITS, dtype=np.uint8)
    )
    shared_dist = (
        np.asarray(plan.dist_lengths, dtype=np.int64)
        + np.frombuffer(DIST_EXTRA_BITS, dtype=np.uint8)
    )
    fixed_lit = (
        np.asarray(FIXED_LITLEN_LENGTHS, dtype=np.int64)
        + np.frombuffer(LITLEN_EXTRA_BITS, dtype=np.uint8)
    )
    # The fixed distance table has 32 code-space entries; only the 30
    # real symbols can occur in a histogram.
    fixed_dist = (
        np.asarray(FIXED_DIST_LENGTHS[:MAX_DIST_SYMBOLS], dtype=np.int64)
        + np.frombuffer(DIST_EXTRA_BITS, dtype=np.uint8)
    )
    shared_bits = (
        plan.table_bits
        + lit_rows @ shared_lit
        + dist_rows @ shared_dist
    )
    fixed_bits = 3 + lit_rows @ fixed_lit + dist_rows @ fixed_dist
    stored_bits = np.fromiter(
        (stored_block_cost_bits(n) for n in raw_sizes),
        dtype=np.int64,
        count=len(raw_sizes),
    )
    return shared_bits, fixed_bits, stored_bits


def _choose(shared: int, fixed: int, stored: int) -> str:
    token_best = fixed if fixed <= shared else shared
    if stored < token_best:
        return CHOICE_STORED
    return CHOICE_FIXED if fixed <= shared else CHOICE_SHARED


def _emit_one(tokens: TokenArray, payload: bytes, choice: str,
              plan: Optional[DynamicPlan]) -> bytes:
    if choice == CHOICE_STORED:
        writer = BitWriter()
        write_stored_block(writer, payload, final=True)
        return writer.flush()
    if choice == CHOICE_SHARED:
        writer = BitWriter()
        write_dynamic_block(writer, tokens, final=True, plan=plan)
        return writer.flush()
    return deflate_tokens(tokens, BlockStrategy.FIXED)


def _table_prefix_items(plan: DynamicPlan, np):
    """Render the shared table transmission once, as packable items.

    The transmission is identical for every payload that adopts the
    shared plan (always a final block), so it is emitted through a real
    :class:`BitWriter` exactly once and chopped into 32-bit
    ``(bits, nbits)`` items — completed bytes as little-endian words,
    then the writer's pending partial byte.
    """
    writer = BitWriter()
    _write_table_transmission(writer, plan, final=True)
    body = writer.getvalue()
    pend_bits, pend_n = writer.pending()
    bits = []
    nbits = []
    whole = len(body) // 4 * 4
    if whole:
        for word in np.frombuffer(body[:whole], dtype="<u4").tolist():
            bits.append(word)
            nbits.append(32)
    tail = body[whole:]
    if tail:
        bits.append(int.from_bytes(tail, "little"))
        nbits.append(8 * len(tail))
    if pend_n:
        bits.append(pend_bits)
        nbits.append(pend_n)
    return (np.array(bits, dtype=np.uint64),
            np.array(nbits, dtype=np.int64))


def _emit_streams_np(tlen, tval, ntok, choices, plan, np):
    """Pack every fixed/shared payload body in one vectorised pass.

    Each payload's stream is a sequence of *items* — a ``(bits, nbits)``
    pair per block header, table-prefix chunk, literal, match half and
    EOB — gathered from the fused tables
    (:data:`~repro.deflate.fused.FIXED_FUSED` and the shared plan's
    cached set). A segmented exclusive cumsum of the item widths places
    every item at an absolute bit offset inside a word-aligned arena
    (64-bit word base per payload), and two OR-scatters assemble the
    little-endian words — LSB-first uint64 words are exactly the
    :class:`BitWriter` byte order, so slicing the arena per payload
    reproduces the scalar writers byte for byte.

    Returns ``(bodies, bits_used)``; stored payloads get ``None`` and 0
    (the caller emits them from the raw bytes).
    """
    count = ntok.size
    sel = np.fromiter((1 if c == CHOICE_SHARED else 0 for c in choices),
                      dtype=np.int64, count=count)
    keep = np.fromiter((c != CHOICE_STORED for c in choices),
                       dtype=np.bool_, count=count)
    seg = np.repeat(np.arange(count, dtype=np.int64), ntok)
    if not keep.all():
        tok_keep = keep[seg]
        tlen = tlen[tok_keep]
        tval = tval[tok_keep]
        seg = seg[tok_keep]

    shared_t = FIXED_FUSED
    if plan is not None:
        shared_t = fused_tables_for(plan.litlen_lengths,
                                    plan.dist_lengths)

    def _u64(arr):
        return np.frombuffer(arr, dtype=f"u{arr.itemsize}").astype(
            np.uint64
        )

    def _i64(arr):
        return np.frombuffer(arr, dtype=np.uint8).astype(np.int64)

    # Fixed-table row first, shared-plan row second, concatenated flat:
    # gathers index ``sel * row_len + symbol``, which beats 2D advanced
    # indexing by a measurable margin at token scale.
    lit_bits = np.concatenate((_u64(FIXED_FUSED.lit_bits),
                               _u64(shared_t.lit_bits)))
    lit_nb = np.concatenate((_i64(FIXED_FUSED.lit_nbits),
                             _i64(shared_t.lit_nbits)))
    len_bits = np.concatenate((_u64(FIXED_FUSED.len_bits),
                               _u64(shared_t.len_bits)))
    len_nb = np.concatenate((_i64(FIXED_FUSED.len_nbits),
                             _i64(shared_t.len_nbits)))
    dco_bits = np.concatenate((_u64(FIXED_FUSED.dist_code_bits),
                               _u64(shared_t.dist_code_bits)))
    dco_nb = np.concatenate((_u64(FIXED_FUSED.dist_code_nbits),
                             _u64(shared_t.dist_code_nbits)))
    d_nb = np.concatenate((_i64(FIXED_FUSED.dist_nbits),
                           _i64(shared_t.dist_nbits)))
    nlit = lit_bits.size >> 1
    nlen = len_bits.size >> 1
    nd = d_nb.size >> 1
    d_base = _u64(FIXED_FUSED.dist_base)  # spec constants, plan-free
    dlookup = np.frombuffer(_DISTANCE_LOOKUP, dtype=np.uint8)

    if plan is not None and bool(np.any(keep & (sel == 1))):
        pb_bits, pb_nb = _table_prefix_items(plan, np)
    else:
        pb_bits = np.empty(0, dtype=np.uint64)
        pb_nb = np.empty(0, dtype=np.int64)

    nprefix = pb_bits.size
    prefix_len = np.where(sel == 1, nprefix, 1) * keep
    # One item per token: a match's length and distance halves are
    # packed into a single (bits, nbits) pair below — at most
    # 20 + 28 bits, comfortably inside a 64-bit item.
    seg_items = ntok * keep
    total_per = prefix_len + seg_items + keep.astype(np.int64)
    base = np.cumsum(total_per) - total_per
    total_items = int(total_per.sum())
    if total_items == 0:
        return [None] * count, np.zeros(count, dtype=np.int64)
    items_bits = np.zeros(total_items, dtype=np.uint64)
    items_nb = np.zeros(total_items, dtype=np.int64)
    items_seg = np.repeat(np.arange(count, dtype=np.int64), total_per)

    if tlen.size:
        seg_tok_excl = np.cumsum(seg_items) - seg_items
        posn = (base[seg] + prefix_len[seg]
                + np.arange(tlen.size, dtype=np.int64)
                - seg_tok_excl[seg])
        s_tok = sel[seg]
        is_m = tlen > 0
        not_m = ~is_m
        lp = posn[not_m]
        li = s_tok[not_m] * nlit + tval[not_m]
        items_bits[lp] = lit_bits[li]
        items_nb[lp] = lit_nb[li]
        mp = posn[is_m]
        ms = s_tok[is_m]
        mi = ms * nlen + tlen[is_m]
        mval = tval[is_m]
        d = dlookup[mval].astype(np.int64)
        di = ms * nd + d
        dist_half = dco_bits[di] | (
            (mval.astype(np.uint64) - d_base[d]) << dco_nb[di]
        )
        lnb = len_nb[mi]
        # LSB-first packing: the length half occupies the low bits, the
        # distance half rides above it — the exact BitWriter order.
        items_bits[mp] = len_bits[mi] | (dist_half << lnb.astype(
            np.uint64))
        items_nb[mp] = lnb + d_nb[di]

    fix_idx = np.flatnonzero(keep & (sel == 0))
    items_bits[base[fix_idx]] = 0b011  # BFINAL=1, BTYPE=01, LSB-first
    items_nb[base[fix_idx]] = 3
    sh_idx = np.flatnonzero(keep & (sel == 1))
    if sh_idx.size and nprefix:
        ppos = (base[sh_idx][:, None]
                + np.arange(nprefix, dtype=np.int64)).ravel()
        items_bits[ppos] = np.tile(pb_bits, sh_idx.size)
        items_nb[ppos] = np.tile(pb_nb, sh_idx.size)
    kp_idx = np.flatnonzero(keep)
    eob_bits = np.array([FIXED_FUSED.eob_bits, shared_t.eob_bits],
                        dtype=np.uint64)
    eob_nb = np.array([FIXED_FUSED.eob_nbits, shared_t.eob_nbits],
                      dtype=np.int64)
    epos = base[kp_idx] + total_per[kp_idx] - 1
    items_bits[epos] = eob_bits[sel[kp_idx]]
    items_nb[epos] = eob_nb[sel[kp_idx]]

    nb_cum = np.concatenate(([0], np.cumsum(items_nb)))
    bits_used = np.diff(nb_cum[np.cumsum(total_per)], prepend=0)
    words = (bits_used + 63) >> 6
    word_base = np.cumsum(words) - words
    nb_excl = nb_cum[:-1]
    seg_bit0 = np.zeros(count, dtype=np.int64)
    seg_bit0[kp_idx] = nb_excl[base[kp_idx]]
    abs_bit = (word_base[items_seg] << 6) + (nb_excl
                                             - seg_bit0[items_seg])
    word = abs_bit >> 6
    shift = (abs_bit & 63).astype(np.uint64)
    low = items_bits << shift
    # The spill into the next word; >>1 twice avoids an undefined
    # 64-bit shift when the item sits entirely in one word (shift 0).
    high = (items_bits >> np.uint64(1)) >> (np.uint64(63) - shift)
    total_words = int(words.sum())
    arena = np.zeros(total_words + 1, dtype=np.uint64)
    # `word` is non-decreasing (offsets grow within a payload, arenas
    # grow across payloads), so each word's items form one run:
    # OR-reduce per run instead of an unbuffered bitwise_or.at scatter.
    starts = np.flatnonzero(np.diff(word, prepend=-1))
    arena[word[starts]] = np.bitwise_or.reduceat(low, starts)
    word_hi = word + 1
    starts_hi = np.flatnonzero(np.diff(word_hi, prepend=-1))
    arena[word_hi[starts_hi]] |= np.bitwise_or.reduceat(high, starts_hi)

    arena_bytes = arena[:total_words].astype("<u8").tobytes()
    nbytes = (bits_used + 7) >> 3
    bodies: List[Optional[bytes]] = [None] * count
    for index in kp_idx.tolist():
        start = int(word_base[index]) << 3
        bodies[index] = arena_bytes[start:start + int(nbytes[index])]
    return bodies, bits_used


class BatchEmission:
    """Per-payload Deflate bodies plus the pricing that produced them."""

    __slots__ = ("bodies", "choices", "plan", "priced_bits")

    def __init__(self, bodies: List[bytes], choices: List[str],
                 plan: Optional[DynamicPlan],
                 priced_bits: List[int]) -> None:
        self.bodies = bodies
        self.choices = choices
        self.plan = plan
        self.priced_bits = priced_bits


def emit_batch(
    tokens_list: Sequence[TokenArray],
    payloads: Sequence[bytes],
    shared_plan: bool = True,
) -> BatchEmission:
    """Emit every payload's final Deflate body, shared-plan priced.

    ``shared_plan=False`` emits every payload as a fixed-Huffman block —
    byte-identical to the serial ``ZLibCompressor`` FIXED path, the
    anchor the differential suite compares against. ``shared_plan=True``
    builds one pooled plan and picks shared/fixed/stored per payload by
    exact bit price.

    The emitted body length is asserted against the priced bit cost —
    pricing and emission disagreeing is a bug worth failing loudly on.
    """
    if len(tokens_list) != len(payloads):
        raise ValueError(
            f"{len(tokens_list)} token streams for {len(payloads)} "
            "payloads"
        )
    if not tokens_list:
        return BatchEmission([], [], None, [])
    if not shared_plan:
        bodies = [deflate_tokens(ta, BlockStrategy.FIXED)
                  for ta in tokens_list]
        return BatchEmission(bodies, [CHOICE_FIXED] * len(bodies), None,
                             [len(b) * 8 for b in bodies])

    np = _numpy()
    raw_sizes = [len(p) for p in payloads]
    if np is not None:
        tlen, tval, ntok = _concat_tokens(tokens_list, np)
        lit_rows, dist_rows = _hist_rows(tlen, tval, ntok, np)
        plan = plan_shared(lit_rows, dist_rows)
        shared_bits, fixed_bits, stored_bits = price_payloads_np(
            lit_rows, dist_rows, raw_sizes, plan, np
        )
        shared_bits = shared_bits.tolist()
        fixed_bits = fixed_bits.tolist()
        stored_bits = stored_bits.tolist()
        choices = [
            _choose(shared_bits[i], fixed_bits[i], stored_bits[i])
            for i in range(len(tokens_list))
        ]
        bodies_np, bits_used = _emit_streams_np(
            tlen, tval, ntok, choices, plan, np
        )
        bodies = []
        priced = []
        for i, choice in enumerate(choices):
            bits = {
                CHOICE_SHARED: shared_bits[i],
                CHOICE_FIXED: fixed_bits[i],
                CHOICE_STORED: stored_bits[i],
            }[choice]
            if choice == CHOICE_STORED:
                body = _emit_one(tokens_list[i], bytes(payloads[i]),
                                 choice, plan)
                actual = len(body) * 8
            else:
                body = bodies_np[i]
                actual = int(bits_used[i])
            if actual != bits:
                raise AssertionError(
                    f"payload {i}: priced {bits} bits but emitted "
                    f"{actual} as {choice}"
                )
            bodies.append(body)
            priced.append(bits)
        return BatchEmission(bodies, choices, plan, priced)

    # Scalar fallback: same pricing arithmetic, one payload at a time.
    hists = [token_histograms(ta) for ta in tokens_list]
    pooled_lit = SymbolHistogram(MAX_LITLEN_SYMBOLS)
    pooled_dist = SymbolHistogram(MAX_DIST_SYMBOLS)
    for lit_hist, dist_hist in hists:
        pooled_lit.merge(lit_hist)
        pooled_dist.merge(dist_hist)
    plan = plan_dynamic_block(pooled_lit, pooled_dist)
    shared_bits = []
    fixed_bits = []
    stored_bits = []
    for (lit_hist, dist_hist), size in zip(hists, raw_sizes):
        bits = plan.table_bits
        for symbol, count in enumerate(lit_hist.counts):
            if count:
                bits += count * (plan.litlen_lengths[symbol]
                                 + LITLEN_EXTRA_BITS[symbol])
        for symbol, count in enumerate(dist_hist.counts):
            if count:
                bits += count * (plan.dist_lengths[symbol]
                                 + DIST_EXTRA_BITS[symbol])
        shared_bits.append(bits)
        fixed_bits.append(fixed_cost_from_histograms(lit_hist,
                                                     dist_hist))
        stored_bits.append(stored_block_cost_bits(size))

    bodies: List[bytes] = []
    choices: List[str] = []
    priced: List[int] = []
    for i, (tokens, payload) in enumerate(zip(tokens_list, payloads)):
        choice = _choose(shared_bits[i], fixed_bits[i], stored_bits[i])
        body = _emit_one(tokens, bytes(payload), choice, plan)
        bits = {
            CHOICE_SHARED: shared_bits[i],
            CHOICE_FIXED: fixed_bits[i],
            CHOICE_STORED: stored_bits[i],
        }[choice]
        if len(body) != (bits + 7) // 8:
            raise AssertionError(
                f"payload {i}: priced {bits} bits "
                f"({(bits + 7) // 8} B) but emitted {len(body)} B "
                f"as {choice}"
            )
        bodies.append(body)
        choices.append(choice)
        priced.append(bits)
    return BatchEmission(bodies, choices, plan, priced)
