"""gzip (RFC 1952) framing — container extension.

The paper targets ZLib framing; gzip framing is a tiny delta (magic,
flags, CRC-32 + ISIZE trailer) and several of the related-work systems
([7], [12]) are gzip cores, so it is included for completeness. Output
is deterministic (MTIME fixed to 0).
"""

from __future__ import annotations

from typing import Optional

from repro.checksums.crc32 import crc32
from repro.deflate.block_writer import BlockStrategy, deflate_tokens
from repro.deflate.inflate import inflate_with_tail
from repro.errors import GzipContainerError
from repro.lzss.compressor import LZSSCompressor
from repro.lzss.hashchain import HashSpec
from repro.lzss.policy import MatchPolicy

_MAGIC = b"\x1f\x8b"
_CM_DEFLATE = 8
_OS_UNKNOWN = 255


def member_header() -> bytes:
    """The fixed 10-byte gzip member header (MTIME pinned to 0).

    Shared by the one-shot :func:`compress` and the serving layer's
    stitched gzip streams (:mod:`repro.serve`), whose Deflate body is
    assembled from parallel shard fragments.
    """
    return _MAGIC + bytes([
        _CM_DEFLATE,
        0,              # FLG: no extra fields
        0, 0, 0, 0,     # MTIME = 0 for determinism
        4,              # XFL: fastest algorithm
        _OS_UNKNOWN,
    ])


def member_trailer(crc: int, size: int) -> bytes:
    """The 8-byte gzip trailer: CRC-32 + ISIZE, little-endian."""
    return crc.to_bytes(4, "little") + (
        (size & 0xFFFFFFFF).to_bytes(4, "little")
    )


def compress(
    data: bytes,
    window_size: int = 4096,
    hash_spec: Optional[HashSpec] = None,
    policy: Optional[MatchPolicy] = None,
    strategy: BlockStrategy = BlockStrategy.FIXED,
) -> bytes:
    """Compress ``data`` into a gzip member."""
    result = LZSSCompressor(window_size, hash_spec, policy).compress(data)
    body = deflate_tokens(result.tokens, strategy)
    return member_header() + body + member_trailer(crc32(data), len(data))


def decompress(data: bytes, max_output: Optional[int] = None) -> bytes:
    """Decode one gzip member; verifies CRC-32 and ISIZE.

    ``max_output`` is enforced inside the Deflate decoder (the bomb
    guard aborts mid-stream, before the trailer is ever reached).
    Trailing bytes after the member are ignored; use
    :func:`decompress_multi` for concatenated members.
    """
    payload, _ = _decompress_member(data, max_output)
    return payload


def _skip_zero_terminated(data: bytes, offset: int) -> int:
    end = data.find(b"\x00", offset)
    if end < 0:
        raise GzipContainerError("unterminated header string")
    return end + 1


def decompress_multi(data: bytes, max_output: Optional[int] = None) -> bytes:
    """Decode a stream of concatenated gzip members (``cat a.gz b.gz``).

    The gzip format explicitly allows member concatenation; compliant
    readers (including ``gzip.decompress``) return the concatenated
    payloads. Each member's CRC/ISIZE is verified individually.
    """
    out = bytearray()
    offset = 0
    if not data:
        raise GzipContainerError("empty input")
    while offset < len(data):
        member = data[offset:]
        # Later members only get the budget earlier ones left over.
        budget = None if max_output is None else max_output - len(out)
        payload, consumed = _decompress_member(member, budget)
        out += payload
        offset += consumed
    return bytes(out)


def _decompress_member(data: bytes, max_output: Optional[int]) -> tuple:
    """Decode one member; returns (payload, bytes consumed)."""
    if len(data) < 10 or data[:2] != _MAGIC:
        raise GzipContainerError("missing gzip magic bytes")
    if data[2] != _CM_DEFLATE:
        raise GzipContainerError(f"unsupported compression method {data[2]}")
    flg = data[3]
    offset = 10
    if flg & 0x04:
        if len(data) < offset + 2:
            raise GzipContainerError("truncated FEXTRA length")
        xlen = int.from_bytes(data[offset:offset + 2], "little")
        offset += 2 + xlen
    if flg & 0x08:
        offset = _skip_zero_terminated(data, offset)
    if flg & 0x10:
        offset = _skip_zero_terminated(data, offset)
    if flg & 0x02:
        offset += 2
    if offset > len(data):
        raise GzipContainerError("truncated gzip header")
    payload, consumed = inflate_with_tail(data[offset:],
                                          max_output=max_output)
    trailer = data[offset + consumed:offset + consumed + 8]
    if len(trailer) < 8:
        raise GzipContainerError("stream truncated before CRC32/ISIZE")
    if crc32(payload) != int.from_bytes(trailer[:4], "little"):
        raise GzipContainerError("CRC-32 mismatch")
    if len(payload) & 0xFFFFFFFF != int.from_bytes(trailer[4:], "little"):
        raise GzipContainerError("ISIZE mismatch")
    return payload, offset + consumed + 8
