"""Fused Huffman emission tables (the production block-emit hot path).

The symbol-at-a-time emitters in :mod:`repro.deflate.block_writer` pay,
per token: a length→symbol split, one or two validated
``HuffmanEncoder.encode`` calls, and one or two validated
``BitWriter.write_bits`` calls for the extra bits. This module collapses
all of that into table lookups prepared once per table set:

* every literal byte maps to a single pre-reversed ``(bits, nbits)``
  pair;
* every match *length* (3..258) maps to one pair with the length
  symbol's code pre-reversed **and its extra bits pre-concatenated**;
* every distance *symbol* carries its pre-reversed code, code width,
  base distance and total width, so a distance value fuses with two
  adds and a shift at run time (a value-indexed table would be 32 K
  entries per dynamic block — too expensive to rebuild per block).

The emit loop accumulates into a local int and splices it into the
:class:`~repro.bitio.BitWriter` with :meth:`BitWriter.extend_fused`
(one ``int.to_bytes`` per ~4 Kbit instead of one append per byte).
Output is byte-for-byte identical to the reference emitters —
``tests/deflate/test_fused_emission.py`` holds that line.

:data:`FIXED_FUSED` is the RFC 1951 fixed-table instance, built eagerly
at import (thread-safe by the same argument as the eager encoders in
:mod:`repro.huffman.fixed`); dynamic blocks build a per-block instance
with :func:`fuse_encoders`.
"""

from __future__ import annotations

import threading
from array import array
from collections import OrderedDict
from typing import NamedTuple, Optional, Sequence, Tuple

from repro.bitio.writer import BitWriter
from repro.deflate.constants import (
    _DISTANCE_LOOKUP,
    _LENGTH_LOOKUP,
    DISTANCE_TABLE,
    END_OF_BLOCK,
    LENGTH_TABLE,
)
from repro.huffman.encoder import HuffmanEncoder
from repro.huffman.fixed import fixed_dist_encoder, fixed_litlen_encoder
from repro.lzss.tokens import TokenArray

#: Flush the local bit accumulator to the writer once it holds this
#: many bits. Every token-emit shifts over the whole accumulator, so a
#: small bound keeps those big-int ops in a few machine words; 256 bits
#: still amortises the flush to one ``to_bytes`` per ~32 output bytes
#: (measured fastest among 256..16384 on the synthetic workload).
_FLUSH_BITS = 256


class FusedTables:
    """Precomputed ``(bits, nbits)`` emission tables for one table set."""

    __slots__ = (
        "lit_bits",
        "lit_nbits",
        "len_bits",
        "len_nbits",
        "dist_code_bits",
        "dist_code_nbits",
        "dist_base",
        "dist_nbits",
        "eob_bits",
        "eob_nbits",
        "has_dist",
    )

    def __init__(
        self,
        litlen: HuffmanEncoder,
        dist: Optional[HuffmanEncoder],
    ) -> None:
        rcodes = litlen.reversed_codes
        nbits = litlen.lengths
        self.lit_bits = array("L", rcodes[:256])
        self.lit_nbits = array("B", nbits[:256])

        # Match length -> fully fused litlen symbol: reversed code with
        # the extra-bits value concatenated above it. Indexed directly
        # by length (entries 0..2 unused).
        len_bits = array("L", [0]) * 259
        len_nbits = array("B", [0]) * 259
        for length in range(3, 259):
            offset = _LENGTH_LOOKUP[length]
            base, extra = LENGTH_TABLE[offset]
            symbol = 257 + offset
            code_nbits = nbits[symbol]
            len_bits[length] = rcodes[symbol] | (length - base) << code_nbits
            len_nbits[length] = code_nbits + extra
        self.len_bits = len_bits
        self.len_nbits = len_nbits

        # Distance symbols keep code and extra separate: the extra value
        # depends on the concrete distance, so it is fused at run time
        # (two adds and a shift) against these per-symbol entries.
        self.has_dist = dist is not None
        nsyms = len(DISTANCE_TABLE)
        self.dist_code_bits = array("L", [0]) * nsyms
        self.dist_code_nbits = array("B", [0]) * nsyms
        self.dist_base = array("L", [0]) * nsyms
        self.dist_nbits = array("B", [0]) * nsyms
        if dist is not None:
            for symbol, (base, extra) in enumerate(DISTANCE_TABLE):
                code_nbits = dist.lengths[symbol]
                self.dist_code_bits[symbol] = dist.reversed_codes[symbol]
                self.dist_code_nbits[symbol] = code_nbits
                self.dist_base[symbol] = base
                self.dist_nbits[symbol] = code_nbits + extra

        self.eob_bits = rcodes[END_OF_BLOCK]
        self.eob_nbits = nbits[END_OF_BLOCK]


def fuse_encoders(
    litlen: HuffmanEncoder, dist: Optional[HuffmanEncoder]
) -> FusedTables:
    """Build fused tables for one (litlen, dist) encoder pair."""
    return FusedTables(litlen, dist)


#: Fused RFC 1951 fixed tables (eager: immutable and import-published,
#: so concurrent first use is race-free).
FIXED_FUSED = FusedTables(fixed_litlen_encoder(), fixed_dist_encoder())


class FusedCacheInfo(NamedTuple):
    """Snapshot of the fused-table cache counters."""

    hits: int
    misses: int
    size: int
    maxsize: int


class _FusedTableCache:
    """Small LRU cache keying :class:`FusedTables` on code-length tuples.

    A table set is fully determined by its ``(litlen_lengths,
    dist_lengths)`` tuples — both immutable once built — so dynamic
    blocks with identical histogram shapes (common when the adaptive
    splitter cuts a homogeneous input into many blocks) share one
    ``FusedTables`` instead of rebuilding ~600 array entries per block.
    Guarded by a lock: building a table set twice under a race would be
    wasteful but the bookkeeping (LRU eviction) must stay consistent.
    """

    def __init__(self, maxsize: int = 64) -> None:
        self.maxsize = maxsize
        self._store: "OrderedDict[tuple, FusedTables]" = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0

    def get(
        self,
        litlen_lengths: Tuple[int, ...],
        dist_lengths: Tuple[int, ...],
    ) -> FusedTables:
        key = (litlen_lengths, dist_lengths)
        with self._lock:
            tables = self._store.get(key)
            if tables is not None:
                self._hits += 1
                self._store.move_to_end(key)
                return tables
            self._misses += 1
        litlen = HuffmanEncoder(litlen_lengths)
        dist = HuffmanEncoder(dist_lengths) if any(dist_lengths) else None
        tables = FusedTables(litlen, dist)
        with self._lock:
            self._store[key] = tables
            if len(self._store) > self.maxsize:
                self._store.popitem(last=False)
        return tables

    def info(self) -> FusedCacheInfo:
        with self._lock:
            return FusedCacheInfo(
                self._hits, self._misses, len(self._store), self.maxsize
            )

    def clear(self) -> None:
        with self._lock:
            self._store.clear()
            self._hits = 0
            self._misses = 0


_CACHE = _FusedTableCache()


def fused_tables_for(
    litlen_lengths: Sequence[int], dist_lengths: Sequence[int] = ()
) -> FusedTables:
    """Fused tables for one code-length pair, via the process-wide LRU.

    ``dist_lengths`` with no non-zero entry (or empty) builds a
    literal-only table set, mirroring the ``dist=None`` convention of
    :func:`fuse_encoders`. Both the splitter and
    :func:`repro.deflate.dynamic.write_dynamic_block` fetch through
    here, so repeated blocks with the same table shape pay for
    construction once.
    """
    return _CACHE.get(tuple(litlen_lengths), tuple(dist_lengths))


def fused_cache_info() -> FusedCacheInfo:
    """Hit/miss/size counters of the fused-table cache."""
    return _CACHE.info()


def fused_cache_clear() -> None:
    """Empty the fused-table cache and reset its counters (tests)."""
    _CACHE.clear()


def write_symbols_fused(
    writer: BitWriter, tokens: TokenArray, tables: FusedTables
) -> None:
    """Emit a token stream plus end-of-block through fused tables.

    The caller guarantees every symbol that occurs has a code in
    ``tables`` (true by construction when the tables were built from
    this stream's histogram, and always for the fixed tables).
    """
    lit_bits = tables.lit_bits
    lit_nbits = tables.lit_nbits
    len_bits = tables.len_bits
    len_nbits = tables.len_nbits
    dist_code_bits = tables.dist_code_bits
    dist_code_nbits = tables.dist_code_nbits
    dist_base = tables.dist_base
    dist_nbits = tables.dist_nbits
    dlookup = _DISTANCE_LOOKUP
    extend = writer.extend_fused

    bitbuf = 0
    bitcount = 0
    for length, value in zip(tokens.lengths, tokens.values):
        if length:
            bitbuf |= len_bits[length] << bitcount
            bitcount += len_nbits[length]
            d = dlookup[value]
            bitbuf |= (
                dist_code_bits[d]
                | (value - dist_base[d]) << dist_code_nbits[d]
            ) << bitcount
            bitcount += dist_nbits[d]
        else:
            bitbuf |= lit_bits[value] << bitcount
            bitcount += lit_nbits[value]
        if bitcount >= _FLUSH_BITS:
            extend(bitbuf, bitcount)
            bitbuf = 0
            bitcount = 0
    bitbuf |= tables.eob_bits << bitcount
    bitcount += tables.eob_nbits
    extend(bitbuf, bitcount)
