"""Deflate block emission from LZSS token streams.

:func:`write_fixed_block` is the software twin of the paper's pipelined
fixed-table Huffman encoder: literal and length/distance symbols are
coded with the static RFC 1951 tables, so no table transmission or
construction is needed — the property that lets the hardware encoder run
with "no additional clock cycles or memories" (§IV).

:class:`~repro.lzss.tokens.TokenArray` input is emitted through the
fused lookup tables of :mod:`repro.deflate.fused` by default; pass
``fused=False`` for the validating symbol-at-a-time reference path
(byte-identical output, parity-tested).
"""

from __future__ import annotations

import enum
from typing import Iterable, Union

from repro.bitio.writer import BitWriter
from repro.deflate.constants import (
    END_OF_BLOCK,
    distance_symbol,
    length_symbol,
)
from repro.errors import DeflateError
from repro.huffman.fixed import fixed_dist_encoder, fixed_litlen_encoder
from repro.lzss.tokens import Literal, Match, Token, TokenArray


class BlockStrategy(enum.Enum):
    """How token streams are entropy-coded into Deflate blocks."""

    FIXED = "fixed"        # the paper's hardware path
    DYNAMIC = "dynamic"    # per-block optimal tables (extension)
    STORED = "stored"      # no compression
    ADAPTIVE = "adaptive"  # per-block cheapest of the three (zlib-style)


def write_block_header(writer: BitWriter, btype: int, final: bool) -> None:
    """Emit the 3-bit BFINAL/BTYPE block header."""
    writer.write_bits(1 if final else 0, 1)
    writer.write_bits(btype, 2)


def write_fixed_block(
    writer: BitWriter,
    tokens: Union[TokenArray, Iterable[Token]],
    final: bool = True,
    fused: bool = True,
) -> None:
    """Encode ``tokens`` as one fixed-Huffman block (BTYPE=01).

    ``fused=True`` (default) sends :class:`TokenArray` input through the
    precomputed fused tables; generic iterables and ``fused=False`` use
    the symbol-at-a-time reference emitter.
    """
    write_block_header(writer, 0b01, final)
    if fused and isinstance(tokens, TokenArray):
        from repro.deflate.fused import FIXED_FUSED, write_symbols_fused

        write_symbols_fused(writer, tokens, FIXED_FUSED)
        return
    litlen = fixed_litlen_encoder()
    dist = fixed_dist_encoder()
    _write_symbols(writer, tokens, litlen, dist)
    litlen.encode(writer, END_OF_BLOCK)


def _write_symbols(writer, tokens, litlen, dist) -> None:
    if isinstance(tokens, TokenArray):
        for length, value in zip(tokens.lengths, tokens.values):
            if length == 0:
                litlen.encode(writer, value)
            else:
                _write_match(writer, length, value, litlen, dist)
        return
    for token in tokens:
        if isinstance(token, Literal):
            litlen.encode(writer, token.value)
        elif isinstance(token, Match):
            _write_match(writer, token.length, token.distance, litlen, dist)
        else:
            raise DeflateError(f"not a token: {token!r}")


def _write_match(writer, length, distance, litlen, dist) -> None:
    symbol, extra_bits, extra_value = length_symbol(length)
    litlen.encode(writer, symbol)
    if extra_bits:
        writer.write_bits(extra_value, extra_bits)
    symbol, extra_bits, extra_value = distance_symbol(distance)
    dist.encode(writer, symbol)
    if extra_bits:
        writer.write_bits(extra_value, extra_bits)


#: A stored chunk's LEN field is 16 bits, so one block holds <= 65535 B.
STORED_CHUNK_MAX = 0xFFFF


def write_stored_block(
    writer: BitWriter, data, final: bool = True
) -> None:
    """Emit ``data`` as stored (BTYPE=00) blocks, splitting past 65535 B.

    Accepts ``bytes``, ``bytearray`` or ``memoryview`` and emits each
    chunk as a zero-copy slice — a STORED shard's payload goes straight
    from the input buffer into the writer.
    """
    view = memoryview(data)
    starts = range(0, len(view), STORED_CHUNK_MAX) if len(view) else (0,)
    last_start = starts[-1]
    for start in starts:
        chunk = view[start:start + STORED_CHUNK_MAX]
        write_block_header(writer, 0b00, final and start == last_start)
        writer.align_to_byte()
        writer.write_bits(len(chunk), 16)
        writer.write_bits(len(chunk) ^ 0xFFFF, 16)
        writer.align_to_byte()
        writer.write_bytes(chunk)


def stored_block_cost_bits(n: int, bit_offset: int = 0) -> int:
    """Exact bit cost of storing ``n`` bytes from ``bit_offset`` (0-7).

    :func:`write_stored_block` splits past 65535 B, so the price charges
    every chunk's 3-bit header, byte-alignment padding and 32-bit
    LEN/NLEN — ``ceil(n / 65535)`` times, not once. The first chunk's
    padding depends on where in a byte the block starts (``bit_offset``,
    the writer's pending bit count); later chunks always start
    byte-aligned and pad their 3-bit header with exactly 5 bits.

    The old single-chunk formula underpriced a >64 KiB block by 35+ bits,
    letting STORED win on an underestimate it could not deliver.
    """
    chunks = max(1, -(-n // STORED_CHUNK_MAX))
    bits = 8 * n + 35 * chunks  # per chunk: 3-bit header + LEN/NLEN
    bits += -(bit_offset + 3) % 8  # first chunk's alignment padding
    bits += 5 * (chunks - 1)       # later chunks: 3-bit header, 5-bit pad
    return bits


def deflate_tokens(
    tokens: Union[TokenArray, Iterable[Token]],
    strategy: BlockStrategy = BlockStrategy.FIXED,
) -> bytes:
    """Encode a whole token stream as a single final Deflate block."""
    from repro.deflate.dynamic import write_dynamic_block

    writer = BitWriter()
    if strategy is BlockStrategy.FIXED:
        write_fixed_block(writer, tokens, final=True)
    elif strategy is BlockStrategy.DYNAMIC:
        write_dynamic_block(writer, tokens, final=True)
    elif strategy is BlockStrategy.STORED:
        from repro.lzss.decompressor import decompress_tokens

        write_stored_block(writer, decompress_tokens(tokens), final=True)
    elif strategy is BlockStrategy.ADAPTIVE:
        from repro.deflate.splitter import write_adaptive_blocks
        from repro.lzss.decompressor import decompress_tokens

        if not isinstance(tokens, TokenArray):
            materialised = TokenArray()
            for token in tokens:
                materialised.append_token(token)
            tokens = materialised
        write_adaptive_blocks(
            writer, tokens, decompress_tokens(tokens), final=True
        )
    else:
        raise DeflateError(f"unknown strategy: {strategy!r}")
    return writer.flush()


def fixed_block_cost_bits(tokens: Union[TokenArray, Iterable[Token]]) -> int:
    """Exact bit cost of a fixed block for ``tokens`` without encoding.

    Used by the estimator to price output sizes cheaply (the cost of
    each symbol is static).
    """
    litlen = fixed_litlen_encoder()
    dist = fixed_dist_encoder()
    bits = 3  # header
    if isinstance(tokens, TokenArray):
        items = zip(tokens.lengths, tokens.values)
    else:
        items = (
            (0, t.value) if isinstance(t, Literal) else (t.length, t.distance)
            for t in tokens
        )
    for length, value in items:
        if length == 0:
            bits += litlen.cost_bits(value)
        else:
            symbol, extra_bits, _ = length_symbol(length)
            bits += litlen.cost_bits(symbol) + extra_bits
            symbol, extra_bits, _ = distance_symbol(value)
            bits += dist.cost_bits(symbol) + extra_bits
    bits += litlen.cost_bits(END_OF_BLOCK)
    return bits


def fixed_cost_from_histograms(litlen_hist, dist_hist) -> int:
    """Exact fixed-block bit cost from symbol histograms.

    ``litlen_hist``/``dist_hist`` are the per-block histograms of
    :func:`repro.deflate.dynamic.token_histograms` (END_OF_BLOCK
    included). Extra bits are a function of the symbol alone, so
    Σ count × (code_len + extra) equals :func:`fixed_block_cost_bits`
    without revisiting the tokens — the adaptive splitter prices fixed
    and dynamic codings from the same single histogram pass.
    """
    from repro.deflate.constants import DIST_EXTRA_BITS, LITLEN_EXTRA_BITS

    litlen_lengths = fixed_litlen_encoder().lengths
    dist_lengths = fixed_dist_encoder().lengths
    bits = 3  # header
    for symbol, count in enumerate(litlen_hist.counts):
        if count:
            bits += count * (
                litlen_lengths[symbol] + LITLEN_EXTRA_BITS[symbol]
            )
    for symbol, count in enumerate(dist_hist.counts):
        if count:
            bits += count * (dist_lengths[symbol] + DIST_EXTRA_BITS[symbol])
    return bits
