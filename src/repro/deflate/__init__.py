"""Deflate (RFC 1951) encoding and decoding, plus stream containers.

The encoder path is the paper's: LZSS tokens feed a fixed-table Huffman
block writer, making the output "compatible with the ZLib library". A
dynamic-Huffman writer and a stored-block writer complete the spec
(and let the estimator price the fixed-table penalty the paper accepts
for speed). :mod:`repro.deflate.inflate` is a full from-scratch decoder
for all three block types, and :mod:`repro.deflate.zlib_container` /
:mod:`repro.deflate.gzip_container` provide RFC 1950 / RFC 1952 framing.
"""

from repro.deflate.block_writer import (
    BlockStrategy,
    deflate_tokens,
    stored_block_cost_bits,
    write_fixed_block,
    write_stored_block,
)
from repro.deflate.dynamic import (
    DynamicPlan,
    plan_dynamic_block,
    write_dynamic_block,
)
from repro.deflate.fused import (
    FusedTables,
    fuse_encoders,
    fused_cache_clear,
    fused_cache_info,
    fused_tables_for,
)
from repro.deflate.inflate import inflate
from repro.deflate.zlib_container import (
    ZLibCompressor,
    compress as zlib_compress,
    decompress as zlib_decompress,
)
from repro.deflate.gzip_container import (
    compress as gzip_compress,
    decompress as gzip_decompress,
)
from repro.deflate.stream import (
    ZLibStreamCompressor,
    compress_chunks,
    decompress_prefix,
)
from repro.deflate.splitter import (
    BlockChoice,
    deflate_adaptive,
    evaluate_block,
    write_adaptive_blocks,
    zlib_compress_adaptive,
)
from repro.deflate.preset_dict import (
    compress_with_dict,
    decompress_with_dict,
    train_dictionary,
)

__all__ = [
    "ZLibStreamCompressor",
    "compress_chunks",
    "decompress_prefix",
    "BlockChoice",
    "deflate_adaptive",
    "evaluate_block",
    "write_adaptive_blocks",
    "zlib_compress_adaptive",
    "compress_with_dict",
    "decompress_with_dict",
    "train_dictionary",
    "BlockStrategy",
    "deflate_tokens",
    "stored_block_cost_bits",
    "write_fixed_block",
    "write_stored_block",
    "DynamicPlan",
    "plan_dynamic_block",
    "write_dynamic_block",
    "FusedTables",
    "fuse_encoders",
    "fused_cache_clear",
    "fused_cache_info",
    "fused_tables_for",
    "inflate",
    "ZLibCompressor",
    "zlib_compress",
    "zlib_decompress",
    "gzip_compress",
    "gzip_decompress",
]
