"""Per-block entropy-coding strategy selection with cut-point search.

The paper's hardware commits to the fixed tables for speed; ZLib's
software encoder instead prices each block under all three codings and
emits the cheapest. This module implements that opportunistic choice so
the estimator can quantify exactly what the hardware's commitment costs
on a given workload (the "can be also compensated by increasing LZSS
compression level" discussion of §IV).

Pricing is single-pass, zlib-style: one histogram pass over the block's
tokens yields both the fixed cost (Σ count × (code_len + extra)) and,
via :func:`repro.deflate.dynamic.plan_dynamic_block`, the exact dynamic
cost including the RLE'd table transmission — no scratch encode. The
winning block is then emitted exactly once, and a DYNAMIC winner reuses
the tables already built during pricing (the ``opt_len``/``static_len``
accounting of ZLib's ``deflate.c``, with the emission fused through
:mod:`repro.deflate.fused` and its code-length-keyed table cache).

Block boundaries are no longer a blind cadence. With ``cut_search``
(the default) the splitter accumulates mergeable segment histograms
over candidate boundaries every :data:`DEFAULT_CUT_EVERY` tokens and
prices each boundary: *cut here* (two blocks, two table transmissions)
against *merge with the next candidate* (one block, one combined
table). A boundary survives only when the two separate blocks price
cheaper than the combined one, so homogeneous runs coalesce into a
single table transmission while texture changes — text abutting binary
in a heterogeneous shard — still get their own tables. ``cut_search=
False`` restores the fixed cadence (cut every ``tokens_per_block``
tokens, ZLib's symbol-buffer-fill behaviour).

On top of the searched boundaries sits the refine loop
(:func:`refine_searched_blocks`, ``refine=True`` / the ``best``
profile): the tokenizer chose matches greedily (or one-step lazily)
with no knowledge of the entropy coder, so inside each settled block
the parse and the prices can disagree — a length-17 match that looked
good costs 13 bits under the block's actual dynamic code where two
length-8 matches would have cost 11. The loop queries the exact
longest match at every block offset once (suffix array over the
block plus its reachable history) and then iterates parse → plan a
couple of times, each forward DP scoring candidate token choices by
the previous round's code lengths. A block keeps its refined parse
only when the exact re-price is strictly cheaper, so refinement never
loses a bit.
"""

from __future__ import annotations

import heapq
from array import array
from dataclasses import dataclass, field
from typing import List, Optional, Union

from repro.bitio.writer import BitWriter
from repro.deflate.block_writer import (
    BlockStrategy,
    fixed_cost_from_histograms,
    stored_block_cost_bits,
    write_fixed_block,
    write_stored_block,
)
from repro.deflate.constants import (
    DIST_EXTRA_BITS,
    END_OF_BLOCK,
    LENGTH_TABLE,
    LITLEN_EXTRA_BITS,
    _DISTANCE_LOOKUP,
    _LENGTH_LOOKUP,
)
from repro.deflate.dynamic import (
    DynamicPlan,
    plan_dynamic_block,
    segment_histograms,
    token_histograms,
    write_dynamic_block,
)
from repro.errors import ConfigError
from repro.lzss.tokens import MAX_MATCH, MIN_LOOKAHEAD, MIN_MATCH, TokenArray

#: Default fixed-cadence block length, in tokens (ZLib's symbol-buffer
#: size); also the ceiling for the candidate spacing of the cut search.
DEFAULT_TOKENS_PER_BLOCK = 16384

#: Default candidate-boundary spacing for the cut-point search, in
#: tokens. Finer spacing isolates texture changes more precisely but
#: prices more boundaries (two :func:`plan_dynamic_block` calls each).
DEFAULT_CUT_EVERY = 4096


@dataclass
class BlockChoice:
    """One block's evaluated coding options.

    ``plan`` carries the dynamic tables built while pricing, so a
    DYNAMIC winner is emitted without recomputing histograms or code
    lengths (``None`` for empty blocks, which never choose DYNAMIC).
    """

    strategy: BlockStrategy
    fixed_bits: int
    dynamic_bits: int
    stored_bits: int
    plan: Optional[DynamicPlan] = field(default=None, repr=False,
                                        compare=False)

    @property
    def chosen_bits(self) -> int:
        return {
            BlockStrategy.FIXED: self.fixed_bits,
            BlockStrategy.DYNAMIC: self.dynamic_bits,
            BlockStrategy.STORED: self.stored_bits,
        }[self.strategy]


def evaluate_block(
    tokens: TokenArray, uncompressed_size: int, bit_offset: int = 0
) -> BlockChoice:
    """Price one block under all three codings and pick the cheapest.

    All three prices are exact: fixed and dynamic from one histogram
    pass over ``tokens``, stored from the multi-chunk formula of
    :func:`stored_block_cost_bits` (``bit_offset`` — the writer's
    pending bit count — pins the first chunk's alignment padding).

    An empty block chooses FIXED explicitly: it has no symbols to
    re-code, DYNAMIC could never be cheaper and has no plan to emit
    with (``plan=None`` would crash the dynamic writer), and STORED
    still pays 35+ framing bits against FIXED's 10. The choice used to
    fall out of ``min()``'s first-wins tie ordering alone.
    """
    litlen_hist, dist_hist = token_histograms(tokens)
    fixed_bits = fixed_cost_from_histograms(litlen_hist, dist_hist)
    stored_bits = stored_block_cost_bits(uncompressed_size, bit_offset)
    if not len(tokens):
        return BlockChoice(
            strategy=BlockStrategy.FIXED,
            fixed_bits=fixed_bits,
            dynamic_bits=fixed_bits,
            stored_bits=stored_bits,
            plan=None,
        )
    plan = plan_dynamic_block(litlen_hist, dist_hist)
    best = min(
        (fixed_bits, BlockStrategy.FIXED),
        (plan.cost_bits, BlockStrategy.DYNAMIC),
        (stored_bits, BlockStrategy.STORED),
        key=lambda pair: pair[0],
    )
    return BlockChoice(
        strategy=best[1],
        fixed_bits=fixed_bits,
        dynamic_bits=plan.cost_bits,
        stored_bits=stored_bits,
        plan=plan,
    )


def _slice_tokens(tokens: TokenArray, start: int, stop: int) -> TokenArray:
    out = TokenArray()
    out.lengths = tokens.lengths[start:stop]
    out.values = tokens.values[start:stop]
    return out


class _SearchedBlock:
    """One cut-search block: token range plus its already-built pricing.

    ``plan`` is ``None`` when the entropy lower bound proved STORED
    wins outright (``dynamic_bits`` then records the bound, which the
    margin in :func:`_price_block_histograms` guarantees can never win
    at emission either).
    """

    __slots__ = ("start", "stop", "raw_len", "fixed_bits", "dynamic_bits",
                 "plan", "search_bits")

    def __init__(self, start, stop, raw_len, fixed_bits, dynamic_bits,
                 plan, search_bits):
        self.start = start
        self.stop = stop
        self.raw_len = raw_len
        self.fixed_bits = fixed_bits
        self.dynamic_bits = dynamic_bits
        self.plan = plan
        self.search_bits = search_bits


def _huffman_payload_bits(weights: List[int]) -> int:
    """Σ count × length of an *unbounded* Huffman code over ``weights``.

    The classic sum-of-internal-nodes identity via a heap — no lengths
    are ever materialized. Because the 15-bit limit only ever adds
    constraints, this is a true floor on the length-limited payload the
    plan would pay, and it is exact (not Shannon) — crucially it does
    not suffer the plug-in entropy's ~(K−1)/(2·ln2) ≈ 184-bit sampling
    deficit on near-uniform histograms, which is larger than the stored
    framing the shortcut needs to resolve.
    """
    if len(weights) == 1:
        return weights[0]
    heap = list(weights)
    heapq.heapify(heap)
    total = 0
    while len(heap) > 1:
        merged = heapq.heappop(heap) + heapq.heappop(heap)
        total += merged
        heapq.heappush(heap, merged)
    return total


def _dynamic_lower_bound_bits(litlen_hist, dist_hist) -> int:
    """A floor on any dynamic block's exact cost, without a plan.

    Three certain components: the unbounded-Huffman payload plus extra
    bits (:func:`_huffman_payload_bits` — the 15-bit limit can only
    cost more); 29 header bits (3-bit block header, HLIT/HDIST/HCLEN,
    four mandatory code-length slots); and half a bit of table
    transmission per used symbol (every used symbol's length reaches
    the decoder through the RLE'd code-length stream, whose cheapest
    emission — a 1-bit REP_6 symbol plus its 2 extra bits — covers at
    most six lengths). The search uses the floor to skip package-merge
    entirely when STORED already wins (every segment of an
    incompressible shard) and to reject merges whose floor exceeds the
    split price.
    """
    bits = 29
    used = 0
    for hist, extra in (
        (litlen_hist, LITLEN_EXTRA_BITS),
        (dist_hist, DIST_EXTRA_BITS),
    ):
        weights = []
        for symbol, count in enumerate(hist.counts):
            if count:
                weights.append(count)
                bits += count * extra[symbol]
        if weights:
            used += len(weights)
            bits += _huffman_payload_bits(weights)
    return bits + (used >> 1)


def _price_block_histograms(litlen_hist, dist_hist, raw_len: int,
                            budget: Optional[int] = None):
    """Exact three-way price of a block built from segment histograms.

    Segment histograms exclude END_OF_BLOCK (they are mergeable units,
    not blocks); it is counted in transiently here, once per *block*
    being priced. The stored price uses bit offset 0 — a search-time
    estimate within 7 bits of any emission offset; emission re-prices
    stored at the writer's true offset.

    Returns ``(fixed_bits, dynamic_bits, plan, chosen_bits)``. When the
    entropy floor shows STORED beating both other codings with more
    than a byte to spare (so no emission offset can flip the choice),
    the plan is never built and ``dynamic_bits`` is the floor.

    ``budget`` is the split price a merged block must beat: when even
    the floor ``min(fixed, stored, entropy bound)`` exceeds it the
    answer is already "cut", and ``None`` comes back without the
    package-merge tables ever being built. The two shortcuts between
    them keep the search's exact pricing off the expensive path for
    the two *obvious* decisions — incompressible segments (stored
    wins) and texture boundaries (cut wins) — leaving full plan
    construction only where the choice is genuinely close.
    """
    counts = litlen_hist.counts
    counts[END_OF_BLOCK] += 1
    try:
        fixed_bits = fixed_cost_from_histograms(litlen_hist, dist_hist)
        stored_bits = stored_block_cost_bits(raw_len)
        cheap_floor = min(fixed_bits, stored_bits)
        stored_won = stored_bits + 8 <= fixed_bits
        if stored_won or (budget is not None and cheap_floor > budget):
            floor = _dynamic_lower_bound_bits(litlen_hist, dist_hist)
            if stored_won and stored_bits + 8 <= floor:
                if budget is not None and stored_bits > budget:
                    return None
                return fixed_bits, floor, None, stored_bits
            if budget is not None and min(cheap_floor, floor) > budget:
                return None
        plan = plan_dynamic_block(litlen_hist, dist_hist)
    finally:
        counts[END_OF_BLOCK] -= 1
    chosen = min(fixed_bits, plan.cost_bits, stored_bits)
    if budget is not None and chosen > budget:
        return None
    return fixed_bits, plan.cost_bits, plan, chosen


def search_cut_points(
    tokens: TokenArray,
    cut_every: int = DEFAULT_CUT_EVERY,
    cut_every_max: Optional[int] = None,
) -> List[_SearchedBlock]:
    """Greedy cost-driven block boundaries over candidate cut points.

    Walks candidate boundaries, keeping an accumulated block whose
    histograms are extended by merging each next segment's histograms
    into it. At every candidate the exact prices decide: merge when
    ``cost(acc + seg) <= cost(acc) + cost(seg)`` — one combined table
    transmission beats two — else cut. Histogram merging makes each
    decision O(alphabet), never a re-walk of the tokens; the winning
    block's :class:`~repro.deflate.dynamic.DynamicPlan` is carried to
    emission so nothing is priced twice.

    Candidate spacing starts at ``cut_every`` and doubles after every
    accepted merge, up to ``cut_every_max`` (default ``16 *
    cut_every``); a cut resets it. Stable runs therefore cost
    O(log) pricing decisions instead of one per ``cut_every`` tokens,
    while the tokens right after a texture change — where boundary
    resolution actually buys ratio — are still examined at the fine
    spacing. With ``cut_every_max=cut_every`` the spacing is constant
    and every merged block provably prices no cheaper than the
    equal-cadence split it replaced (the monotonicity property of
    ``tests/deflate/test_cut_search.py``).
    """
    n = len(tokens)
    if cut_every_max is None:
        cut_every_max = 16 * cut_every
    blocks: List[_SearchedBlock] = []
    acc_lit = acc_dist = None
    acc_start = acc_stop = acc_raw = 0
    acc_fixed = acc_dynamic = acc_plan = acc_price = None
    spacing = cut_every
    seg_start = 0
    while seg_start < n:
        seg_stop = min(seg_start + spacing, n)
        lit, dist, raw = segment_histograms(tokens, seg_start, seg_stop)
        fixed_bits, dynamic_bits, plan, price = _price_block_histograms(
            lit, dist, raw
        )
        if acc_lit is None:
            acc_lit, acc_dist, acc_raw = lit, dist, raw
            acc_start, acc_stop = seg_start, seg_stop
            acc_fixed, acc_dynamic, acc_plan, acc_price = (
                fixed_bits, dynamic_bits, plan, price
            )
            seg_start = seg_stop
            continue
        merged_lit = acc_lit.copy()
        merged_lit.merge(lit)
        merged_dist = acc_dist.copy()
        merged_dist.merge(dist)
        merged_raw = acc_raw + raw
        merged = _price_block_histograms(
            merged_lit, merged_dist, merged_raw,
            budget=acc_price + price,
        )
        if merged is not None:
            acc_lit, acc_dist, acc_raw = merged_lit, merged_dist, merged_raw
            acc_stop = seg_stop
            acc_fixed, acc_dynamic, acc_plan, acc_price = merged
            spacing = min(2 * spacing, cut_every_max)
        else:
            blocks.append(_SearchedBlock(
                acc_start, acc_stop, acc_raw, acc_fixed,
                acc_dynamic, acc_plan, acc_price,
            ))
            acc_lit, acc_dist, acc_raw = lit, dist, raw
            acc_start, acc_stop = seg_start, seg_stop
            acc_fixed, acc_dynamic, acc_plan, acc_price = (
                fixed_bits, dynamic_bits, plan, price
            )
            spacing = cut_every
        seg_start = seg_stop
    if acc_lit is not None:
        blocks.append(_SearchedBlock(
            acc_start, acc_stop, acc_raw, acc_fixed,
            acc_dynamic, acc_plan, acc_price,
        ))
    return blocks


@dataclass(frozen=True)
class RefineConfig:
    """Knobs of the iterative block re-tokenisation (the refine loop).

    ``window_size`` must match the tokenizer's (distances the re-parse
    emits are bounded by ``window_size - MIN_LOOKAHEAD``, like every
    backend's). ``iterations`` is the number of parse↔price fixed-point
    rounds; zlib's level-9 refinement converges in 2-3. The two budgets
    cap work: blocks larger than ``max_block_bytes`` and any bytes past
    ``max_total_bytes`` per call are left as parsed.
    """

    window_size: int
    iterations: int = 2
    max_block_bytes: int = 1 << 17
    max_total_bytes: int = 1 << 22

    def __post_init__(self) -> None:
        if self.iterations < 1:
            raise ConfigError(
                f"refine iterations must be >= 1: {self.iterations}"
            )


#: Smallest block worth re-parsing: below this the table transmission
#: dominates and the DP cannot move the price.
_REFINE_MIN_BLOCK = 64

#: DP price of a symbol the current plan assigns no code: the 15-bit
#: ceiling keeps unseen symbols *expensive but reachable*, so the parse
#: can introduce them and the next iteration's plan prices them truly.
_REFINE_UNSEEN_BITS = 15

#: Fixed-point sub-bit resolution of the DP costs. The first iteration
#: prices by the plan's integer code lengths; later iterations price by
#: the *fractional* entropy of the emerging histogram (zopfli's squeeze
#: trick: ``-log2 p`` separates choices that integer Huffman lengths
#: tie), so every cost is carried in units of ``1/_REFINE_SCALE`` bits.
_REFINE_SCALE = 32


def _candidate_length_table():
    """For each longest-match length L: the candidate DP lengths.

    One candidate per Deflate length bucket — the bucket's top, clipped
    to L — plus L itself. Within a bucket every length costs the same
    bits (same symbol, extra bits are a constant count), so the top
    reaches furthest at equal price; ~2-17 candidates per position
    instead of all L-2 lengths keeps the DP near-linear.
    """
    table = [()] * (MAX_MATCH + 1)
    for match_len in range(MIN_MATCH, MAX_MATCH + 1):
        candidates = set()
        for base, extra in LENGTH_TABLE:
            if base > match_len:
                break
            candidates.add(min(base + (1 << extra) - 1, match_len))
        # Length 258 has its own zero-extra symbol (285).
        if match_len == MAX_MATCH:
            candidates.add(MAX_MATCH)
        table[match_len] = tuple(sorted(candidates))
    return table


_REFINE_CANDIDATES = _candidate_length_table()


def _refine_costs(litlen_lengths, dist_lengths):
    """DP costs from integer code lengths, in ``1/_REFINE_SCALE`` bits.

    Used for the first iteration, where the only prices available are
    the original plan's code lengths.
    """
    scale = _REFINE_SCALE
    unseen = _REFINE_UNSEEN_BITS * scale
    lit_cost = [
        (litlen_lengths[b] * scale or unseen) for b in range(256)
    ]
    len_cost = [0] * (MAX_MATCH + 1)
    for match_len in range(MIN_MATCH, MAX_MATCH + 1):
        symbol = 257 + _LENGTH_LOOKUP[match_len]
        code = litlen_lengths[symbol] * scale or unseen
        len_cost[match_len] = code + LITLEN_EXTRA_BITS[symbol] * scale
    dist_cost = [
        (dist_lengths[s] * scale or unseen) + DIST_EXTRA_BITS[s] * scale
        for s in range(len(DIST_EXTRA_BITS))
    ]
    return lit_cost, len_cost, dist_cost


def _entropy_costs(litlen_hist, dist_hist):
    """DP costs from histogram entropy, in ``1/_REFINE_SCALE`` bits.

    ``-log2(freq/total)`` per symbol — the fractional cost a perfect
    entropy coder would charge. Huffman rounds these to integers, and
    pricing the *unrounded* value lets the DP separate choices the
    integer code lengths tie (zopfli's squeeze statistics); the exact
    re-price on acceptance keeps the final comparison honest.
    """
    from math import log2

    scale = _REFINE_SCALE
    unseen = _REFINE_UNSEEN_BITS * scale

    def costs(hist):
        total = sum(hist)
        if not total:
            return [unseen] * len(hist)
        log_total = log2(total)
        cap = unseen
        return [
            min(cap, round((log_total - log2(f)) * scale)) if f else cap
            for f in hist
        ]

    lit_full = costs(litlen_hist.counts)
    lit_cost = lit_full[:256]
    len_cost = [0] * (MAX_MATCH + 1)
    for match_len in range(MIN_MATCH, MAX_MATCH + 1):
        symbol = 257 + _LENGTH_LOOKUP[match_len]
        len_cost[match_len] = (
            lit_full[symbol] + LITLEN_EXTRA_BITS[symbol] * scale
        )
    dist_full = costs(dist_hist.counts)
    dist_cost = [
        dist_full[s] + DIST_EXTRA_BITS[s] * scale
        for s in range(len(DIST_EXTRA_BITS))
    ]
    return lit_cost, len_cost, dist_cost


def _position_candidates(frontier):
    """DP candidates for one position, from its match frontier.

    Each Pareto pair contributes its bucket-top candidate lengths; when
    two pairs offer the same candidate length, the closer distance wins
    (same length symbol, strictly cheaper distance code). The distance
    symbol is resolved here, once — it is loop-invariant across the
    refine iterations, only its price changes.
    """
    best = {}
    for match_len, dist in frontier:
        for length in _REFINE_CANDIDATES[match_len]:
            prev = best.get(length)
            if prev is None or dist < prev:
                best[length] = dist
    dlookup = _DISTANCE_LOOKUP
    return tuple(
        (length, dist, dlookup[dist]) for length, dist in best.items()
    )


def _reparse_block(buf, h0, blen, cands, costs) -> TokenArray:
    """One price-aware forward DP over a block's bytes.

    ``cands[i]`` holds the ``(length, dist, dist_symbol)`` candidates
    at block offset ``i`` (empty = literal only), built by
    :func:`_position_candidates` from the suffix-array match frontier.
    ``costs`` is the ``(lit, len, dist)`` price triple — the block's
    *emerging* prices (:func:`_refine_costs` / :func:`_entropy_costs`),
    not the fixed tables.
    """
    lit_cost, len_cost, dist_cost = costs
    inf = 1 << 60
    cost = [inf] * (blen + 1)
    cost[0] = 0
    back_len = [0] * (blen + 1)
    back_dist = [0] * (blen + 1)
    for i in range(blen):
        ci = cost[i]
        byte = buf[h0 + i]
        c = ci + lit_cost[byte]
        if c < cost[i + 1]:
            cost[i + 1] = c
            back_len[i + 1] = 0
        for length, dist, dsym in cands[i]:
            c = ci + dist_cost[dsym] + len_cost[length]
            j = i + length
            if c < cost[j]:
                cost[j] = c
                back_len[j] = length
                back_dist[j] = dist
    out_lengths = []
    out_values = []
    j = blen
    while j > 0:
        length = back_len[j]
        if length == 0:
            out_lengths.append(0)
            out_values.append(buf[h0 + j - 1])
            j -= 1
        else:
            out_lengths.append(length)
            out_values.append(back_dist[j])
            j -= length
    out_lengths.reverse()
    out_values.reverse()
    tokens = TokenArray()
    tokens.lengths = array("i", out_lengths)
    tokens.values = array("i", out_values)
    return tokens


def refine_searched_blocks(
    view: memoryview,
    blocks: List[_SearchedBlock],
    config: RefineConfig,
):
    """Re-tokenise each searched block against its own Huffman prices.

    The cut search fixed the block boundaries from the *original* parse;
    within each block the match choices were made blind to the block's
    actual code lengths. This loop closes that gap, zopfli-style:
    query the match *frontier* at every block offset once (suffix array
    over history + block; Pareto pairs of length vs distance, so a
    shorter match at a much closer distance is priceable), then iterate
    parse -> plan 2-3 times, each DP scoring candidates by the previous
    round's code lengths.
    A block keeps its refined parse only when the exact re-price is
    strictly cheaper — the refine can never make a stream bigger.

    Returns a list aligned with ``blocks``: ``None`` (keep the original
    parse) or ``(tokens, fixed_bits, dynamic_bits, plan)``.
    """
    from repro.lzss.sa import SuffixArrayMatcher

    results: List[Optional[tuple]] = [None] * len(blocks)
    max_dist = config.window_size - MIN_LOOKAHEAD
    if max_dist < 1:
        return results
    budget = config.max_total_bytes
    consumed = 0
    for index, searched in enumerate(blocks):
        raw_len = searched.raw_len
        start_byte = consumed
        consumed += raw_len
        if (searched.plan is None          # entropy bound: stored wins
                or raw_len < _REFINE_MIN_BLOCK
                or raw_len > config.max_block_bytes
                or raw_len > budget):
            continue
        budget -= raw_len
        hist_start = start_byte - max_dist
        if hist_start < 0:
            hist_start = 0
        buf = bytes(view[hist_start:start_byte + raw_len])
        h0 = start_byte - hist_start
        matcher = SuffixArrayMatcher(buf, max_dist)
        frontier = matcher.match_frontier
        cands = [()] * raw_len
        for i in range(raw_len):
            limit = raw_len - i
            if limit > MAX_MATCH:
                limit = MAX_MATCH
            if limit >= MIN_MATCH:
                pairs = frontier(h0 + i, limit)
                if pairs:
                    cands[i] = _position_candidates(pairs)
        costs = _refine_costs(
            searched.plan.litlen_lengths, searched.plan.dist_lengths
        )
        best = None
        for _ in range(config.iterations):
            tokens = _reparse_block(buf, h0, raw_len, cands, costs)
            litlen_hist, dist_hist = token_histograms(tokens)
            fixed_bits = fixed_cost_from_histograms(litlen_hist, dist_hist)
            plan = plan_dynamic_block(litlen_hist, dist_hist)
            price = min(fixed_bits, plan.cost_bits)
            if best is None or price < best[0]:
                best = (price, tokens, fixed_bits, plan)
            costs = _entropy_costs(litlen_hist, dist_hist)
        old_price = min(searched.fixed_bits, searched.dynamic_bits)
        if best is not None and best[0] < old_price:
            results[index] = (best[1], best[2], best[3].cost_bits, best[3])
    return results


@dataclass
class SplitResult:
    """Outcome of an adaptive-strategy encoding."""

    body: bytes
    choices: List[BlockChoice]

    def strategy_counts(self) -> dict:
        counts: dict = {}
        for choice in self.choices:
            counts[choice.strategy] = counts.get(choice.strategy, 0) + 1
        return counts


def write_adaptive_blocks(
    writer: BitWriter,
    tokens: TokenArray,
    original,
    tokens_per_block: int = DEFAULT_TOKENS_PER_BLOCK,
    final: bool = True,
    cut_search: bool = True,
    cut_every: Optional[int] = None,
    cut_every_max: Optional[int] = None,
    refine: Optional[RefineConfig] = None,
) -> List[BlockChoice]:
    """Emit ``tokens`` into ``writer`` with per-block strategy choice.

    ``original`` supplies the raw bytes for stored blocks (``bytes`` or
    ``memoryview``; stored payloads are sliced zero-copy) and must be
    exactly the buffer the tokens reconstruct — a shorter buffer would
    fail deep inside memoryview slicing on the first STORED block, a
    longer one would silently drop its tail into a corrupt stream, so
    the length is validated up front.

    With ``cut_search`` (default) block boundaries come from
    :func:`search_cut_points`: candidates every ``cut_every`` tokens
    (default ``min(DEFAULT_CUT_EVERY, tokens_per_block)``), kept only
    when two separate blocks price cheaper than one merged block.
    ``cut_search=False`` cuts blindly every ``tokens_per_block`` tokens
    (ZLib cuts on symbol-buffer fill, the same mechanism). With
    ``final=False`` every block is non-final, so the run can sit inside
    a larger stream — the shard bodies of :mod:`repro.parallel` and the
    chunk emission of :class:`repro.deflate.stream.ZLibStreamCompressor`.

    A :class:`RefineConfig` turns on the iterative re-tokenisation of
    each searched block (:func:`refine_searched_blocks`); it is only
    effective together with ``cut_search`` — blind cuts carry no
    per-block plan to refine against.

    Each block is tokenised, priced and emitted exactly once; the
    returned choices record the per-block prices actually paid.
    """
    if tokens_per_block < 1:
        raise ConfigError(
            f"tokens_per_block must be >= 1: {tokens_per_block}"
        )
    if cut_every is None:
        cut_every = min(DEFAULT_CUT_EVERY, tokens_per_block)
    if cut_every < 1:
        raise ConfigError(f"cut_every must be >= 1: {cut_every}")
    view = memoryview(original)
    expected = tokens.uncompressed_size()
    if len(view) != expected:
        raise ConfigError(
            f"original buffer is {len(view)} bytes but the token stream "
            f"reconstructs {expected}"
        )
    n = len(tokens)
    if cut_search and n:
        return _emit_searched_blocks(writer, tokens, view, final,
                                     cut_every, cut_every_max,
                                     refine=refine)
    choices: List[BlockChoice] = []
    block_starts = list(range(0, n, tokens_per_block)) or [0]
    consumed = 0
    for index, start in enumerate(block_starts):
        stop = min(start + tokens_per_block, n)
        block = _slice_tokens(tokens, start, stop)
        raw_len = block.uncompressed_size()
        last = final and index == len(block_starts) - 1
        choice = evaluate_block(
            block, raw_len, bit_offset=writer.bit_length & 7
        )
        choices.append(choice)
        _emit_block(writer, choice, block,
                    view[consumed:consumed + raw_len], last)
        consumed += raw_len
    return choices


def _emit_searched_blocks(
    writer: BitWriter,
    tokens: TokenArray,
    view: memoryview,
    final: bool,
    cut_every: int,
    cut_every_max: Optional[int] = None,
    refine: Optional[RefineConfig] = None,
) -> List[BlockChoice]:
    """Emit the blocks the cut-point search decided on.

    Fixed and dynamic prices (and the dynamic plan) were already built
    during the search; only the stored price is refreshed here, at the
    writer's true bit offset. With a :class:`RefineConfig` each block
    is first offered to :func:`refine_searched_blocks`, and a strictly
    cheaper re-parse replaces the block's tokens and prices.
    """
    blocks = search_cut_points(tokens, cut_every, cut_every_max)
    refined = (
        refine_searched_blocks(view, blocks, refine)
        if refine is not None else [None] * len(blocks)
    )
    choices: List[BlockChoice] = []
    consumed = 0
    for index, searched in enumerate(blocks):
        better = refined[index]
        if better is not None:
            block, fixed_bits, dynamic_bits, plan = better
        else:
            block = None
            fixed_bits = searched.fixed_bits
            dynamic_bits = searched.dynamic_bits
            plan = searched.plan
        stored_bits = stored_block_cost_bits(
            searched.raw_len, writer.bit_length & 7
        )
        best = min(
            (fixed_bits, BlockStrategy.FIXED),
            (dynamic_bits, BlockStrategy.DYNAMIC),
            (stored_bits, BlockStrategy.STORED),
            key=lambda pair: pair[0],
        )
        choice = BlockChoice(
            strategy=best[1],
            fixed_bits=fixed_bits,
            dynamic_bits=dynamic_bits,
            stored_bits=stored_bits,
            plan=plan,
        )
        choices.append(choice)
        if block is None:
            block = _slice_tokens(tokens, searched.start, searched.stop)
        last = final and index == len(blocks) - 1
        _emit_block(writer, choice, block,
                    view[consumed:consumed + searched.raw_len], last)
        consumed += searched.raw_len
    return choices


def _emit_block(writer, choice, block, raw_view, last) -> None:
    if choice.strategy is BlockStrategy.FIXED:
        write_fixed_block(writer, block, final=last)
    elif choice.strategy is BlockStrategy.DYNAMIC:
        write_dynamic_block(writer, block, final=last, plan=choice.plan)
    else:
        write_stored_block(writer, raw_view, final=last)


def deflate_adaptive(
    tokens: TokenArray,
    original,
    tokens_per_block: int = DEFAULT_TOKENS_PER_BLOCK,
    cut_search: bool = True,
    cut_every: Optional[int] = None,
    cut_every_max: Optional[int] = None,
    refine: Optional[RefineConfig] = None,
) -> SplitResult:
    """Encode a token stream with per-block best-strategy choice."""
    writer = BitWriter()
    choices = write_adaptive_blocks(
        writer, tokens, original, tokens_per_block, final=True,
        cut_search=cut_search, cut_every=cut_every,
        cut_every_max=cut_every_max, refine=refine,
    )
    return SplitResult(body=writer.flush(), choices=choices)


def zlib_compress_adaptive(
    data: bytes,
    window_size: Optional[int] = None,
    hash_spec=None,
    policy=None,
    tokens_per_block: Optional[int] = None,
    traced: Optional[bool] = None,
    cut_search: Optional[bool] = None,
    cut_every: Optional[int] = None,
    sniff: Optional[bool] = None,
    backend: Optional[str] = None,
    refine: Optional[bool] = None,
    profile=None,
) -> bytes:
    """Full ZLib stream with per-block strategy choice.

    Runs the trace-free fast tokenizer by default (``backend=`` selects
    another registered tokenizer, ``"traced"`` the instrumented path;
    the token streams of the hash-chain backends are identical — see
    :mod:`repro.lzss.backends`). ``refine=True`` re-parses each
    searched block against its own emerging Huffman prices
    (:func:`refine_searched_blocks`). ``sniff`` short-circuits data the
    entropy sniff (:func:`repro.deflate.sniff.looks_incompressible`)
    deems incompressible straight into multi-chunk stored blocks,
    skipping tokenization entirely. The removed ``traced=`` boolean now
    raises :class:`~repro.errors.ConfigError`.
    """
    from repro.api import CompressRequest, reject_legacy_trace
    from repro.checksums.adler32 import adler32
    from repro.deflate.sniff import looks_incompressible
    from repro.deflate.zlib_container import make_header
    from repro.lzss.compressor import LZSSCompressor

    reject_legacy_trace("traced", traced)
    resolved = CompressRequest(
        profile=profile,
        window_size=window_size,
        hash_spec=hash_spec,
        policy=policy,
        tokens_per_block=tokens_per_block,
        cut_search=cut_search,
        sniff=sniff,
        backend=backend,
        refine=refine,
    ).resolve(backend="fast")
    refine_config = (
        RefineConfig(window_size=resolved.window_size)
        if resolved.refine and resolved.cut_search else None
    )
    if resolved.sniff and looks_incompressible(data):
        writer = BitWriter()
        write_stored_block(writer, data, final=True)
        body = writer.flush()
    else:
        compressor = LZSSCompressor(
            resolved.window_size, resolved.hash_spec, resolved.policy,
            backend=resolved.backend,
        )
        result = compressor.compress(data)
        split = deflate_adaptive(result.tokens, data,
                                 resolved.tokens_per_block,
                                 cut_search=resolved.cut_search,
                                 cut_every=cut_every,
                                 refine=refine_config)
        body = split.body
    return (
        make_header(resolved.window_size)
        + body
        + adler32(data).to_bytes(4, "big")
    )
