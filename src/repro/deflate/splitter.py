"""Per-block entropy-coding strategy selection.

The paper's hardware commits to the fixed tables for speed; ZLib's
software encoder instead prices each block under all three codings and
emits the cheapest. This module implements that opportunistic choice so
the estimator can quantify exactly what the hardware's commitment costs
on a given workload (the "can be also compensated by increasing LZSS
compression level" discussion of §IV).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.bitio.writer import BitWriter
from repro.deflate.block_writer import (
    BlockStrategy,
    fixed_block_cost_bits,
    write_fixed_block,
    write_stored_block,
)
from repro.deflate.dynamic import write_dynamic_block
from repro.errors import ConfigError
from repro.lzss.tokens import TokenArray


@dataclass
class BlockChoice:
    """One block's evaluated coding options."""

    strategy: BlockStrategy
    fixed_bits: int
    dynamic_bits: int
    stored_bits: int

    @property
    def chosen_bits(self) -> int:
        return {
            BlockStrategy.FIXED: self.fixed_bits,
            BlockStrategy.DYNAMIC: self.dynamic_bits,
            BlockStrategy.STORED: self.stored_bits,
        }[self.strategy]


def _dynamic_cost_bits(tokens: TokenArray) -> int:
    """Exact dynamic-block cost, measured by encoding into a scratch
    writer (table transmission included)."""
    writer = BitWriter()
    write_dynamic_block(writer, tokens, final=False)
    return writer.bit_length


def evaluate_block(
    tokens: TokenArray, uncompressed_size: int
) -> BlockChoice:
    """Price one block under all three codings and pick the cheapest."""
    fixed_bits = fixed_block_cost_bits(tokens)
    dynamic_bits = _dynamic_cost_bits(tokens) if len(tokens) else fixed_bits
    # Stored: header + alignment (worst case 7 bits) + LEN/NLEN + bytes.
    stored_bits = 3 + 7 + 32 + 8 * uncompressed_size
    best = min(
        (fixed_bits, BlockStrategy.FIXED),
        (dynamic_bits, BlockStrategy.DYNAMIC),
        (stored_bits, BlockStrategy.STORED),
        key=lambda pair: pair[0],
    )
    return BlockChoice(
        strategy=best[1],
        fixed_bits=fixed_bits,
        dynamic_bits=dynamic_bits,
        stored_bits=stored_bits,
    )


def _slice_tokens(tokens: TokenArray, start: int, stop: int) -> TokenArray:
    out = TokenArray()
    out.lengths = tokens.lengths[start:stop]
    out.values = tokens.values[start:stop]
    return out


@dataclass
class SplitResult:
    """Outcome of an adaptive-strategy encoding."""

    body: bytes
    choices: List[BlockChoice]

    def strategy_counts(self) -> dict:
        counts: dict = {}
        for choice in self.choices:
            counts[choice.strategy] = counts.get(choice.strategy, 0) + 1
        return counts


def deflate_adaptive(
    tokens: TokenArray,
    original: bytes,
    tokens_per_block: int = 16384,
) -> SplitResult:
    """Encode a token stream with per-block best-strategy choice.

    ``original`` supplies the raw bytes for stored blocks. Blocks are
    cut every ``tokens_per_block`` tokens (ZLib cuts on symbol-buffer
    fill, which is the same mechanism).
    """
    if tokens_per_block < 1:
        raise ConfigError(
            f"tokens_per_block must be >= 1: {tokens_per_block}"
        )
    writer = BitWriter()
    choices: List[BlockChoice] = []
    n = len(tokens)
    block_starts = list(range(0, n, tokens_per_block)) or [0]
    consumed = 0
    for index, start in enumerate(block_starts):
        stop = min(start + tokens_per_block, n)
        block = _slice_tokens(tokens, start, stop)
        raw_len = block.uncompressed_size()
        final = index == len(block_starts) - 1
        choice = evaluate_block(block, raw_len)
        choices.append(choice)
        if choice.strategy is BlockStrategy.FIXED:
            write_fixed_block(writer, block, final=final)
        elif choice.strategy is BlockStrategy.DYNAMIC:
            write_dynamic_block(writer, block, final=final)
        else:
            write_stored_block(
                writer, original[consumed:consumed + raw_len], final=final
            )
        consumed += raw_len
    return SplitResult(body=writer.flush(), choices=choices)


def zlib_compress_adaptive(
    data: bytes,
    window_size: int = 4096,
    hash_spec=None,
    policy=None,
    tokens_per_block: int = 16384,
) -> bytes:
    """Full ZLib stream with per-block strategy choice."""
    from repro.checksums.adler32 import adler32
    from repro.deflate.zlib_container import make_header
    from repro.lzss.compressor import LZSSCompressor

    result = LZSSCompressor(window_size, hash_spec, policy).compress(data)
    split = deflate_adaptive(result.tokens, data, tokens_per_block)
    return (
        make_header(window_size)
        + split.body
        + adler32(data).to_bytes(4, "big")
    )
