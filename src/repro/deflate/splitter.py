"""Per-block entropy-coding strategy selection.

The paper's hardware commits to the fixed tables for speed; ZLib's
software encoder instead prices each block under all three codings and
emits the cheapest. This module implements that opportunistic choice so
the estimator can quantify exactly what the hardware's commitment costs
on a given workload (the "can be also compensated by increasing LZSS
compression level" discussion of §IV).

Pricing is single-pass, zlib-style: one histogram pass over the block's
tokens yields both the fixed cost (Σ count × (code_len + extra)) and,
via :func:`repro.deflate.dynamic.plan_dynamic_block`, the exact dynamic
cost including the RLE'd table transmission — no scratch encode. The
winning block is then emitted exactly once, and a DYNAMIC winner reuses
the tables already built during pricing (the ``opt_len``/``static_len``
accounting of ZLib's ``deflate.c``, with the emission fused through
:mod:`repro.deflate.fused` and its code-length-keyed table cache).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.bitio.writer import BitWriter
from repro.deflate.block_writer import (
    BlockStrategy,
    fixed_cost_from_histograms,
    stored_block_cost_bits,
    write_fixed_block,
    write_stored_block,
)
from repro.deflate.dynamic import (
    DynamicPlan,
    plan_dynamic_block,
    token_histograms,
    write_dynamic_block,
)
from repro.errors import ConfigError
from repro.lzss.tokens import TokenArray


@dataclass
class BlockChoice:
    """One block's evaluated coding options.

    ``plan`` carries the dynamic tables built while pricing, so a
    DYNAMIC winner is emitted without recomputing histograms or code
    lengths (``None`` for empty blocks, which never choose DYNAMIC).
    """

    strategy: BlockStrategy
    fixed_bits: int
    dynamic_bits: int
    stored_bits: int
    plan: Optional[DynamicPlan] = field(default=None, repr=False,
                                        compare=False)

    @property
    def chosen_bits(self) -> int:
        return {
            BlockStrategy.FIXED: self.fixed_bits,
            BlockStrategy.DYNAMIC: self.dynamic_bits,
            BlockStrategy.STORED: self.stored_bits,
        }[self.strategy]


def evaluate_block(
    tokens: TokenArray, uncompressed_size: int, bit_offset: int = 0
) -> BlockChoice:
    """Price one block under all three codings and pick the cheapest.

    All three prices are exact: fixed and dynamic from one histogram
    pass over ``tokens``, stored from the multi-chunk formula of
    :func:`stored_block_cost_bits` (``bit_offset`` — the writer's
    pending bit count — pins the first chunk's alignment padding).
    """
    litlen_hist, dist_hist = token_histograms(tokens)
    fixed_bits = fixed_cost_from_histograms(litlen_hist, dist_hist)
    if len(tokens):
        plan = plan_dynamic_block(litlen_hist, dist_hist)
        dynamic_bits = plan.cost_bits
    else:
        plan = None
        dynamic_bits = fixed_bits
    stored_bits = stored_block_cost_bits(uncompressed_size, bit_offset)
    best = min(
        (fixed_bits, BlockStrategy.FIXED),
        (dynamic_bits, BlockStrategy.DYNAMIC),
        (stored_bits, BlockStrategy.STORED),
        key=lambda pair: pair[0],
    )
    return BlockChoice(
        strategy=best[1],
        fixed_bits=fixed_bits,
        dynamic_bits=dynamic_bits,
        stored_bits=stored_bits,
        plan=plan,
    )


def _slice_tokens(tokens: TokenArray, start: int, stop: int) -> TokenArray:
    out = TokenArray()
    out.lengths = tokens.lengths[start:stop]
    out.values = tokens.values[start:stop]
    return out


@dataclass
class SplitResult:
    """Outcome of an adaptive-strategy encoding."""

    body: bytes
    choices: List[BlockChoice]

    def strategy_counts(self) -> dict:
        counts: dict = {}
        for choice in self.choices:
            counts[choice.strategy] = counts.get(choice.strategy, 0) + 1
        return counts


def write_adaptive_blocks(
    writer: BitWriter,
    tokens: TokenArray,
    original,
    tokens_per_block: int = 16384,
    final: bool = True,
) -> List[BlockChoice]:
    """Emit ``tokens`` into ``writer`` with per-block strategy choice.

    ``original`` supplies the raw bytes for stored blocks (``bytes`` or
    ``memoryview``; stored payloads are sliced zero-copy). Blocks are
    cut every ``tokens_per_block`` tokens (ZLib cuts on symbol-buffer
    fill, which is the same mechanism). With ``final=False`` every block
    is non-final, so the run can sit inside a larger stream — the shard
    bodies of :mod:`repro.parallel` and the chunk emission of
    :class:`repro.deflate.stream.ZLibStreamCompressor`.

    Each block is tokenised, priced and emitted exactly once; the
    returned choices record the per-block prices actually paid.
    """
    if tokens_per_block < 1:
        raise ConfigError(
            f"tokens_per_block must be >= 1: {tokens_per_block}"
        )
    view = memoryview(original)
    choices: List[BlockChoice] = []
    n = len(tokens)
    block_starts = list(range(0, n, tokens_per_block)) or [0]
    consumed = 0
    for index, start in enumerate(block_starts):
        stop = min(start + tokens_per_block, n)
        block = _slice_tokens(tokens, start, stop)
        raw_len = block.uncompressed_size()
        last = final and index == len(block_starts) - 1
        choice = evaluate_block(
            block, raw_len, bit_offset=writer.bit_length & 7
        )
        choices.append(choice)
        if choice.strategy is BlockStrategy.FIXED:
            write_fixed_block(writer, block, final=last)
        elif choice.strategy is BlockStrategy.DYNAMIC:
            write_dynamic_block(writer, block, final=last, plan=choice.plan)
        else:
            write_stored_block(
                writer, view[consumed:consumed + raw_len], final=last
            )
        consumed += raw_len
    return choices


def deflate_adaptive(
    tokens: TokenArray,
    original,
    tokens_per_block: int = 16384,
) -> SplitResult:
    """Encode a token stream with per-block best-strategy choice."""
    writer = BitWriter()
    choices = write_adaptive_blocks(
        writer, tokens, original, tokens_per_block, final=True
    )
    return SplitResult(body=writer.flush(), choices=choices)


def zlib_compress_adaptive(
    data: bytes,
    window_size: int = 4096,
    hash_spec=None,
    policy=None,
    tokens_per_block: int = 16384,
    traced: bool = False,
) -> bytes:
    """Full ZLib stream with per-block strategy choice.

    Runs the trace-free fast tokenizer by default (``traced=True``
    selects the instrumented path; the token stream is identical).
    """
    from repro.checksums.adler32 import adler32
    from repro.deflate.zlib_container import make_header
    from repro.lzss.compressor import LZSSCompressor

    compressor = LZSSCompressor(window_size, hash_spec, policy,
                                trace=traced)
    result = compressor.compress(data)
    split = deflate_adaptive(result.tokens, data, tokens_per_block)
    return (
        make_header(window_size)
        + split.body
        + adler32(data).to_bytes(4, "big")
    )
