"""Per-block entropy-coding strategy selection with cut-point search.

The paper's hardware commits to the fixed tables for speed; ZLib's
software encoder instead prices each block under all three codings and
emits the cheapest. This module implements that opportunistic choice so
the estimator can quantify exactly what the hardware's commitment costs
on a given workload (the "can be also compensated by increasing LZSS
compression level" discussion of §IV).

Pricing is single-pass, zlib-style: one histogram pass over the block's
tokens yields both the fixed cost (Σ count × (code_len + extra)) and,
via :func:`repro.deflate.dynamic.plan_dynamic_block`, the exact dynamic
cost including the RLE'd table transmission — no scratch encode. The
winning block is then emitted exactly once, and a DYNAMIC winner reuses
the tables already built during pricing (the ``opt_len``/``static_len``
accounting of ZLib's ``deflate.c``, with the emission fused through
:mod:`repro.deflate.fused` and its code-length-keyed table cache).

Block boundaries are no longer a blind cadence. With ``cut_search``
(the default) the splitter accumulates mergeable segment histograms
over candidate boundaries every :data:`DEFAULT_CUT_EVERY` tokens and
prices each boundary: *cut here* (two blocks, two table transmissions)
against *merge with the next candidate* (one block, one combined
table). A boundary survives only when the two separate blocks price
cheaper than the combined one, so homogeneous runs coalesce into a
single table transmission while texture changes — text abutting binary
in a heterogeneous shard — still get their own tables. ``cut_search=
False`` restores the fixed cadence (cut every ``tokens_per_block``
tokens, ZLib's symbol-buffer-fill behaviour).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import List, Optional

from repro.bitio.writer import BitWriter
from repro.deflate.block_writer import (
    BlockStrategy,
    fixed_cost_from_histograms,
    stored_block_cost_bits,
    write_fixed_block,
    write_stored_block,
)
from repro.deflate.constants import (
    DIST_EXTRA_BITS,
    END_OF_BLOCK,
    LITLEN_EXTRA_BITS,
)
from repro.deflate.dynamic import (
    DynamicPlan,
    plan_dynamic_block,
    segment_histograms,
    token_histograms,
    write_dynamic_block,
)
from repro.errors import ConfigError
from repro.lzss.tokens import TokenArray

#: Default fixed-cadence block length, in tokens (ZLib's symbol-buffer
#: size); also the ceiling for the candidate spacing of the cut search.
DEFAULT_TOKENS_PER_BLOCK = 16384

#: Default candidate-boundary spacing for the cut-point search, in
#: tokens. Finer spacing isolates texture changes more precisely but
#: prices more boundaries (two :func:`plan_dynamic_block` calls each).
DEFAULT_CUT_EVERY = 4096


@dataclass
class BlockChoice:
    """One block's evaluated coding options.

    ``plan`` carries the dynamic tables built while pricing, so a
    DYNAMIC winner is emitted without recomputing histograms or code
    lengths (``None`` for empty blocks, which never choose DYNAMIC).
    """

    strategy: BlockStrategy
    fixed_bits: int
    dynamic_bits: int
    stored_bits: int
    plan: Optional[DynamicPlan] = field(default=None, repr=False,
                                        compare=False)

    @property
    def chosen_bits(self) -> int:
        return {
            BlockStrategy.FIXED: self.fixed_bits,
            BlockStrategy.DYNAMIC: self.dynamic_bits,
            BlockStrategy.STORED: self.stored_bits,
        }[self.strategy]


def evaluate_block(
    tokens: TokenArray, uncompressed_size: int, bit_offset: int = 0
) -> BlockChoice:
    """Price one block under all three codings and pick the cheapest.

    All three prices are exact: fixed and dynamic from one histogram
    pass over ``tokens``, stored from the multi-chunk formula of
    :func:`stored_block_cost_bits` (``bit_offset`` — the writer's
    pending bit count — pins the first chunk's alignment padding).

    An empty block chooses FIXED explicitly: it has no symbols to
    re-code, DYNAMIC could never be cheaper and has no plan to emit
    with (``plan=None`` would crash the dynamic writer), and STORED
    still pays 35+ framing bits against FIXED's 10. The choice used to
    fall out of ``min()``'s first-wins tie ordering alone.
    """
    litlen_hist, dist_hist = token_histograms(tokens)
    fixed_bits = fixed_cost_from_histograms(litlen_hist, dist_hist)
    stored_bits = stored_block_cost_bits(uncompressed_size, bit_offset)
    if not len(tokens):
        return BlockChoice(
            strategy=BlockStrategy.FIXED,
            fixed_bits=fixed_bits,
            dynamic_bits=fixed_bits,
            stored_bits=stored_bits,
            plan=None,
        )
    plan = plan_dynamic_block(litlen_hist, dist_hist)
    best = min(
        (fixed_bits, BlockStrategy.FIXED),
        (plan.cost_bits, BlockStrategy.DYNAMIC),
        (stored_bits, BlockStrategy.STORED),
        key=lambda pair: pair[0],
    )
    return BlockChoice(
        strategy=best[1],
        fixed_bits=fixed_bits,
        dynamic_bits=plan.cost_bits,
        stored_bits=stored_bits,
        plan=plan,
    )


def _slice_tokens(tokens: TokenArray, start: int, stop: int) -> TokenArray:
    out = TokenArray()
    out.lengths = tokens.lengths[start:stop]
    out.values = tokens.values[start:stop]
    return out


class _SearchedBlock:
    """One cut-search block: token range plus its already-built pricing.

    ``plan`` is ``None`` when the entropy lower bound proved STORED
    wins outright (``dynamic_bits`` then records the bound, which the
    margin in :func:`_price_block_histograms` guarantees can never win
    at emission either).
    """

    __slots__ = ("start", "stop", "raw_len", "fixed_bits", "dynamic_bits",
                 "plan", "search_bits")

    def __init__(self, start, stop, raw_len, fixed_bits, dynamic_bits,
                 plan, search_bits):
        self.start = start
        self.stop = stop
        self.raw_len = raw_len
        self.fixed_bits = fixed_bits
        self.dynamic_bits = dynamic_bits
        self.plan = plan
        self.search_bits = search_bits


def _huffman_payload_bits(weights: List[int]) -> int:
    """Σ count × length of an *unbounded* Huffman code over ``weights``.

    The classic sum-of-internal-nodes identity via a heap — no lengths
    are ever materialized. Because the 15-bit limit only ever adds
    constraints, this is a true floor on the length-limited payload the
    plan would pay, and it is exact (not Shannon) — crucially it does
    not suffer the plug-in entropy's ~(K−1)/(2·ln2) ≈ 184-bit sampling
    deficit on near-uniform histograms, which is larger than the stored
    framing the shortcut needs to resolve.
    """
    if len(weights) == 1:
        return weights[0]
    heap = list(weights)
    heapq.heapify(heap)
    total = 0
    while len(heap) > 1:
        merged = heapq.heappop(heap) + heapq.heappop(heap)
        total += merged
        heapq.heappush(heap, merged)
    return total


def _dynamic_lower_bound_bits(litlen_hist, dist_hist) -> int:
    """A floor on any dynamic block's exact cost, without a plan.

    Three certain components: the unbounded-Huffman payload plus extra
    bits (:func:`_huffman_payload_bits` — the 15-bit limit can only
    cost more); 29 header bits (3-bit block header, HLIT/HDIST/HCLEN,
    four mandatory code-length slots); and half a bit of table
    transmission per used symbol (every used symbol's length reaches
    the decoder through the RLE'd code-length stream, whose cheapest
    emission — a 1-bit REP_6 symbol plus its 2 extra bits — covers at
    most six lengths). The search uses the floor to skip package-merge
    entirely when STORED already wins (every segment of an
    incompressible shard) and to reject merges whose floor exceeds the
    split price.
    """
    bits = 29
    used = 0
    for hist, extra in (
        (litlen_hist, LITLEN_EXTRA_BITS),
        (dist_hist, DIST_EXTRA_BITS),
    ):
        weights = []
        for symbol, count in enumerate(hist.counts):
            if count:
                weights.append(count)
                bits += count * extra[symbol]
        if weights:
            used += len(weights)
            bits += _huffman_payload_bits(weights)
    return bits + (used >> 1)


def _price_block_histograms(litlen_hist, dist_hist, raw_len: int,
                            budget: Optional[int] = None):
    """Exact three-way price of a block built from segment histograms.

    Segment histograms exclude END_OF_BLOCK (they are mergeable units,
    not blocks); it is counted in transiently here, once per *block*
    being priced. The stored price uses bit offset 0 — a search-time
    estimate within 7 bits of any emission offset; emission re-prices
    stored at the writer's true offset.

    Returns ``(fixed_bits, dynamic_bits, plan, chosen_bits)``. When the
    entropy floor shows STORED beating both other codings with more
    than a byte to spare (so no emission offset can flip the choice),
    the plan is never built and ``dynamic_bits`` is the floor.

    ``budget`` is the split price a merged block must beat: when even
    the floor ``min(fixed, stored, entropy bound)`` exceeds it the
    answer is already "cut", and ``None`` comes back without the
    package-merge tables ever being built. The two shortcuts between
    them keep the search's exact pricing off the expensive path for
    the two *obvious* decisions — incompressible segments (stored
    wins) and texture boundaries (cut wins) — leaving full plan
    construction only where the choice is genuinely close.
    """
    counts = litlen_hist.counts
    counts[END_OF_BLOCK] += 1
    try:
        fixed_bits = fixed_cost_from_histograms(litlen_hist, dist_hist)
        stored_bits = stored_block_cost_bits(raw_len)
        cheap_floor = min(fixed_bits, stored_bits)
        stored_won = stored_bits + 8 <= fixed_bits
        if stored_won or (budget is not None and cheap_floor > budget):
            floor = _dynamic_lower_bound_bits(litlen_hist, dist_hist)
            if stored_won and stored_bits + 8 <= floor:
                if budget is not None and stored_bits > budget:
                    return None
                return fixed_bits, floor, None, stored_bits
            if budget is not None and min(cheap_floor, floor) > budget:
                return None
        plan = plan_dynamic_block(litlen_hist, dist_hist)
    finally:
        counts[END_OF_BLOCK] -= 1
    chosen = min(fixed_bits, plan.cost_bits, stored_bits)
    if budget is not None and chosen > budget:
        return None
    return fixed_bits, plan.cost_bits, plan, chosen


def search_cut_points(
    tokens: TokenArray,
    cut_every: int = DEFAULT_CUT_EVERY,
    cut_every_max: Optional[int] = None,
) -> List[_SearchedBlock]:
    """Greedy cost-driven block boundaries over candidate cut points.

    Walks candidate boundaries, keeping an accumulated block whose
    histograms are extended by merging each next segment's histograms
    into it. At every candidate the exact prices decide: merge when
    ``cost(acc + seg) <= cost(acc) + cost(seg)`` — one combined table
    transmission beats two — else cut. Histogram merging makes each
    decision O(alphabet), never a re-walk of the tokens; the winning
    block's :class:`~repro.deflate.dynamic.DynamicPlan` is carried to
    emission so nothing is priced twice.

    Candidate spacing starts at ``cut_every`` and doubles after every
    accepted merge, up to ``cut_every_max`` (default ``16 *
    cut_every``); a cut resets it. Stable runs therefore cost
    O(log) pricing decisions instead of one per ``cut_every`` tokens,
    while the tokens right after a texture change — where boundary
    resolution actually buys ratio — are still examined at the fine
    spacing. With ``cut_every_max=cut_every`` the spacing is constant
    and every merged block provably prices no cheaper than the
    equal-cadence split it replaced (the monotonicity property of
    ``tests/deflate/test_cut_search.py``).
    """
    n = len(tokens)
    if cut_every_max is None:
        cut_every_max = 16 * cut_every
    blocks: List[_SearchedBlock] = []
    acc_lit = acc_dist = None
    acc_start = acc_stop = acc_raw = 0
    acc_fixed = acc_dynamic = acc_plan = acc_price = None
    spacing = cut_every
    seg_start = 0
    while seg_start < n:
        seg_stop = min(seg_start + spacing, n)
        lit, dist, raw = segment_histograms(tokens, seg_start, seg_stop)
        fixed_bits, dynamic_bits, plan, price = _price_block_histograms(
            lit, dist, raw
        )
        if acc_lit is None:
            acc_lit, acc_dist, acc_raw = lit, dist, raw
            acc_start, acc_stop = seg_start, seg_stop
            acc_fixed, acc_dynamic, acc_plan, acc_price = (
                fixed_bits, dynamic_bits, plan, price
            )
            seg_start = seg_stop
            continue
        merged_lit = acc_lit.copy()
        merged_lit.merge(lit)
        merged_dist = acc_dist.copy()
        merged_dist.merge(dist)
        merged_raw = acc_raw + raw
        merged = _price_block_histograms(
            merged_lit, merged_dist, merged_raw,
            budget=acc_price + price,
        )
        if merged is not None:
            acc_lit, acc_dist, acc_raw = merged_lit, merged_dist, merged_raw
            acc_stop = seg_stop
            acc_fixed, acc_dynamic, acc_plan, acc_price = merged
            spacing = min(2 * spacing, cut_every_max)
        else:
            blocks.append(_SearchedBlock(
                acc_start, acc_stop, acc_raw, acc_fixed,
                acc_dynamic, acc_plan, acc_price,
            ))
            acc_lit, acc_dist, acc_raw = lit, dist, raw
            acc_start, acc_stop = seg_start, seg_stop
            acc_fixed, acc_dynamic, acc_plan, acc_price = (
                fixed_bits, dynamic_bits, plan, price
            )
            spacing = cut_every
        seg_start = seg_stop
    if acc_lit is not None:
        blocks.append(_SearchedBlock(
            acc_start, acc_stop, acc_raw, acc_fixed,
            acc_dynamic, acc_plan, acc_price,
        ))
    return blocks


@dataclass
class SplitResult:
    """Outcome of an adaptive-strategy encoding."""

    body: bytes
    choices: List[BlockChoice]

    def strategy_counts(self) -> dict:
        counts: dict = {}
        for choice in self.choices:
            counts[choice.strategy] = counts.get(choice.strategy, 0) + 1
        return counts


def write_adaptive_blocks(
    writer: BitWriter,
    tokens: TokenArray,
    original,
    tokens_per_block: int = DEFAULT_TOKENS_PER_BLOCK,
    final: bool = True,
    cut_search: bool = True,
    cut_every: Optional[int] = None,
    cut_every_max: Optional[int] = None,
) -> List[BlockChoice]:
    """Emit ``tokens`` into ``writer`` with per-block strategy choice.

    ``original`` supplies the raw bytes for stored blocks (``bytes`` or
    ``memoryview``; stored payloads are sliced zero-copy) and must be
    exactly the buffer the tokens reconstruct — a shorter buffer would
    fail deep inside memoryview slicing on the first STORED block, a
    longer one would silently drop its tail into a corrupt stream, so
    the length is validated up front.

    With ``cut_search`` (default) block boundaries come from
    :func:`search_cut_points`: candidates every ``cut_every`` tokens
    (default ``min(DEFAULT_CUT_EVERY, tokens_per_block)``), kept only
    when two separate blocks price cheaper than one merged block.
    ``cut_search=False`` cuts blindly every ``tokens_per_block`` tokens
    (ZLib cuts on symbol-buffer fill, the same mechanism). With
    ``final=False`` every block is non-final, so the run can sit inside
    a larger stream — the shard bodies of :mod:`repro.parallel` and the
    chunk emission of :class:`repro.deflate.stream.ZLibStreamCompressor`.

    Each block is tokenised, priced and emitted exactly once; the
    returned choices record the per-block prices actually paid.
    """
    if tokens_per_block < 1:
        raise ConfigError(
            f"tokens_per_block must be >= 1: {tokens_per_block}"
        )
    if cut_every is None:
        cut_every = min(DEFAULT_CUT_EVERY, tokens_per_block)
    if cut_every < 1:
        raise ConfigError(f"cut_every must be >= 1: {cut_every}")
    view = memoryview(original)
    expected = tokens.uncompressed_size()
    if len(view) != expected:
        raise ConfigError(
            f"original buffer is {len(view)} bytes but the token stream "
            f"reconstructs {expected}"
        )
    n = len(tokens)
    if cut_search and n:
        return _emit_searched_blocks(writer, tokens, view, final,
                                     cut_every, cut_every_max)
    choices: List[BlockChoice] = []
    block_starts = list(range(0, n, tokens_per_block)) or [0]
    consumed = 0
    for index, start in enumerate(block_starts):
        stop = min(start + tokens_per_block, n)
        block = _slice_tokens(tokens, start, stop)
        raw_len = block.uncompressed_size()
        last = final and index == len(block_starts) - 1
        choice = evaluate_block(
            block, raw_len, bit_offset=writer.bit_length & 7
        )
        choices.append(choice)
        _emit_block(writer, choice, block,
                    view[consumed:consumed + raw_len], last)
        consumed += raw_len
    return choices


def _emit_searched_blocks(
    writer: BitWriter,
    tokens: TokenArray,
    view: memoryview,
    final: bool,
    cut_every: int,
    cut_every_max: Optional[int] = None,
) -> List[BlockChoice]:
    """Emit the blocks the cut-point search decided on.

    Fixed and dynamic prices (and the dynamic plan) were already built
    during the search; only the stored price is refreshed here, at the
    writer's true bit offset.
    """
    blocks = search_cut_points(tokens, cut_every, cut_every_max)
    choices: List[BlockChoice] = []
    consumed = 0
    for index, searched in enumerate(blocks):
        stored_bits = stored_block_cost_bits(
            searched.raw_len, writer.bit_length & 7
        )
        best = min(
            (searched.fixed_bits, BlockStrategy.FIXED),
            (searched.dynamic_bits, BlockStrategy.DYNAMIC),
            (stored_bits, BlockStrategy.STORED),
            key=lambda pair: pair[0],
        )
        choice = BlockChoice(
            strategy=best[1],
            fixed_bits=searched.fixed_bits,
            dynamic_bits=searched.dynamic_bits,
            stored_bits=stored_bits,
            plan=searched.plan,
        )
        choices.append(choice)
        block = _slice_tokens(tokens, searched.start, searched.stop)
        last = final and index == len(blocks) - 1
        _emit_block(writer, choice, block,
                    view[consumed:consumed + searched.raw_len], last)
        consumed += searched.raw_len
    return choices


def _emit_block(writer, choice, block, raw_view, last) -> None:
    if choice.strategy is BlockStrategy.FIXED:
        write_fixed_block(writer, block, final=last)
    elif choice.strategy is BlockStrategy.DYNAMIC:
        write_dynamic_block(writer, block, final=last, plan=choice.plan)
    else:
        write_stored_block(writer, raw_view, final=last)


def deflate_adaptive(
    tokens: TokenArray,
    original,
    tokens_per_block: int = DEFAULT_TOKENS_PER_BLOCK,
    cut_search: bool = True,
    cut_every: Optional[int] = None,
    cut_every_max: Optional[int] = None,
) -> SplitResult:
    """Encode a token stream with per-block best-strategy choice."""
    writer = BitWriter()
    choices = write_adaptive_blocks(
        writer, tokens, original, tokens_per_block, final=True,
        cut_search=cut_search, cut_every=cut_every,
        cut_every_max=cut_every_max,
    )
    return SplitResult(body=writer.flush(), choices=choices)


def zlib_compress_adaptive(
    data: bytes,
    window_size: int = 4096,
    hash_spec=None,
    policy=None,
    tokens_per_block: int = DEFAULT_TOKENS_PER_BLOCK,
    traced: Optional[bool] = None,
    cut_search: bool = True,
    cut_every: Optional[int] = None,
    sniff: bool = True,
    backend: Optional[str] = None,
) -> bytes:
    """Full ZLib stream with per-block strategy choice.

    Runs the trace-free fast tokenizer by default (``backend=`` selects
    another registered tokenizer, ``"traced"`` the instrumented path;
    the token stream is identical — see :mod:`repro.lzss.backends`).
    ``traced=`` is the deprecated boolean equivalent. ``sniff``
    short-circuits data the entropy sniff
    (:func:`repro.deflate.sniff.looks_incompressible`) deems
    incompressible straight into multi-chunk stored blocks, skipping
    tokenization entirely.
    """
    from repro.checksums.adler32 import adler32
    from repro.deflate.sniff import looks_incompressible
    from repro.deflate.zlib_container import make_header
    from repro.lzss.backends import backend_from_legacy
    from repro.lzss.compressor import LZSSCompressor

    backend = backend_from_legacy(
        backend, traced, param="traced", default="fast"
    )
    if sniff and looks_incompressible(data):
        writer = BitWriter()
        write_stored_block(writer, data, final=True)
        body = writer.flush()
    else:
        compressor = LZSSCompressor(window_size, hash_spec, policy,
                                    backend=backend)
        result = compressor.compress(data)
        split = deflate_adaptive(result.tokens, data, tokens_per_block,
                                 cut_search=cut_search,
                                 cut_every=cut_every)
        body = split.body
    return (
        make_header(window_size)
        + body
        + adler32(data).to_bytes(4, "big")
    )
