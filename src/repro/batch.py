"""Batched small-message compression: N payloads, one vectorised pass.

Small independent records — telemetry frames, log lines, templated JSON
messages — are the worst case for a per-call compressor: each
``compress()`` pays the full fixed cost (backend resolution, hash-table
setup, Huffman table construction, numpy dispatch) for a few kilobytes
of work. The paper's FPGA engine amortises its pipeline fill the same
way this module amortises Python/numpy overhead: pack many messages
into one buffer and run the expensive machinery once.

:func:`compress_batch` is the end-to-end entry point:

1. **One routing decision** for the whole batch
   (:func:`repro.lzss.router.route_batch`): a single probe over the
   packed bytes instead of N per-payload probes, with a stored bypass
   for all-incompressible batches.
2. **One tokenization pass** (:func:`repro.lzss.batch.tokenize_batch`):
   payloads are packed into one contiguous buffer and matched by a
   single vectorised hash/match sweep with seam masks, so no match ever
   crosses a payload boundary. A shared preset dictionary primes every
   payload's window and is hashed once, not N times.
3. **Shared Huffman plans** (:func:`repro.deflate.batch_emit.emit_batch`):
   per-payload histograms are pooled into one dynamic plan built once;
   each payload then picks shared/fixed/stored by exact bit price and
   all non-stored bodies are packed by one vectorised bit packer.
4. **Independent ZLib framing**: every output stream is a complete,
   standalone RFC 1950 stream (FDICT framing when ``zdict`` is given)
   that CPython's ``zlib.decompress`` / ``decompressobj(zdict=...)``
   accepts — batching changes wall-clock and (via shared plans) size,
   never interoperability.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Union

from repro.bitio.writer import BitWriter
from repro.checksums.adler32 import adler32_many
from repro.deflate.batch_emit import CHOICE_STORED, emit_batch
from repro.deflate.block_writer import write_stored_block
from repro.deflate.preset_dict import fdict_header
from repro.deflate.zlib_container import make_header
from repro.errors import ConfigError
from repro.lzss.backends import resolve
from repro.lzss.batch import (
    BATCH_GREEDY_POLICY,
    effective_dictionary,
    tokenize_batch,
    tokenize_scalar,
)
from repro.lzss.hashchain import HashSpec
from repro.lzss.policy import MatchPolicy
from repro.lzss.router import (
    RouterConfig,
    RoutingDecision,
    route_batch,
)
from repro.profile import CompressionProfile


class BatchStats:
    """Aggregate accounting for one :func:`compress_batch` call."""

    __slots__ = ("payload_count", "input_bytes", "output_bytes",
                 "choice_counts")

    def __init__(self, payload_count: int, input_bytes: int,
                 output_bytes: int, choice_counts: Dict[str, int]) -> None:
        self.payload_count = payload_count
        self.input_bytes = input_bytes
        self.output_bytes = output_bytes
        self.choice_counts = choice_counts

    @property
    def ratio(self) -> float:
        """Compressed/raw byte ratio (1.0 for an empty batch)."""
        if not self.input_bytes:
            return 1.0
        return self.output_bytes / self.input_bytes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BatchStats(n={self.payload_count}, in={self.input_bytes}, "
            f"out={self.output_bytes}, choices={self.choice_counts})"
        )


class BatchResult:
    """Streams plus the decisions that produced them.

    ``streams[i]`` is payload *i*'s complete ZLib stream; ``choices[i]``
    names its block coding (``"shared"``/``"fixed"``/``"stored"``).
    ``plan`` is the pooled :class:`repro.deflate.dynamic.DynamicPlan`
    when at least the pricing ran with shared plans enabled (``None``
    for the stored bypass or ``shared_plan=False``).
    """

    __slots__ = ("streams", "choices", "routing", "plan", "stats")

    def __init__(self, streams: List[bytes], choices: tuple,
                 routing: RoutingDecision, plan, stats: BatchStats) -> None:
        self.streams = streams
        self.choices = choices
        self.routing = routing
        self.plan = plan
        self.stats = stats

    def __len__(self) -> int:
        return len(self.streams)

    def __iter__(self):
        return iter(self.streams)


def _stored_bodies(payloads: Sequence[bytes]) -> List[bytes]:
    """Every payload as a single final stored block (batch bypass)."""
    bodies = []
    for payload in payloads:
        writer = BitWriter()
        write_stored_block(writer, payload, final=True)
        bodies.append(writer.flush())
    return bodies


def compress_batch(
    payloads: Sequence[bytes],
    *,
    profile: Union[None, str, CompressionProfile] = None,
    zdict: bytes = b"",
    window_size: Optional[int] = None,
    hash_spec: Optional[HashSpec] = None,
    policy: Optional[MatchPolicy] = None,
    backend: Optional[str] = None,
    shared_plan: Optional[bool] = None,
    backends: Optional[Mapping[int, str]] = None,
    router: Optional[RouterConfig] = None,
) -> BatchResult:
    """Compress N independent payloads in one batched pass.

    Returns a :class:`BatchResult` whose ``streams`` decode
    independently with CPython zlib (``zlib.decompress`` for plain
    streams, ``decompressobj(zdict=...)`` for FDICT streams — pass the
    *effective* dictionary, i.e. ``zdict`` trimmed to the window tail,
    when ``zdict`` exceeds ``window_size - 262``).

    ``policy`` defaults to :data:`repro.lzss.batch.BATCH_GREEDY_POLICY`
    (not the serial default): the batch engine's one-sweep greedy
    matcher plus shared dynamic plans is its measured sweet spot. Any
    explicit policy is honoured — unsupported ones degrade to the
    scalar per-payload loop with identical bytes.

    ``backends`` maps payload indices to backend names
    (``{3: "traced"}``) to override the batch route for individual
    payloads — the tokens are bit-identical across backends, so this
    only moves which kernel runs (e.g. tracing one payload of a batch).
    """
    from repro.api import CompressRequest

    resolved = CompressRequest(
        profile=profile,
        window_size=window_size,
        hash_spec=hash_spec,
        policy=policy,
        backend=backend,
        batch_shared_plan=shared_plan,
        zdict=zdict if zdict else None,
        router=router,
    ).resolve(
        backend="auto",
        hash_spec=HashSpec(),
        policy=BATCH_GREEDY_POLICY,
    )
    window_size = resolved.window_size
    hash_spec = resolved.hash_spec or HashSpec()
    policy = resolved.policy
    backend = resolved.backend
    shared = resolved.batch_shared_plan
    zdict = resolved.zdict
    config = resolved.router

    payloads = [bytes(p) for p in payloads]
    overrides = dict(backends or {})
    for index in overrides:
        if not 0 <= index < len(payloads):
            raise ConfigError(
                f"backends override for payload {index} is out of range "
                f"(batch has {len(payloads)} payloads)"
            )

    dictionary = effective_dictionary(zdict, window_size) if zdict else b""
    header = (
        fdict_header(window_size, dictionary) if dictionary
        else make_header(window_size)
    )

    if not payloads:
        routing = RoutingDecision(
            backend="fast", requested=backend, route=config.route,
            reason="empty-batch",
        )
        return BatchResult([], (), routing, None,
                           BatchStats(0, 0, 0, {}))

    routing = route_batch(
        b"".join(payloads), backend=backend, policy=policy, config=config
    )
    if routing.backend == "stored":
        bodies = _stored_bodies(payloads)
        choices = (CHOICE_STORED,) * len(payloads)
        plan = None
    else:
        tokens_list = tokenize_batch(
            payloads, window_size, hash_spec, policy,
            backend=routing.backend, dictionary=dictionary,
        )
        for index, name in overrides.items():
            tokens_list[index] = tokenize_scalar(
                payloads[index], dictionary, window_size, hash_spec,
                policy, resolve(name, policy),
            )
        emission = emit_batch(tokens_list, payloads, shared_plan=shared)
        bodies = emission.bodies
        choices = tuple(emission.choices)
        plan = emission.plan

    trailers = adler32_many(payloads)
    streams = [
        header + body + value.to_bytes(4, "big")
        for body, value in zip(bodies, trailers)
    ]
    counts: Dict[str, int] = {}
    for choice in choices:
        counts[choice] = counts.get(choice, 0) + 1
    stats = BatchStats(
        payload_count=len(payloads),
        input_bytes=sum(len(p) for p in payloads),
        output_bytes=sum(len(s) for s in streams),
        choice_counts=counts,
    )
    return BatchResult(streams, choices, routing, plan, stats)
