"""Regeneration of every table and figure in the paper's §V.

Each function returns structured data plus a plain-text rendering, so
the benchmark harness can both assert the paper's qualitative claims
and print rows/series in the paper's own layout. The experiment index
in DESIGN.md maps exhibits to these functions.
"""

from repro.analysis.tables import (
    table1_performance,
    table2_utilization,
    table3_optimizations,
)
from repro.analysis.figures import (
    fig2_compressed_size,
    fig3_speed,
    fig4_levels,
    fig5_state_distribution,
)

__all__ = [
    "table1_performance",
    "table2_utilization",
    "table3_optimizations",
    "fig2_compressed_size",
    "fig3_speed",
    "fig4_levels",
    "fig5_state_distribution",
]
