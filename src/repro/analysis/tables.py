"""Tables I-III of the paper, as structured data + text rendering."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.estimator.sweep import run_configuration
from repro.hw.params import HardwareParams, preset
from repro.hw.resources import estimate_resources
from repro.testbench.runner import (
    PerformanceRow,
    format_table,
    run_performance_comparison,
)
from repro.workloads.corpus import sample


@dataclass
class Table1:
    """Table I: performance evaluation (SW vs HW, Wiki/X2E)."""

    rows: List[PerformanceRow]

    def render(self) -> str:
        return "TABLE I — PERFORMANCE EVALUATION\n" + format_table(self.rows)

    def speedups(self) -> List[float]:
        return [row.speedup for row in self.rows]

    def ratios(self) -> List[float]:
        return [row.ratio for row in self.rows]


def table1_performance(sample_bytes: Optional[int] = None) -> Table1:
    """Regenerate Table I."""
    return Table1(rows=run_performance_comparison(sample_bytes))


@dataclass
class UtilizationRow:
    """One row of Table II."""

    hash_bits: int
    window_size: int
    luts: int
    registers: int
    bram36: int

    def format(self) -> str:
        return (
            f"{self.hash_bits:>4d} bits {self.window_size // 1024:>4d}KB "
            f"{self.luts:>8d} {self.registers:>10d} {self.bram36:>6d}"
        )


@dataclass
class Table2:
    """Table II: FPGA utilisation across configurations."""

    rows: List[UtilizationRow]
    device_luts: int
    device_registers: int

    def render(self) -> str:
        lines = [
            "TABLE II — FPGA UTILIZATION",
            f"{'hash':>9s} {'dict':>6s} {'LUTs':>8s} {'Registers':>10s} "
            f"{'BRAM36':>6s}",
        ]
        lines += [row.format() for row in self.rows]
        lines.append(
            f"Available in XC5VFX70T: {self.device_luts} LUTs, "
            f"{self.device_registers} registers"
        )
        return "\n".join(lines)

    def lut_spread(self) -> float:
        """Relative LUT variation across rows (the paper's point: tiny)."""
        luts = [row.luts for row in self.rows]
        return (max(luts) - min(luts)) / max(luts)


def table2_utilization(
    configs: Optional[List[HardwareParams]] = None,
) -> Table2:
    """Regenerate Table II (paper rows: 15b/16KB, 13b/8KB, 9b/4KB)."""
    from repro.hw.bram import XC5VFX70T

    if configs is None:
        configs = [preset("table2-a"), preset("table2-b"), preset("table2-c")]
    rows = []
    for params in configs:
        report = estimate_resources(params)
        rows.append(
            UtilizationRow(
                hash_bits=params.hash_bits,
                window_size=params.window_size,
                luts=report.luts,
                registers=report.registers,
                bram36=report.bram36_total,
            )
        )
    return Table2(
        rows=rows,
        device_luts=XC5VFX70T["luts"],
        device_registers=XC5VFX70T["registers"],
    )


@dataclass
class Table3:
    """Table III: speed without individual optimisations."""

    speeds: Dict[str, Dict[int, float]] = field(default_factory=dict)
    window_sizes: List[int] = field(default_factory=list)

    def render(self) -> str:
        lines = [
            "TABLE III — COMPRESSION SPEED WITHOUT OPTIMIZATIONS (Wiki)",
            f"{'configuration':<38s}"
            + "".join(f"{w // 1024:>9d}KB" for w in self.window_sizes),
        ]
        for name, by_window in self.speeds.items():
            lines.append(
                f"{name:<38s}"
                + "".join(
                    f"{by_window[w]:>9.1f}  "[:11] for w in self.window_sizes
                )
            )
        return "\n".join(lines)

    def speed(self, config: str, window: int) -> float:
        return self.speeds[config][window]


#: Table III's configurations as parameter overrides on the original.
TABLE3_CONFIGS: Dict[str, Dict] = {
    "A) original (15-bit hash; 32-bit data)": {},
    "B) 8-bit data bus as in [11]": {"data_bus_bytes": 1},
    "C) disabled hash prefetching": {"hash_prefetch": False},
    "D) reduced generation bits to 0": {"gen_bits": 0},
    "disabled all 3 optimizations over [11]": {
        "data_bus_bytes": 1,
        "hash_prefetch": False,
        "gen_bits": 0,
        "head_split": 1,
        "relative_next": False,
    },
}


def table3_optimizations(
    sample_bytes: Optional[int] = None,
    window_sizes: tuple = (4096, 16384),
) -> Table3:
    """Regenerate Table III on the Wiki workload."""
    data = sample("wiki", sample_bytes)
    table = Table3(window_sizes=list(window_sizes))
    for name, overrides in TABLE3_CONFIGS.items():
        table.speeds[name] = {}
        for window in window_sizes:
            params = HardwareParams(window_size=window, **overrides)
            row = run_configuration(params, data, label=name)
            table.speeds[name][window] = row.throughput_mbps
    return table
