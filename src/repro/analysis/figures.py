"""Figures 2-5 of the paper, as data series + ASCII rendering."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.estimator.report import SweepReport
from repro.estimator.sweep import grid_sweep, run_configuration
from repro.hw.params import HardwareParams
from repro.hw.stats import FSMState
from repro.lzss.policy import HW_MAX_POLICY, HW_SPEED_POLICY
from repro.workloads.corpus import sample

#: The axes the paper sweeps in Figs. 2-4.
FIG_WINDOWS = (1024, 2048, 4096, 8192, 16384)
FIG_HASH_BITS = (9, 11, 13, 15)


def _ascii_series(
    title: str,
    x_labels: List[str],
    series: Dict[str, List[float]],
    unit: str,
    width: int = 40,
) -> str:
    """Simple multi-series text chart (one row per point)."""
    lines = [title]
    all_values = [v for values in series.values() for v in values]
    top = max(all_values) if all_values else 1.0
    for name, values in series.items():
        lines.append(f"  series {name}:")
        for label, value in zip(x_labels, values):
            bar = "#" * max(1, round(width * value / top)) if top else ""
            lines.append(f"    {label:>6s} {value:>10.1f} {unit} {bar}")
    return "\n".join(lines)


@dataclass
class FigureGrid:
    """Figs. 2/3 data: one window sweep per hash size."""

    metric: str
    unit: str
    title: str
    reports: List[SweepReport] = field(default_factory=list)

    def series(self) -> Dict[str, List[float]]:
        return {
            report.workload: report.series(self.metric)
            for report in self.reports
        }

    def windows(self) -> List[int]:
        return self.reports[0].axis_values() if self.reports else []

    def render(self) -> str:
        labels = [f"{w // 1024}K" for w in self.windows()]
        return _ascii_series(self.title, labels, self.series(), self.unit)

    def to_csv(self) -> str:
        """Figure data as CSV (window column + one column per series)."""
        series = self.series()
        header = ["window_bytes"] + list(series)
        lines = [",".join(header)]
        for index, window in enumerate(self.windows()):
            row = [str(window)] + [
                f"{series[name][index]:.6g}" for name in series
            ]
            lines.append(",".join(row))
        return "\n".join(lines) + "\n"


def fig2_compressed_size(
    sample_bytes: Optional[int] = None,
    windows: Tuple[int, ...] = FIG_WINDOWS,
    hash_bits: Tuple[int, ...] = FIG_HASH_BITS,
) -> FigureGrid:
    """Fig. 2: compressed size vs dictionary size, per hash size."""
    data = sample("wiki", sample_bytes)
    reports = grid_sweep(data, windows, hash_bits, policy=HW_SPEED_POLICY)
    return FigureGrid(
        metric="compressed_bytes",
        unit="B",
        title="FIG 2 — COMPRESSED SIZE OF THE WIKI FRAGMENT",
        reports=reports,
    )


def fig3_speed(
    sample_bytes: Optional[int] = None,
    windows: Tuple[int, ...] = FIG_WINDOWS[1:],  # paper plots 2K-16K
    hash_bits: Tuple[int, ...] = FIG_HASH_BITS,
) -> FigureGrid:
    """Fig. 3: compression speed vs dictionary size, per hash size."""
    data = sample("wiki", sample_bytes)
    reports = grid_sweep(data, windows, hash_bits, policy=HW_SPEED_POLICY)
    return FigureGrid(
        metric="throughput_mbps",
        unit="MB/s",
        title="FIG 3 — COMPRESSION SPEED (MB/s) FOR THE WIKI FRAGMENT",
        reports=reports,
    )


@dataclass
class Fig4Point:
    """One (hash, level, window) point of Fig. 4."""

    hash_bits: int
    level: str
    window_size: int
    compressed_bytes: int
    throughput_mbps: float


@dataclass
class Fig4:
    """Fig. 4: size and speed for min/max levels and 2 hash sizes."""

    points: List[Fig4Point] = field(default_factory=list)
    input_bytes: int = 0

    def curve(self, hash_bits: int, level: str) -> List[Fig4Point]:
        return [
            p for p in self.points
            if p.hash_bits == hash_bits and p.level == level
        ]

    def render(self) -> str:
        lines = [
            "FIG 4 — SIZE AND SPEED FOR MIN/MAX LEVELS "
            f"(input {self.input_bytes} B)",
            f"{'hash':>5s} {'level':>5s} {'dict':>6s} {'size':>10s} "
            f"{'speed':>10s}",
        ]
        for p in self.points:
            lines.append(
                f"{p.hash_bits:>5d} {p.level:>5s} "
                f"{p.window_size // 1024:>5d}K {p.compressed_bytes:>10d} "
                f"{p.throughput_mbps:>8.1f} MB/s"
            )
        return "\n".join(lines)


def fig4_levels(
    sample_bytes: Optional[int] = None,
    windows: Tuple[int, ...] = FIG_WINDOWS,
    hash_bits: Tuple[int, ...] = (9, 15),
) -> Fig4:
    """Fig. 4: min/max compression level trade-off."""
    data = sample("wiki", sample_bytes)
    fig = Fig4(input_bytes=len(data))
    for bits in hash_bits:
        for level, policy in (("min", HW_SPEED_POLICY),
                              ("max", HW_MAX_POLICY)):
            for window in windows:
                params = HardwareParams(
                    window_size=window, hash_bits=bits, policy=policy
                )
                row = run_configuration(params, data)
                fig.points.append(
                    Fig4Point(
                        hash_bits=bits,
                        level=level,
                        window_size=window,
                        compressed_bytes=row.compressed_bytes,
                        throughput_mbps=row.throughput_mbps,
                    )
                )
    return fig


@dataclass
class Fig5:
    """Fig. 5: time spent in each FSM state."""

    fractions: Dict[str, float] = field(default_factory=dict)
    params: Optional[HardwareParams] = None

    def render(self) -> str:
        lines = ["FIG 5 — TIME SPENT ON DIFFERENT OPERATIONS"]
        if self.params is not None:
            lines.append(f"  ({self.params.describe()})")
        for name, frac in sorted(
            self.fractions.items(), key=lambda kv: -kv[1]
        ):
            bar = "#" * max(1, round(50 * frac))
            lines.append(f"  {name:<22s} {100 * frac:5.1f}% {bar}")
        return "\n".join(lines)


def fig5_state_distribution(
    sample_bytes: Optional[int] = None,
    params: Optional[HardwareParams] = None,
) -> Fig5:
    """Fig. 5: state-time pie for the 16 KB dictionary, 15-bit hash."""
    data = sample("wiki", sample_bytes)
    if params is None:
        params = HardwareParams(window_size=16384, hash_bits=15)
    row = run_configuration(params, data)
    return Fig5(
        fractions={
            state.value: row.stats.fraction(state) for state in FSMState
        },
        params=params,
    )
