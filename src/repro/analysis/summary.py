"""One-call regeneration of the paper's complete evaluation section.

``full_reproduction()`` runs every table and figure at a chosen sample
size and renders them into a single report — the artefact a referee
would want next to the paper. Exposed on the CLI as
``lzss-estimator paper``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.analysis.figures import (
    fig2_compressed_size,
    fig3_speed,
    fig4_levels,
    fig5_state_distribution,
)
from repro.analysis.tables import (
    table1_performance,
    table2_utilization,
    table3_optimizations,
)

#: Exhibit name -> generator(sample_bytes) in paper order.
_EXHIBITS = {
    "Table I": lambda n: table1_performance(sample_bytes=n).render(),
    "Table II": lambda n: table2_utilization().render(),
    "Table III": lambda n: table3_optimizations(sample_bytes=n).render(),
    "Figure 2": lambda n: fig2_compressed_size(sample_bytes=n).render(),
    "Figure 3": lambda n: fig3_speed(sample_bytes=n).render(),
    "Figure 4": lambda n: fig4_levels(sample_bytes=n).render(),
    "Figure 5": lambda n: fig5_state_distribution(sample_bytes=n).render(),
}


@dataclass
class ReproductionReport:
    """All seven exhibits plus generation metadata."""

    sample_bytes: int
    exhibits: Dict[str, str] = field(default_factory=dict)
    elapsed_s: Dict[str, float] = field(default_factory=dict)

    def render(self) -> str:
        bar = "=" * 72
        lines = [
            bar,
            "REPRODUCTION — Shcherbakov, Weis, Wehn (IPDPSW 2012)",
            f"sample size: {self.sample_bytes} bytes per workload "
            "(paper: 100 MB)",
            bar,
        ]
        for name in _EXHIBITS:
            lines.append("")
            lines.append(self.exhibits[name])
            lines.append(
                f"  [generated in {self.elapsed_s[name]:.1f}s]"
            )
        return "\n".join(lines)


def full_reproduction(
    sample_bytes: Optional[int] = None,
) -> ReproductionReport:
    """Regenerate every exhibit of §V."""
    from repro.workloads.corpus import sample_size_bytes

    if sample_bytes is None:
        sample_bytes = sample_size_bytes()
    report = ReproductionReport(sample_bytes=sample_bytes)
    for name, generator in _EXHIBITS.items():
        start = time.perf_counter()
        report.exhibits[name] = generator(sample_bytes)
        report.elapsed_s[name] = time.perf_counter() - start
    return report
