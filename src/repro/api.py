"""One-call compression API: every knob resolved in one place.

Nine PRs of growth left the library with eight compression entry points
(:class:`~repro.lzss.compressor.LZSSCompressor`,
:func:`~repro.lzss.compressor.compress_tokens`,
:class:`~repro.deflate.zlib_container.ZLibCompressor`,
:class:`~repro.deflate.stream.ZLibStreamCompressor`,
:func:`~repro.parallel.engine.compress_shard_body`,
:class:`~repro.parallel.engine.ShardedCompressor`,
:func:`~repro.parallel.engine.compress_parallel`,
:func:`~repro.batch.compress_batch`) that each hand-threaded the same
kwarg > profile > default precedence through a scatter of
``prof.pick(...)`` calls. :class:`CompressRequest` is that precedence,
once: a frozen bundle of every knob the library accepts, whose
:meth:`~CompressRequest.resolve` returns the effective configuration as
a :class:`ResolvedCompression`. Entry points build a request from their
keyword arguments (so the old kwargs keep working unchanged) and read
the resolved values; adding a knob — or a backend — is now a change
here plus the code that consumes it, not eight hand-edits.

Precedence, identical everywhere::

    explicit kwarg > profile field > entry-point default > library default

The deprecated ``trace=``/``traced=`` booleans are gone: passing them
raises :class:`~repro.errors.ConfigError` naming the exact replacement
(:func:`reject_legacy_trace`).

The module also exposes :func:`compress` — the one-call convenience
that takes bytes plus any combination of ``profile=`` and knobs and
returns a finished ZLib stream::

    from repro.api import compress
    stream = compress(data, profile="best")
    stream = compress(data, window_size=8192, backend="sa",
                      strategy=BlockStrategy.ADAPTIVE)
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace
from typing import TYPE_CHECKING, Optional, Union

from repro.errors import ConfigError
from repro.lzss.hashchain import HashSpec
from repro.lzss.policy import MatchPolicy
from repro.profile import CompressionProfile, as_profile

if TYPE_CHECKING:  # router imports deflate modules; keep it lazy here
    from repro.lzss.router import RouterConfig


def reject_legacy_trace(param: str, value) -> None:
    """Hard-fail the removed ``trace=``/``traced=`` boolean shims.

    Until PR 9 these booleans selected the instrumented path and were
    accepted with a :class:`DeprecationWarning`. The shim is now
    removed; the error spells out the exact replacement so old call
    sites migrate in one edit.
    """
    if value is None:
        return
    replacement = "backend='traced'" if value else "backend='fast'"
    raise ConfigError(
        f"{param}= was removed; pass {replacement} instead "
        f"(backends: traced/fast/vector/sa/auto — see repro.lzss.backends)"
    )


@dataclass(frozen=True)
class ResolvedCompression:
    """The effective settings of one compression call, fully concrete.

    Produced by :meth:`CompressRequest.resolve`; every field has its
    final value (no ``None``-means-unset left), except ``hash_spec``
    and ``policy`` where ``None`` keeps meaning "the consumer's
    built-in default" (:class:`~repro.lzss.hashchain.HashSpec`'s
    defaults, the compressor's default greedy policy) exactly as the
    entry points always treated it.
    """

    window_size: int
    hash_spec: Optional[HashSpec]
    policy: Optional[MatchPolicy]
    strategy: object
    tokens_per_block: int
    cut_search: bool
    sniff: bool
    backend: str
    refine: bool
    zdict: bytes
    batch_shared_plan: bool
    router: RouterConfig


#: Fields an entry point may supply defaults for in ``resolve()``.
_RESOLVED_FIELDS = frozenset(
    f for f in (
        "window_size", "hash_spec", "policy", "strategy",
        "tokens_per_block", "cut_search", "sniff", "backend", "refine",
        "zdict", "batch_shared_plan",
    )
)


@dataclass(frozen=True)
class CompressRequest:
    """Everything a compression call can be asked to do, unresolved.

    ``None`` means unset, at every layer: an unset request field defers
    to the profile, an unset profile field to the entry point's
    default, and an unset entry-point default to the library default.
    ``profile`` is a preset name, a
    :class:`~repro.profile.CompressionProfile`, or ``None``.

    >>> CompressRequest(profile="fastest").resolve().backend
    'auto'
    >>> CompressRequest(profile="fastest", backend="fast").resolve().backend
    'fast'
    >>> CompressRequest().resolve(backend="traced").backend
    'traced'
    """

    profile: Union[None, str, CompressionProfile] = None
    window_size: Optional[int] = None
    hash_spec: Optional[HashSpec] = None
    policy: Optional[MatchPolicy] = None
    strategy: Optional[object] = None  # BlockStrategy; untyped (cycle)
    tokens_per_block: Optional[int] = None
    cut_search: Optional[bool] = None
    sniff: Optional[bool] = None
    backend: Optional[str] = None
    refine: Optional[bool] = None
    zdict: Optional[bytes] = None
    batch_shared_plan: Optional[bool] = None
    # Per-shard routing knobs; a whole ``router`` object wins over all
    # of them (it is already a resolved RouterConfig).
    route: Optional[str] = None
    probe_entropy_bits: Optional[float] = None
    probe_match_density: Optional[float] = None
    trace_fraction: Optional[float] = None
    trace_seed: Optional[int] = None
    probe_min_bytes: Optional[int] = None
    router: Optional[RouterConfig] = None

    def merged(self, **overrides) -> "CompressRequest":
        """A copy with every non-``None`` override applied."""
        filtered = {
            key: value for key, value in overrides.items()
            if value is not None
        }
        unknown = set(filtered) - {f.name for f in fields(self)}
        if unknown:
            raise ConfigError(
                f"unknown request fields: {', '.join(sorted(unknown))}"
            )
        return replace(self, **filtered)

    def resolve(self, **entry_defaults) -> ResolvedCompression:
        """Apply the full precedence and return concrete settings.

        ``entry_defaults`` are the calling entry point's own defaults
        (e.g. ``backend="traced"`` for the instrumented compressor,
        ``policy=BATCH_GREEDY_POLICY`` for the batch engine); they sit
        between the profile and the library defaults.
        """
        unknown = set(entry_defaults) - _RESOLVED_FIELDS
        if unknown:
            raise ConfigError(
                f"unknown resolve defaults: {', '.join(sorted(unknown))}"
            )
        from repro.deflate.block_writer import BlockStrategy
        from repro.deflate.splitter import DEFAULT_TOKENS_PER_BLOCK
        from repro.lzss.backends import BACKEND_NAMES
        from repro.lzss.router import config_from_profile

        prof = as_profile(self.profile)

        def pick(name, library_default):
            default = entry_defaults.get(name, library_default)
            override = getattr(self, name)
            if override is not None:
                return override
            if name in ("zdict",):
                # Not a profile field: request > entry default only.
                return default
            return prof.pick(name, None, default)

        backend = pick("backend", "fast")
        if backend != "auto" and backend not in BACKEND_NAMES:
            raise ConfigError(
                f"unknown backend {backend!r}: expected one of "
                f"{', '.join(BACKEND_NAMES)} or 'auto'"
            )
        window_size = pick("window_size", 4096)
        zdict = pick("zdict", b"")
        return ResolvedCompression(
            window_size=window_size,
            hash_spec=pick("hash_spec", None),
            policy=pick("policy", None),
            strategy=pick("strategy", BlockStrategy.FIXED),
            tokens_per_block=pick(
                "tokens_per_block", DEFAULT_TOKENS_PER_BLOCK
            ),
            cut_search=pick("cut_search", True),
            sniff=pick("sniff", True),
            backend=backend,
            refine=pick("refine", False),
            zdict=bytes(zdict) if zdict else b"",
            batch_shared_plan=pick("batch_shared_plan", True),
            router=config_from_profile(
                prof,
                route=self.route,
                probe_entropy_bits=self.probe_entropy_bits,
                probe_match_density=self.probe_match_density,
                trace_fraction=self.trace_fraction,
                trace_seed=self.trace_seed,
                probe_min_bytes=self.probe_min_bytes,
                router=self.router,
            ),
        )


def request_from(
    request: Optional[CompressRequest] = None, **kwargs
) -> CompressRequest:
    """Normalise an entry point's ``(request, **kwargs)`` surface.

    ``request=None`` builds a fresh request from the kwargs; a given
    request is merged with any non-``None`` kwargs (kwargs win —
    they are the most explicit layer).
    """
    for legacy in ("trace", "traced"):
        reject_legacy_trace(legacy, kwargs.pop(legacy, None))
    if request is None:
        return CompressRequest(**{
            key: value for key, value in kwargs.items()
            if value is not None
        })
    return request.merged(**kwargs)


def compress(
    data: bytes,
    request: Optional[CompressRequest] = None,
    **kwargs,
) -> bytes:
    """One call: bytes in, finished ZLib stream out.

    Accepts a ready :class:`CompressRequest` and/or any of its fields
    as keyword arguments (``profile=``, ``backend=``, ``strategy=``,
    ``zdict=``, ...). Dispatches on the resolved settings:

    * a non-empty ``zdict`` produces an FDICT-framed stream
      (:func:`repro.deflate.preset_dict.compress_with_dict`; fixed
      Huffman body, matching the CLI's ``--zdict`` contract);
    * ``BlockStrategy.ADAPTIVE`` runs the adaptive splitter with the
      cut search, sniff and refine loop as resolved;
    * any other strategy runs the single-strategy container path.
    """
    req = request_from(request, **kwargs)
    resolved = req.resolve()
    from repro.deflate.block_writer import BlockStrategy

    if resolved.zdict:
        from repro.deflate.preset_dict import compress_with_dict

        return compress_with_dict(
            data, resolved.zdict,
            window_size=resolved.window_size,
            hash_spec=resolved.hash_spec,
            policy=resolved.policy,
        )
    if resolved.strategy is BlockStrategy.ADAPTIVE:
        from repro.deflate.splitter import zlib_compress_adaptive

        return zlib_compress_adaptive(
            data,
            window_size=resolved.window_size,
            hash_spec=resolved.hash_spec,
            policy=resolved.policy,
            tokens_per_block=resolved.tokens_per_block,
            cut_search=resolved.cut_search,
            sniff=resolved.sniff,
            backend=resolved.backend,
            refine=resolved.refine,
        )
    from repro.deflate.zlib_container import ZLibCompressor

    return ZLibCompressor(
        window_size=resolved.window_size,
        hash_spec=resolved.hash_spec,
        policy=resolved.policy,
        strategy=resolved.strategy,
        backend=resolved.backend,
    ).compress(data).data
