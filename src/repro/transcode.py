"""Decompress → recompress transcoding for existing Deflate streams.

Upstream encoders frequently ship *suboptimal* streams: fixed-Huffman
blocks from low-latency writers (this repo's own paper datapath), or
monolithic dynamic blocks with no regard for content boundaries. Since
the container formats are self-describing, such a stream can be
re-encoded losslessly: decode it with the fast table-driven inflate,
run the payload back through the adaptive block splitter with cut-point
search (:func:`repro.deflate.splitter.zlib_compress_adaptive`), and
keep whichever stream is smaller.

The pipeline is strictly verify-before-trust: every candidate is
decoded again and byte-compared to the original payload before it can
replace the input, so a transcoding bug can cost compression but never
data. :class:`TranscodeResult.changed` reports whether the re-encoded
stream actually won.

Containers are auto-detected (gzip magic, otherwise a ZLib header).
FDICT inputs decode when ``zdict`` is supplied; the transcoded output
is always a self-contained plain stream.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.checksums.crc32 import crc32
from repro.deflate import gzip_container
from repro.deflate.splitter import (
    DEFAULT_TOKENS_PER_BLOCK,
    deflate_adaptive,
    zlib_compress_adaptive,
)
from repro.deflate.zlib_container import decompress as zlib_decompress
from repro.errors import TranscodeError

_GZIP_MAGIC = b"\x1f\x8b"


@dataclass(frozen=True)
class TranscodeResult:
    """Outcome of one transcoding attempt."""

    data: bytes            #: the winning stream (re-encoded or original)
    container: str         #: ``"zlib"`` or ``"gzip"``
    payload_size: int      #: decoded payload bytes
    input_size: int        #: input stream bytes
    recompressed_size: int #: size of the re-encoded candidate
    changed: bool          #: True when the candidate replaced the input

    @property
    def output_size(self) -> int:
        return len(self.data)

    @property
    def savings(self) -> float:
        """Fraction of the input stream saved (0.0 when unchanged)."""
        if not self.input_size:
            return 0.0
        return 1.0 - self.output_size / self.input_size


def detect_container(stream: bytes) -> str:
    """``"gzip"`` or ``"zlib"``, by header inspection."""
    if stream[:2] == _GZIP_MAGIC:
        return "gzip"
    from repro.deflate.zlib_container import parse_header_info

    parse_header_info(stream)  # raises ZLibContainerError when invalid
    return "zlib"


def _recompress_gzip(payload: bytes, window_size: int,
                     tokens_per_block: int, cut_search: bool) -> bytes:
    """Adaptive-split gzip member for ``payload`` (mirrors the zlib
    path of :func:`zlib_compress_adaptive`, with RFC 1952 framing)."""
    from repro.lzss.compressor import LZSSCompressor

    tokens = LZSSCompressor(window_size, backend="fast") \
        .compress(payload).tokens
    split = deflate_adaptive(tokens, payload, tokens_per_block,
                             cut_search=cut_search)
    return (
        gzip_container.member_header()
        + split.body
        + gzip_container.member_trailer(crc32(payload), len(payload))
    )


def transcode(
    stream: bytes,
    window_size: int = 4096,
    tokens_per_block: int = DEFAULT_TOKENS_PER_BLOCK,
    cut_search: bool = True,
    zdict: Optional[bytes] = None,
    max_output: Optional[int] = None,
) -> TranscodeResult:
    """Re-encode a zlib/gzip stream through the adaptive splitter.

    Decodes ``stream`` with the repo's own inflate (``max_output``
    bounds the decode, ``zdict`` unlocks FDICT inputs), re-compresses
    the payload with per-block strategy choice + cut-point search,
    verifies the candidate decodes byte-identically, and returns the
    smaller of candidate and original — so a plain input is never
    transcoded to a larger stream. FDICT inputs are the one exception:
    the re-encoded candidate always replaces them (even when larger)
    so the output is a plain stream that no longer needs the
    dictionary. The container format is preserved either way.
    """
    container = detect_container(stream)
    force_plain = False
    if container == "gzip":
        payload = gzip_container.decompress(stream, max_output=max_output)
        candidate = _recompress_gzip(payload, window_size,
                                     tokens_per_block, cut_search)
        redecoded = gzip_container.decompress(candidate)
    else:
        from repro.deflate.zlib_container import parse_header_info

        # An FDICT input is not self-contained; the candidate always
        # wins so the output never needs the dictionary again.
        force_plain = parse_header_info(stream).fdict
        payload = zlib_decompress(stream, max_output=max_output,
                                  zdict=zdict)
        candidate = zlib_compress_adaptive(
            payload, window_size=window_size,
            tokens_per_block=tokens_per_block, cut_search=cut_search,
        )
        redecoded = zlib_decompress(candidate)
    if redecoded != payload:
        raise TranscodeError(
            "re-encoded stream failed decode verification"
        )
    changed = force_plain or len(candidate) < len(stream)
    return TranscodeResult(
        data=candidate if changed else stream,
        container=container,
        payload_size=len(payload),
        input_size=len(stream),
        recompressed_size=len(candidate),
        changed=changed,
    )


__all__ = [
    "TranscodeResult",
    "TranscodeError",
    "detect_container",
    "transcode",
]
