"""Configuration diff: where do the cycles go when a knob changes?

The trade-off figures report totals; a designer iterating on one knob
wants the *delta decomposition*: which FSM states gained or lost cycles,
and what happened to output size and block RAM. ``diff_configurations``
runs both configurations on the same data and itemises the change —
effectively one Table III cell with its full explanation attached.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.estimator.sweep import run_configuration
from repro.hw.params import HardwareParams
from repro.hw.stats import FSMState


@dataclass
class ConfigDiff:
    """Itemised difference between two configurations on one input."""

    base: HardwareParams
    other: HardwareParams
    input_bytes: int
    speed_base: float
    speed_other: float
    size_base: int
    size_other: int
    bram_base: int
    bram_other: int
    state_delta_cycles: Dict[str, int] = field(default_factory=dict)

    @property
    def speed_change(self) -> float:
        """Relative throughput change (positive = other is faster)."""
        if self.speed_base == 0:
            return 0.0
        return self.speed_other / self.speed_base - 1

    @property
    def size_change(self) -> float:
        """Relative output-size change (negative = other is smaller)."""
        if self.size_base == 0:
            return 0.0
        return self.size_other / self.size_base - 1

    def dominant_state(self) -> str:
        """The FSM state contributing most to the cycle delta."""
        if not self.state_delta_cycles:
            return ""
        return max(
            self.state_delta_cycles,
            key=lambda name: abs(self.state_delta_cycles[name]),
        )

    def changed_fields(self) -> Dict[str, tuple]:
        """Parameter fields that differ: name -> (base, other)."""
        out = {}
        for name in (
            "window_size", "hash_bits", "gen_bits", "head_split",
            "data_bus_bytes", "hash_prefetch", "hash_cache",
            "relative_next", "lookahead_size", "policy",
        ):
            a, b = getattr(self.base, name), getattr(self.other, name)
            if a != b:
                out[name] = (a, b)
        return out

    def format(self) -> str:
        lines = [
            f"base : {self.base.describe()}",
            f"other: {self.other.describe()}",
            "changed: " + ", ".join(
                f"{name} {a}->{b}"
                for name, (a, b) in self.changed_fields().items()
            ) if self.changed_fields() else "changed: (nothing)",
            f"speed: {self.speed_base:.1f} -> {self.speed_other:.1f} MB/s "
            f"({100 * self.speed_change:+.1f}%)",
            f"size : {self.size_base} -> {self.size_other} B "
            f"({100 * self.size_change:+.1f}%)",
            f"BRAM : {self.bram_base} -> {self.bram_other} blocks",
            "cycle delta by state:",
        ]
        for name, delta in sorted(
            self.state_delta_cycles.items(), key=lambda kv: -abs(kv[1])
        ):
            if delta:
                lines.append(f"  {name:<22s} {delta:+d}")
        return "\n".join(lines)


def diff_configurations(
    base: HardwareParams,
    other: HardwareParams,
    data: bytes,
) -> ConfigDiff:
    """Run both configurations on ``data`` and itemise the difference."""
    row_a = run_configuration(base, data)
    row_b = run_configuration(other, data)
    deltas = {
        state.value: (
            row_b.stats.cycles[state] - row_a.stats.cycles[state]
        )
        for state in FSMState
    }
    return ConfigDiff(
        base=base,
        other=other,
        input_bytes=len(data),
        speed_base=row_a.throughput_mbps,
        speed_other=row_b.throughput_mbps,
        size_base=row_a.compressed_bytes,
        size_other=row_b.compressed_bytes,
        bram_base=row_a.bram36,
        bram_other=row_b.bram36,
        state_delta_cycles=deltas,
    )
