"""Cross-workload estimation report.

The paper evaluates two data sets; an integrator wants the same view
over *their* payload mix. This report runs one configuration across the
whole workload corpus and summarises ratio/speed/cycle-profile per
workload — the "how data-dependent is this design point?" question.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.estimator.sweep import run_configuration
from repro.estimator.report import EstimationRow
from repro.hw.params import HardwareParams
from repro.hw.stats import FSMState
from repro.workloads.corpus import WORKLOADS, sample


@dataclass
class WorkloadComparison:
    """One configuration across many workloads."""

    params: HardwareParams
    rows: Dict[str, EstimationRow] = field(default_factory=dict)

    def ratio_spread(self) -> float:
        """max/min compression ratio across workloads."""
        ratios = [row.ratio for row in self.rows.values() if row.ratio > 0]
        if not ratios:
            return 0.0
        return max(ratios) / min(ratios)

    def speed_spread(self) -> float:
        """max/min throughput across workloads.

        The paper's design is data-dependent (unlike a systolic array);
        this quantifies by how much.
        """
        speeds = [row.throughput_mbps for row in self.rows.values()]
        if not speeds or min(speeds) == 0:
            return 0.0
        return max(speeds) / min(speeds)

    def format_table(self) -> str:
        lines = [
            f"configuration: {self.params.describe()}",
            f"{'workload':<11s} {'ratio':>7s} {'MB/s':>7s} {'cpb':>6s} "
            f"{'find%':>6s} {'lit-ish%':>8s}",
        ]
        for name, row in sorted(self.rows.items()):
            find = row.stats.fraction(FSMState.FINDING_MATCH)
            out = row.stats.fraction(FSMState.PRODUCING_OUTPUT)
            lines.append(
                f"{name:<11s} {row.ratio:>7.3f} "
                f"{row.throughput_mbps:>7.1f} "
                f"{row.cycles_per_byte:>6.2f} {100 * find:>5.1f}% "
                f"{100 * out:>7.1f}%"
            )
        lines.append(
            f"spread: ratio {self.ratio_spread():.2f}x, "
            f"speed {self.speed_spread():.2f}x"
        )
        return "\n".join(lines)


def compare_workloads(
    params: Optional[HardwareParams] = None,
    workloads: Optional[Sequence[str]] = None,
    sample_bytes: Optional[int] = None,
) -> WorkloadComparison:
    """Run ``params`` over the named (default: all) workloads."""
    params = params or HardwareParams()
    names: List[str] = list(workloads) if workloads else sorted(WORKLOADS)
    comparison = WorkloadComparison(params=params)
    for name in names:
        data = sample(name, sample_bytes)
        comparison.rows[name] = run_configuration(params, data, label=name)
    return comparison
