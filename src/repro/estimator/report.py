"""Estimation result records and table rendering."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.hw.params import HardwareParams
from repro.hw.stats import CycleStats, FSMState


@dataclass
class EstimationRow:
    """One configuration's complete estimation outcome."""

    params: HardwareParams
    input_bytes: int
    compressed_bytes: int
    stats: CycleStats
    bram36: int
    luts: int
    registers: int
    label: str = ""

    @property
    def ratio(self) -> float:
        if self.compressed_bytes == 0:
            return 0.0
        return self.input_bytes / self.compressed_bytes

    @property
    def throughput_mbps(self) -> float:
        return self.stats.throughput_mbps

    @property
    def cycles_per_byte(self) -> float:
        return self.stats.cycles_per_byte

    def state_fractions(self) -> Dict[str, float]:
        return {
            state.value: self.stats.fraction(state) for state in FSMState
        }

    def format(self) -> str:
        label = self.label or self.params.describe()
        return (
            f"{label:<44s} {self.throughput_mbps:>7.1f} MB/s "
            f"{self.ratio:>6.3f} {self.cycles_per_byte:>6.2f} cpb "
            f"{self.bram36:>4d} BRAM {self.luts:>6d} LUT"
        )


@dataclass
class SweepReport:
    """A series of estimation rows (one swept axis)."""

    axis: str
    rows: List[EstimationRow] = field(default_factory=list)
    workload: str = ""

    def axis_values(self) -> List:
        return [getattr(row.params, self.axis) for row in self.rows]

    def series(self, metric: str) -> List[float]:
        """Extract one metric across the sweep.

        ``metric`` is any numeric :class:`EstimationRow` property name
        (``ratio``, ``throughput_mbps``, ``cycles_per_byte``,
        ``compressed_bytes``, ``bram36``, ``luts``).
        """
        return [float(getattr(row, metric)) for row in self.rows]

    def best(self, metric: str, maximize: bool = True) -> EstimationRow:
        """Row optimising the given metric."""
        key = lambda row: float(getattr(row, metric))  # noqa: E731
        return max(self.rows, key=key) if maximize else min(self.rows, key=key)

    def format_table(self, header: Optional[str] = None) -> str:
        lines = []
        if header:
            lines.append(header)
        lines.append(
            f"{'configuration':<44s} {'speed':>12s} {'ratio':>6s} "
            f"{'cycles':>10s} {'BRAM':>8s} {'LUTs':>10s}"
        )
        lines.extend(row.format() for row in self.rows)
        return "\n".join(lines)
