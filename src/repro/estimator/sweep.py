"""Parameter sweeps: "constructing series of parameter sets (e.g.
iterating an arbitrary parameter over a given range)" (§V)."""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from repro.errors import ConfigError
from repro.estimator.report import EstimationRow, SweepReport
from repro.hw.compressor import HardwareCompressor
from repro.hw.params import HardwareParams
from repro.hw.resources import estimate_resources
from repro.lzss.policy import MatchPolicy


def run_configuration(
    params: HardwareParams, data: bytes, label: str = ""
) -> EstimationRow:
    """Run the full estimation (cycles + size + resources) once."""
    result = HardwareCompressor(params).run(data)
    resources = estimate_resources(params)
    return EstimationRow(
        params=params,
        input_bytes=len(data),
        compressed_bytes=result.compressed_size,
        stats=result.stats,
        bram36=resources.bram36_total,
        luts=resources.luts,
        registers=resources.registers,
        label=label,
    )


class ParameterSweep:
    """Iterates one :class:`HardwareParams` field over a value range."""

    #: Fields the front-end lets users sweep (everything numeric/bool).
    SWEEPABLE = {
        "window_size",
        "hash_bits",
        "gen_bits",
        "head_split",
        "data_bus_bytes",
        "hash_prefetch",
        "hash_cache",
        "relative_next",
        "lookahead_size",
    }

    def __init__(
        self,
        axis: str,
        values: Sequence,
        base: Optional[HardwareParams] = None,
        policy: Optional[MatchPolicy] = None,
    ) -> None:
        if axis not in self.SWEEPABLE:
            raise ConfigError(
                f"cannot sweep {axis!r}; sweepable fields: "
                f"{sorted(self.SWEEPABLE)}"
            )
        if not values:
            raise ConfigError("sweep needs at least one value")
        self.axis = axis
        self.values = list(values)
        self.base = base or HardwareParams()
        if policy is not None:
            self.base = self.base.with_overrides(policy=policy)

    def configurations(self) -> Iterable[HardwareParams]:
        for value in self.values:
            yield self.base.with_overrides(**{self.axis: value})

    def run(self, data: bytes, workload: str = "") -> SweepReport:
        """Execute the sweep on ``data``."""
        report = SweepReport(axis=self.axis, workload=workload)
        for params in self.configurations():
            label = f"{self.axis}={getattr(params, self.axis)}"
            report.rows.append(run_configuration(params, data, label))
        return report


def grid_sweep(
    data: bytes,
    window_sizes: Sequence[int],
    hash_bits: Sequence[int],
    base: Optional[HardwareParams] = None,
    policy: Optional[MatchPolicy] = None,
) -> List[SweepReport]:
    """The paper's figure grids: one window sweep per hash size.

    Returns one :class:`SweepReport` per hash size, each sweeping the
    window over ``window_sizes`` — exactly the series layout of
    Figs. 2 and 3.
    """
    reports = []
    base = base or HardwareParams()
    if policy is not None:
        base = base.with_overrides(policy=policy)
    for bits in hash_bits:
        sweep = ParameterSweep(
            "window_size",
            window_sizes,
            base=base.with_overrides(hash_bits=bits),
        )
        report = sweep.run(data, workload=f"hash={bits}")
        reports.append(report)
    return reports
