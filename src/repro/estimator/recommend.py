"""Constraint-driven configuration recommendation (§VI).

"An estimation tool available online allows performing design space
exploration and finding optimal parameters based on real data samples."

:func:`recommend` is that sentence as an API: given a data sample and
the integrator's constraints (minimum throughput, block-RAM budget,
minimum ratio), it sweeps the standard design grid, filters to feasible
configurations, and returns the best one under a chosen objective along
with the runner-up Pareto alternatives.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.errors import ConfigError
from repro.estimator.pareto import pareto_front
from repro.estimator.report import EstimationRow
from repro.estimator.sweep import grid_sweep
from repro.hw.params import HardwareParams
from repro.lzss.policy import HW_MAX_POLICY, HW_SPEED_POLICY

_DEFAULT_WINDOWS = (1024, 2048, 4096, 8192, 16384)
_DEFAULT_HASH_BITS = (9, 11, 13, 15)
_OBJECTIVES = {"ratio", "throughput_mbps", "bram36"}


@dataclass(frozen=True)
class Constraints:
    """The integrator's requirements."""

    min_throughput_mbps: float = 0.0
    max_bram36: Optional[int] = None
    min_ratio: float = 0.0

    def satisfied_by(self, row: EstimationRow) -> bool:
        if row.throughput_mbps < self.min_throughput_mbps:
            return False
        if self.max_bram36 is not None and row.bram36 > self.max_bram36:
            return False
        if row.ratio < self.min_ratio:
            return False
        return True


@dataclass
class Recommendation:
    """The chosen configuration plus its feasible alternatives."""

    best: Optional[EstimationRow]
    alternatives: List[EstimationRow] = field(default_factory=list)
    evaluated: int = 0
    feasible: int = 0

    @property
    def found(self) -> bool:
        return self.best is not None

    def format(self) -> str:
        if not self.found:
            return (
                f"no feasible configuration among {self.evaluated} "
                "evaluated; relax the constraints"
            )
        lines = [
            f"recommended: {self.best.params.describe()}",
            f"  speed {self.best.throughput_mbps:.1f} MB/s, "
            f"ratio {self.best.ratio:.3f}, "
            f"{self.best.bram36} BRAM36",
            f"  ({self.feasible} of {self.evaluated} configurations "
            "feasible)",
        ]
        if self.alternatives:
            lines.append("  Pareto alternatives:")
            for row in self.alternatives:
                lines.append(
                    f"    {row.params.describe()}: "
                    f"{row.throughput_mbps:.1f} MB/s, "
                    f"ratio {row.ratio:.3f}, {row.bram36} BRAM36"
                )
        return "\n".join(lines)


def recommend(
    data: bytes,
    constraints: Constraints = Constraints(),
    objective: str = "ratio",
    windows: Sequence[int] = _DEFAULT_WINDOWS,
    hash_bits: Sequence[int] = _DEFAULT_HASH_BITS,
    base: Optional[HardwareParams] = None,
    include_max_level: bool = True,
) -> Recommendation:
    """Search the design grid for the best feasible configuration.

    ``objective`` is maximised (``ratio``, ``throughput_mbps``) or
    minimised (``bram36``) over the feasible set. ``include_max_level``
    additionally explores the high-effort matching policy (Fig. 4's
    "max" curve) for ratio-driven searches.
    """
    if objective not in _OBJECTIVES:
        raise ConfigError(
            f"objective must be one of {sorted(_OBJECTIVES)}: {objective}"
        )
    rows: List[EstimationRow] = []
    policies = [HW_SPEED_POLICY]
    if include_max_level:
        policies.append(HW_MAX_POLICY)
    for policy in policies:
        for report in grid_sweep(
            data, windows, hash_bits, base=base, policy=policy
        ):
            rows.extend(report.rows)

    feasible = [row for row in rows if constraints.satisfied_by(row)]
    if not feasible:
        return Recommendation(
            best=None, evaluated=len(rows), feasible=0
        )
    sign = -1 if objective == "bram36" else 1
    best = max(feasible, key=lambda row: sign * float(getattr(row, objective)))
    alternatives = [
        row for row in pareto_front(feasible) if row is not best
    ][:4]
    return Recommendation(
        best=best,
        alternatives=alternatives,
        evaluated=len(rows),
        feasible=len(feasible),
    )
