"""Parallel design-space exploration.

The estimation workload is embarrassingly parallel — every
configuration is an independent compress-and-count run — so the sweep
driver fans out over a process pool (CPython's GIL rules out threads
for this CPU-bound loop). Results are returned in the same order as the
serial driver and are bit-identical to it: everything in the pipeline
is deterministic, so parallelism is a pure wall-clock win.

The paper's own tool did the same thing by hand ("iteratively runs the
C++ model"); a 20-configuration figure grid drops from minutes to the
time of the slowest single run.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import List, Optional, Sequence

from repro.errors import ConfigError
from repro.estimator.report import EstimationRow, SweepReport
from repro.estimator.sweep import ParameterSweep, run_configuration
from repro.hw.params import HardwareParams
from repro.lzss.policy import MatchPolicy


def _worker(args) -> EstimationRow:
    """Top-level worker (must be picklable for the process pool)."""
    params, data, label = args
    return run_configuration(params, data, label)


def run_configurations_parallel(
    configurations: Sequence[HardwareParams],
    data: bytes,
    labels: Optional[Sequence[str]] = None,
    workers: Optional[int] = None,
) -> List[EstimationRow]:
    """Estimate many configurations concurrently.

    ``workers=None`` uses the executor default (CPU count);
    ``workers=1`` short-circuits to the serial path (no fork overhead,
    useful under profilers and in tests).
    """
    configurations = list(configurations)
    if labels is None:
        labels = [""] * len(configurations)
    if len(labels) != len(configurations):
        raise ConfigError(
            f"{len(labels)} labels for {len(configurations)} configurations"
        )
    jobs = [
        (params, data, label)
        for params, label in zip(configurations, labels)
    ]
    if workers == 1 or len(jobs) <= 1:
        return [_worker(job) for job in jobs]
    with ProcessPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(_worker, jobs))


def sweep_parallel(
    axis: str,
    values: Sequence,
    data: bytes,
    base: Optional[HardwareParams] = None,
    policy: Optional[MatchPolicy] = None,
    workers: Optional[int] = None,
    workload: str = "",
) -> SweepReport:
    """Parallel equivalent of :meth:`ParameterSweep.run`."""
    sweep = ParameterSweep(axis, values, base=base, policy=policy)
    configurations = list(sweep.configurations())
    labels = [
        f"{axis}={getattr(params, axis)}" for params in configurations
    ]
    rows = run_configurations_parallel(
        configurations, data, labels=labels, workers=workers
    )
    report = SweepReport(axis=axis, workload=workload)
    report.rows = rows
    return report


def grid_sweep_parallel(
    data: bytes,
    window_sizes: Sequence[int],
    hash_bits: Sequence[int],
    base: Optional[HardwareParams] = None,
    policy: Optional[MatchPolicy] = None,
    workers: Optional[int] = None,
) -> List[SweepReport]:
    """Parallel equivalent of :func:`repro.estimator.sweep.grid_sweep`.

    The whole (window x hash) grid is submitted as one flat job list so
    the pool stays saturated; rows are regrouped per hash size.
    """
    base = base or HardwareParams()
    if policy is not None:
        base = base.with_overrides(policy=policy)
    configurations = []
    labels = []
    for bits in hash_bits:
        for window in window_sizes:
            configurations.append(
                base.with_overrides(hash_bits=bits, window_size=window)
            )
            labels.append(f"window_size={window}")
    rows = run_configurations_parallel(
        configurations, data, labels=labels, workers=workers
    )
    reports = []
    per_hash = len(window_sizes)
    for index, bits in enumerate(hash_bits):
        report = SweepReport(
            axis="window_size", workload=f"hash={bits}"
        )
        report.rows = rows[index * per_hash:(index + 1) * per_hash]
        reports.append(report)
    return reports
