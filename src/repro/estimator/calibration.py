"""Live calibration of the cycle model from traced-sample telemetry.

The estimator's cycle model (:mod:`repro.hw.cycle_model`) is analytic:
it charges cycles per the paper's state walk over a recorded
:class:`~repro.lzss.trace.MatchTrace`. Historically those traces came
from offline estimation runs on reference workloads. The per-shard
router (:mod:`repro.lzss.router`) adds a production source: a
deterministic sampling policy diverts a small fraction of shards
through the instrumented ``traced`` backend at compression time, and
each sampled shard's trace — plus its *measured* software wall time —
lands here as one :class:`CalibrationPoint`.

That pairing is the calibration: the modelled hardware throughput
(cycles from the analytic model at the configured clock) next to the
measured software throughput for the *same bytes under the same
policy*, accumulated over live traffic instead of canned corpora. The
:class:`CalibrationLog` aggregates the points and answers the question
the estimator's reports need — how far apart model and software are on
the traffic actually being served, per shard and in aggregate.

The hardware model only prices greedy traces (one row per emitted
token, the FSM's walk); a lazy-policy trace records per-*search* rows,
so for lazy shards the point carries the search-cost aggregates but no
modelled cycles (``modelled_cycles == 0``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional


@dataclass(frozen=True)
class CalibrationPoint:
    """One traced-sample shard's telemetry (frozen, picklable).

    Search-cost aggregates mirror the :class:`~repro.lzss.trace.MatchTrace`
    columns the cost models consume; ``modelled_cycles``/
    ``modelled_mbps`` come from running the hardware cycle model over
    the trace (0 for lazy policies, which the FSM model does not
    price).
    """

    shard_index: int
    input_bytes: int
    token_count: int
    wall_s: float
    chain_iters: int
    compare_cycles_w4: int
    compare_cycles_w1: int
    inserted: int
    modelled_cycles: int = 0
    modelled_mbps: float = 0.0

    @property
    def measured_mbps(self) -> float:
        """Measured software tokenization throughput for this shard."""
        if self.wall_s <= 0.0:
            return 0.0
        return self.input_bytes / self.wall_s / 1e6

    @property
    def modelled(self) -> bool:
        """Whether the hardware cycle model priced this shard."""
        return self.modelled_cycles > 0

    @property
    def hw_speedup(self) -> float:
        """Modelled hardware MB/s over measured software MB/s."""
        measured = self.measured_mbps
        if not self.modelled or measured <= 0.0:
            return 0.0
        return self.modelled_mbps / measured


def point_from_trace(
    shard_index: int,
    trace,
    wall_s: float,
    params=None,
    policy=None,
) -> CalibrationPoint:
    """Fold one sampled shard's trace into a :class:`CalibrationPoint`.

    ``params`` configures the hardware model (paper defaults when
    ``None``); ``policy`` gates it — lazy traces are per-search, not
    per-token, so they keep their aggregates but are not priced.
    """
    modelled_cycles = 0
    modelled_mbps = 0.0
    if policy is None or not policy.lazy:
        from repro.hw.cycle_model import CycleModel
        from repro.hw.params import HardwareParams

        stats = CycleModel(params or HardwareParams()).run(trace)
        modelled_cycles = stats.total_cycles
        modelled_mbps = stats.throughput_mbps
    return CalibrationPoint(
        shard_index=shard_index,
        input_bytes=trace.input_size,
        token_count=len(trace),
        wall_s=wall_s,
        chain_iters=sum(trace.chain_iters),
        compare_cycles_w4=sum(trace.compare_cycles_w4),
        compare_cycles_w1=sum(trace.compare_cycles_w1),
        inserted=sum(trace.inserted),
        modelled_cycles=modelled_cycles,
        modelled_mbps=modelled_mbps,
    )


@dataclass
class CalibrationLog:
    """Accumulated calibration points from one compression run."""

    points: List[CalibrationPoint] = field(default_factory=list)

    def add(self, point: CalibrationPoint) -> None:
        self.points.append(point)

    def __len__(self) -> int:
        return len(self.points)

    def __iter__(self):
        return iter(self.points)

    @property
    def sampled_bytes(self) -> int:
        return sum(p.input_bytes for p in self.points)

    @property
    def measured_mbps(self) -> float:
        """Aggregate measured software throughput over sampled shards."""
        wall = sum(p.wall_s for p in self.points)
        if wall <= 0.0:
            return 0.0
        return self.sampled_bytes / wall / 1e6

    @property
    def modelled_mbps(self) -> float:
        """Aggregate modelled hardware throughput (priced points only)."""
        priced = [p for p in self.points if p.modelled]
        if not priced:
            return 0.0
        cycles = sum(p.modelled_cycles for p in priced)
        nbytes = sum(p.input_bytes for p in priced)
        if cycles <= 0:
            return 0.0
        # cycles/byte at the model's clock; all points share the params
        # an engine run was configured with, so the per-point clock is
        # uniform and recoverable from any priced point.
        clock_mhz = (priced[0].modelled_mbps
                     * priced[0].modelled_cycles / priced[0].input_bytes)
        return clock_mhz / (cycles / nbytes)

    @property
    def hw_speedup(self) -> float:
        """Aggregate modelled-hardware over measured-software speed."""
        measured = self.measured_mbps
        modelled = self.modelled_mbps
        if measured <= 0.0 or modelled <= 0.0:
            return 0.0
        return modelled / measured

    def format_table(self) -> str:
        """Plain-text calibration report (the CLI's ``--stats`` block)."""
        lines = [
            f"calibration     : {len(self.points)} sampled shards, "
            f"{self.sampled_bytes} bytes",
        ]
        if self.points:
            lines.append(
                f"  measured (sw) : {self.measured_mbps:.2f} MB/s"
            )
            if any(p.modelled for p in self.points):
                lines.append(
                    f"  modelled (hw) : {self.modelled_mbps:.2f} MB/s "
                    f"({self.hw_speedup:.1f}x the sampled software path)"
                )
            for p in self.points:
                modelled = (f"{p.modelled_mbps:8.2f} MB/s hw"
                            if p.modelled else "   (lazy, unpriced)")
                lines.append(
                    f"  shard {p.shard_index:>4d}: {p.input_bytes:>8d} B  "
                    f"{p.token_count:>7d} tok  "
                    f"{p.measured_mbps:6.2f} MB/s sw  {modelled}"
                )
        return "\n".join(lines)
