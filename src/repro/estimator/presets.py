"""Named estimation presets ("compresses a given file using several
presets and produces reports regarding the block RAM amount, compression
ratio and clock cycle usage", §IV)."""

from __future__ import annotations

from typing import Dict

from repro.errors import ConfigError
from repro.hw.params import HardwareParams
from repro.lzss.policy import HW_MAX_POLICY

#: The presets the interactive tool offers. Each trades block RAM,
#: ratio and speed differently, spanning the paper's explored space.
ESTIMATION_PRESETS: Dict[str, HardwareParams] = {
    # Table I's configuration: fastest feasible-ratio design point.
    "speed": HardwareParams(window_size=4096, hash_bits=15),
    # Minimal block RAM footprint.
    "min-bram": HardwareParams(window_size=1024, hash_bits=9, gen_bits=2),
    # Balanced middle of Fig. 2/3.
    "balanced": HardwareParams(window_size=8192, hash_bits=13),
    # Best ratio the greedy hardware reaches (Fig. 4's "max" curve).
    "max-ratio": HardwareParams(
        window_size=16384, hash_bits=15, policy=HW_MAX_POLICY
    ),
    # The related-work [11] baseline for ablation comparisons.
    "baseline-2007": HardwareParams(
        data_bus_bytes=1,
        hash_prefetch=False,
        gen_bits=0,
        head_split=1,
        relative_next=False,
    ),
}


def estimation_preset(name: str) -> HardwareParams:
    """Look up a preset by name."""
    try:
        return ESTIMATION_PRESETS[name]
    except KeyError:
        raise ConfigError(
            f"unknown estimation preset {name!r}; "
            f"available: {sorted(ESTIMATION_PRESETS)}"
        ) from None
