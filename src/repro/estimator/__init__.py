"""The design-space estimation tool (§V, reference [17]).

"To simplify design space exploration we have developed a software
estimator tool. The tool consists of a flexible cycle-accurate C++
model and a C# front-end. The C++ model accepts various design
parameters (e.g. window size), compresses reference data blocks and
produces various cycle-accurate statistics. The C# front-end allows
constructing series of parameter sets (e.g. iterating an arbitrary
parameter over a given range), iteratively runs the C++ model and
visualizes the obtained results."

Mapping: the "C++ model" is :class:`~repro.hw.compressor.HardwareCompressor`;
the "C# front-end" is this package — :class:`ParameterSweep` constructs
series by iterating any :class:`~repro.hw.params.HardwareParams` field
over a range, :mod:`repro.estimator.report` renders the results, and
:mod:`repro.estimator.cli` is the interactive entry point
(``lzss-estimator``).
"""

from repro.estimator.calibration import (
    CalibrationLog,
    CalibrationPoint,
    point_from_trace,
)
from repro.estimator.presets import ESTIMATION_PRESETS, estimation_preset
from repro.estimator.report import EstimationRow, SweepReport
from repro.estimator.sweep import ParameterSweep, grid_sweep, run_configuration
from repro.estimator.pareto import pareto_front, to_csv
from repro.estimator.workload_report import compare_workloads

__all__ = [
    "CalibrationLog",
    "CalibrationPoint",
    "point_from_trace",
    "ESTIMATION_PRESETS",
    "estimation_preset",
    "EstimationRow",
    "SweepReport",
    "ParameterSweep",
    "grid_sweep",
    "run_configuration",
    "pareto_front",
    "to_csv",
    "compare_workloads",
]
