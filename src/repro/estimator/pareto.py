"""Pareto-front analysis and CSV export for estimation results.

The paper's front-end "visualizes the obtained results"; an integrator's
first question is always *which configurations are not dominated* in the
(speed, ratio, block-RAM) space. This module computes that front and
exports sweep results for external tooling.
"""

from __future__ import annotations

import csv
import io
from typing import Iterable, List, Sequence

from repro.estimator.report import EstimationRow
from repro.errors import ConfigError

#: Metrics where *larger* is better; everything else is minimised.
_MAXIMIZE = {"ratio", "throughput_mbps"}


def _score(row: EstimationRow, metric: str) -> float:
    value = float(getattr(row, metric))
    return value if metric in _MAXIMIZE else -value


def dominates(
    a: EstimationRow, b: EstimationRow, metrics: Sequence[str]
) -> bool:
    """True if ``a`` is at least as good as ``b`` everywhere and
    strictly better somewhere."""
    at_least_as_good = all(
        _score(a, m) >= _score(b, m) for m in metrics
    )
    strictly_better = any(_score(a, m) > _score(b, m) for m in metrics)
    return at_least_as_good and strictly_better


def pareto_front(
    rows: Iterable[EstimationRow],
    metrics: Sequence[str] = ("throughput_mbps", "ratio", "bram36"),
) -> List[EstimationRow]:
    """Non-dominated subset of ``rows`` under ``metrics``."""
    rows = list(rows)
    if not metrics:
        raise ConfigError("at least one metric is required")
    front = [
        row for row in rows
        if not any(
            dominates(other, row, metrics)
            for other in rows if other is not row
        )
    ]
    return sorted(front, key=lambda r: -r.throughput_mbps)


def to_csv(rows: Iterable[EstimationRow]) -> str:
    """Serialise estimation rows as CSV (one line per configuration)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow([
        "label", "window_size", "hash_bits", "gen_bits", "head_split",
        "data_bus_bytes", "hash_prefetch", "input_bytes",
        "compressed_bytes", "ratio", "throughput_mbps",
        "cycles_per_byte", "bram36", "luts", "registers",
    ])
    for row in rows:
        p = row.params
        writer.writerow([
            row.label or p.describe(), p.window_size, p.hash_bits,
            p.gen_bits, p.resolved_head_split, p.data_bus_bytes,
            p.hash_prefetch, row.input_bytes, row.compressed_bytes,
            f"{row.ratio:.4f}", f"{row.throughput_mbps:.2f}",
            f"{row.cycles_per_byte:.3f}", row.bram36, row.luts,
            row.registers,
        ])
    return buffer.getvalue()
