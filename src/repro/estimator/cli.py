"""Command-line front-end for the estimation tool.

Subcommands::

    lzss-estimator run --preset speed --workload wiki --size-kb 256
    lzss-estimator run --file input.bin --window 8192 --hash-bits 13
    lzss-estimator sweep --axis window_size --values 1024,2048,4096
    lzss-estimator resources --preset max-ratio
    lzss-estimator pcompress input.bin --workers 4 --shard-kb 1024
    lzss-estimator verify --total-mb 4
    lzss-estimator presets

Every subcommand prints plain-text reports (the role of the paper's C#
visualiser, minus the GUI).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.estimator.presets import ESTIMATION_PRESETS, estimation_preset
from repro.estimator.sweep import ParameterSweep, run_configuration
from repro.hw.params import HardwareParams
from repro.hw.resources import estimate_resources
from repro.workloads.corpus import WORKLOADS, sample


def _load_data(args: argparse.Namespace) -> bytes:
    if args.file:
        with open(args.file, "rb") as handle:
            return handle.read()
    return sample(args.workload, args.size_kb * 1024)


def _build_params(args: argparse.Namespace) -> HardwareParams:
    if args.preset:
        params = estimation_preset(args.preset)
    else:
        params = HardwareParams()
    overrides = {}
    if args.window is not None:
        overrides["window_size"] = args.window
    if args.hash_bits is not None:
        overrides["hash_bits"] = args.hash_bits
    if args.gen_bits is not None:
        overrides["gen_bits"] = args.gen_bits
    if overrides:
        params = params.with_overrides(**overrides)
    return params


def add_compression_options(
    parser: argparse.ArgumentParser,
    *,
    strategy: bool = True,
    route: bool = False,
    sampling: bool = False,
    zdict: bool = True,
    refine: bool = True,
) -> None:
    """The shared compression flag set for every compressing subcommand.

    ``compress``, ``pcompress``, ``batch`` and ``serve`` all accept the
    same core knobs — one profile, one backend vocabulary, one routing
    and preset-dictionary surface — so the flags are defined once here
    and each command opts out of the few that its engine does not take
    (batch has no block strategy; sampling flags are pcompress-only).

    --backend: which tokenizer runs. ``fast`` is the trace-free
    pure-Python hot path; ``vector`` the numpy batch kernel; ``sa`` the
    suffix-array matcher of the ``best`` profile (decode-identical,
    ratio >= the hash-chain parse); ``auto`` picks the fastest
    available; ``traced`` the instrumented reproduction path. All but
    ``sa`` emit identical bytes — see docs/PERFORMANCE.md.

    --strategy: block entropy coding. ``fixed`` is the paper's hardware
    path (default), ``dynamic`` transmits per-block optimal tables,
    ``adaptive`` prices fixed/dynamic/stored per block and emits the
    cheapest (ZLib's choice).

    --refine: iterative re-tokenisation under the adaptive strategy —
    re-parse each block scored by its emerging Huffman code lengths
    (``best`` turns it on; --no-refine switches it off for A/B runs).

    --route / --probe-*: per-shard backend routing
    (:mod:`repro.lzss.router`); ``sampling`` adds the traced-sampling
    policy flags (pcompress only — the serial command has one shard, so
    ``--backend traced`` covers it).

    --zdict: preset-dictionary file (RFC 1950 FDICT framing): the
    file's bytes prime the window and the stream carries the DICTID, so
    ``zlib.decompressobj(zdict=...)`` (or ``decompress --zdict``) is
    required — and sufficient — to decode.
    """
    from repro.lzss.backends import BACKEND_NAMES
    from repro.profile import preset_names

    parser.add_argument(
        "--profile", default=None, choices=list(preset_names()),
        help="named CompressionProfile preset (policy, strategy, window, "
        "backend, refine in one flag); explicit flags win over its fields",
    )
    parser.add_argument(
        "--backend", default=None,
        choices=[*BACKEND_NAMES, "auto"],
        help="tokenizer backend: trace-free pure-Python (fast, default), "
        "numpy batch kernel (vector), suffix-array matcher (sa; decode-"
        "identical, best ratio), best available (auto), or the "
        "instrumented reproduction path (traced)",
    )
    if strategy:
        parser.add_argument(
            "--strategy", default=None,
            choices=["fixed", "dynamic", "adaptive"],
            help="block entropy coding: fixed tables (paper hardware, "
            "default), per-block dynamic tables, or adaptive "
            "best-of-three",
        )
    if refine:
        parser.add_argument(
            "--refine", action=argparse.BooleanOptionalAction,
            default=None,
            help="re-parse each adaptive block scored by its own Huffman "
            "code lengths (the best profile's setting; default off)",
        )
    if route:
        _add_route_flags(parser, sampling=sampling)
    if zdict:
        _add_zdict_flag(parser)


def _add_block_flags(parser: argparse.ArgumentParser) -> None:
    """Adaptive-splitter knobs shared by ``compress`` and ``pcompress``.

    ``--tokens-per-block`` was previously hard-coded to the library
    default; both block-emitting subcommands now accept it. The cut
    search and the incompressibility sniff default on and are
    switchable for A/B runs (``--no-cut-search`` restores the blind
    cadence, ``--no-sniff`` always tokenizes).
    """
    from repro.deflate.splitter import DEFAULT_TOKENS_PER_BLOCK

    parser.add_argument(
        "--tokens-per-block", type=int, default=None,
        help="fixed-cadence block length / cut-search spacing ceiling "
        f"(default {DEFAULT_TOKENS_PER_BLOCK})",
    )
    parser.add_argument(
        "--cut-search", action=argparse.BooleanOptionalAction,
        default=None,
        help="cost-driven block cut-point search (adaptive strategy, "
        "default on; --no-cut-search restores the blind cadence)",
    )
    parser.add_argument(
        "--sniff", action=argparse.BooleanOptionalAction, default=None,
        help="entropy-sniff incompressible input straight to stored "
        "blocks, skipping tokenization (adaptive strategy, default on)",
    )


def _add_route_flags(parser: argparse.ArgumentParser,
                     sampling: bool = False) -> None:
    """Per-shard routing knobs (see :mod:`repro.lzss.router`).

    ``--route static`` (default) resolves ``--backend`` once for the
    whole run; ``--route probe`` decides ``auto`` per shard from a
    cheap statistical probe (entropy + sampled match density), sending
    match-poor shards to the vector kernel and match-rich shards to the
    scalar path. The thresholds are exposed for A/B runs. ``sampling``
    additionally adds the traced-sampling policy flags (pcompress only
    — the serial command has a single shard, so ``--backend traced``
    covers it).
    """
    from repro.lzss.router import (
        ROUTE_ENTROPY_BITS,
        ROUTE_MATCH_DENSITY,
        ROUTE_MODES,
    )

    parser.add_argument(
        "--route", default=None, choices=list(ROUTE_MODES),
        help="backend routing: resolve --backend once (static, default) "
        "or probe each shard and pick vector/fast per shard (probe; "
        "only meaningful with --backend auto)",
    )
    parser.add_argument(
        "--probe-entropy-bits", type=float, default=None,
        help="probe threshold: route to vector only when sampled "
        f"entropy >= this many bits/byte (default {ROUTE_ENTROPY_BITS})",
    )
    parser.add_argument(
        "--probe-match-density", type=float, default=None,
        help="probe threshold: route to vector only when sampled match "
        f"density <= this fraction (default {ROUTE_MATCH_DENSITY})",
    )
    if sampling:
        parser.add_argument(
            "--trace-fraction", type=float, default=None,
            help="route this fraction of shards through the traced "
            "backend for live cycle-model calibration (default 0.0)",
        )
        parser.add_argument(
            "--trace-seed", type=int, default=None,
            help="seed for the deterministic traced-sampling policy "
            "(default 0; same seed + fraction -> same shards sampled)",
        )


def _add_zdict_flag(parser: argparse.ArgumentParser) -> None:
    """--zdict: preset-dictionary file (RFC 1950 FDICT framing).

    Wires :mod:`repro.deflate.preset_dict` end-to-end from the command
    line: the file's bytes prime the compressor's window and the output
    stream carries the DICTID, so ``zlib.decompressobj(zdict=...)`` (or
    ``decompress --zdict``) is required — and sufficient — to decode.
    """
    parser.add_argument(
        "--zdict", metavar="FILE", default=None,
        help="preset dictionary file: primes the window and emits an "
        "FDICT stream (decode with --zdict / zlib decompressobj(zdict=))",
    )


def _read_zdict(args: argparse.Namespace) -> bytes:
    if not getattr(args, "zdict", None):
        return b""
    with open(args.zdict, "rb") as handle:
        data = handle.read()
    if not data:
        raise SystemExit(f"--zdict {args.zdict}: dictionary file is empty")
    return data


def _block_strategy(args: argparse.Namespace):
    """The requested BlockStrategy, or None when --strategy was not given
    (the library default / the profile's choice applies)."""
    from repro.deflate.block_writer import BlockStrategy

    if args.strategy is None:
        return None
    return BlockStrategy(args.strategy)


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--file", help="compress this file instead of a "
                        "generated workload")
    parser.add_argument("--workload", default="wiki",
                        choices=sorted(WORKLOADS))
    parser.add_argument("--size-kb", type=int, default=256,
                        help="generated workload size in KiB")
    parser.add_argument("--preset", choices=sorted(ESTIMATION_PRESETS))
    parser.add_argument("--window", type=int, help="dictionary size bytes")
    parser.add_argument("--hash-bits", type=int)
    parser.add_argument("--gen-bits", type=int)


def _cmd_run(args: argparse.Namespace) -> int:
    data = _load_data(args)
    params = _build_params(args)
    row = run_configuration(params, data)
    print(f"configuration : {params.describe()}")
    print(f"input         : {row.input_bytes} bytes")
    print(f"compressed    : {row.compressed_bytes} bytes "
          f"(ratio {row.ratio:.3f})")
    print(row.stats.format_table())
    print(f"BRAM blocks   : {row.bram36} x 36Kb")
    print(f"LUT estimate  : {row.luts}")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    data = _load_data(args)
    values = [_parse_value(v) for v in args.values.split(",")]
    sweep = ParameterSweep(args.axis, values, base=_build_params(args))
    report = sweep.run(data, workload=args.workload)
    print(report.format_table(
        header=f"sweep of {args.axis} on {len(data)} bytes of "
        f"{args.workload}"
    ))
    return 0


def _cmd_resources(args: argparse.Namespace) -> int:
    params = _build_params(args)
    print(estimate_resources(params).format_table())
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    from repro.hw.alt_architectures import compare_architectures

    data = _load_data(args)
    comparison = compare_architectures(_build_params(args), data)
    print(comparison.format_table())
    return 0


def _cmd_pareto(args: argparse.Namespace) -> int:
    from repro.estimator.pareto import pareto_front, to_csv
    from repro.estimator.sweep import grid_sweep

    data = _load_data(args)
    windows = [1024, 2048, 4096, 8192, 16384]
    hash_bits = [9, 11, 13, 15]
    rows = [
        row
        for report in grid_sweep(data, windows, hash_bits)
        for row in report.rows
    ]
    front = pareto_front(rows)
    print(f"{len(front)} non-dominated of {len(rows)} configurations "
          "(speed / ratio / BRAM):")
    for row in front:
        print(f"  {row.format()}")
    if args.csv:
        with open(args.csv, "w") as handle:
            handle.write(to_csv(rows))
        print(f"full sweep written to {args.csv}")
    return 0


def _cmd_diff(args: argparse.Namespace) -> int:
    from repro.estimator.diff import diff_configurations

    data = _load_data(args)
    base = _build_params(args)
    overrides = {}
    for item in args.set:
        key, _, raw = item.partition("=")
        if not raw:
            raise SystemExit(f"--set expects key=value, got {item!r}")
        overrides[key] = _parse_value(raw)
    other = base.with_overrides(**overrides)
    print(diff_configurations(base, other, data).format())
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    from repro.workloads.stats import profile_workload

    data = _load_data(args)
    params = _build_params(args)
    profile = profile_workload(
        data, window_size=params.window_size,
        hash_spec=params.hash_spec,
    )
    print(profile.format())
    return 0


def _cmd_compress(args: argparse.Namespace) -> int:
    from repro.api import CompressRequest
    from repro.deflate.block_writer import BlockStrategy
    from repro.deflate.splitter import zlib_compress_adaptive
    from repro.deflate.zlib_container import compress as zc

    with open(args.input, "rb") as handle:
        data = handle.read()
    # Explicit hardware flags pin the matcher configuration; with none
    # given, the profile's window/policy fields apply.
    explicit_hw = bool(
        args.preset or args.window is not None
        or args.hash_bits is not None or args.gen_bits is not None
    )
    params = _build_params(args) if explicit_hw else None
    hw = dict(
        window_size=params.window_size if params else None,
        hash_spec=params.hash_spec if params else None,
        policy=params.policy if params else None,
    )
    # One resolution pass decides the dispatch (adaptive vs one-shot)
    # and the probe policy; the engines re-resolve the same request.
    resolved = CompressRequest(
        profile=args.profile, strategy=_block_strategy(args),
        backend=args.backend, refine=args.refine, **hw,
    ).resolve()
    # resolved.backend keeps the library/profile default ("fast" with
    # no flags — the one-shot container alone would default to traced).
    backend = args.backend if args.backend is not None \
        else resolved.backend
    zdict = _read_zdict(args)
    if zdict:
        from repro.deflate.preset_dict import compress_with_dict

        if args.strategy is not None \
                and resolved.strategy is not BlockStrategy.FIXED:
            raise SystemExit(
                "--zdict currently implies --strategy fixed "
                "(the preset-dictionary path emits fixed-Huffman blocks)"
            )
        stream = compress_with_dict(
            data, zdict, window_size=resolved.window_size,
            hash_spec=resolved.hash_spec, policy=resolved.policy,
        )
        output = args.output or args.input + ".lzz"
        with open(output, "wb") as handle:
            handle.write(stream)
        ratio = len(data) / len(stream) if stream else 0.0
        print(f"{args.input}: {len(data)} -> {len(stream)} bytes "
              f"(ratio {ratio:.3f}, FDICT) -> {output}")
        return 0
    if args.route == "probe":
        # The serial command compresses one buffer, so probe routing
        # degenerates to a single whole-input decision (index 0).
        from repro.lzss.router import RouterConfig, route_shard

        config = RouterConfig(
            route="probe",
            entropy_bits=(args.probe_entropy_bits
                          if args.probe_entropy_bits is not None
                          else RouterConfig().entropy_bits),
            match_density=(args.probe_match_density
                           if args.probe_match_density is not None
                           else RouterConfig().match_density),
        )
        decision = route_shard(data, backend=resolved.backend,
                               policy=resolved.policy, config=config)
        backend = decision.backend
        print(f"route: {backend} [{decision.reason}]")
    if resolved.strategy is BlockStrategy.ADAPTIVE:
        stream = zlib_compress_adaptive(
            data, profile=args.profile, backend=backend,
            tokens_per_block=args.tokens_per_block,
            cut_search=args.cut_search, sniff=args.sniff,
            refine=args.refine, **hw,
        )
    else:
        stream = zc(
            data, strategy=_block_strategy(args), backend=backend,
            profile=args.profile, **hw,
        )
    output = args.output or args.input + ".lzz"
    with open(output, "wb") as handle:
        handle.write(stream)
    ratio = len(data) / len(stream) if stream else 0.0
    print(f"{args.input}: {len(data)} -> {len(stream)} bytes "
          f"(ratio {ratio:.3f}) -> {output}")
    return 0


def _cmd_pcompress(args: argparse.Namespace) -> int:
    from repro.parallel import ShardedCompressor

    with open(args.input, "rb") as handle:
        data = handle.read()
    # Explicit hardware flags build a HardwareParams that wins over the
    # profile; with none given, params=None lets profile fields apply.
    explicit_hw = bool(
        args.preset or args.window is not None
        or args.hash_bits is not None or args.gen_bits is not None
    )
    engine = ShardedCompressor(
        params=_build_params(args) if explicit_hw else None,
        workers=args.workers,
        shard_size=args.shard_kb * 1024,
        carry_window=args.carry_window,
        strategy=_block_strategy(args),
        backend=args.backend,
        tokens_per_block=args.tokens_per_block,
        cut_search=args.cut_search,
        sniff=args.sniff,
        refine=args.refine,
        profile=args.profile,
        route=args.route,
        probe_entropy_bits=args.probe_entropy_bits,
        probe_match_density=args.probe_match_density,
        trace_fraction=args.trace_fraction,
        trace_seed=args.trace_seed,
        zdict=_read_zdict(args),
    )
    result = engine.compress(data)
    output = args.output or args.input + ".lzz"
    with open(output, "wb") as handle:
        handle.write(result.data)
    print(f"{args.input}: {len(data)} -> {len(result.data)} bytes "
          f"(ratio {result.ratio:.3f}) -> {output}")
    print(f"{result.stats.shard_count} shards x {engine.shard_size} bytes "
          f"on {engine.workers} workers: "
          f"{result.stats.throughput_mbps:.2f} MB/s")
    if args.stats:
        print(result.stats.format(per_shard=True))
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run the compression service (or its self-test load sweep).

    ``--self-test`` hosts the service on an ephemeral port, drives the
    load generator against it, verifies every response byte-for-byte,
    and exits non-zero on any mismatch — the CI smoke path.
    """
    import asyncio

    from repro.serve import format_report, run_loadgen, serve

    config = dict(
        workers=args.workers,
        shard_size=args.shard_kb * 1024,
        max_inflight=args.max_inflight,
        carry_window=args.carry_window,
        strategy=_block_strategy(args),
        backend=args.backend,
        refine=args.refine,
        profile=args.profile,
        route=args.route,
        probe_entropy_bits=args.probe_entropy_bits,
        probe_match_density=args.probe_match_density,
        zdict=_read_zdict(args),
    )
    if args.self_test:
        streams = tuple(
            int(part) for part in args.streams.split(",") if part
        )
        report = run_loadgen(
            streams_list=streams,
            payload_bytes=args.payload_kb * 1024,
            chunk_bytes=args.chunk_kb * 1024,
            fmt=args.format,
            **config,
        )
        print(format_report(report))
        if not report["all_verified"]:
            print("self-test FAILED: response mismatch", file=sys.stderr)
            return 1
        return 0
    print(f"compression service on {args.host}:{args.port} "
          f"(workers={args.workers or 'auto'}, "
          f"shard {args.shard_kb} KiB) — Ctrl-C to stop")
    try:
        asyncio.run(serve(host=args.host, port=args.port, **config))
    except KeyboardInterrupt:
        print("shutting down")
    return 0


def _cmd_decompress(args: argparse.Namespace) -> int:
    from repro.deflate.zlib_container import decompress as zd

    with open(args.input, "rb") as handle:
        stream = handle.read()
    zdict = _read_zdict(args)
    max_output = args.max_output * 1024 if args.max_output else None
    if args.transcode:
        from repro.transcode import transcode

        result = transcode(stream, window_size=args.window,
                           zdict=zdict or None, max_output=max_output)
        output = args.output or args.input + ".tz"
        with open(output, "wb") as handle:
            handle.write(result.data)
        verb = "re-encoded" if result.changed else "kept"
        print(f"{args.input}: {result.input_size} -> "
              f"{result.output_size} bytes ({result.container}, "
              f"{verb}, payload {result.payload_size}) -> {output}")
        return 0
    if zdict:
        from repro.deflate.preset_dict import decompress_with_dict

        data = decompress_with_dict(stream, zdict, max_output=max_output)
    else:
        data = zd(stream, max_output=max_output)
    output = args.output or (
        args.input[:-4] if args.input.endswith(".lzz")
        else args.input + ".out"
    )
    with open(output, "wb") as handle:
        handle.write(data)
    print(f"{args.input}: {len(stream)} -> {len(data)} bytes -> {output}")
    return 0


def _cmd_batch(args: argparse.Namespace) -> int:
    import os

    paths: List[str] = list(args.inputs)
    if args.manifest:
        base = os.path.dirname(os.path.abspath(args.manifest))
        with open(args.manifest, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line or line.startswith("#"):
                    continue
                paths.append(line if os.path.isabs(line)
                             else os.path.join(base, line))
    if not paths:
        raise SystemExit("batch: no payloads (give FILES or --manifest)")
    payloads = []
    for path in paths:
        with open(path, "rb") as handle:
            payloads.append(handle.read())

    kwargs = dict(
        profile=args.profile,
        zdict=_read_zdict(args),
        window_size=args.window,
        backend=args.backend,
        shared_plan=args.shared_plan,
    )
    if args.workers is not None and args.workers != 1:
        from repro.parallel import compress_batch_parallel

        result = compress_batch_parallel(
            payloads, workers=args.workers,
            chunk_payloads=args.chunk_payloads, **kwargs,
        )
    else:
        from repro.batch import compress_batch

        result = compress_batch(payloads, **kwargs)

    out_dir = args.out_dir
    if out_dir:
        os.makedirs(out_dir, exist_ok=True)
    for path, stream in zip(paths, result.streams):
        name = os.path.basename(path) + args.suffix
        target = (os.path.join(out_dir, name) if out_dir
                  else path + args.suffix)
        with open(target, "wb") as handle:
            handle.write(stream)

    stats = result.stats
    ratio = (stats.input_bytes / stats.output_bytes
             if stats.output_bytes else 0.0)
    choice_text = ", ".join(
        f"{name}: {count}"
        for name, count in sorted(stats.choice_counts.items())
    )
    print(f"{stats.payload_count} payloads: {stats.input_bytes} -> "
          f"{stats.output_bytes} bytes (ratio {ratio:.3f})")
    print(f"route: {result.routing.backend} [{result.routing.reason}]; "
          f"block choices: {choice_text or 'none'}")
    print(f"streams written to "
          f"{out_dir or 'alongside inputs'} (*{args.suffix})")
    return 0


def _cmd_recommend(args: argparse.Namespace) -> int:
    from repro.estimator.recommend import Constraints, recommend

    data = _load_data(args)
    rec = recommend(
        data,
        constraints=Constraints(
            min_throughput_mbps=args.min_speed,
            max_bram36=args.max_bram,
            min_ratio=args.min_ratio,
        ),
        objective=args.objective,
    )
    print(rec.format())
    return 0 if rec.found else 1


def _cmd_paper(args: argparse.Namespace) -> int:
    from repro.analysis.summary import full_reproduction

    report = full_reproduction(sample_bytes=args.size_kb * 1024)
    print(report.render())
    return 0


def _cmd_workloads(args: argparse.Namespace) -> int:
    from repro.estimator.workload_report import compare_workloads

    comparison = compare_workloads(
        params=_build_params(args),
        sample_bytes=args.size_kb * 1024,
    )
    print(comparison.format_table())
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    from repro.verification import run_soak

    report = run_soak(
        total_bytes=args.total_mb * 1024 * 1024,
        segment_bytes=args.segment_kb * 1024,
        params=_build_params(args),
    )
    print(report.format())
    print("all cross-checks passed")
    return 0


def _cmd_presets(_args: argparse.Namespace) -> int:
    for name, params in sorted(ESTIMATION_PRESETS.items()):
        print(f"{name:<14s} {params.describe()}")
    return 0


def _parse_value(text: str):
    lowered = text.strip().lower()
    if lowered in ("true", "on", "yes"):
        return True
    if lowered in ("false", "off", "no"):
        return False
    return int(lowered)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="lzss-estimator",
        description="Design-space estimation tool for the FPGA LZSS "
        "compressor (IPDPSW 2012 reproduction).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_parser = sub.add_parser("run", help="estimate one configuration")
    _add_common(run_parser)
    run_parser.set_defaults(func=_cmd_run)

    sweep_parser = sub.add_parser("sweep", help="sweep one parameter")
    _add_common(sweep_parser)
    sweep_parser.add_argument("--axis", required=True,
                              choices=sorted(ParameterSweep.SWEEPABLE))
    sweep_parser.add_argument("--values", required=True,
                              help="comma-separated values")
    sweep_parser.set_defaults(func=_cmd_sweep)

    res_parser = sub.add_parser("resources", help="FPGA utilisation only")
    _add_common(res_parser)
    res_parser.set_defaults(func=_cmd_resources)

    diff_parser = sub.add_parser(
        "diff",
        help="itemise the cycle/size/BRAM effect of changing one or "
        "more parameters",
    )
    _add_common(diff_parser)
    diff_parser.add_argument(
        "--set", action="append", default=[], metavar="KEY=VALUE",
        help="override applied to the second configuration "
        "(repeatable), e.g. --set data_bus_bytes=1",
    )
    diff_parser.set_defaults(func=_cmd_diff)

    analyze_parser = sub.add_parser(
        "analyze",
        help="statistical profile of a data sample (entropy, trigram "
        "diversity, match distribution)",
    )
    _add_common(analyze_parser)
    analyze_parser.set_defaults(func=_cmd_analyze)

    compress_parser = sub.add_parser(
        "compress", help="compress a file into a ZLib stream (.lzz)"
    )
    compress_parser.add_argument("input")
    compress_parser.add_argument("-o", "--output")
    compress_parser.add_argument("--preset",
                                 choices=sorted(ESTIMATION_PRESETS))
    compress_parser.add_argument("--window", type=int)
    compress_parser.add_argument("--hash-bits", type=int)
    compress_parser.add_argument("--gen-bits", type=int)
    add_compression_options(compress_parser, route=True)
    _add_block_flags(compress_parser)
    compress_parser.set_defaults(func=_cmd_compress)

    batch_parser = sub.add_parser(
        "batch",
        help="compress many small files in one batched pass "
        "(shared Huffman plans, one vectorised match sweep)",
    )
    batch_parser.add_argument(
        "inputs", nargs="*", metavar="FILE",
        help="payload files (each becomes one independent ZLib stream)",
    )
    batch_parser.add_argument(
        "--manifest", metavar="FILE",
        help="file listing payload paths, one per line (relative paths "
        "resolve against the manifest's directory; # comments allowed)",
    )
    batch_parser.add_argument(
        "--out-dir", metavar="DIR",
        help="write streams here (default: next to each input)",
    )
    batch_parser.add_argument(
        "--suffix", default=".lzz",
        help="output filename suffix (default .lzz)",
    )
    batch_parser.add_argument("--window", type=int,
                              help="dictionary window size in bytes")
    batch_parser.add_argument(
        "--shared-plan", action=argparse.BooleanOptionalAction,
        default=None,
        help="pool per-payload histograms into one shared dynamic "
        "Huffman plan (default on; --no-shared-plan pins every payload "
        "to fixed tables)",
    )
    batch_parser.add_argument(
        "--workers", type=int, default=None,
        help="fan chunks of the batch out across processes "
        "(default: serial single pass)",
    )
    from repro.parallel.batch import DEFAULT_CHUNK_PAYLOADS

    batch_parser.add_argument(
        "--chunk-payloads", type=int, default=DEFAULT_CHUNK_PAYLOADS,
        help="payloads per parallel chunk "
        f"(default {DEFAULT_CHUNK_PAYLOADS}; each chunk builds its own "
        "shared plan)",
    )
    # The batched engine has no block strategy (its plan choices are
    # per payload) and no refine loop (payloads are far below the
    # refine floor), so those flags are opted out.
    add_compression_options(batch_parser, strategy=False, refine=False)
    batch_parser.set_defaults(func=_cmd_batch)

    pcompress_parser = sub.add_parser(
        "pcompress",
        help="compress a file with the sharded parallel engine "
        "(pigz-style, single ZLib stream output)",
    )
    pcompress_parser.add_argument("input")
    pcompress_parser.add_argument("-o", "--output")
    pcompress_parser.add_argument("--workers", type=int, default=None,
                                  help="process count (default: CPUs)")
    pcompress_parser.add_argument("--shard-kb", type=int, default=1024,
                                  help="shard size in KiB")
    pcompress_parser.add_argument(
        "--carry-window", action="store_true",
        help="prime each shard with the preceding window "
        "(better ratio, shards stay parallel)",
    )
    pcompress_parser.add_argument("--stats", action="store_true",
                                  help="print per-shard statistics")
    pcompress_parser.add_argument("--preset",
                                  choices=sorted(ESTIMATION_PRESETS))
    pcompress_parser.add_argument("--window", type=int)
    pcompress_parser.add_argument("--hash-bits", type=int)
    pcompress_parser.add_argument("--gen-bits", type=int)
    add_compression_options(pcompress_parser, route=True, sampling=True)
    _add_block_flags(pcompress_parser)
    pcompress_parser.set_defaults(func=_cmd_pcompress)

    serve_parser = sub.add_parser(
        "serve",
        help="run the asyncio compression service: zlib/gzip offload "
        "over one shared warm worker pool (LZR1 protocol)",
    )
    serve_parser.add_argument("--host", default="127.0.0.1")
    serve_parser.add_argument("--port", type=int, default=9123)
    serve_parser.add_argument("--workers", type=int, default=None,
                              help="pool workers (default: CPUs)")
    serve_parser.add_argument("--shard-kb", type=int, default=256,
                              help="shard size in KiB")
    serve_parser.add_argument(
        "--max-inflight", type=int, default=None,
        help="in-flight shard bound per connection "
        "(default: 2 per worker)",
    )
    serve_parser.add_argument(
        "--carry-window", action=argparse.BooleanOptionalAction,
        default=True,
        help="prime each shard with the preceding window (default on: "
        "a served stream is one document)",
    )
    serve_parser.add_argument(
        "--self-test", action="store_true",
        help="host on an ephemeral port, run the load generator, "
        "verify every response byte-for-byte, exit non-zero on "
        "mismatch (CI smoke)",
    )
    serve_parser.add_argument("--streams", default="1,2,4",
                              help="self-test concurrency sweep "
                              "(comma-separated)")
    serve_parser.add_argument("--payload-kb", type=int, default=128,
                              help="self-test payload per stream (KiB)")
    serve_parser.add_argument("--chunk-kb", type=int, default=32,
                              help="self-test client chunk size (KiB)")
    serve_parser.add_argument("--format", default="zlib",
                              choices=["zlib", "gzip"],
                              help="self-test stream format")
    add_compression_options(serve_parser, route=True)
    serve_parser.set_defaults(func=_cmd_serve)

    decompress_parser = sub.add_parser(
        "decompress", help="decompress a .lzz / ZLib stream file"
    )
    decompress_parser.add_argument("input")
    decompress_parser.add_argument("-o", "--output")
    decompress_parser.add_argument(
        "--transcode", action="store_true",
        help="re-encode through the adaptive splitter instead of "
        "extracting; writes the smaller verified stream",
    )
    decompress_parser.add_argument("--window", type=int, default=4096,
                                   help="transcode window size")
    decompress_parser.add_argument(
        "--max-output", type=int, default=None, metavar="KIB",
        help="abort if the decoded payload exceeds this many KiB "
        "(decompression-bomb guard, enforced mid-stream)",
    )
    _add_zdict_flag(decompress_parser)
    decompress_parser.set_defaults(func=_cmd_decompress)

    recommend_parser = sub.add_parser(
        "recommend",
        help="find the best configuration for your data under "
        "speed/BRAM/ratio constraints (§VI)",
    )
    _add_common(recommend_parser)
    recommend_parser.add_argument("--min-speed", type=float, default=0.0,
                                  help="minimum MB/s")
    recommend_parser.add_argument("--max-bram", type=int, default=None,
                                  help="BRAM36 budget")
    recommend_parser.add_argument("--min-ratio", type=float, default=0.0)
    recommend_parser.add_argument(
        "--objective", default="ratio",
        choices=["ratio", "throughput_mbps", "bram36"],
    )
    recommend_parser.set_defaults(func=_cmd_recommend)

    paper_parser = sub.add_parser(
        "paper",
        help="regenerate every table and figure of the paper's "
        "evaluation in one report",
    )
    _add_common(paper_parser)
    paper_parser.set_defaults(func=_cmd_paper)

    workloads_parser = sub.add_parser(
        "workloads",
        help="run one configuration across the whole workload corpus",
    )
    _add_common(workloads_parser)
    workloads_parser.set_defaults(func=_cmd_workloads)

    compare_parser = sub.add_parser(
        "compare",
        help="compare the FSM design against systolic/CAM matchers",
    )
    _add_common(compare_parser)
    compare_parser.set_defaults(func=_cmd_compare)

    pareto_parser = sub.add_parser(
        "pareto",
        help="sweep the design space and print the Pareto front",
    )
    _add_common(pareto_parser)
    pareto_parser.add_argument("--csv", help="also export all rows as CSV")
    pareto_parser.set_defaults(func=_cmd_pareto)

    verify_parser = sub.add_parser(
        "verify",
        help="soak-verify the datapath against the zlib reference "
        "(the paper's 1 TB validation, scaled)",
    )
    _add_common(verify_parser)
    verify_parser.add_argument("--total-mb", type=int, default=4)
    verify_parser.add_argument("--segment-kb", type=int, default=64)
    verify_parser.set_defaults(func=_cmd_verify)

    presets_parser = sub.add_parser("presets", help="list presets")
    presets_parser.set_defaults(func=_cmd_presets)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
