"""The fixed Deflate Huffman tables (RFC 1951 §3.2.6).

These are the tables the paper's hardware encoder bakes into logic: "As
the table is fixed, no additional clock cycles or memories are required
to build it" (§IV). Literal/length symbols 0..287 use lengths
8/9/7/8 by range; all 30 distance symbols use 5-bit codes.
"""

from __future__ import annotations

from typing import List

from repro.huffman.encoder import HuffmanEncoder


def _fixed_litlen_lengths() -> List[int]:
    lengths = [8] * 144 + [9] * 112 + [7] * 24 + [8] * 8
    assert len(lengths) == 288
    return lengths


FIXED_LITLEN_LENGTHS: List[int] = _fixed_litlen_lengths()

#: 32 entries, not 30: RFC 1951 assigns 5-bit codes to the whole 32-code
#: space; symbols 30-31 "will never actually occur in the compressed
#: data" but participate in the canonical code assignment, making the
#: code complete. The decoder rejects them if they appear.
FIXED_DIST_LENGTHS: List[int] = [5] * 32

_LITLEN_ENCODER: HuffmanEncoder | None = None
_DIST_ENCODER: HuffmanEncoder | None = None


def fixed_litlen_encoder() -> HuffmanEncoder:
    """Shared encoder for the fixed literal/length alphabet."""
    global _LITLEN_ENCODER
    if _LITLEN_ENCODER is None:
        _LITLEN_ENCODER = HuffmanEncoder(FIXED_LITLEN_LENGTHS)
    return _LITLEN_ENCODER


def fixed_dist_encoder() -> HuffmanEncoder:
    """Shared encoder for the fixed distance alphabet."""
    global _DIST_ENCODER
    if _DIST_ENCODER is None:
        _DIST_ENCODER = HuffmanEncoder(FIXED_DIST_LENGTHS)
    return _DIST_ENCODER
