"""The fixed Deflate Huffman tables (RFC 1951 §3.2.6).

These are the tables the paper's hardware encoder bakes into logic: "As
the table is fixed, no additional clock cycles or memories are required
to build it" (§IV). Literal/length symbols 0..287 use lengths
8/9/7/8 by range; all 30 distance symbols use 5-bit codes.
"""

from __future__ import annotations

from typing import List

from repro.huffman.encoder import HuffmanEncoder


def _fixed_litlen_lengths() -> List[int]:
    lengths = [8] * 144 + [9] * 112 + [7] * 24 + [8] * 8
    assert len(lengths) == 288
    return lengths


FIXED_LITLEN_LENGTHS: List[int] = _fixed_litlen_lengths()

#: 32 entries, not 30: RFC 1951 assigns 5-bit codes to the whole 32-code
#: space; symbols 30-31 "will never actually occur in the compressed
#: data" but participate in the canonical code assignment, making the
#: code complete. The decoder rejects them if they appear.
FIXED_DIST_LENGTHS: List[int] = [5] * 32

# Eager module-level construction: the encoders are immutable after
# __init__, and building them here (instead of lazily on first call)
# means the shared instances are published by the import machinery —
# no check-then-assign race when ParallelDeflateWriter threads hit the
# first fixed block concurrently.
_LITLEN_ENCODER: HuffmanEncoder = HuffmanEncoder(FIXED_LITLEN_LENGTHS)
_DIST_ENCODER: HuffmanEncoder = HuffmanEncoder(FIXED_DIST_LENGTHS)


def fixed_litlen_encoder() -> HuffmanEncoder:
    """Shared encoder for the fixed literal/length alphabet."""
    return _LITLEN_ENCODER


def fixed_dist_encoder() -> HuffmanEncoder:
    """Shared encoder for the fixed distance alphabet."""
    return _DIST_ENCODER
