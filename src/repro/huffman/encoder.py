"""Huffman symbol encoder.

Wraps a code-length table into per-symbol ``(code, nbits)`` pairs and
writes them through a :class:`~repro.bitio.BitWriter`. The encoder also
reports the *cost* of a symbol in bits without writing it, which the
estimator uses to price alternative table choices.
"""

from __future__ import annotations

from typing import Sequence

from repro.bitio.writer import BitWriter, reverse_bits
from repro.errors import HuffmanError
from repro.huffman.canonical import canonical_codes


class HuffmanEncoder:
    """Encodes symbols of one alphabet with a canonical Huffman code."""

    def __init__(self, lengths: Sequence[int]) -> None:
        self.lengths = list(lengths)
        self.codes = canonical_codes(self.lengths)
        # Deflate emits Huffman codes MSB-first into an LSB-first
        # stream; reversing each code once here keeps the per-symbol
        # write a plain LSB-first append.
        self.reversed_codes = [
            reverse_bits(code, nbits) if nbits else 0
            for code, nbits in zip(self.codes, self.lengths)
        ]

    @property
    def alphabet_size(self) -> int:
        """Number of symbols in the alphabet (used or not)."""
        return len(self.lengths)

    def encode(self, writer: BitWriter, symbol: int) -> None:
        """Write ``symbol``'s code to ``writer``."""
        nbits = self._length_of(symbol)
        writer.write_bits(self.reversed_codes[symbol], nbits)

    def cost_bits(self, symbol: int) -> int:
        """Number of bits ``symbol`` would occupy."""
        return self._length_of(symbol)

    def _length_of(self, symbol: int) -> int:
        try:
            nbits = self.lengths[symbol]
        except IndexError:
            raise HuffmanError(
                f"symbol {symbol} outside alphabet of "
                f"{len(self.lengths)} symbols"
            ) from None
        if nbits == 0:
            raise HuffmanError(f"symbol {symbol} has no code assigned")
        return nbits
