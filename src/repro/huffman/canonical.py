"""Canonical Huffman code construction.

Two independent pieces:

* :func:`canonical_codes` — RFC 1951 §3.2.2's algorithm: given code
  *lengths*, assign the unique canonical *codes* (shorter codes first,
  ties in symbol order).
* :func:`build_code_lengths` — given symbol *frequencies* and a maximum
  code length, compute optimal lengths with the **package-merge**
  algorithm (Larmore & Hirschberg), which produces an optimal
  length-limited prefix code. ZLib uses Huffman-tree-plus-rebalancing;
  package-merge is strictly optimal and simpler to verify, and its output
  always satisfies the Kraft equality used by the validator.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Dict, List, Sequence

from repro.errors import HuffmanError


def canonical_codes(lengths: Sequence[int]) -> List[int]:
    """Assign canonical codes to symbols given their code lengths.

    ``lengths[s]`` is the code length of symbol ``s`` (0 = symbol unused).
    Returns ``codes`` with ``codes[s]`` holding the code value in its
    natural MSB-first reading; unused symbols get code 0.
    """
    if not lengths:
        return []
    max_len = max(lengths)
    if max_len == 0:
        return [0] * len(lengths)
    bl_count = [0] * (max_len + 1)
    for length in lengths:
        if length < 0:
            raise HuffmanError(f"negative code length: {length}")
        bl_count[length] += 1
    bl_count[0] = 0
    next_code = [0] * (max_len + 1)
    code = 0
    for bits in range(1, max_len + 1):
        code = (code + bl_count[bits - 1]) << 1
        next_code[bits] = code
    codes = [0] * len(lengths)
    for symbol, length in enumerate(lengths):
        if length:
            codes[symbol] = next_code[length]
            if next_code[length] >> length:
                raise HuffmanError(
                    f"over-subscribed code lengths at symbol {symbol}"
                )
            next_code[length] += 1
    return codes


def validate_code_lengths(
    lengths: Sequence[int], max_bits: int, allow_incomplete: bool = False
) -> None:
    """Check Kraft's inequality and the length bound.

    A *complete* code satisfies ``sum(2**-l) == 1`` over used symbols.
    Decoders for Deflate must reject over-subscribed sets. Incomplete
    sets are legal in exactly one shape — a single code of one bit —
    and only where the caller opts in via ``allow_incomplete`` (zlib's
    ``inftrees.c`` rule: ``left > 0 && (type == CODES || max != 1)``
    rejects; the code-length code itself never tolerates a hole, the
    litlen/dist tables tolerate only the one-code-of-one-bit case).
    Any other incomplete set leaves undecodable bit patterns, which a
    strict inflater must treat as a broken stream.
    """
    kraft = 0
    used = 0
    max_used = 0
    for symbol, length in enumerate(lengths):
        if length == 0:
            continue
        if not 1 <= length <= max_bits:
            raise HuffmanError(
                f"symbol {symbol}: code length {length} outside [1, {max_bits}]"
            )
        kraft += 1 << (max_bits - length)
        used += 1
        if length > max_used:
            max_used = length
    full = 1 << max_bits
    if kraft > full:
        raise HuffmanError("over-subscribed code length set")
    if kraft < full and used and not (allow_incomplete and used == 1
                                      and max_used == 1):
        raise HuffmanError("incomplete code length set")


def build_code_lengths(
    freqs: Sequence[int], max_bits: int
) -> List[int]:
    """Optimal length-limited code lengths via package-merge.

    ``freqs[s]`` is the occurrence count of symbol ``s``. Returns a list
    of code lengths (0 for zero-frequency symbols). Requires
    ``2**max_bits >= number of used symbols``.
    """
    symbols = [s for s, f in enumerate(freqs) if f > 0]
    n = len(symbols)
    if n == 0:
        return [0] * len(freqs)
    if n == 1:
        # Deflate requires at least a 1-bit code even for a single symbol.
        lengths = [0] * len(freqs)
        lengths[symbols[0]] = 1
        return lengths
    if n > (1 << max_bits):
        raise HuffmanError(
            f"{n} symbols cannot be coded within {max_bits} bits"
        )

    # Package-merge, two-pass leaf-counting form. A leaf chosen in k
    # merge levels ends up with code length k; rather than carrying a
    # per-package {symbol: count} dict through every merge (quadratic
    # dict churn — this is the adaptive splitter's pricing hot path),
    # the forward pass keeps only package *weights* plus, per level, a
    # prefix count of how many of the cheapest items are leaves. The
    # backward pass then recovers exactly which leaves each level
    # selected: packages are pairwise sums of a sorted list, so the P
    # selected packages of a level are its first P, built from the
    # first 2P items of the level below — and the selected leaves are
    # always a prefix of the frequency-sorted leaf list.
    leaves = sorted((freqs[s], s) for s in symbols)

    # Forward: per level, merge the sorted leaves with the (sorted)
    # package weights and form the next level's pairwise packages.
    # Items are ``weight << 1 | is_package``: the C-level sort on these
    # ints reproduces the stable leaves-before-packages tie order of
    # the reference formulation (equal weights sort leaf first), and
    # the low bit lets the backward pass count leaves without a
    # per-item Python structure. Pairwise sums of tagged weights stay
    # correctly ordered because the sum's low bits never influence a
    # comparison the true weights would not also decide — packages are
    # re-tagged explicitly each level.
    leaf_tagged = [w << 1 for w, _ in leaves]
    levels: List[List[int]] = []
    packages: List[int] = []
    for _ in range(max_bits):
        merged = leaf_tagged + packages
        merged.sort()
        levels.append(merged)
        packages = [
            (((merged[i] >> 1) + (merged[i + 1] >> 1)) << 1) | 1
            for i in range(0, len(merged) - 1, 2)
        ]

    # Backward: the final selection is the n-1 cheapest top-level
    # packages, i.e. the first 2n-2 items of the top merged list. At
    # each level the selected leaves — always a prefix of the
    # frequency-sorted leaf list — gain one bit; the selected packages
    # (always that level's first packages) expand into twice as many
    # items of the level below.
    taken_per_level = []
    take = 2 * (n - 1)
    for merged in reversed(levels):
        take = min(take, len(merged))
        if take == 0:
            taken_per_level.append(0)
            continue
        # Count leaves among the first ``take`` items by parity of the
        # boundary item: leaf tags are even, package tags odd, so equal
        # tagged values are always the same kind and two bisects settle
        # the boundary ties exactly.
        boundary = merged[take - 1]
        if boundary & 1:
            taken_leaves = bisect_right(leaf_tagged, boundary)
        else:
            taken_leaves = bisect_left(leaf_tagged, boundary) + (
                take - bisect_left(merged, boundary)
            )
        taken_per_level.append(taken_leaves)
        take = 2 * (take - taken_leaves)

    # A leaf selected at k levels has code length k; selections are
    # always prefixes of the sorted leaf list, so one bucket/suffix-sum
    # pass recovers every length.
    bucket = [0] * (n + 1)
    for taken_leaves in taken_per_level:
        bucket[taken_leaves] += 1
    lengths = [0] * len(freqs)
    remaining = 0
    for index in range(n, 0, -1):
        remaining += bucket[index]
        lengths[leaves[index - 1][1]] = remaining
    for length in (lengths[s] for s in symbols):
        if not 1 <= length <= max_bits:
            raise HuffmanError("package-merge produced invalid lengths")
    # allow_incomplete: the n == 1 branch above legitimately emits a
    # single 1-bit code, the only incomplete shape Deflate permits.
    validate_code_lengths(lengths, max_bits, allow_incomplete=True)
    return lengths


def code_table(lengths: Sequence[int]) -> Dict[int, tuple]:
    """Convenience: symbol -> (code, length) for all used symbols."""
    codes = canonical_codes(lengths)
    return {
        s: (codes[s], lengths[s]) for s in range(len(lengths)) if lengths[s]
    }
