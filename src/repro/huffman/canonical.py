"""Canonical Huffman code construction.

Two independent pieces:

* :func:`canonical_codes` — RFC 1951 §3.2.2's algorithm: given code
  *lengths*, assign the unique canonical *codes* (shorter codes first,
  ties in symbol order).
* :func:`build_code_lengths` — given symbol *frequencies* and a maximum
  code length, compute optimal lengths with the **package-merge**
  algorithm (Larmore & Hirschberg), which produces an optimal
  length-limited prefix code. ZLib uses Huffman-tree-plus-rebalancing;
  package-merge is strictly optimal and simpler to verify, and its output
  always satisfies the Kraft equality used by the validator.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.errors import HuffmanError


def canonical_codes(lengths: Sequence[int]) -> List[int]:
    """Assign canonical codes to symbols given their code lengths.

    ``lengths[s]`` is the code length of symbol ``s`` (0 = symbol unused).
    Returns ``codes`` with ``codes[s]`` holding the code value in its
    natural MSB-first reading; unused symbols get code 0.
    """
    if not lengths:
        return []
    max_len = max(lengths)
    if max_len == 0:
        return [0] * len(lengths)
    bl_count = [0] * (max_len + 1)
    for length in lengths:
        if length < 0:
            raise HuffmanError(f"negative code length: {length}")
        bl_count[length] += 1
    bl_count[0] = 0
    next_code = [0] * (max_len + 1)
    code = 0
    for bits in range(1, max_len + 1):
        code = (code + bl_count[bits - 1]) << 1
        next_code[bits] = code
    codes = [0] * len(lengths)
    for symbol, length in enumerate(lengths):
        if length:
            codes[symbol] = next_code[length]
            if next_code[length] >> length:
                raise HuffmanError(
                    f"over-subscribed code lengths at symbol {symbol}"
                )
            next_code[length] += 1
    return codes


def validate_code_lengths(
    lengths: Sequence[int], max_bits: int, allow_incomplete: bool = False
) -> None:
    """Check Kraft's inequality and the length bound.

    A *complete* code satisfies ``sum(2**-l) == 1`` over used symbols.
    Decoders for Deflate must reject over-subscribed sets; incomplete
    sets are legal only in the special single-distance-code case, which
    callers opt into via ``allow_incomplete``.
    """
    kraft = 0
    used = 0
    for symbol, length in enumerate(lengths):
        if length == 0:
            continue
        if not 1 <= length <= max_bits:
            raise HuffmanError(
                f"symbol {symbol}: code length {length} outside [1, {max_bits}]"
            )
        kraft += 1 << (max_bits - length)
        used += 1
    full = 1 << max_bits
    if kraft > full:
        raise HuffmanError("over-subscribed code length set")
    if kraft < full and used > 1 and not allow_incomplete:
        raise HuffmanError("incomplete code length set")


def build_code_lengths(
    freqs: Sequence[int], max_bits: int
) -> List[int]:
    """Optimal length-limited code lengths via package-merge.

    ``freqs[s]`` is the occurrence count of symbol ``s``. Returns a list
    of code lengths (0 for zero-frequency symbols). Requires
    ``2**max_bits >= number of used symbols``.
    """
    symbols = [s for s, f in enumerate(freqs) if f > 0]
    n = len(symbols)
    if n == 0:
        return [0] * len(freqs)
    if n == 1:
        # Deflate requires at least a 1-bit code even for a single symbol.
        lengths = [0] * len(freqs)
        lengths[symbols[0]] = 1
        return lengths
    if n > (1 << max_bits):
        raise HuffmanError(
            f"{n} symbols cannot be coded within {max_bits} bits"
        )

    # Package-merge. Items are (weight, {symbol: count}) where the dict
    # tracks how many times each original leaf participates; a leaf chosen
    # in k merge levels ends up with code length k.
    leaves = sorted((freqs[s], s) for s in symbols)

    def leaf_items() -> List[tuple]:
        return [(w, {s: 1}) for w, s in leaves]

    packages: List[tuple] = []
    for _ in range(max_bits):
        merged = leaf_items() + packages
        merged.sort(key=lambda item: item[0])
        packages = []
        for i in range(0, len(merged) - 1, 2):
            w1, c1 = merged[i]
            w2, c2 = merged[i + 1]
            counts = dict(c1)
            for s, k in c2.items():
                counts[s] = counts.get(s, 0) + k
            packages.append((w1 + w2, counts))

    # Take the 2n-2 cheapest items from the final merge level.
    lengths = [0] * len(freqs)
    for _, counts in packages[: n - 1]:
        for s, k in counts.items():
            lengths[s] += k
    for length in (lengths[s] for s in symbols):
        if not 1 <= length <= max_bits:
            raise HuffmanError("package-merge produced invalid lengths")
    validate_code_lengths(lengths, max_bits)
    return lengths


def code_table(lengths: Sequence[int]) -> Dict[int, tuple]:
    """Convenience: symbol -> (code, length) for all used symbols."""
    codes = canonical_codes(lengths)
    return {
        s: (codes[s], lengths[s]) for s in range(len(lengths)) if lengths[s]
    }
