"""Huffman coding substrate.

Provides everything the Deflate layer needs:

* canonical code assignment from code lengths (:func:`canonical_codes`),
* optimal length-limited code construction from symbol frequencies
  (:func:`build_code_lengths`, package-merge),
* the *fixed* Deflate tables from RFC 1951 §3.2.6 (:mod:`repro.huffman.fixed`),
* a bit-level encoder (:class:`HuffmanEncoder`) and a table-driven
  decoder (:class:`HuffmanDecoder`).

The paper's hardware uses only the fixed tables ("no additional clock
cycles or memories are required to build it"); the dynamic-table path is
the extension the paper declined, implemented here so the estimator can
quantify the fixed-table penalty.
"""

from repro.huffman.canonical import (
    build_code_lengths,
    canonical_codes,
    validate_code_lengths,
)
from repro.huffman.encoder import HuffmanEncoder
from repro.huffman.decoder import HuffmanDecoder
from repro.huffman.fixed import (
    FIXED_DIST_LENGTHS,
    FIXED_LITLEN_LENGTHS,
    fixed_dist_encoder,
    fixed_litlen_encoder,
)
from repro.huffman.histogram import SymbolHistogram

__all__ = [
    "build_code_lengths",
    "canonical_codes",
    "validate_code_lengths",
    "HuffmanEncoder",
    "HuffmanDecoder",
    "FIXED_DIST_LENGTHS",
    "FIXED_LITLEN_LENGTHS",
    "fixed_dist_encoder",
    "fixed_litlen_encoder",
    "SymbolHistogram",
]
