"""Symbol frequency collection for dynamic Huffman table construction."""

from __future__ import annotations

from typing import List, Sequence


class SymbolHistogram:
    """Counts symbol occurrences over a fixed alphabet."""

    def __init__(self, alphabet_size: int) -> None:
        self.counts: List[int] = [0] * alphabet_size

    def add(self, symbol: int, count: int = 1) -> None:
        """Record ``count`` occurrences of ``symbol``."""
        self.counts[symbol] += count

    def add_all(self, symbols: Sequence[int]) -> None:
        """Record one occurrence of each symbol in ``symbols``."""
        for symbol in symbols:
            self.counts[symbol] += 1

    def copy(self) -> "SymbolHistogram":
        """An independent histogram with the same counts."""
        out = SymbolHistogram(len(self.counts))
        out.counts[:] = self.counts
        return out

    def merge(self, other: "SymbolHistogram") -> None:
        """Add ``other``'s counts in place (same alphabet size required).

        Merging two block histograms yields exactly the histogram of the
        concatenated blocks, which is what lets the adaptive splitter's
        cut-point search price "merge these candidates" without
        revisiting any token.
        """
        if len(other.counts) != len(self.counts):
            raise ValueError(
                f"alphabet mismatch: {len(self.counts)} vs "
                f"{len(other.counts)}"
            )
        counts = self.counts
        for symbol, count in enumerate(other.counts):
            if count:
                counts[symbol] += count

    def subtract(self, other: "SymbolHistogram") -> None:
        """Remove ``other``'s counts in place (inverse of :meth:`merge`).

        Raises ``ValueError`` if ``other`` was never merged in (a count
        would go negative) — subtracting an unrelated histogram is a bug.
        """
        if len(other.counts) != len(self.counts):
            raise ValueError(
                f"alphabet mismatch: {len(self.counts)} vs "
                f"{len(other.counts)}"
            )
        counts = self.counts
        for symbol, count in enumerate(other.counts):
            if count:
                if counts[symbol] < count:
                    raise ValueError(
                        f"subtract would drive symbol {symbol} negative "
                        f"({counts[symbol]} - {count})"
                    )
                counts[symbol] -= count

    @property
    def total(self) -> int:
        """Total number of recorded occurrences."""
        return sum(self.counts)

    def used_symbols(self) -> List[int]:
        """Symbols with a non-zero count, ascending."""
        return [s for s, c in enumerate(self.counts) if c]

    def entropy_bits(self) -> float:
        """Shannon entropy of the empirical distribution, in bits/symbol.

        Used by the estimator to report how close the fixed table comes
        to the per-block optimum.
        """
        import math

        total = self.total
        if total == 0:
            return 0.0
        acc = 0.0
        for count in self.counts:
            if count:
                p = count / total
                acc -= p * math.log2(p)
        return acc
