"""Table-driven Huffman decoder.

Builds a single flat lookup table indexed by ``max_len`` peeked bits
(bit-reversed, because Deflate streams codes MSB-first inside an
LSB-first bit stream). Each entry stores ``(symbol, code_length)``; the
decoder peeks, looks up, then skips exactly ``code_length`` bits. This is
the one-level variant of zlib's inflate tables — simpler, and fast enough
in Python because table construction is amortised per block.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.bitio.reader import BitReader
from repro.bitio.writer import reverse_bits
from repro.errors import HuffmanError
from repro.huffman.canonical import canonical_codes, validate_code_lengths


class HuffmanDecoder:
    """Decodes one alphabet described by canonical code lengths."""

    def __init__(
        self,
        lengths: Sequence[int],
        max_bits: int = 15,
        allow_incomplete: bool = False,
    ) -> None:
        validate_code_lengths(lengths, max_bits, allow_incomplete)
        self.lengths = list(lengths)
        used = [length for length in self.lengths if length]
        if not used:
            raise HuffmanError("no symbols in code")
        self.max_len = max(used)
        codes = canonical_codes(self.lengths)
        size = 1 << self.max_len
        table: List[Tuple[int, int]] = [(-1, 0)] * size
        for symbol, length in enumerate(self.lengths):
            if not length:
                continue
            # The code occupies the low `length` bits once reversed; all
            # possible suffixes in the remaining peeked bits map to it.
            prefix = reverse_bits(codes[symbol], length)
            step = 1 << length
            for index in range(prefix, size, step):
                table[index] = (symbol, length)
        self._table = table
        self._mask = size - 1

    def decode(self, reader: BitReader) -> int:
        """Read one symbol from ``reader``."""
        window = reader.peek_bits(self.max_len)
        symbol, length = self._table[window & self._mask]
        if symbol < 0:
            raise HuffmanError(
                f"undecodable bit pattern {window:0{self.max_len}b}"
            )
        reader.skip_bits(length)
        return symbol
