"""Table-driven Huffman decoder with multi-symbol lookup tables.

The decoder builds zlib-style *two-level* tables: a root table indexed
by ``fast_bits`` peeked bits (bit-reversed, because Deflate streams
codes MSB-first inside an LSB-first bit stream) plus per-prefix
subtables for the rare codes longer than the root window. Every entry
is one *pre-unpacked* 5-tuple — a hardware inflate would pack these
fields into a table word, but in CPython a single ``UNPACK_SEQUENCE``
is several bytecodes cheaper than the shift-and-mask field extraction
the packed form needs per token, and bytecode dispatch is the
bottleneck here:

=========  ======================================================
field      meaning
=========  ======================================================
``kind``   entry kind (see the ``_K*`` constants below)
``nbits``  total bits the entry consumes (code + fused extras)
``first``  bits of the first code alone (``_K_BASE_EXTRA``: the
           extra-bits field starts this many bits into the window)
``a``      main payload: the literal-run ``bytes``, the fused
           final value, the base value, the subtable start index
           or the raw symbol, by kind
``b``      secondary payload: the extra-bits mask
           (``_K_BASE_EXTRA``), the subtable index mask
           (``_K_SUBTABLE``) or the run length (``_K_LITERALS``)
=========  ======================================================

Root entries go beyond one-symbol lookup in two ways, both borrowed
from modern inflate implementations and pushed a little further because
Python bytecode dispatch (not memory latency) is the bottleneck here:

* **literal runs** (``_K_LITERALS``): when a literal's code is shorter
  than the root window and another literal code fits in the remaining
  bits, the entry resolves *both* (up to three) — ``a`` holds the
  prebuilt ``bytes`` run, so the hot loop appends it with one
  ``out += a``;
* **fused length records** (``_K_LENGTH``): when a length (or
  distance) code's extra bits also fit in the window, the entry bakes
  ``base + extra`` into a final value — the loop never re-reads extra
  bits for the common short matches. Codes with *no* extra bits emit
  this kind directly.

Symbols whose extra bits spill past the window fall back to a
``(base, extra_count)`` record (``_K_BASE_EXTRA``), and codes longer
than ``fast_bits`` chain through a subtable link (``_K_SUBTABLE``)
whose entries consume the *full* code length in one skip.

The ``role`` parameter selects the payload dialect: ``"litlen"`` and
``"dist"`` build the fused record kinds above for the inflate loop;
the default ``"generic"`` builds plain symbol entries (``_K_SYMBOL``)
and keeps :meth:`decode` exact for any alphabet (the code-length
alphabet of dynamic headers, and the unit-test surface).
"""

from __future__ import annotations

from typing import List, Sequence

from repro.bitio.reader import BitReader
from repro.deflate.constants import (
    DISTANCE_TABLE,
    END_OF_BLOCK,
    LENGTH_TABLE,
)
from repro.bitio.writer import reverse_bits
from repro.errors import HuffmanError
from repro.huffman.canonical import canonical_codes, validate_code_lengths

#: Default root window. 10 bits covers every code of the fixed tables
#: and the overwhelming majority of dynamic ones, and keeps the
#: per-block build at ~2 x 1024 cheap loop iterations.
DEFAULT_FAST_BITS = 10

#: Root window for the litlen table of the inflate hot loop. Text-like
#: dynamic codes give most literals 5-7 bit codes, so a 12-bit window
#: resolves frequent literal *pairs* per lookup; the 4x bigger build
#: (one pass over 4096 entries) amortises over any non-trivial block.
LITLEN_FAST_BITS = 12

# Entry kinds.
_K_LITERALS = 0    # a: run bytes, b: run length
_K_LENGTH = 1      # a: final match length (extra bits fused in)
_K_EOB = 2         # end-of-block
_K_BASE_EXTRA = 3  # a: value base, b: extra-bits mask; nbits covers
                   # code + extra, first the code alone, so the loop
                   # reads the extras straight from its buffer and
                   # consumes everything with one shift
_K_SUBTABLE = 4    # a: absolute subtable start, b: index mask
_K_INVALID = 5     # hole of an incomplete code / reserved symbol
_K_SYMBOL = 6      # a: raw symbol (generic role)

#: The shared hole entry: unpacks like any other so the hot loop never
#: special-cases it before dispatch.
_INVALID = (_K_INVALID, 0, 0, 0, 0)


class HuffmanDecoder:
    """Decodes one alphabet described by canonical code lengths."""

    def __init__(
        self,
        lengths: Sequence[int],
        max_bits: int = 15,
        allow_incomplete: bool = False,
        role: str = "generic",
        fast_bits: int = DEFAULT_FAST_BITS,
    ) -> None:
        if role not in ("generic", "litlen", "dist"):
            raise HuffmanError(f"unknown decoder role: {role!r}")
        validate_code_lengths(lengths, max_bits, allow_incomplete)
        self.lengths = list(lengths)
        self.role = role
        used = [length for length in self.lengths if length]
        if not used:
            raise HuffmanError("no symbols in code")
        self.max_len = max(used)
        # The role tables keep the full window even when every code is
        # short: fusion reads window bits *beyond* the first code, so
        # clamping to ``max_len`` would forbid exactly the multi-symbol
        # entries skewed alphabets profit from most.
        if role == "generic":
            fast_bits = min(fast_bits, self.max_len)
        self.fast_bits = fast_bits
        self.fast_mask = (1 << self.fast_bits) - 1
        self._codes = canonical_codes(self.lengths)
        self._build_table()

    # ------------------------------------------------------------------
    # table construction
    # ------------------------------------------------------------------

    def _leaf_entry(self, symbol: int, length: int) -> tuple:
        """The single-symbol entry for ``symbol``; fusion and subtable
        chaining are layered on top by the build passes."""
        role = self.role
        if role == "litlen":
            if symbol < 256:
                return (_K_LITERALS, length, length, bytes((symbol,)), 1)
            if symbol == END_OF_BLOCK:
                return (_K_EOB, length, length, 0, 0)
            if symbol > 285:
                return _INVALID
            base, extra = LENGTH_TABLE[symbol - 257]
            if not extra:
                return (_K_LENGTH, length, length, base, 0)
            return (_K_BASE_EXTRA, length + extra, length, base,
                    (1 << extra) - 1)
        if role == "dist":
            if symbol > 29:
                return _INVALID
            base, extra = DISTANCE_TABLE[symbol]
            if not extra:
                return (_K_LENGTH, length, length, base, 0)
            return (_K_BASE_EXTRA, length + extra, length, base,
                    (1 << extra) - 1)
        return (_K_SYMBOL, length, length, symbol, 0)

    def _build_table(self) -> None:
        fast_bits = self.fast_bits
        size = 1 << fast_bits
        table: List[tuple] = [_INVALID] * size

        # Pass 1 — codes that fit the root window: replicate each leaf
        # entry across every possible suffix of the peeked bits.
        long_codes = []
        for symbol, length in enumerate(self.lengths):
            if not length:
                continue
            if length > fast_bits:
                long_codes.append((symbol, length))
                continue
            entry = self._leaf_entry(symbol, length)
            prefix = reverse_bits(self._codes[symbol], length)
            for index in range(prefix, size, 1 << length):
                table[index] = entry

        # Pass 2 — fuse extra bits into length/distance records where
        # they fit: the entry resolves a *final* value in one lookup.
        if self.role == "litlen":
            self._fuse_extras(table, range(257, 286), LENGTH_TABLE, 257)
        elif self.role == "dist":
            self._fuse_extras(table, range(30), DISTANCE_TABLE, 0)

        # Pass 3 — multi-symbol literal runs: if the window still has
        # room after one literal, resolve the next literal(s) too.
        if self.role == "litlen":
            self._fuse_literal_runs(table)

        # Pass 4 — subtables for codes longer than the root window,
        # grouped by their shared low `fast_bits` bits (zlib's layout).
        if long_codes:
            self._build_subtables(table, long_codes)

        self._table = table

    def _fuse_extras(self, table, symbols, value_table, first) -> None:
        fast_bits = self.fast_bits
        size = 1 << fast_bits
        lengths = self.lengths
        nsyms = len(lengths)
        for symbol in symbols:
            if symbol >= nsyms:
                break
            length = lengths[symbol]
            if not length or length > fast_bits:
                continue
            base, extra = value_table[symbol - first]
            if not extra or length + extra > fast_bits:
                continue
            prefix = reverse_bits(self._codes[symbol], length)
            step = 1 << (length + extra)
            for extra_value in range(1 << extra):
                entry = (_K_LENGTH, length + extra, length,
                         base + extra_value, 0)
                start = prefix | (extra_value << length)
                for index in range(start, size, step):
                    table[index] = entry

    def _fuse_literal_runs(self, table: List[int]) -> None:
        # A window whose first code is a short literal may fully
        # determine the next code as well: the second code's bits are
        # all inside the window, so the lookup is exact regardless of
        # the (unknown) bits beyond it. `base` keeps the unfused view so
        # chained lookups read single-literal entries, not fused ones.
        fast_bits = self.fast_bits
        base = list(table)
        for window in range(1 << fast_bits):
            entry = base[window]
            if entry[0] != _K_LITERALS:
                continue
            used = entry[1]
            count = 1
            run = entry[3]
            while count < 3:
                nxt = base[window >> used]
                if nxt[0] != _K_LITERALS:
                    break
                nbits = nxt[1]
                if used + nbits > fast_bits:
                    break
                run = run + nxt[3]
                used += nbits
                count += 1
            if count > 1:
                table[window] = (_K_LITERALS, used, entry[1], run, count)

    def _build_subtables(self, table, long_codes) -> None:
        fast_bits = self.fast_bits
        fast_mask = self.fast_mask
        groups = {}
        for symbol, length in long_codes:
            prefix = reverse_bits(self._codes[symbol], length)
            groups.setdefault(prefix & fast_mask, []).append(
                (symbol, length, prefix)
            )
        for root_index, members in groups.items():
            sub_bits = max(length for _, length, _ in members) - fast_bits
            start = len(table)
            table.extend([_INVALID] * (1 << sub_bits))
            if table[root_index] is not _INVALID:
                # canonical codes cannot share a prefix with a shorter
                # code; a populated root slot here means the validator
                # let an over-subscribed set through.
                raise HuffmanError("subtable collides with a short code")
            table[root_index] = (_K_SUBTABLE, sub_bits, 0, start,
                                 (1 << sub_bits) - 1)
            for symbol, length, prefix in members:
                # Leaf entries already consume the *full* code length
                # (plus fused extras) in one skip, so they drop in
                # unchanged.
                entry = self._leaf_entry(symbol, length)
                if entry[0] == _K_INVALID:
                    continue
                high = prefix >> fast_bits
                for index in range(high, 1 << sub_bits,
                                   1 << (length - fast_bits)):
                    table[start + index] = entry

    # ------------------------------------------------------------------
    # symbol-at-a-time API (generic role, dynamic-header parsing, tests)
    # ------------------------------------------------------------------

    def decode(self, reader: BitReader) -> int:
        """Read one symbol from ``reader``."""
        window = reader.peek_bits(self.max_len)
        entry = self._table[window & self.fast_mask]
        if entry[0] == _K_SUBTABLE:
            sub = (window >> self.fast_bits) & entry[4]
            entry = self._table[entry[3] + sub]
        kind, _, first_bits, payload, _ = entry
        if kind == _K_INVALID:
            raise HuffmanError(
                f"undecodable bit pattern {window:0{self.max_len}b}"
            )
        if kind == _K_SYMBOL:
            reader.skip_bits(first_bits)
            return payload
        if kind == _K_LITERALS:
            # Multi-symbol entries resolve a run; symbol-at-a-time
            # callers take just the first literal and its own bits.
            reader.skip_bits(first_bits)
            return payload[0]
        if kind == _K_EOB:
            reader.skip_bits(first_bits)
            return END_OF_BLOCK
        # Length/distance records know their value, not their symbol;
        # recover it from the canonical code directly.
        return self._decode_slow(reader)

    def _decode_slow(self, reader: BitReader) -> int:
        """Bit-at-a-time canonical walk (role-specific record kinds)."""
        code = 0
        length = 0
        codes = self._codes
        for _ in range(self.max_len):
            code = (code << 1) | reader.read_bits(1)
            length += 1
            for symbol, sym_len in enumerate(self.lengths):
                if sym_len == length and codes[symbol] == code:
                    return symbol
        raise HuffmanError(f"undecodable bit pattern {code:b}")
