"""Bulk soak verification harness.

"We have verified the quality of our design by compressing more than
1 TB of data on the FPGA and comparing the results to software reference
model." (§VI)

This module is the laptop-scale equivalent: stream many deterministic
workload segments through the complete datapath and verify each one

* against our own inflate,
* against CPython's zlib (the independent reference model),
* and across the two cycle engines (analytic vs FSM simulation) on a
  sampled subset.

The harness is resumable and reports aggregate statistics; the CLI
exposes it as ``lzss-estimator verify``.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.deflate.zlib_container import decompress
from repro.errors import ReproError
from repro.hw.compressor import HardwareCompressor
from repro.hw.fsm_sim import FSMSimulator
from repro.hw.params import HardwareParams
from repro.workloads import synthetic
from repro.workloads.wiki import wiki_text
from repro.workloads.x2e import x2e_can_log


class VerificationFailure(ReproError):
    """A soak segment failed one of the cross-checks."""


#: Segment generators: name -> fn(size, seed) -> bytes.
SEGMENT_SOURCES: Dict[str, Callable[[int, int], bytes]] = {
    "wiki": wiki_text,
    "x2e": x2e_can_log,
    "random": lambda n, s: synthetic.incompressible(n, seed=s),
    "mixed": lambda n, s: synthetic.mixed(n, seed=s),
    "almost-const": lambda n, s: synthetic.almost_constant(n, seed=s),
    "syslog": lambda n, s: _logs().syslog_text(n, seed=s),
    "telemetry": lambda n, s: _logs().json_telemetry(n, seed=s),
}


def _logs():
    from repro.workloads import logs

    return logs


@dataclass
class SoakReport:
    """Aggregate outcome of a verification run."""

    segments: int = 0
    bytes_in: int = 0
    bytes_out: int = 0
    sim_cross_checks: int = 0
    per_source: Dict[str, int] = field(default_factory=dict)

    @property
    def overall_ratio(self) -> float:
        if self.bytes_out == 0:
            return 0.0
        return self.bytes_in / self.bytes_out

    def format(self) -> str:
        lines = [
            f"segments verified : {self.segments}",
            f"bytes compressed  : {self.bytes_in}",
            f"bytes produced    : {self.bytes_out} "
            f"(overall ratio {self.overall_ratio:.3f})",
            f"FSM cross-checks  : {self.sim_cross_checks}",
        ]
        for name, count in sorted(self.per_source.items()):
            lines.append(f"  {name:<14s}: {count} segments")
        return "\n".join(lines)


def run_soak(
    total_bytes: int,
    segment_bytes: int = 64 * 1024,
    params: Optional[HardwareParams] = None,
    sim_check_every: int = 8,
    seed: int = 1,
) -> SoakReport:
    """Verify ``total_bytes`` of generated data through the datapath.

    Every segment is compressed and checked against both inflaters.
    Every ``sim_check_every``-th segment additionally runs the per-cycle
    FSM simulator and requires token-for-token agreement.
    """
    params = params or HardwareParams()
    compressor = HardwareCompressor(params)
    simulator = FSMSimulator(params)
    report = SoakReport()
    sources: List[str] = sorted(SEGMENT_SOURCES)
    index = 0
    while report.bytes_in < total_bytes:
        source = sources[index % len(sources)]
        data = SEGMENT_SOURCES[source](segment_bytes, seed + index)
        result = compressor.run(data, keep_output=True)

        if decompress(result.output) != data:
            raise VerificationFailure(
                f"own inflate mismatch on {source} segment {index}"
            )
        if zlib.decompress(result.output) != data:
            raise VerificationFailure(
                f"zlib reference mismatch on {source} segment {index}"
            )
        if index % sim_check_every == 0:
            sim_tokens, _ = simulator.simulate(data)
            if (
                list(sim_tokens.lengths) != list(result.lzss.tokens.lengths)
                or list(sim_tokens.values) != list(result.lzss.tokens.values)
            ):
                raise VerificationFailure(
                    f"FSM simulator token mismatch on {source} "
                    f"segment {index}"
                )
            report.sim_cross_checks += 1

        report.segments += 1
        report.bytes_in += len(data)
        report.bytes_out += result.compressed_size
        report.per_source[source] = report.per_source.get(source, 0) + 1
        index += 1
    return report
