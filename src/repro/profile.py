"""One frozen object for the library's compression knobs.

The end-to-end compressors accumulated eight orthogonal parameters —
window size, hash spec, match policy, block strategy, tokens per block,
cut search, the incompressibility sniff, and (new) the tokenizer
backend. :class:`CompressionProfile` bundles them into a single frozen
value that every end-to-end entry point accepts via ``profile=``
(either a profile object or a preset name), while individual keyword
arguments keep working and win over the profile:

    precedence: explicit kwarg > profile field > library default

A profile field left at ``None`` means "unset": it neither overrides a
kwarg nor shadows the library default, so partial profiles compose the
way partial configs should.

Presets:

* ``fastest`` — greedy level-1 policy, fixed Huffman tables, no cut
  search, ``auto`` backend (the vector kernel where it wins): minimum
  latency per byte;
* ``balanced`` — lazy level-6 policy, adaptive best-of-three block
  coding with the cut search and sniff on: the zlib-default trade;
* ``best`` — lazy level-9 policy, 32 KiB window, the exact
  suffix-array matcher (``backend="sa"``) plus iterative block
  re-tokenisation (``refine=True``), everything on: maximum ratio,
  speed last.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace
from typing import Dict, Optional, Union

from repro.errors import ConfigError
from repro.lzss.hashchain import HashSpec
from repro.lzss.policy import ZLIB_LEVELS, MatchPolicy


@dataclass(frozen=True)
class CompressionProfile:
    """A named bundle of compression settings; ``None`` fields are unset.

    >>> prof = CompressionProfile(window_size=8192, backend="fast")
    >>> prof.merged(backend="vector").backend
    'vector'
    >>> prof.merged(backend=None).window_size  # None kwargs don't unset
    8192
    """

    window_size: Optional[int] = None
    hash_spec: Optional[HashSpec] = None
    policy: Optional[MatchPolicy] = None
    strategy: Optional[object] = None  # BlockStrategy; untyped to avoid cycle
    tokens_per_block: Optional[int] = None
    cut_search: Optional[bool] = None
    sniff: Optional[bool] = None
    backend: Optional[str] = None
    # Iterative re-tokenisation of searched blocks against their own
    # emerging Huffman prices (repro.deflate.splitter.refine_blocks) —
    # a ratio knob, effective only with adaptive strategy + cut search.
    refine: Optional[bool] = None
    # Per-shard routing (repro.lzss.router): "static" resolves the
    # backend once per stream, "probe" decides per shard; the two
    # probe thresholds gate the vector choice; trace_fraction/seed
    # drive the deterministic traced-sampling telemetry policy.
    route: Optional[str] = None
    probe_entropy_bits: Optional[float] = None
    probe_match_density: Optional[float] = None
    trace_fraction: Optional[float] = None
    trace_seed: Optional[int] = None
    # Shards shorter than probe_min_bytes skip the probe (fast path);
    # batch_shared_plan toggles the pooled dynamic Huffman plan in
    # repro.batch.compress_batch (False pins every payload to FIXED).
    probe_min_bytes: Optional[int] = None
    batch_shared_plan: Optional[bool] = None

    def merged(self, **overrides) -> "CompressionProfile":
        """A copy with every non-``None`` override applied."""
        filtered = {
            key: value for key, value in overrides.items()
            if value is not None
        }
        unknown = set(filtered) - {f.name for f in fields(self)}
        if unknown:
            raise ConfigError(
                f"unknown profile fields: {', '.join(sorted(unknown))}"
            )
        return replace(self, **filtered)

    def pick(self, field: str, override, default):
        """Resolve one setting: kwarg > profile field > default."""
        if override is not None:
            return override
        value = getattr(self, field)
        return default if value is None else value


def _presets() -> Dict[str, CompressionProfile]:
    from repro.deflate.block_writer import BlockStrategy

    return {
        "fastest": CompressionProfile(
            window_size=4096,
            policy=ZLIB_LEVELS[1],
            strategy=BlockStrategy.FIXED,
            cut_search=False,
            sniff=True,
            backend="auto",
        ),
        "balanced": CompressionProfile(
            window_size=16384,
            policy=ZLIB_LEVELS[6],
            strategy=BlockStrategy.ADAPTIVE,
            cut_search=True,
            sniff=True,
            backend="fast",
        ),
        "best": CompressionProfile(
            window_size=32768,
            policy=ZLIB_LEVELS[9],
            strategy=BlockStrategy.ADAPTIVE,
            cut_search=True,
            sniff=True,
            backend="sa",
            refine=True,
        ),
    }


def preset_names() -> tuple:
    """The preset profile names, sorted."""
    return tuple(sorted(_presets()))


def as_profile(
    profile: Union[None, str, CompressionProfile]
) -> CompressionProfile:
    """Normalise a ``profile=`` argument to a :class:`CompressionProfile`.

    ``None`` becomes the empty (all-unset) profile, a string looks up a
    preset, and a profile object passes through.
    """
    if profile is None:
        return CompressionProfile()
    if isinstance(profile, CompressionProfile):
        return profile
    if isinstance(profile, str):
        presets = _presets()
        if profile not in presets:
            raise ConfigError(
                f"unknown profile {profile!r}: expected one of "
                f"{', '.join(sorted(presets))}"
            )
        return presets[profile]
    raise ConfigError(
        f"profile must be a name or CompressionProfile: {profile!r}"
    )
