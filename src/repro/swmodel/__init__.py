"""Software baseline model: ZLib on the FPGA's embedded PowerPC (§V).

Table I compares the hardware against "a software implementation (ZLib
running on the PowerPC processor inside the XC5VFX70T FPGA)" clocked at
400 MHz. We reproduce that baseline as an operation-count cost model: the
same greedy match search is performed (ZLib level-1 parameters), and its
trace is priced with per-operation cycle costs of a scalar in-order
embedded core with small caches.
"""

from repro.swmodel.cpu import CPUModel, PPC440_400MHZ
from repro.swmodel.zlib_cost import SoftwareBaseline, SoftwareRunResult

__all__ = [
    "CPUModel",
    "PPC440_400MHZ",
    "SoftwareBaseline",
    "SoftwareRunResult",
]
