"""ZLib software cycle accounting driven by the shared match trace.

The baseline runs the *same algorithm* as the hardware (greedy hash-chain
LZSS + fixed-table Huffman) with ZLib's level-1 parameters — exactly what
the paper's testbench ran on the PowerPC. One compression pass produces
the token stream (for the ratio and output size) and the search trace
(for the cycle pricing); :class:`SoftwareBaseline` turns both into MB/s.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.deflate.block_writer import BlockStrategy, deflate_tokens
from repro.lzss.compressor import CompressResult, LZSSCompressor
from repro.lzss.hashchain import HashSpec
from repro.lzss.policy import MatchPolicy, policy_for_level
from repro.swmodel.cpu import CPUModel, PPC440_400MHZ


@dataclass
class SoftwareRunResult:
    """Modelled software compression outcome."""

    cpu: CPUModel
    lzss: CompressResult
    compressed_size: int
    total_cycles: float

    @property
    def input_size(self) -> int:
        return self.lzss.input_size

    @property
    def cycles_per_byte(self) -> float:
        if self.input_size == 0:
            return 0.0
        return self.total_cycles / self.input_size

    @property
    def throughput_mbps(self) -> float:
        cpb = self.cycles_per_byte
        if cpb == 0:
            return 0.0
        return self.cpu.clock_mhz / cpb

    @property
    def ratio(self) -> float:
        if self.compressed_size == 0:
            return 0.0
        return self.input_size / self.compressed_size

    @property
    def compression_time_s(self) -> float:
        return self.total_cycles / (self.cpu.clock_mhz * 1e6)


class SoftwareBaseline:
    """ZLib-on-PowerPC model with selectable level and window."""

    def __init__(
        self,
        window_size: int = 4096,
        hash_bits: int = 15,
        level: int = 1,
        cpu: CPUModel = PPC440_400MHZ,
        policy: Optional[MatchPolicy] = None,
    ) -> None:
        self.cpu = cpu
        self.window_size = window_size
        self.hash_bits = hash_bits
        self.policy = policy or policy_for_level(level)
        self._compressor = LZSSCompressor(
            window_size=window_size,
            hash_spec=HashSpec(hash_bits),
            policy=self.policy,
        )

    def run(self, data: bytes) -> SoftwareRunResult:
        """Compress ``data`` and price the work on the modelled CPU."""
        lzss = self._compressor.compress(data)
        size = 2 + len(deflate_tokens(lzss.tokens, BlockStrategy.FIXED)) + 4
        trace = lzss.trace
        cpu = self.cpu

        n = len(data)
        tokens = len(lzss.tokens)
        literals = lzss.tokens.literal_count()
        matches = tokens - literals
        chain_steps = trace.total_chain_iters()
        compared_bytes = trace.total_compare_cycles(bus_bytes=1)
        # Software inserts the head-of-search position for every search
        # plus the trace's recorded in-match insertions.
        inserts = len(trace) + trace.total_inserted()

        # Table working set: head table (2 bytes/entry in zlib) + prev
        # table (2 bytes/position over the window) + the window itself.
        working_set = (
            (1 << self.hash_bits) * 2 + self.window_size * 2
            + 2 * self.window_size
        )
        miss_rate = cpu.table_miss_rate(working_set)
        miss_cost = miss_rate * cpu.miss_penalty

        cycles = 0.0
        cycles += n * cpu.cycles_per_byte_stream
        cycles += inserts * (cpu.cycles_hash_insert + miss_cost)
        cycles += chain_steps * (cpu.cycles_chain_step + miss_cost)
        cycles += compared_bytes * cpu.cycles_compare_byte
        cycles += literals * cpu.cycles_token_literal
        cycles += matches * cpu.cycles_token_match
        cycles += size * cpu.cycles_output_byte

        return SoftwareRunResult(
            cpu=cpu,
            lzss=lzss,
            compressed_size=size,
            total_cycles=cycles,
        )
