"""Scalar in-order CPU cost model (PowerPC 440 class).

The XC5VFX70T's embedded PowerPC 440 is a dual-issue in-order core with
32 KB instruction and data caches. On ZLib's deflate inner loops the
performance is dominated by (a) the per-iteration instruction counts of
the hash/chain/compare loops and (b) data-cache misses on the head/prev
tables, whose working set (e.g. 64 KB head table for a 15-bit hash plus
the window and prev table) exceeds the 32 KB D-cache.

The constants below are *calibrated estimates*, not measurements: they
are chosen to land ZLib level 1 on this core in the low-single-digit
MB/s regime the paper reports (the 15-20x speedup of Table I), while
scaling in the physically right direction with table sizes. DESIGN.md
documents this substitution.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError


@dataclass(frozen=True)
class CPUModel:
    """Cycle costs of the deflate loop's primitive operations."""

    name: str
    clock_mhz: float
    dcache_bytes: int
    miss_penalty: float           # cycles per D-cache miss
    cycles_per_byte_stream: float  # window/stream upkeep + Adler per byte
    cycles_hash_insert: float      # hash step + head/prev update (hits)
    cycles_chain_step: float       # chain load + guards (hits)
    cycles_compare_byte: float     # unrolled compare, per byte examined
    cycles_token_literal: float    # literal emit incl. fixed-table bits
    cycles_token_match: float      # length/dist encode incl. extra bits
    cycles_output_byte: float      # bit-buffer flush + output copy

    def __post_init__(self) -> None:
        if self.clock_mhz <= 0:
            raise ConfigError(f"clock_mhz must be positive: {self.clock_mhz}")
        if self.dcache_bytes <= 0:
            raise ConfigError(
                f"dcache_bytes must be positive: {self.dcache_bytes}"
            )

    def table_miss_rate(self, working_set_bytes: int) -> float:
        """Fraction of table accesses missing the D-cache.

        A simple capacity model: uniformly random accesses into a
        working set of size W against a cache of size C hit with
        probability ``min(1, C/W)``. The head table *is* accessed
        near-uniformly (hash-distributed), which is what makes this
        loop so cache-hostile on small cores.
        """
        if working_set_bytes <= self.dcache_bytes:
            return 0.0
        return 1.0 - self.dcache_bytes / working_set_bytes


#: The paper's software platform: PowerPC 440 @ 400 MHz, 32 KB D-cache.
PPC440_400MHZ = CPUModel(
    name="PowerPC 440 @ 400 MHz (XC5VFX70T)",
    clock_mhz=400.0,
    dcache_bytes=32 * 1024,
    # DDR2 behind the PLB bus costs ~200 ns per miss at 400 MHz. This,
    # not raw instruction count, is why the paper's measured software
    # baseline is only a few MB/s on a 400 MHz core.
    miss_penalty=80.0,
    # fill_window copies + Adler-32 + deflate bookkeeping, all touching
    # DDR2-backed buffers through the same bus.
    cycles_per_byte_stream=70.0,
    cycles_hash_insert=22.0,
    cycles_chain_step=18.0,
    cycles_compare_byte=3.0,
    cycles_token_literal=18.0,
    cycles_token_match=50.0,
    cycles_output_byte=10.0,
)
