"""Adler-32 checksum (RFC 1950 §8.2), vectorised.

Adler-32 maintains two 16-bit accumulators modulo 65521:

    a = 1 + d1 + d2 + ... + dn            (mod 65521)
    b = n + n*d1 + (n-1)*d2 + ... + dn    (mod 65521, starting from b=0)

The scalar recurrence ``b += a`` per byte is equivalent to the closed
form above, which NumPy evaluates per block: for a block of length ``n``
with prior state ``(a0, b0)``,

    a1 = a0 + sum(d)
    b1 = b0 + n*a0 + sum((n - i) * d[i] for i in range(n))

Blocks are kept small enough that the int64 weighted sum cannot
overflow (n * 255 * n < 2**63 for n up to ~190 million; we use 1 MiB
blocks which is comfortably safe and cache-friendly).
"""

from __future__ import annotations

try:
    import numpy as np
except ImportError:  # pragma: no cover - exercised by the no-numpy CI job
    np = None

_MOD = 65521
_BLOCK = 1 << 20

#: zlib's NMAX: the longest run of 0xFF bytes the scalar recurrence can
#: absorb before ``b`` must be reduced to avoid unbounded growth.
_NMAX = 5552


def _adler32_scalar(data: bytes, value: int) -> int:
    """Pure-Python fallback used when numpy is unavailable."""
    a = value & 0xFFFF
    b = (value >> 16) & 0xFFFF
    view = memoryview(bytes(data))
    for start in range(0, len(view), _NMAX):
        for byte in view[start:start + _NMAX]:
            a += byte
            b += a
        a %= _MOD
        b %= _MOD
    return (b << 16) | a


def adler32(data: bytes, value: int = 1) -> int:
    """Return the Adler-32 checksum of ``data``.

    ``value`` is the running checksum from a previous call (1 for a fresh
    stream), enabling incremental use exactly like ``zlib.adler32``:

    >>> hex(adler32(b"Wikipedia"))
    '0x11e60398'
    >>> adler32(b"pedia", adler32(b"Wiki")) == adler32(b"Wikipedia")
    True
    """
    if np is None:
        return _adler32_scalar(data, value)
    a = value & 0xFFFF
    b = (value >> 16) & 0xFFFF
    buf = np.frombuffer(bytes(data), dtype=np.uint8)
    for start in range(0, len(buf), _BLOCK):
        block = buf[start:start + _BLOCK].astype(np.int64)
        n = len(block)
        total = int(block.sum())
        # Weighted sum: d[0] counted n times, d[1] n-1 times, ... d[n-1] once.
        weighted = int((block * np.arange(n, 0, -1, dtype=np.int64)).sum())
        b = (b + n * a + weighted) % _MOD
        a = (a + total) % _MOD
    return (b << 16) | a


def adler32_many(chunks) -> list:
    """Adler-32 of each chunk in one vectorised pass (batch trailers).

    The batched small-message engine frames N independent ZLib streams
    per call; checksumming them one ``adler32()`` call at a time costs N
    numpy dispatches on mostly-tiny buffers. This joins the chunks once
    and evaluates both closed forms per chunk with two
    ``np.add.reduceat`` sweeps: for chunk ``i`` spanning
    ``[start_i, end_i)`` of the join with byte values ``d`` at global
    index ``g``, the weight of ``d[g]`` is ``end_i - g``, so

        b_i = n_i + end_i * sum(d) - sum(g * d)     (mod 65521)

    Falls back to per-chunk :func:`adler32` without numpy. Safe in
    int64 up to multi-gigabyte joins (``g * d <= total * 255``).
    """
    chunks = list(chunks)
    values = [1] * len(chunks)
    nonempty = [i for i, c in enumerate(chunks) if len(c)]
    if not nonempty:
        return values
    if np is None:
        for i in nonempty:
            values[i] = adler32(chunks[i])
        return values
    data = b"".join(bytes(chunks[i]) for i in nonempty)
    buf = np.frombuffer(data, dtype=np.uint8).astype(np.int64)
    lens = np.fromiter((len(chunks[i]) for i in nonempty),
                       dtype=np.int64, count=len(nonempty))
    ends = np.cumsum(lens)
    starts = ends - lens
    sums = np.add.reduceat(buf, starts)
    weighted = ends * sums - np.add.reduceat(
        np.arange(buf.size, dtype=np.int64) * buf, starts
    )
    a = (1 + sums) % _MOD
    b = (lens + weighted) % _MOD
    for slot, i in enumerate(nonempty):
        values[i] = (int(b[slot]) << 16) | int(a[slot])
    return values


def adler32_combine(adler1: int, adler2: int, len2: int) -> int:
    """Combine two Adler-32 checksums of concatenated sequences.

    Given ``adler1 = adler32(seq1)`` and ``adler2 = adler32(seq2)`` with
    ``len2 = len(seq2)``, returns ``adler32(seq1 + seq2)`` without
    touching the data — the primitive that lets independently compressed
    shards be stitched into one ZLib stream (mirroring zlib's own
    ``adler32_combine``).

    The derivation follows from the closed forms: ``a2 = 1 + S2`` and
    ``b2 = len2 + W2`` where ``S2``/``W2`` are seq2's plain and weighted
    byte sums, while appending seq2 to a stream in state ``(a1, b1)``
    yields ``a = a1 + S2`` and ``b = b1 + len2*a1 + W2``. Substituting:

        a = a1 + a2 - 1                     (mod 65521)
        b = b1 + b2 + len2*(a1 - 1)         (mod 65521)

    >>> left, right = b"shard one|", b"shard two"
    >>> combined = adler32_combine(adler32(left), adler32(right), len(right))
    >>> combined == adler32(left + right)
    True
    """
    if len2 < 0:
        raise ValueError(f"len2 must be non-negative: {len2}")
    rem = len2 % _MOD
    a1 = adler1 & 0xFFFF
    b1 = (adler1 >> 16) & 0xFFFF
    a2 = adler2 & 0xFFFF
    b2 = (adler2 >> 16) & 0xFFFF
    a = (a1 + a2 - 1) % _MOD
    b = (b1 + b2 + rem * (a1 - 1)) % _MOD
    return (b << 16) | a


class Adler32:
    """Incremental Adler-32 accumulator with a file-like ``update`` API."""

    def __init__(self, data: bytes = b"") -> None:
        self._value = 1
        if data:
            self.update(data)

    def update(self, data: bytes) -> "Adler32":
        """Fold ``data`` into the running checksum; returns self."""
        self._value = adler32(data, self._value)
        return self

    @property
    def value(self) -> int:
        """Current 32-bit checksum value."""
        return self._value

    def digest(self) -> bytes:
        """Checksum as the 4 big-endian bytes ZLib framing appends."""
        return self._value.to_bytes(4, "big")
