"""Checksum implementations used by the stream containers.

* :func:`adler32` — RFC 1950 (ZLib framing) checksum, vectorised with
  NumPy block sums.
* :func:`crc32` — IEEE 802.3 CRC-32 (gzip framing), table-driven with a
  NumPy slice-by-one inner loop.

Both are written from scratch (no use of :mod:`zlib`/:mod:`binascii`) and
are validated against the standard library in the test suite.
"""

from repro.checksums.adler32 import Adler32, adler32
from repro.checksums.crc32 import CRC32, crc32

__all__ = ["Adler32", "adler32", "CRC32", "crc32"]
