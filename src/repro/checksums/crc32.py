"""CRC-32 (IEEE 802.3, polynomial 0xEDB88320 reflected), table-driven.

Used by the gzip container extension. The byte loop applies the classic
table lookup; NumPy cannot fully vectorise a CRC (each step depends on
the previous state), but the 256-entry table is built vectorised and the
loop works on a pre-converted ``memoryview`` for speed.
"""

from __future__ import annotations

try:
    import numpy as np
except ImportError:  # pragma: no cover - exercised by the no-numpy CI job
    np = None

_POLY = 0xEDB88320


def _build_table_list() -> list:
    if np is not None:
        crc = np.arange(256, dtype=np.uint32)
        for _ in range(8):
            crc = np.where(
                crc & 1, (crc >> 1) ^ _POLY, crc >> 1
            ).astype(np.uint32)
        return [int(x) for x in crc]  # plain ints: faster scalar indexing
    table = []
    for value in range(256):
        for _ in range(8):
            value = (value >> 1) ^ _POLY if value & 1 else value >> 1
        table.append(value)
    return table


_TABLE_LIST = _build_table_list()


def crc32(data: bytes, value: int = 0) -> int:
    """Return the CRC-32 of ``data``, continuing from ``value``.

    Compatible with ``zlib.crc32`` (same initial value convention: pass
    the previous return value to continue a stream).
    """
    crc = (value ^ 0xFFFFFFFF) & 0xFFFFFFFF
    table = _TABLE_LIST
    for byte in memoryview(data):
        crc = (crc >> 8) ^ table[(crc ^ byte) & 0xFF]
    return crc ^ 0xFFFFFFFF


class CRC32:
    """Incremental CRC-32 accumulator."""

    def __init__(self, data: bytes = b"") -> None:
        self._value = 0
        if data:
            self.update(data)

    def update(self, data: bytes) -> "CRC32":
        """Fold ``data`` into the running CRC; returns self."""
        self._value = crc32(data, self._value)
        return self

    @property
    def value(self) -> int:
        """Current 32-bit CRC value."""
        return self._value

    def digest_le(self) -> bytes:
        """CRC as the 4 little-endian bytes gzip framing appends."""
        return self._value.to_bytes(4, "little")
