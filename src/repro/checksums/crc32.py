"""CRC-32 (IEEE 802.3, polynomial 0xEDB88320 reflected), table-driven.

Used by the gzip container extension. The byte loop applies the classic
table lookup; NumPy cannot fully vectorise a CRC (each step depends on
the previous state), but the 256-entry table is built vectorised and the
loop works on a pre-converted ``memoryview`` for speed.
"""

from __future__ import annotations

try:
    import numpy as np
except ImportError:  # pragma: no cover - exercised by the no-numpy CI job
    np = None

_POLY = 0xEDB88320


def _build_table_list() -> list:
    if np is not None:
        crc = np.arange(256, dtype=np.uint32)
        for _ in range(8):
            crc = np.where(
                crc & 1, (crc >> 1) ^ _POLY, crc >> 1
            ).astype(np.uint32)
        return [int(x) for x in crc]  # plain ints: faster scalar indexing
    table = []
    for value in range(256):
        for _ in range(8):
            value = (value >> 1) ^ _POLY if value & 1 else value >> 1
        table.append(value)
    return table


_TABLE_LIST = _build_table_list()


def crc32(data: bytes, value: int = 0) -> int:
    """Return the CRC-32 of ``data``, continuing from ``value``.

    Compatible with ``zlib.crc32`` (same initial value convention: pass
    the previous return value to continue a stream).
    """
    crc = (value ^ 0xFFFFFFFF) & 0xFFFFFFFF
    table = _TABLE_LIST
    for byte in memoryview(data):
        crc = (crc >> 8) ^ table[(crc ^ byte) & 0xFF]
    return crc ^ 0xFFFFFFFF


def _gf2_matrix_times(mat: list, vec: int) -> int:
    total = 0
    index = 0
    while vec:
        if vec & 1:
            total ^= mat[index]
        vec >>= 1
        index += 1
    return total


def _gf2_matrix_square(square: list, mat: list) -> None:
    for n in range(32):
        square[n] = _gf2_matrix_times(mat, mat[n])


def crc32_combine(crc1: int, crc2: int, len2: int) -> int:
    """Combine two CRC-32s of concatenated sequences (zlib-style).

    Given ``crc1 = crc32(seq1)`` and ``crc2 = crc32(seq2)`` with
    ``len2 = len(seq2)``, returns ``crc32(seq1 + seq2)`` without
    touching the data. CRC is linear over GF(2): appending ``len2``
    bytes multiplies ``crc1``'s state by the 32×32 zero-byte operator
    matrix raised to ``len2`` (computed by repeated squaring —
    O(log len2) matrix products), after which seq2's own CRC XORs in.

    This is to gzip framing what
    :func:`repro.checksums.adler32.adler32_combine` is to ZLib framing:
    the primitive that lets independently compressed shards stitch into
    one member whose trailer checksums the whole input.

    >>> left, right = b"shard one|", b"shard two"
    >>> crc32_combine(crc32(left), crc32(right), len(right)) == \\
    ...     crc32(left + right)
    True
    """
    if len2 < 0:
        raise ValueError(f"len2 must be non-negative: {len2}")
    if len2 == 0:
        return crc1
    even = [0] * 32  # operator for 2^(2k) zero bits
    odd = [0] * 32   # operator for 2^(2k+1) zero bits
    # One zero *bit*: the CRC shift-register step.
    odd[0] = _POLY
    row = 1
    for n in range(1, 32):
        odd[n] = row
        row <<= 1
    _gf2_matrix_square(even, odd)   # 2 zero bits
    _gf2_matrix_square(odd, even)   # 4 zero bits = half a zero byte
    # Square up to one zero byte, then apply len2's binary expansion.
    while True:
        _gf2_matrix_square(even, odd)
        if len2 & 1:
            crc1 = _gf2_matrix_times(even, crc1)
        len2 >>= 1
        if len2 == 0:
            break
        _gf2_matrix_square(odd, even)
        if len2 & 1:
            crc1 = _gf2_matrix_times(odd, crc1)
        len2 >>= 1
        if len2 == 0:
            break
    return crc1 ^ crc2


class CRC32:
    """Incremental CRC-32 accumulator."""

    def __init__(self, data: bytes = b"") -> None:
        self._value = 0
        if data:
            self.update(data)

    def update(self, data: bytes) -> "CRC32":
        """Fold ``data`` into the running CRC; returns self."""
        self._value = crc32(data, self._value)
        return self

    @property
    def value(self) -> int:
        """Current 32-bit CRC value."""
        return self._value

    def digest_le(self) -> bytes:
        """CRC as the 4 little-endian bytes gzip framing appends."""
        return self._value.to_bytes(4, "little")
