"""Per-token match-search trace.

One compression pass records, per emitted token, exactly the quantities
every cost model needs (DESIGN.md §4.1/§4.2). Columns are parallel
``array`` instances to stay compact on multi-megabyte inputs:

* ``kinds[i]`` — 0 literal, 1 match;
* ``lengths[i]`` — match length (1 for literals, i.e. bytes consumed);
* ``chain_iters[i]`` — number of candidates examined by the search;
* ``compare_cycles_w4[i]`` — Σ over candidates of ``1 + ceil((examined-1)/4)``
  (the paper's §IV formula): hardware comparison cycles on the 32-bit buses;
* ``compare_cycles_w1[i]`` — Σ of ``examined``: cycles on the 8-bit bus
  of the [11] baseline (also the software model's byte-compare count);
* ``inserted[i]`` — hash-table insertions performed for this token
  *beyond* the head-of-token insertion (the FSM's UPDATE state cycles).

``examined`` for a candidate is the number of bytes the comparator reads
before deciding: the matched prefix plus the mismatching byte (no +1 when
the compare ran into the length cap).
"""

from __future__ import annotations

from array import array


class MatchTrace:
    """Columnar per-token search cost record."""

    __slots__ = (
        "kinds",
        "lengths",
        "chain_iters",
        "compare_cycles_w4",
        "compare_cycles_w1",
        "inserted",
        "input_size",
    )

    def __init__(self) -> None:
        self.kinds = bytearray()
        self.lengths = array("i")
        self.chain_iters = array("i")
        self.compare_cycles_w4 = array("i")
        self.compare_cycles_w1 = array("i")
        self.inserted = array("i")
        self.input_size = 0

    def __len__(self) -> int:
        return len(self.kinds)

    def record(
        self,
        kind: int,
        length: int,
        chain_iters: int,
        cycles_w4: int,
        cycles_w1: int,
        inserted: int,
    ) -> None:
        """Append one token's search costs (hot path, unvalidated)."""
        self.kinds.append(kind)
        self.lengths.append(length)
        self.chain_iters.append(chain_iters)
        self.compare_cycles_w4.append(cycles_w4)
        self.compare_cycles_w1.append(cycles_w1)
        self.inserted.append(inserted)

    # -- aggregate views used by tests and reports ---------------------

    def total_chain_iters(self) -> int:
        """Total candidates examined across the stream."""
        return sum(self.chain_iters)

    def total_compare_cycles(self, bus_bytes: int = 4) -> int:
        """Total comparator cycles for the given bus width (4 or 1)."""
        if bus_bytes == 4:
            return sum(self.compare_cycles_w4)
        if bus_bytes == 1:
            return sum(self.compare_cycles_w1)
        raise ValueError(f"unsupported bus width: {bus_bytes}")

    def total_inserted(self) -> int:
        """Total UPDATE-state hash insertions."""
        return sum(self.inserted)

    def literal_fraction(self) -> float:
        """Fraction of tokens that are literals.

        The paper reports 30-85 % of matching operations end in a
        literal, depending on data (§IV).
        """
        if not self.kinds:
            return 0.0
        return self.kinds.count(0) / len(self.kinds)
