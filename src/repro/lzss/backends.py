"""Tokenizer backend registry: ``traced`` / ``fast`` / ``vector`` / ``sa``.

The library grew four longest-match tokenizers:

* ``traced`` — the instrumented reproduction path
  (:class:`repro.lzss.compressor.LZSSCompressor`'s in-class parsers),
  recording the per-token :class:`~repro.lzss.trace.MatchTrace` the
  hardware and software cost models consume;
* ``fast`` — the trace-free pure-Python production path
  (:func:`repro.lzss.fast.compress_fast`);
* ``vector`` — the numpy batch kernel
  (:func:`repro.lzss.vector.compress_vector`), the software analogue of
  the paper's widened compare datapath;
* ``sa`` — the suffix-array exact matcher
  (:func:`repro.lzss.sa.compress_sa`), the ratio backend the ``best``
  profile selects.

``traced``/``fast``/``vector`` produce bit-identical token streams.
``sa`` deliberately does not: it answers longest-match queries exactly
where hash chains stop at ``max_chain`` candidates, so its contract is
round-trip identity and no-worse pricing, not token identity (see
:mod:`repro.lzss.sa`).

This module is the single place that names them. Every ``backend=``
parameter in the library accepts one of :data:`BACKEND_NAMES` plus
``"auto"``, and resolves it here. Resolution is *total*: asking for
``"vector"`` on a machine without a usable numpy, or with a policy the
vector kernel does not support, silently degrades to ``"fast"`` — the
output bytes are identical by the differential-test contract, so the
fallback is unobservable except in speed. ``sa`` never leaves the
registry: without numpy it runs its pure-Python doubling builder
(slower, smaller search history, still exact within that history). An
unknown name raises :class:`~repro.errors.ConfigError`.

The numpy probe runs per call (no caching): test suites block numpy via
``sys.modules`` monkeypatching to exercise the fallback path, and a
cached probe would leak state between tests.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

from repro.errors import ConfigError

#: Concrete backend names, in oracle-to-fastest-to-strongest order.
#: ``"auto"`` is accepted by :func:`resolve` but is never a concrete
#: backend.
BACKEND_NAMES: Tuple[str, ...] = ("traced", "fast", "vector", "sa")

#: Oldest numpy the accelerated kernels are tested against (needs stable
#: ``np.frombuffer``/``sliding-window`` semantics and uint64 sorts).
MIN_NUMPY = (1, 20)


def _numpy_usable() -> bool:
    """Import probe: is a new-enough numpy importable right now?"""
    try:
        import numpy
    except Exception:
        return False
    try:
        parts = numpy.__version__.split(".")
        version = (int(parts[0]), int(parts[1]))
    except (AttributeError, IndexError, ValueError):
        return False
    return version >= MIN_NUMPY


def available() -> Tuple[str, ...]:
    """The backends usable on this machine, probe evaluated per call.

    ``traced``, ``fast`` and ``sa`` are always present (``sa`` carries
    its own pure-Python builder); ``vector`` appears only when the
    numpy probe passes.
    """
    if _numpy_usable():
        return BACKEND_NAMES
    return ("traced", "fast", "sa")


def resolve(backend: str, policy=None) -> str:
    """Map a requested backend (or ``"auto"``) to a concrete one.

    ``auto`` picks the fastest backend for the given policy: the vector
    kernel for greedy insert-all policies (the configuration the batch
    kernel is built for — see :func:`repro.lzss.vector.supports`),
    ``fast`` otherwise — never ``sa``, which trades speed for ratio and
    must be asked for (directly or via the ``best`` profile).
    ``vector`` degrades silently to ``fast`` when numpy is unusable or
    the policy is unsupported; the token output is identical either
    way. ``sa`` supports every policy and both builders, so it always
    resolves to itself.
    """
    if backend == "auto":
        if _numpy_usable() and policy is not None and not policy.lazy:
            from repro.lzss.vector import supports

            if supports(policy):
                return "vector"
        return "fast"
    if backend not in BACKEND_NAMES:
        raise ConfigError(
            f"unknown backend {backend!r}: expected one of "
            f"{', '.join(BACKEND_NAMES)} or 'auto'"
        )
    if backend == "vector":
        if not _numpy_usable():
            return "fast"
        if policy is not None:
            from repro.lzss.vector import supports

            if not supports(policy):
                return "fast"
    if backend == "sa" and policy is not None:
        from repro.lzss.sa import supports as sa_supports

        if not sa_supports(policy):
            return "fast"
    return backend


def registry() -> Dict[str, Callable]:
    """Name -> tokenizer callable for the trace-free backends.

    Every callable has the signature
    ``fn(data, window_size, hash_spec, policy) -> TokenArray``. The
    ``traced`` backend is not listed: it returns a trace alongside the
    tokens and lives inside :class:`~repro.lzss.compressor.LZSSCompressor`;
    callers that resolve to ``"traced"`` dispatch there instead.
    """
    from repro.lzss.fast import compress_fast
    from repro.lzss.sa import compress_sa

    table: Dict[str, Callable] = {"fast": compress_fast, "sa": compress_sa}
    if _numpy_usable():
        from repro.lzss.vector import compress_vector

        table["vector"] = compress_vector
    return table


def tokenizer(backend: str, policy=None) -> Tuple[str, Optional[Callable]]:
    """Resolve ``backend`` and return ``(concrete_name, callable)``.

    The callable is ``None`` for ``"traced"`` — the instrumented path
    needs the compressor object, not a bare tokenizer function.
    """
    name = resolve(backend, policy)
    if name == "traced":
        return name, None
    return name, registry()[name]
