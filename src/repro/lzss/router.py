"""Workload-adaptive per-shard backend routing (the ``auto`` decision).

``BENCH_matcher.json`` tells a two-sided story: the numpy vector kernel
is ~2.2x faster than the scalar ``fast`` path on incompressible input
(the paper's worst case, where per-position overhead dominates) but
4-6x *slower* on match-rich data (long matches amortise the scalar loop
to one iteration per match, while the batched kernel still pays its
per-position array passes). A ``backend="auto"`` that resolves
statically therefore wins one workload and loses the other — the exact
mispricing the paper's fixed-function datapath avoids by construction
(its compare width is sized for the worst case and the data cannot
change it). Software can do better: *measure* each shard and route it.

This module is that decision point:

* :func:`probe_shard` — a cheap statistical probe (O(sample), not
  O(shard)): the stored-bypass entropy/trigram sniff of
  :mod:`repro.deflate.sniff`, extended with a sampled-match-density
  estimate over strided probe windows. One probe serves both consumers
  — the stored bypass *and* the router — so the shard is never sniffed
  twice.
* :func:`route_shard` — maps one shard to a concrete backend. In
  ``probe`` mode an ``auto`` shard goes to ``vector`` only when the
  probe says "match-poor" (high entropy, almost no recurring trigrams);
  everything else runs ``fast``. Shards the vector kernel cannot serve
  (no usable numpy, unsupported policy) route to ``fast`` unconditionally,
  which is why the probe is safe to leave on in the no-numpy CI job.
* :func:`should_trace` — a deterministic, seedable sampling policy that
  diverts a configurable fraction of shards through the instrumented
  ``traced`` backend. Sampled shards produce the
  :class:`~repro.lzss.trace.MatchTrace` the hardware cycle model
  consumes, which the parallel engine folds into
  :mod:`repro.estimator.calibration` as live calibration points.

Routing never changes output bytes: every backend it chooses between
(``traced``/``fast``/``vector``) is bit-identical by the
differential-test contract (``tests/lzss/test_router.py`` holds the
line per decision), so the router moves only wall-clock, exactly like
the stored bypass before it. A shard that *requests* ``backend="sa"``
(the exact suffix-array matcher, which is deliberately not
bit-identical) always runs ``sa``: it resolves statically and is
exempt from traced sampling.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, replace
from typing import Optional

from repro.deflate.sniff import (
    SNIFF_SAMPLE_BYTES,
    incompressible_from_signals,
    sampled_entropy_bits,
    trigram_repeat_fraction,
)
from repro.errors import ConfigError

#: Routing modes: ``static`` resolves the backend once per stream (the
#: pre-router behaviour), ``probe`` decides per shard from the probe.
ROUTE_MODES = ("static", "probe")

#: Probe mode sends an ``auto`` shard to ``vector`` only above this
#: order-0 entropy (bits/byte). Incompressible data measures ~7.99;
#: the match-rich workloads the scalar loop wins sit at 4-7.
ROUTE_ENTROPY_BITS = 7.4

#: ... and only below this sampled match density (fraction of probe
#: trigrams that recur). Random data measures ~0.004; text, logs and
#: even half-noise mixtures measure 0.2+.
ROUTE_MATCH_DENSITY = 0.10

#: Shards shorter than this skip the probe entirely and run ``fast``.
#: The probe's fixed cost (entropy sample + trigram windows) is priced
#: against a *large* shard's tokenization; on a sub-4 KiB payload it is
#: a double-digit fraction of the whole job, and the vector kernel has
#: nothing to win there anyway — its per-call setup dominates exactly
#: like the probe does. (The batched engine in :mod:`repro.batch` is
#: the right tool below the floor: it probes the packed batch once.)
PROBE_MIN_BYTES = 4096

#: Length of each match-density probe window.
DENSITY_PROBE_BYTES = 2048

#: Number of strided match-density probe windows.
DENSITY_PROBE_WINDOWS = 3


def sampled_match_density(
    data,
    probe_bytes: int = DENSITY_PROBE_BYTES,
    windows: int = DENSITY_PROBE_WINDOWS,
) -> float:
    """Mean recurring-trigram fraction over strided probe windows.

    Unlike :func:`~repro.deflate.sniff.trigram_repeat_fraction` (which
    returns the *worst* window, the right shape for a veto), this is a
    *density* estimate: the mean over ``windows`` short windows strided
    across the shard. A recurring trigram is exactly what seeds an LZSS
    match, so the mean approximates the fraction of positions the
    tokenizer will resolve as match extensions — the quantity that
    decides whether the scalar loop (few long matches) or the batched
    kernel (no matches at all) wins.

    >>> sampled_match_density(b"abcabcabcabcabc") > 0.5
    True
    >>> sampled_match_density(bytes(range(256))) == 0.0
    True
    """
    data = bytes(data)
    n = len(data)
    if n < 3:
        return 0.0
    span = max(1, windows - 1)
    starts = sorted({
        min(max(0, (n - probe_bytes) * k // span), max(0, n - probe_bytes))
        for k in range(windows)
    })
    total_positions = 0
    total_repeats = 0
    for start in starts:
        window = data[start:start + probe_bytes]
        positions = len(window) - 2
        if positions <= 0:
            continue
        seen = set()
        repeats = 0
        for i in range(positions):
            trigram = window[i:i + 3]
            if trigram in seen:
                repeats += 1
            else:
                seen.add(trigram)
        total_positions += positions
        total_repeats += repeats
    if total_positions == 0:
        return 0.0
    return total_repeats / total_positions


@dataclass(frozen=True)
class ShardProbe:
    """One shard's probe signals, computed once and shared.

    ``match_density`` is ``None`` when the probe was taken for the
    stored bypass only (static routing needs no density estimate);
    :meth:`with_density` fills it in lazily if the router later needs
    it.
    """

    input_bytes: int
    entropy_bits: float
    trigram_repeat: float
    match_density: Optional[float] = None

    @property
    def incompressible(self) -> bool:
        """The stored-bypass verdict, from the shared signals."""
        return incompressible_from_signals(
            self.input_bytes, self.entropy_bits, self.trigram_repeat
        )

    def with_density(self, data) -> "ShardProbe":
        """This probe with ``match_density`` computed (idempotent)."""
        if self.match_density is not None:
            return self
        return replace(self, match_density=sampled_match_density(data))


def probe_shard(data, match_density: bool = True) -> ShardProbe:
    """Probe one shard: entropy, trigram repeats, match density.

    O(sample) regardless of shard size (strided entropy sample plus a
    handful of short contiguous windows); on a 1 MiB shard the whole
    probe costs single-digit milliseconds against a tokenization in the
    hundreds. ``match_density=False`` skips the density windows when
    only the stored-bypass signals are needed.
    """
    view = memoryview(data)
    probe = ShardProbe(
        input_bytes=len(view),
        entropy_bits=sampled_entropy_bits(view, SNIFF_SAMPLE_BYTES),
        trigram_repeat=trigram_repeat_fraction(view),
    )
    if match_density:
        probe = probe.with_density(view)
    return probe


@dataclass(frozen=True)
class RouterConfig:
    """Per-shard routing and traced-sampling policy (frozen, picklable).

    ``route`` selects the mode; the two thresholds gate the probe
    decision; ``trace_fraction``/``trace_seed`` drive the deterministic
    traced-sampling policy (see :func:`should_trace`).

    >>> RouterConfig(route="probe").route
    'probe'
    >>> RouterConfig(route="adaptive")
    Traceback (most recent call last):
        ...
    repro.errors.ConfigError: unknown route 'adaptive': expected one of static, probe
    """

    route: str = "static"
    entropy_bits: float = ROUTE_ENTROPY_BITS
    match_density: float = ROUTE_MATCH_DENSITY
    trace_fraction: float = 0.0
    trace_seed: int = 0
    probe_min_bytes: int = PROBE_MIN_BYTES

    def __post_init__(self) -> None:
        if self.route not in ROUTE_MODES:
            raise ConfigError(
                f"unknown route {self.route!r}: expected one of "
                f"{', '.join(ROUTE_MODES)}"
            )
        if self.probe_min_bytes < 0:
            raise ConfigError(
                f"probe_min_bytes must be >= 0: {self.probe_min_bytes}"
            )
        if not 0.0 <= self.trace_fraction <= 1.0:
            raise ConfigError(
                f"trace_fraction must be in [0, 1]: {self.trace_fraction}"
            )
        if not 0.0 <= self.entropy_bits <= 8.0:
            raise ConfigError(
                f"entropy_bits must be in [0, 8]: {self.entropy_bits}"
            )
        if not 0.0 <= self.match_density <= 1.0:
            raise ConfigError(
                f"match_density must be in [0, 1]: {self.match_density}"
            )

    @property
    def active(self) -> bool:
        """Whether any per-shard decision differs from plain ``static``."""
        return self.route != "static" or self.trace_fraction > 0.0


@dataclass(frozen=True)
class RoutingDecision:
    """One shard's routing outcome, surfaced in shard stats.

    ``backend`` is the concrete backend the shard ran (``"stored"``
    when the stored bypass skipped tokenization entirely);
    ``requested`` is what the caller configured; ``reason`` is a short
    machine-greppable tag explaining the choice.
    """

    backend: str
    requested: str
    route: str
    reason: str
    traced_sample: bool = False
    probe: Optional[ShardProbe] = None


def should_trace(index: int, fraction: float, seed: int = 0) -> bool:
    """Deterministic, seedable shard-sampling predicate.

    Each shard index hashes (with the seed) to a point on [0, 1); the
    shard is sampled when that point falls below ``fraction``. The
    selection is therefore reproducible run to run and independent of
    worker scheduling, and the two degenerate fractions behave exactly
    as expected:

    >>> [should_trace(i, 0.0) for i in range(4)]
    [False, False, False, False]
    >>> [should_trace(i, 1.0) for i in range(4)]
    [True, True, True, True]
    >>> should_trace(5, 0.25, seed=1) == should_trace(5, 0.25, seed=1)
    True
    """
    if fraction <= 0.0:
        return False
    if fraction >= 1.0:
        return True
    digest = hashlib.blake2b(
        f"{seed}:{index}".encode(), digest_size=8
    ).digest()
    point = int.from_bytes(digest, "big") / float(1 << 64)
    return point < fraction


def route_shard(
    data,
    backend: str = "auto",
    policy=None,
    config: Optional[RouterConfig] = None,
    index: int = 0,
    probe: Optional[ShardProbe] = None,
) -> RoutingDecision:
    """Decide which concrete backend one shard runs.

    Precedence:

    1. the traced-sampling policy (a sampled shard runs ``traced``
       regardless of the probe — telemetry wins, bytes are identical);
    2. in ``probe`` mode, an ``auto`` shard follows the probe: ``vector``
       only when the shard looks match-poor *and* the vector kernel is
       actually usable for ``policy`` (otherwise ``fast``, which is why
       a numpy-less machine probe-routes everything to ``fast``);
    3. otherwise the static registry resolution of
       :func:`repro.lzss.backends.resolve`.

    A ``probe`` taken earlier (e.g. by the stored bypass) is reused;
    ``route_shard`` never probes the same shard twice.

    >>> from repro.lzss.policy import MatchPolicy
    >>> route_shard(b"x" * 100, backend="fast",
    ...             policy=MatchPolicy()).backend
    'fast'
    """
    from repro.lzss.backends import resolve

    config = config or RouterConfig()
    # Never trace-sample a shard that asked for the suffix-array
    # matcher: sa is not bit-identical to traced (it finds matches hash
    # chains miss), so diverting it would change output bytes — and its
    # chain-free search has no MatchTrace for the cycle models anyway.
    if backend != "sa" and should_trace(
            index, config.trace_fraction, config.trace_seed):
        return RoutingDecision(
            backend="traced",
            requested=backend,
            route=config.route,
            reason="trace-sample",
            traced_sample=True,
            probe=probe,
        )
    if config.route == "probe" and backend == "auto":
        if resolve("vector", policy) != "vector":
            return RoutingDecision(
                backend="fast",
                requested=backend,
                route=config.route,
                reason="vector-unavailable",
                probe=probe,
            )
        if len(data) < config.probe_min_bytes:
            # Probe cost dominates on small shards, and so does the
            # vector kernel's per-call setup: route straight to fast.
            return RoutingDecision(
                backend="fast",
                requested=backend,
                route=config.route,
                reason="below-probe-floor",
                probe=probe,
            )
        if probe is None:
            probe = probe_shard(data)
        else:
            probe = probe.with_density(data)
        if (probe.entropy_bits >= config.entropy_bits
                and probe.match_density is not None
                and probe.match_density <= config.match_density):
            return RoutingDecision(
                backend="vector",
                requested=backend,
                route=config.route,
                reason="probe-match-poor",
                probe=probe,
            )
        return RoutingDecision(
            backend="fast",
            requested=backend,
            route=config.route,
            reason="probe-match-rich",
            probe=probe,
        )
    return RoutingDecision(
        backend=resolve(backend, policy),
        requested=backend,
        route=config.route,
        reason="static",
        probe=probe,
    )


def route_batch(
    packed,
    backend: str = "auto",
    policy=None,
    config: Optional[RouterConfig] = None,
    probe: Optional[ShardProbe] = None,
) -> RoutingDecision:
    """One routing decision for a whole packed batch of small payloads.

    The batched engine concatenates N payloads before tokenizing, so the
    probe economics invert relative to :func:`route_shard`: a single
    probe over the *packed* buffer is amortised across every payload,
    and the vector kernel's per-call setup is paid once instead of N
    times. Hence ``auto`` prefers ``vector`` whenever it is usable —
    the probe only exists to catch the pathological all-incompressible
    batch, which routes to ``"stored"`` (the caller skips tokenization
    and stores every payload verbatim).

    ``packed`` is the concatenated payload bytes (a sample is fine; the
    probe subsamples anyway). Match density is *not* probed: its sliding
    windows would straddle payload seams and mis-measure.
    """
    from repro.lzss.backends import resolve

    config = config or RouterConfig()
    if config.route == "probe":
        if probe is None:
            probe = probe_shard(packed, match_density=False)
        if probe.incompressible:
            return RoutingDecision(
                backend="stored",
                requested=backend,
                route=config.route,
                reason="batch-incompressible",
                probe=probe,
            )
    if backend in ("auto", "vector"):
        if resolve("vector", policy) == "vector":
            return RoutingDecision(
                backend="vector",
                requested=backend,
                route=config.route,
                reason="batch-vector",
                probe=probe,
            )
        if backend == "auto":
            return RoutingDecision(
                backend="fast",
                requested=backend,
                route=config.route,
                reason="vector-unavailable",
                probe=probe,
            )
    return RoutingDecision(
        backend=resolve(backend, policy),
        requested=backend,
        route=config.route,
        reason="static",
        probe=probe,
    )


def config_from_profile(
    prof,
    route: Optional[str] = None,
    probe_entropy_bits: Optional[float] = None,
    probe_match_density: Optional[float] = None,
    trace_fraction: Optional[float] = None,
    trace_seed: Optional[int] = None,
    probe_min_bytes: Optional[int] = None,
    router: Optional[RouterConfig] = None,
) -> RouterConfig:
    """Build the effective :class:`RouterConfig` for an entry point.

    A whole ``router`` object wins outright; otherwise each knob
    resolves with the library-wide precedence (explicit kwarg > profile
    field > default). ``prof`` is a
    :class:`repro.profile.CompressionProfile`.
    """
    if router is not None:
        return router
    return RouterConfig(
        route=prof.pick("route", route, "static"),
        entropy_bits=prof.pick(
            "probe_entropy_bits", probe_entropy_bits, ROUTE_ENTROPY_BITS
        ),
        match_density=prof.pick(
            "probe_match_density", probe_match_density, ROUTE_MATCH_DENSITY
        ),
        trace_fraction=prof.pick("trace_fraction", trace_fraction, 0.0),
        trace_seed=prof.pick("trace_seed", trace_seed, 0),
        probe_min_bytes=prof.pick(
            "probe_min_bytes", probe_min_bytes, PROBE_MIN_BYTES
        ),
    )
