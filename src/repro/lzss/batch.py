"""Batched tokenization of many small payloads in one kernel pass.

The batched small-message engine (:mod:`repro.batch`) packs N
independent payloads into one contiguous buffer and tokenizes them with
a *single* vectorised hash/match pass — the software analogue of GPULZ
padding many buffers into one kernel launch. This module owns the
packing contract:

* every payload becomes one **segment** of the packed buffer, and no
  match ever crosses a segment seam: hash chains are bucketed per
  ``(segment, hash)``, extension limits stop at the segment end, and
  the sub-chain cascade carries a segment guard
  (:func:`repro.lzss.vector.batch_match_arrays`);
* with a preset dictionary each segment is ``dictionary + payload``, so
  matches may reach back into the dictionary (the decompressor's
  window is pre-loaded with it) and the dictionary is hashed as part
  of the same single pass instead of once per payload; the tokens
  covering the dictionary region are trimmed afterwards
  (:func:`trim_dict_tokens` — the same rule as
  :func:`repro.deflate.preset_dict.compress_with_dict`);
* the per-segment token streams are **bit-identical** to what the
  scalar per-payload tokenizers produce for the same configuration
  (``tests/properties/test_batch_differential.py`` holds the line), so
  batching moves only wall-clock.

Greedy insert-all policies replay all segments in lockstep
(:func:`repro.lzss.vector.replay_greedy_lockstep`); lazy policies fall
back to the per-segment scalar replay, and unsupported policies or a
missing numpy tokenize each payload with the scalar ``fast`` kernel —
same bytes, no batching win.
"""

from __future__ import annotations

from array import array
from typing import List, Optional, Sequence

from repro.lzss.backends import resolve
from repro.lzss.hashchain import HashSpec
from repro.lzss.policy import MatchPolicy
from repro.lzss.tokens import MAX_MATCH, MIN_MATCH, TokenArray

#: The batch engine's default matching policy: greedy, insert-all, one
#: chain probe per position. Insert-all makes the chain topology
#: parse-independent (the vector kernel's requirement) and a single
#: chain round keeps the batched pass one `_batch_matches` sweep; the
#: ratio loss against deeper chains is recovered by the shared dynamic
#: Huffman plans (measured on the templated-JSON corpus: batch default
#: beats the per-payload FIXED loop on size *and* speed).
BATCH_GREEDY_POLICY = MatchPolicy(
    max_chain=1,
    good_length=MAX_MATCH,
    nice_length=MAX_MATCH,
    lazy=False,
    max_lazy=0,
    max_insert_length=MAX_MATCH,
)


def effective_dictionary(dictionary: bytes, window_size: int) -> bytes:
    """The usable tail of a preset dictionary for ``window_size``.

    Only the last ``window_size - MIN_LOOKAHEAD`` bytes can ever be
    referenced (same trim as ``compress_with_dict`` and as CPython's
    ``zlib`` applies on its side).
    """
    max_dict = window_size - 262
    if len(dictionary) > max_dict:
        return dictionary[-max_dict:]
    return dictionary


def trim_dict_tokens(tokens: TokenArray, combined, base: int) -> TokenArray:
    """Drop the tokens covering a segment's dictionary prefix.

    ``tokens`` parse ``combined = dictionary + data`` with
    ``len(dictionary) == base``; the result parses ``data`` alone.
    Tokens starting at or past ``base`` are kept verbatim (their
    distances may reach back into the dictionary — that is the point);
    a match straddling the boundary is re-emitted as literals for its
    data part, since it cannot be safely truncated into a match.
    """
    out = TokenArray()
    lengths = tokens.lengths
    values = tokens.values
    if base <= 0:
        out.lengths.extend(lengths)
        out.values.extend(values)
        return out
    pos = 0
    i = 0
    total = len(lengths)
    while i < total and pos < base:
        length = lengths[i]
        step = length if length else 1
        if pos + step > base:
            for q in range(base, pos + step):
                out.append_literal(combined[q])
        pos += step
        i += 1
    out.lengths.extend(lengths[i:])
    out.values.extend(values[i:])
    return out


def _tokenize_one(data, window_size, hash_spec, policy, backend: str):
    """Scalar per-payload tokenization for one concrete backend."""
    if backend == "traced":
        from repro.lzss.compressor import LZSSCompressor

        return LZSSCompressor(
            window_size, hash_spec, policy, backend="traced"
        ).compress(bytes(data)).tokens
    if backend == "vector":
        from repro.lzss.vector import compress_vector

        return compress_vector(bytes(data), window_size, hash_spec, policy)
    from repro.lzss.fast import compress_fast

    return compress_fast(bytes(data), window_size, hash_spec, policy)


def tokenize_scalar(
    payload,
    dictionary: bytes,
    window_size: int,
    hash_spec: HashSpec,
    policy: MatchPolicy,
    backend: str = "fast",
) -> TokenArray:
    """One payload through the scalar path (fallbacks and overrides).

    With a dictionary, tokenizes ``dictionary + payload`` and trims —
    exactly what ``compress_with_dict`` does, so the batched and serial
    preset-dictionary paths agree byte for byte.
    """
    if not dictionary:
        return _tokenize_one(payload, window_size, hash_spec, policy,
                             backend)
    combined = dictionary + bytes(payload)
    tokens = _tokenize_one(combined, window_size, hash_spec, policy,
                           backend)
    return trim_dict_tokens(tokens, combined, len(dictionary))


def _split_counts(tok_len, tok_val, counts) -> List[TokenArray]:
    """Cut the segment-major token columns into per-segment arrays."""
    out = []
    start = 0
    for count in counts.tolist():
        stop = start + count
        ta = TokenArray()
        ta.lengths = array("i")
        ta.lengths.frombytes(tok_len[start:stop].tobytes())
        ta.values = array("i")
        ta.values.frombytes(tok_val[start:stop].tobytes())
        out.append(ta)
        start = stop
    return out


def _tokenize_packed(
    payloads: Sequence[bytes],
    dictionary: bytes,
    window_size: int,
    hash_spec: HashSpec,
    policy: MatchPolicy,
) -> List[TokenArray]:
    """The vectorised batch path: one pass over the packed buffer."""
    import numpy as np

    from repro.lzss import vector as V

    base = len(dictionary)
    if base:
        packed = b"".join(dictionary + bytes(p) for p in payloads)
    else:
        packed = b"".join(bytes(p) for p in payloads)
    seg_lens = np.fromiter(
        (base + len(p) for p in payloads), dtype=np.int64,
        count=len(payloads),
    )
    seg_ends = np.cumsum(seg_lens)
    seg_starts = seg_ends - seg_lens
    n = len(packed)
    if n == 0:
        return [TokenArray() for _ in payloads]
    buf = np.frombuffer(packed, dtype=np.uint8)
    seg_of = np.repeat(np.arange(seg_lens.size, dtype=np.int64), seg_lens)
    end_of = np.repeat(seg_ends, seg_lens)
    hcount = max(0, n - MIN_MATCH + 1)
    seam = (
        np.arange(hcount, dtype=np.int64) + MIN_MATCH > end_of[:hcount]
    )

    full_len, full_dist, quart_len, quart_dist = V.batch_match_arrays(
        buf, seg_of, end_of, seam, window_size, hash_spec, policy
    )

    if policy.lazy:
        tokens = []
        for i in range(seg_lens.size):
            s, e = int(seg_starts[i]), int(seg_ends[i])
            tokens.append(V._replay_lazy(
                packed[s:e], e - s, policy,
                full_len[s:e], full_dist[s:e],
                None if quart_len is None else quart_len[s:e],
                None if quart_dist is None else quart_dist[s:e],
            ))
    else:
        tok_len, tok_val, counts = V.replay_greedy_lockstep(
            buf, seg_starts, seg_ends, full_len, full_dist
        )
        tokens = _split_counts(tok_len, tok_val, counts)

    if base:
        view = memoryview(packed)
        tokens = [
            trim_dict_tokens(ta, view[int(seg_starts[i]):int(seg_ends[i])],
                             base)
            for i, ta in enumerate(tokens)
        ]
    return tokens


def tokenize_batch(
    payloads: Sequence[bytes],
    window_size: int = 4096,
    hash_spec: Optional[HashSpec] = None,
    policy: Optional[MatchPolicy] = None,
    backend: str = "auto",
    dictionary: bytes = b"",
) -> List[TokenArray]:
    """Tokenise every payload, batched where the kernel allows it.

    ``backend`` follows the registry semantics
    (:func:`repro.lzss.backends.resolve`): ``"vector"``/``"auto"`` run
    the packed single-pass kernel when numpy is present and the policy
    is insert-all; anything else degrades to the scalar per-payload
    loop with identical output bytes. ``dictionary`` (already trimmed
    to the window, see :func:`effective_dictionary`) primes every
    payload's window.
    """
    hash_spec = hash_spec or HashSpec()
    policy = policy or BATCH_GREEDY_POLICY
    if not payloads:
        return []
    requested = "vector" if backend == "auto" else backend
    concrete = resolve(requested, policy)
    if concrete == "vector":
        return _tokenize_packed(
            payloads, dictionary, window_size, hash_spec, policy
        )
    return [
        tokenize_scalar(p, dictionary, window_size, hash_spec, policy,
                        concrete)
        for p in payloads
    ]
