"""Classic LZ77 and original LZSS — the paper's algorithmic ancestry.

§II traces the design back through LZSS [4] to LZ77 [5]. These reference
implementations serve as *baseline algorithms* for comparison benches:

* :class:`LZ77Codec` — Ziv & Lempel 1977: a fixed-rate stream of
  ``(distance, length, next_literal)`` triples. Every step emits a
  triple even when no match exists (distance=length=0), which is the
  inefficiency LZSS fixed.
* :class:`ClassicLZSSCodec` — Storer & Szymanski 1982 as popularised by
  Okumura's LZSS.C: a 1-bit flag selects literal vs (distance, length)
  pair; matches shorter than the break-even length are sent literally.

Both use the same hash-chain search as the main compressor (search
quality is held constant so benches isolate the *format* difference),
and both are bit-exact round-trip codecs with their own serialised
formats.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.bitio.reader import BitReader
from repro.bitio.writer import BitWriter
from repro.errors import ConfigError, LZSSError
from repro.lzss.hashchain import ChainTables, HashSpec, hash_all
from repro.lzss.matcher import longest_match
from repro.lzss.policy import MatchPolicy
from repro.lzss.tokens import MIN_LOOKAHEAD, MIN_MATCH


def _check_window(window_size: int) -> None:
    if window_size & (window_size - 1) or not 256 <= window_size <= 32768:
        raise ConfigError(
            "window_size must be a power of two in [256, 32768]: "
            f"{window_size}"
        )


class _SearchMixin:
    """Shared hash-chain search over the classic codecs."""

    window_size: int
    hash_spec: HashSpec
    policy: MatchPolicy

    def _find_matches(self, data: bytes):
        """Yield (pos, best_len, best_dist) for every search position.

        The caller decides how to consume/advance; this generator is
        primed with ``.send(new_pos)`` after each decision.
        """
        n = len(data)
        hashes = hash_all(data, self.hash_spec)
        tables = ChainTables(self.hash_spec, self.window_size)
        head, prev = tables.head, tables.prev
        wmask = tables.window_mask
        max_dist = self.window_size - MIN_LOOKAHEAD
        hash_limit = n - MIN_MATCH
        pol = self.policy

        def search(pos: int) -> Tuple[int, int]:
            if pos > hash_limit:
                return 0, 0
            h = hashes[pos]
            first = head[h]
            prev[pos & wmask] = first
            head[h] = pos
            limit = min(self.max_length, n - pos)
            best_len, best_dist, _, _, _ = longest_match(
                data, pos, first, prev, wmask, max_dist, limit,
                pol.max_chain, pol.good_length,
                min(pol.nice_length, limit) if limit >= MIN_MATCH else 1,
                )
            if best_len < MIN_MATCH:
                return 0, 0
            return best_len, best_dist

        return search, hashes, head, prev, wmask, hash_limit


@dataclass
class LZ77Triple:
    """One (distance, length, literal) step of classic LZ77."""

    distance: int
    length: int
    literal: Optional[int]  # None only for the final step of the stream


class LZ77Codec(_SearchMixin):
    """Ziv-Lempel 1977 triple codec.

    Serialisation per step: distance (``log2 W`` bits), length
    (``length_bits`` bits), literal (8 bits). The final step may lack a
    literal when a match ends exactly at the stream end; a 1-bit marker
    before the literal field records its presence.
    """

    def __init__(
        self,
        window_size: int = 4096,
        length_bits: int = 8,
        hash_spec: Optional[HashSpec] = None,
        policy: Optional[MatchPolicy] = None,
    ) -> None:
        _check_window(window_size)
        if not 2 <= length_bits <= 8:
            raise ConfigError(f"length_bits must be 2..8: {length_bits}")
        self.window_size = window_size
        self.length_bits = length_bits
        self.max_length = MIN_MATCH - 1 + (1 << length_bits) - 1
        self.hash_spec = hash_spec or HashSpec()
        self.policy = policy or MatchPolicy()
        self._dist_bits = window_size.bit_length() - 1

    def tokenize(self, data: bytes) -> List[LZ77Triple]:
        """Produce the triple stream."""
        search, *_ = self._find_matches(data)
        triples: List[LZ77Triple] = []
        n = len(data)
        pos = 0
        while pos < n:
            length, dist = search(pos)
            if length:
                end = pos + length
                literal = data[end] if end < n else None
                triples.append(LZ77Triple(dist, length, literal))
                pos = end + (1 if literal is not None else 0)
            else:
                triples.append(LZ77Triple(0, 0, data[pos]))
                pos += 1
        return triples

    def compress(self, data: bytes) -> bytes:
        """Serialise ``data`` as an LZ77 triple stream."""
        writer = BitWriter()
        writer.write_bits(len(data), 32)
        for triple in self.tokenize(data):
            writer.write_bits(triple.distance, self._dist_bits)
            length_code = (
                triple.length - (MIN_MATCH - 1) if triple.length else 0
            )
            writer.write_bits(length_code, self.length_bits)
            if triple.literal is None:
                writer.write_bits(0, 1)
            else:
                writer.write_bits(1, 1)
                writer.write_bits(triple.literal, 8)
        return writer.flush()

    def decompress(self, blob: bytes) -> bytes:
        """Inverse of :meth:`compress`."""
        reader = BitReader(blob)
        total = reader.read_bits(32)
        out = bytearray()
        while len(out) < total:
            dist = reader.read_bits(self._dist_bits)
            length_code = reader.read_bits(self.length_bits)
            length = length_code + (MIN_MATCH - 1) if length_code else 0
            if length:
                start = len(out) - dist
                if start < 0 or dist == 0:
                    raise LZSSError(
                        f"invalid LZ77 back-reference at byte {len(out)}"
                    )
                for i in range(length):
                    out.append(out[start + i])
            if reader.read_bits(1):
                out.append(reader.read_bits(8))
        if len(out) != total:
            raise LZSSError(
                f"LZ77 stream decoded {len(out)} of {total} bytes"
            )
        return bytes(out)


class ClassicLZSSCodec(_SearchMixin):
    """Storer-Szymanski LZSS with 1-bit flags (Okumura-style format).

    Serialisation: flag bit 1 → 8-bit literal; flag bit 0 →
    distance (``log2 W`` bits) + length-minus-min (``length_bits``).
    """

    def __init__(
        self,
        window_size: int = 4096,
        length_bits: int = 4,
        hash_spec: Optional[HashSpec] = None,
        policy: Optional[MatchPolicy] = None,
    ) -> None:
        _check_window(window_size)
        if not 2 <= length_bits <= 8:
            raise ConfigError(f"length_bits must be 2..8: {length_bits}")
        self.window_size = window_size
        self.length_bits = length_bits
        self.max_length = MIN_MATCH + (1 << length_bits) - 1
        self.hash_spec = hash_spec or HashSpec()
        self.policy = policy or MatchPolicy()
        self._dist_bits = window_size.bit_length() - 1
        #: Minimum profitable match: a pair costs 1+dist+len bits vs
        #: 9 bits per literal.
        pair_bits = 1 + self._dist_bits + self.length_bits
        self.break_even = max(MIN_MATCH, -(-pair_bits // 9))

    def compress(self, data: bytes) -> bytes:
        """Serialise ``data`` as a flag-bit LZSS stream."""
        search, *_ = self._find_matches(data)
        writer = BitWriter()
        writer.write_bits(len(data), 32)
        n = len(data)
        pos = 0
        while pos < n:
            length, dist = search(pos)
            if length >= self.break_even:
                writer.write_bits(0, 1)
                writer.write_bits(dist, self._dist_bits)
                writer.write_bits(length - MIN_MATCH, self.length_bits)
                pos += length
            else:
                writer.write_bits(1, 1)
                writer.write_bits(data[pos], 8)
                pos += 1
        return writer.flush()

    def decompress(self, blob: bytes) -> bytes:
        """Inverse of :meth:`compress`."""
        reader = BitReader(blob)
        total = reader.read_bits(32)
        out = bytearray()
        while len(out) < total:
            if reader.read_bits(1):
                out.append(reader.read_bits(8))
            else:
                dist = reader.read_bits(self._dist_bits)
                length = reader.read_bits(self.length_bits) + MIN_MATCH
                start = len(out) - dist
                if start < 0 or dist == 0:
                    raise LZSSError(
                        f"invalid LZSS back-reference at byte {len(out)}"
                    )
                for i in range(length):
                    out.append(out[start + i])
        return bytes(out)
