"""Rolling hash and head/next chain tables (ZLib structure, §IV).

The hash function is ZLib's shift-XOR over the first ``MIN_MATCH`` (3)
bytes of a string::

    h = 0
    for byte in s[:3]:
        h = ((h << shift) ^ byte) & (2**hash_bits - 1)

with ``shift = ceil(hash_bits / 3)`` so all three bytes influence the
result. The paper parameterises "hash bit count" and "exact hash
function" as compile-time generics; :class:`HashSpec` carries both.

:func:`hash_all` computes the hash for *every* position of a buffer in
one vectorised NumPy pass — this is precisely the paper's *hash cache*:
"hash values for every offset of the source stream are computed during
background filling and stored in a separate memory."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

try:
    import numpy as np
except ImportError:  # pragma: no cover - exercised by the no-numpy CI job
    np = None

from repro.errors import ConfigError
from repro.lzss.tokens import MIN_MATCH


@dataclass(frozen=True)
class HashSpec:
    """Hash function parameters (compile-time generics in the paper)."""

    hash_bits: int = 15

    def __post_init__(self) -> None:
        if not 6 <= self.hash_bits <= 20:
            raise ConfigError(
                f"hash_bits must be in [6, 20]: {self.hash_bits}"
            )

    @property
    def shift(self) -> int:
        """Per-byte shift so 3 bytes cover all ``hash_bits`` bits."""
        return (self.hash_bits + MIN_MATCH - 1) // MIN_MATCH

    @property
    def table_size(self) -> int:
        """Number of head-table entries (2**hash_bits)."""
        return 1 << self.hash_bits

    @property
    def mask(self) -> int:
        return self.table_size - 1

    def hash3(self, b0: int, b1: int, b2: int) -> int:
        """Hash of one 3-byte string (scalar reference implementation).

        >>> spec = HashSpec(15)
        >>> 0 <= spec.hash3(115, 110, 111) <= spec.mask
        True
        >>> spec.hash3(1, 2, 3) == spec.hash3(1, 2, 3)
        True
        """
        s, m = self.shift, self.mask
        h = b0 & m
        h = ((h << s) ^ b1) & m
        h = ((h << s) ^ b2) & m
        return h


def hash_all(data: bytes, spec: HashSpec) -> List[int]:
    """Hash of every position ``p`` with ``p + 2 < len(data)``.

    Returns a plain Python list (fast scalar indexing in the match loop).
    Vectorised: three shifted views of the byte buffer are combined with
    the shift-XOR recurrence in whole-array operations.
    """
    n = len(data)
    if n < MIN_MATCH:
        return []
    if np is None:
        return _hash_all_scalar(data, spec)
    buf = np.frombuffer(data, dtype=np.uint8).astype(np.uint32)
    s = np.uint32(spec.shift)
    m = np.uint32(spec.mask)
    h = buf[:-2] & m
    h = ((h << s) ^ buf[1:-1]) & m
    h = ((h << s) ^ buf[2:]) & m
    return h.tolist()


def _hash_all_scalar(data: bytes, spec: HashSpec) -> List[int]:
    """Pure-Python :func:`hash_all` for numpy-less installs.

    Rolling evaluation: each position's hash extends the previous one
    by a single shift-XOR step, zlib's UPDATE_HASH, so the loop does
    one multiply-free update per byte instead of three.
    """
    s, m = spec.shift, spec.mask
    view = memoryview(data)
    h = ((view[0] << s) ^ view[1]) & m
    out = []
    append = out.append
    for byte in view[2:]:
        h = ((h << s) ^ byte) & m
        append(h)
    return out


def hash_all_array(data: bytes, spec: HashSpec):
    """:func:`hash_all` as a flat ``array('i')`` instead of a list.

    ``tolist()`` boxes every hash up front; the greedy parser only ever
    reads the positions it visits (one per token start plus the insert
    runs), so a buffer-level copy into ``array('i')`` is cheaper even
    though each read then boxes on access. Used by the trace-free fast
    path (:mod:`repro.lzss.fast`).
    """
    from array import array

    n = len(data)
    out = array("i")
    if n < MIN_MATCH:
        return out
    if np is None:
        out.extend(_hash_all_scalar(data, spec))
        return out
    buf = np.frombuffer(data, dtype=np.uint8).astype(np.uint32)
    s = np.uint32(spec.shift)
    m = np.uint32(spec.mask)
    h = buf[:-2] & m
    h = ((h << s) ^ buf[1:-1]) & m
    h = ((h << s) ^ buf[2:]) & m
    out.frombytes(h.astype(np.int32).tobytes())
    return out


class ChainTables:
    """Head/next tables over absolute positions.

    ``head[h]`` is the most recent position whose 3-byte hash is ``h``
    (-1 if none). ``prev[p & window_mask]`` is the previous position in
    ``p``'s chain. Entries older than the window alias by construction,
    but the matcher never follows a candidate farther than
    ``window - MIN_LOOKAHEAD`` back (ZLib's MAX_DIST), which makes
    aliasing unreachable — the same argument that lets the paper's
    hardware bound the head-table entry width to ``log2(D) + G`` bits.
    """

    __slots__ = ("head", "prev", "window_mask")

    def __init__(self, spec: HashSpec, window_size: int) -> None:
        if window_size & (window_size - 1):
            raise ConfigError(
                f"window size must be a power of two: {window_size}"
            )
        self.head: List[int] = [-1] * spec.table_size
        self.prev: List[int] = [-1] * window_size
        self.window_mask = window_size - 1

    def insert(self, pos: int, h: int) -> int:
        """Insert ``pos`` at the front of chain ``h``; return old head."""
        old = self.head[h]
        self.prev[pos & self.window_mask] = old
        self.head[h] = pos
        return old
