"""LZSS token stream decompression.

The decompressor mirrors §III's command semantics: literals append one
byte; a copy command re-reads ``length`` bytes starting ``distance``
bytes back, byte-by-byte so overlapping copies (``distance < length``,
the run-length case) replicate correctly.
"""

from __future__ import annotations

from typing import Iterable

from repro.errors import LZSSError
from repro.lzss.tokens import Literal, Match, Token, TokenArray


def decompress_tokens(tokens: Iterable[Token]) -> bytes:
    """Reconstruct the original bytes from a token stream."""
    out = bytearray()
    if isinstance(tokens, TokenArray):
        # Fast path over the columnar storage.
        for length, value in zip(tokens.lengths, tokens.values):
            if length == 0:
                out.append(value)
            else:
                _copy(out, length, value)
        return bytes(out)
    for token in tokens:
        if isinstance(token, Literal):
            out.append(token.value)
        elif isinstance(token, Match):
            _copy(out, token.length, token.distance)
        else:
            raise LZSSError(f"not a token: {token!r}")
    return bytes(out)


def _copy(out: bytearray, length: int, distance: int) -> None:
    start = len(out) - distance
    if start < 0:
        raise LZSSError(
            f"copy of distance {distance} reaches before the start "
            f"(only {len(out)} bytes emitted)"
        )
    if distance >= length:
        out.extend(out[start:start + length])
    else:
        # Overlapping copy: replicate byte-by-byte, as both the Deflate
        # spec and the hardware decompressor do.
        for i in range(length):
            out.append(out[start + i])
