"""Suffix-array exact-match tokenizer (``backend="sa"``).

The hash-chain datapath (the paper's §IV, and every other backend in
this registry) bounds match quality by ``max_chain``: the walk gives up
after a fixed number of candidates, so on chain-heavy data the reported
match is merely the best of a prefix of the candidate list. The two
Ferreira/Oliveira/Figueiredo suffix-array LZ papers (PAPERS.md, arXiv
0903.4251 / 0912.5449) replace the chain with an index that answers the
longest-previous-match query *exactly*: a suffix array over the search
buffer plus its LCP array, where the best previous occurrence of the
suffix at ``i`` is always an SA neighbour of ``rank[i]`` and the match
length is the running minimum of the LCP values between them.

This module implements that matcher as a drop-in tokenizer backend:

* **Suffix array** — prefix-doubling (Manber–Myers) built on numpy
  ``lexsort`` when numpy is usable, with a pure-Python doubling sort
  fallback so the backend never vanishes from the registry (the
  no-numpy CI job runs the same differential suite through it).
* **LCP array** — on the numpy path, vectorised binary lifting over the
  rank snapshots the doubling loop already produced (log n fully
  vectorised passes); on the fallback path, Kasai's O(n) scan.
* **Query** — from ``rank[i]`` walk outward in SA order in both
  directions, carrying the running-min LCP; skip entries outside the
  window (``j >= i`` or ``i - j > max_dist``) and stop as soon as the
  running min cannot beat the best match found (or a fixed step budget
  runs out — the "bounded LCP-interval walk"). Overlapping matches
  (length > distance) need no special casing: the LCP of two suffixes
  of the *same* buffer is exactly the valid copy length.

The buffer slides block-by-block: each rebuild covers the live window
(``max_dist`` bytes of history) plus a parse segment, so amortised
build cost per input byte is the cost of one sort of
``window + segment`` bytes every ``segment`` bytes.

Contract: **not** bit-identical to ``traced`` — it finds matches hash
chains miss — but every token stream decodes to the input
(round-trip differential suite in ``tests/lzss/test_sa_backend.py``)
and prices no worse than ``traced`` on the gated corpus.
"""

from __future__ import annotations

from array import array

from repro.lzss.tokens import (
    MAX_MATCH,
    MIN_LOOKAHEAD,
    MIN_MATCH,
    TokenArray,
)

#: Same constant as the lazy parsers in compressor.py / fast.py
#: (ZLib's TOO_FAR): a minimum-length match further back than this
#: costs more to encode than the three literals it replaces.
_TOO_FAR = 4096

#: Parse-segment length per suffix-array rebuild on the numpy path.
#: The built buffer is ``max_dist + _SEGMENT`` bytes; bigger segments
#: amortise the sort better but cost more peak memory.
_SEGMENT = 1 << 16

#: Parse-segment length for the pure-Python fallback builder (its
#: doubling sort is O(n log^2 n) with tuple keys — keep n small).
_SEGMENT_PY = 1 << 12

#: History cap for the pure-Python fallback. Searching less history
#: than the window allows is always *valid* (the stream still decodes;
#: some matches are just missed), and it keeps the fallback sorts off
#: the test suite's critical path. The numpy path searches the full
#: window.
_HISTORY_CAP_PY = 1 << 13

#: Budget of SA-order steps per direction per query. The running-min
#: LCP termination ends almost every walk in a handful of steps; the
#: budget bounds the pathological case (long runs of equal LCP whose
#: positions all fall outside the window — highly periodic data, where
#: a too-small budget measurably shortens the reported matches).
_WALK_BUDGET = 512

#: Budget per direction for :meth:`SuffixArrayMatcher.match_frontier`.
#: The frontier walk cannot use the can't-beat-best cutoff (it *wants*
#: shorter matches, at closer distances), so on plain text it would run
#: until the common prefix drops below ``MIN_MATCH`` — a fixed small
#: budget keeps the query cheap; the frontier is a best-effort set of
#: valid pairs, not an exhaustive one. 256 recovers the full
#: longest-match quality of ``_WALK_BUDGET`` on the gated corpus at
#: about a fifth of the unbounded walk cost.
_FRONTIER_BUDGET = 256


def supports(policy) -> bool:
    """The exact matcher accepts every policy.

    ``max_chain`` / ``good_length`` / ``nice_length`` are hash-chain
    *search* heuristics; the suffix array answers the search exactly, so
    they have nothing to bound. The parse shape (greedy vs lazy,
    ``max_lazy``) is honoured.
    """
    return True


def _numpy_or_none():
    """Version-gated numpy import (same floor as the vector kernel)."""
    from repro.lzss.backends import MIN_NUMPY

    try:
        import numpy
    except Exception:
        return None
    try:
        parts = numpy.__version__.split(".")
        version = (int(parts[0]), int(parts[1]))
    except (AttributeError, IndexError, ValueError):
        return None
    return numpy if version >= MIN_NUMPY else None


def _build_numpy(data: bytes, np):
    """(sa, rank, lcp) as Python lists, via prefix doubling + lifting.

    ``lcp[r]`` is the LCP of ``sa[r-1]`` and ``sa[r]`` (``lcp[0] == 0``).
    Rank snapshots from each doubling level are reused to compute all
    adjacent LCPs with vectorised binary lifting: at level ``m`` two
    suffixes share a ``2^m``-byte prefix iff their level-``m`` ranks are
    equal (the implicit end sentinel makes truncated prefixes compare
    unequal), so each level either advances every still-equal pair by
    ``2^m`` or leaves it for the finer levels.
    """
    n = len(data)
    rank = np.frombuffer(data, dtype=np.uint8).astype(np.int64)
    levels = [rank]
    k = 1
    order = rank.argsort(kind="stable")
    while True:
        key2 = np.full(n, -1, dtype=np.int64)
        key2[: n - k] = rank[k:]
        order = np.lexsort((key2, rank))
        r1 = rank[order]
        r2 = key2[order]
        changed = np.empty(n, dtype=np.int64)
        changed[0] = 0
        changed[1:] = ((r1[1:] != r1[:-1]) | (r2[1:] != r2[:-1])).cumsum()
        rank = np.empty(n, dtype=np.int64)
        rank[order] = changed
        levels.append(rank)
        k <<= 1
        if changed[-1] == n - 1 or k >= n:
            break
    sa = order
    # Adjacent-pair LCP by binary lifting over the rank snapshots.
    a = sa[:-1].copy()
    b = sa[1:].copy()
    lcp_adj = np.zeros(n - 1, dtype=np.int64)
    for m in range(len(levels) - 1, -1, -1):
        step = 1 << m
        ok = (a < n) & (b < n)
        snap = levels[m]
        ra = np.where(ok, snap[np.minimum(a, n - 1)], -2)
        rb = np.where(ok, snap[np.minimum(b, n - 1)], -3)
        eq = ra == rb
        lcp_adj += eq * step
        a += eq * step
        b += eq * step
    lcp = [0] * n
    lcp[1:] = lcp_adj.tolist()
    return sa.tolist(), rank.tolist(), lcp


def _build_python(data: bytes):
    """(sa, rank, lcp) in pure Python: doubling sort + Kasai."""
    n = len(data)
    sa = list(range(n))
    rank = list(data)
    k = 1
    while True:
        def key(i, _rank=rank, _k=k, _n=n):
            nxt = _rank[i + _k] if i + _k < _n else -1
            return (_rank[i], nxt)

        sa.sort(key=key)
        new = [0] * n
        prev_key = key(sa[0])
        r = 0
        for t in range(1, n):
            cur_key = key(sa[t])
            if cur_key != prev_key:
                r += 1
                prev_key = cur_key
            new[sa[t]] = r
        rank = new
        if r == n - 1 or k >= n:
            break
        k <<= 1
    lcp = [0] * n
    h = 0
    for i in range(n):
        r = rank[i]
        if r > 0:
            j = sa[r - 1]
            maxh = n - (i if i > j else j)
            while h < maxh and data[i + h] == data[j + h]:
                h += 1
            lcp[r] = h
            if h:
                h -= 1
        else:
            h = 0
    return sa, rank, lcp


class SuffixArrayMatcher:
    """Exact longest-previous-match queries over one fixed buffer.

    Built once per parse segment; :meth:`longest_match` then answers
    any number of queries against that buffer. ``max_dist`` bounds the
    distance of reported matches (ZLib's ``window - MIN_LOOKAHEAD``).
    """

    __slots__ = ("data", "n", "max_dist", "sa", "rank", "lcp")

    def __init__(self, data: bytes, max_dist: int, use_numpy=None) -> None:
        self.data = data
        self.n = len(data)
        self.max_dist = max_dist
        if self.n < 2:
            self.sa = list(range(self.n))
            self.rank = list(range(self.n))
            self.lcp = [0] * self.n
            return
        np = _numpy_or_none() if use_numpy in (None, True) else None
        if use_numpy is True and np is None:
            raise RuntimeError("numpy requested but not usable")
        if np is not None:
            self.sa, self.rank, self.lcp = _build_numpy(data, np)
        else:
            self.sa, self.rank, self.lcp = _build_python(data)

    def longest_match(self, i: int, limit: int):
        """Best ``(length, distance)`` for the suffix at ``i``.

        Sources are positions ``j < i`` with ``i - j <= max_dist``;
        the returned length is capped at ``limit``. ``(0, 0)`` when no
        match of at least ``MIN_MATCH`` exists. Ties on length prefer
        the smallest distance (cheaper distance code).
        """
        if limit < MIN_MATCH:
            return 0, 0
        sa = self.sa
        lcp = self.lcp
        lo_pos = i - self.max_dist
        r = self.rank[i]
        best_len = MIN_MATCH - 1
        best_dist = 0

        # Walk toward smaller ranks: lcp[q] joins sa[q-1] to sa[q].
        cur = limit
        q = r
        steps = _WALK_BUDGET
        while q > 0 and steps > 0:
            steps -= 1
            h = lcp[q]
            if h < cur:
                cur = h
            if cur < best_len or cur < MIN_MATCH:
                break
            q -= 1
            j = sa[q]
            if j < i and j >= lo_pos:
                if cur > best_len:
                    best_len = cur
                    best_dist = i - j
                elif i - j < best_dist:
                    # The break above guarantees cur == best_len here:
                    # a genuine tie, and the closer source wins. No
                    # best_len >= limit early exit — an equal-length
                    # match at a smaller distance may still follow.
                    best_dist = i - j
                if best_dist == 1:
                    break

        # Walk toward larger ranks: lcp[q+1] joins sa[q] to sa[q+1].
        # Runs even when the first direction reached ``limit`` — this
        # side may hold an equal-length match at a smaller distance —
        # unless the first direction is already unbeatable (full-limit
        # length at distance 1).
        if not (best_dist == 1 and best_len >= limit):
            cur = limit
            q = r
            steps = _WALK_BUDGET
            top = self.n - 1
            while q < top and steps > 0:
                steps -= 1
                h = lcp[q + 1]
                if h < cur:
                    cur = h
                if cur < best_len or cur < MIN_MATCH:
                    break
                q += 1
                j = sa[q]
                if j < i and j >= lo_pos:
                    if cur > best_len:
                        best_len = cur
                        best_dist = i - j
                    elif i - j < best_dist:
                        best_dist = i - j
                    if best_dist == 1:
                        break

        if best_len < MIN_MATCH:
            return 0, 0
        return best_len, best_dist

    def match_frontier(self, i: int, limit: int):
        """Pareto pairs ``(length, distance)`` for the suffix at ``i``.

        Every returned pair is a valid match (``data[i - dist:]`` really
        shares ``length`` bytes with ``data[i:]``); the list is sorted
        by descending length with strictly increasing cheapness — a
        shorter length appears only with a strictly smaller distance
        than every longer one. A price-aware parser can then trade match
        length against distance-code cost instead of being handed only
        the single longest match.

        Unlike :meth:`longest_match` the walk keeps going after the
        running-min LCP falls below the best length (that is where the
        close-but-shorter pairs live), so it is bounded by the smaller
        ``_FRONTIER_BUDGET``; the result is best-effort, not exhaustive.
        Returns ``[]`` when no match of ``MIN_MATCH`` exists.
        """
        if limit < MIN_MATCH:
            return []
        sa = self.sa
        lcp = self.lcp
        lo_pos = i - self.max_dist
        r = self.rank[i]
        pairs = []

        cur = limit
        q = r
        steps = _FRONTIER_BUDGET
        near = self.max_dist + 1  # min distance seen this direction
        while q > 0 and steps > 0:
            steps -= 1
            h = lcp[q]
            if h < cur:
                cur = h
            if cur < MIN_MATCH:
                break
            q -= 1
            j = sa[q]
            if j < i and j >= lo_pos:
                dist = i - j
                if dist < near:
                    near = dist
                    pairs.append((cur, dist))
                    if dist == 1:
                        break

        cur = limit
        q = r
        steps = _FRONTIER_BUDGET
        near = self.max_dist + 1
        top = self.n - 1
        while q < top and steps > 0:
            steps -= 1
            h = lcp[q + 1]
            if h < cur:
                cur = h
            if cur < MIN_MATCH:
                break
            q += 1
            j = sa[q]
            if j < i and j >= lo_pos:
                dist = i - j
                if dist < near:
                    near = dist
                    pairs.append((cur, dist))
                    if dist == 1:
                        break

        if not pairs:
            return []
        # Merge both directions into one Pareto frontier: sort longest
        # first (closest breaks ties), keep strictly closer survivors.
        pairs.sort(key=lambda p: (-p[0], p[1]))
        frontier = []
        near = 1 << 30
        for length, dist in pairs:
            if dist < near:
                near = dist
                frontier.append((length, dist))
        return frontier


def compress_sa(data, window_size, hash_spec, policy) -> TokenArray:
    """Tokenise ``data`` with exact suffix-array matching.

    Registry-callable signature (``hash_spec`` is accepted for
    uniformity and ignored — there is no hash table to shape).
    Dispatches on ``policy.lazy`` like every other backend.
    """
    tokens = TokenArray()
    n = len(data)
    if n == 0:
        return tokens
    data = bytes(data)
    max_dist = window_size - MIN_LOOKAHEAD
    out_lengths: list = []
    out_values: list = []
    if max_dist < 1:
        # Window too small to ever reference history (ZLib's
        # MIN_LOOKAHEAD rule) — the stream is all literals.
        out_lengths = [0] * n
        out_values = list(data)
        tokens.lengths = array("i", out_lengths)
        tokens.values = array("i", out_values)
        return tokens
    use_np = _numpy_or_none() is not None
    segment = _SEGMENT if use_np else _SEGMENT_PY
    history = max_dist if use_np else min(max_dist, _HISTORY_CAP_PY)
    parse = _parse_lazy if policy.lazy else _parse_greedy

    pos = 0
    while pos < n:
        base = pos - history
        if base < 0:
            base = 0
        stop = pos + segment
        if stop > n:
            stop = n
        buf = data[base:stop]
        matcher = SuffixArrayMatcher(buf, max_dist, use_numpy=use_np)
        local_n = len(buf)
        # Stop the parse far enough from the buffer edge that no limit
        # is ever truncated mid-stream; the final segment runs to the
        # true end of input.
        guard = local_n if stop == n else local_n - MAX_MATCH
        done = parse(out_lengths, out_values, buf, matcher,
                     pos - base, guard, policy)
        pos = base + done
    tokens.lengths = array("i", out_lengths)
    tokens.values = array("i", out_values)
    return tokens


def _parse_greedy(out_lengths, out_values, buf, matcher, start, guard,
                  policy):
    """deflate_fast shape: take the best match at each position."""
    lengths_append = out_lengths.append
    values_append = out_values.append
    lm = matcher.longest_match
    n = len(buf)
    pos = start
    while pos < guard:
        limit = n - pos
        if limit > MAX_MATCH:
            limit = MAX_MATCH
        length, dist = lm(pos, limit)
        if length == MIN_MATCH and dist > _TOO_FAR:
            length = 0
        if length >= MIN_MATCH:
            lengths_append(length)
            values_append(dist)
            pos += length
        else:
            lengths_append(0)
            values_append(buf[pos])
            pos += 1
    return pos


def _parse_lazy(out_lengths, out_values, buf, matcher, start, guard,
                policy):
    """deflate_slow shape: defer one position, keep the better match.

    At a non-final segment boundary the pending decision is committed
    greedily (a valid parse — the next segment resumes from wherever
    the commit consumed to).
    """
    lengths_append = out_lengths.append
    values_append = out_values.append
    lm = matcher.longest_match
    max_lazy = policy.max_lazy
    n = len(buf)
    pos = start
    prev_len = 0
    prev_dist = 0
    have_prev = False
    while pos < guard:
        cur_len = 0
        cur_dist = 0
        if prev_len < max_lazy:
            limit = n - pos
            if limit > MAX_MATCH:
                limit = MAX_MATCH
            cur_len, cur_dist = lm(pos, limit)
            if cur_len == MIN_MATCH and cur_dist > _TOO_FAR:
                cur_len = 0
        if have_prev and prev_len >= MIN_MATCH and prev_len >= cur_len:
            lengths_append(prev_len)
            values_append(prev_dist)
            pos = pos - 1 + prev_len
            have_prev = False
            prev_len = 0
            prev_dist = 0
        else:
            if have_prev:
                lengths_append(0)
                values_append(buf[pos - 1])
            have_prev = True
            prev_len = cur_len
            prev_dist = cur_dist
            pos += 1
    if have_prev:
        if prev_len >= MIN_MATCH:
            lengths_append(prev_len)
            values_append(prev_dist)
            pos = pos - 1 + prev_len
        else:
            lengths_append(0)
            values_append(buf[pos - 1])
    return pos
