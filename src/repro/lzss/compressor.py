"""LZSS compression: greedy (deflate_fast) and lazy (deflate_slow) parsing.

The greedy parser is the algorithm the paper's hardware FSM executes: at
each step it searches the chain for the lookahead front, emits either a
copy command or a literal, optionally inserts every byte of a short
match into the hash table, and advances. The lazy parser is ZLib's
deflate_slow, used by the software baseline at levels 4-9 and by the
"what if" estimator comparisons.

Both parsers record a :class:`~repro.lzss.trace.MatchTrace`. For the
greedy parser the trace has exactly one row per emitted token, which is
what the hardware cycle model consumes; for the lazy parser rows are per
*search* (lazy evaluation searches at every input position), which is
what the software cost model consumes.

Callers that only want tokens out (the production compressors in
:mod:`repro.deflate` and :mod:`repro.parallel`) select a trace-free
backend (``backend="fast"``, ``"vector"`` or ``"sa"``, see
:mod:`repro.lzss.backends`): compression dispatches to the registered
tokenizer and ``CompressResult.trace`` is ``None``. The removed
``trace=`` boolean now raises :class:`~repro.errors.ConfigError` with
the exact replacement.

Knob resolution goes through :class:`repro.api.CompressRequest` — the
single precedence implementation shared by every entry point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import ConfigError
from repro.lzss.backends import tokenizer
from repro.lzss.hashchain import ChainTables, HashSpec, hash_all
from repro.lzss.matcher import longest_match
from repro.lzss.policy import MatchPolicy
from repro.lzss.tokens import (
    MAX_MATCH,
    MIN_LOOKAHEAD,
    MIN_MATCH,
    TokenArray,
)
from repro.lzss.trace import MatchTrace

#: ZLib's TOO_FAR: minimum-length matches farther back than this are not
#: worth a length/distance pair under lazy evaluation.
TOO_FAR = 4096


@dataclass
class CompressResult:
    """Output of one LZSS compression pass.

    ``trace`` is ``None`` when the pass ran on a trace-free backend;
    the cost models require a traced pass. ``backend`` records the
    concrete backend that actually ran (after ``auto`` resolution and
    any silent vector -> fast fallback).
    """

    tokens: TokenArray
    trace: Optional[MatchTrace]
    window_size: int
    policy: MatchPolicy
    hash_spec: HashSpec
    input_size: int = 0
    backend: str = "traced"

    @property
    def token_count(self) -> int:
        return len(self.tokens)


class LZSSCompressor:
    """Configurable LZSS token-stream producer.

    Parameters
    ----------
    window_size:
        Dictionary (sliding window) size in bytes; power of two between
        256 and 32768 (Deflate's distance limit).
    hash_spec:
        Hash function configuration (bit count / shift).
    policy:
        Match search policy (chain limits, greedy/lazy, insert limit).
    backend:
        Which tokenizer runs (see :mod:`repro.lzss.backends`):
        ``"traced"`` (default) records a :class:`MatchTrace` for the
        cost models; ``"fast"``, ``"vector"`` and ``"sa"`` are the
        trace-free production paths; ``"auto"`` picks the fastest
        available for the policy.
    profile:
        A preset name or :class:`~repro.profile.CompressionProfile`;
        explicit keyword arguments win over its fields
        (:class:`repro.api.CompressRequest` resolution).
    trace:
        Removed boolean equivalent of ``backend``; passing it raises
        :class:`~repro.errors.ConfigError` naming the replacement.
    """

    def __init__(
        self,
        window_size: Optional[int] = None,
        hash_spec: Optional[HashSpec] = None,
        policy: Optional[MatchPolicy] = None,
        trace: Optional[bool] = None,
        backend: Optional[str] = None,
        profile=None,
    ) -> None:
        from repro.api import CompressRequest, reject_legacy_trace

        reject_legacy_trace("trace", trace)
        resolved = CompressRequest(
            profile=profile,
            window_size=window_size,
            hash_spec=hash_spec,
            policy=policy,
            backend=backend,
        ).resolve(backend="traced", hash_spec=HashSpec(),
                  policy=MatchPolicy())
        window_size = resolved.window_size
        if window_size & (window_size - 1) or not 256 <= window_size <= 32768:
            raise ConfigError(
                "window_size must be a power of two in [256, 32768]: "
                f"{window_size}"
            )
        self.window_size = window_size
        self.hash_spec = resolved.hash_spec or HashSpec()
        self.policy = resolved.policy or MatchPolicy()
        self.backend = resolved.backend
        # ZLib's MAX_DIST: never match farther back than this, which also
        # makes chain-table aliasing unreachable (see ChainTables).
        self.max_dist = window_size - MIN_LOOKAHEAD
        if self.max_dist < 1:
            raise ConfigError(
                f"window_size {window_size} leaves no usable distance "
                f"(MIN_LOOKAHEAD={MIN_LOOKAHEAD})"
            )

    @property
    def trace(self) -> bool:
        """Whether this compressor runs the instrumented traced path."""
        return self.backend == "traced"

    def compress(
        self,
        data: bytes,
        trace: Optional[bool] = None,
        backend: Optional[str] = None,
    ) -> CompressResult:
        """Produce the token stream (and, on ``traced``, the trace).

        ``backend`` overrides the compressor-level setting for this
        call; ``None`` keeps it. The removed ``trace=`` boolean raises
        :class:`~repro.errors.ConfigError`.
        """
        from repro.api import reject_legacy_trace

        reject_legacy_trace("trace", trace)
        data = bytes(data)
        requested = backend if backend is not None else self.backend
        name, fn = tokenizer(requested, self.policy)
        if fn is not None:
            tokens = fn(data, self.window_size, self.hash_spec, self.policy)
            return CompressResult(
                tokens=tokens,
                trace=None,
                window_size=self.window_size,
                policy=self.policy,
                hash_spec=self.hash_spec,
                input_size=len(data),
                backend=name,
            )
        if self.policy.lazy:
            tokens, trace_rec = self._compress_lazy(data)
        else:
            tokens, trace_rec = self._compress_greedy(data)
        trace_rec.input_size = len(data)
        return CompressResult(
            tokens=tokens,
            trace=trace_rec,
            window_size=self.window_size,
            policy=self.policy,
            hash_spec=self.hash_spec,
            input_size=len(data),
            backend=name,
        )

    # ------------------------------------------------------------------
    # greedy (deflate_fast / the paper's hardware FSM)
    # ------------------------------------------------------------------

    def _compress_greedy(self, data: bytes):
        tokens = TokenArray()
        trace = MatchTrace()
        n = len(data)
        if n == 0:
            return tokens, trace
        pol = self.policy
        hashes = hash_all(data, self.hash_spec)
        tables = ChainTables(self.hash_spec, self.window_size)
        head = tables.head
        prev = tables.prev
        wmask = tables.window_mask
        max_dist = self.max_dist
        hash_limit = n - MIN_MATCH  # last position with a defined hash

        pos = 0
        while pos < n:
            if pos > hash_limit:
                # Tail shorter than MIN_MATCH: literals, no search.
                tokens.append_literal(data[pos])
                trace.record(0, 1, 0, 0, 0, 0)
                pos += 1
                continue
            h = hashes[pos]
            first_cand = head[h]
            # PREPARE state: the head/next tables are updated for `pos`
            # in the same cycle the first candidate address is fetched.
            prev[pos & wmask] = first_cand
            head[h] = pos

            limit = min(MAX_MATCH, n - pos)
            best_len, best_dist, iters, c4, c1 = longest_match(
                data,
                pos,
                first_cand,
                prev,
                wmask,
                max_dist,
                limit,
                pol.max_chain,
                pol.good_length,
                pol.nice_length,
            )
            if best_len >= MIN_MATCH:
                tokens.append_match(best_len, best_dist)
                inserted = 0
                if best_len <= pol.max_insert_length:
                    # UPDATE state: insert every remaining byte of the
                    # match, one cycle each (§IV).
                    stop = min(pos + best_len, hash_limit + 1)
                    for q in range(pos + 1, stop):
                        hq = hashes[q]
                        prev[q & wmask] = head[hq]
                        head[hq] = q
                        inserted += 1
                trace.record(1, best_len, iters, c4, c1, inserted)
                pos += best_len
            else:
                tokens.append_literal(data[pos])
                trace.record(0, 1, iters, c4, c1, 0)
                pos += 1
        return tokens, trace

    # ------------------------------------------------------------------
    # lazy (deflate_slow, software levels 4-9)
    # ------------------------------------------------------------------

    def _compress_lazy(self, data: bytes):
        tokens = TokenArray()
        trace = MatchTrace()
        n = len(data)
        if n == 0:
            return tokens, trace
        pol = self.policy
        hashes = hash_all(data, self.hash_spec)
        tables = ChainTables(self.hash_spec, self.window_size)
        head = tables.head
        prev = tables.prev
        wmask = tables.window_mask
        max_dist = self.max_dist
        hash_limit = n - MIN_MATCH

        pos = 0
        prev_len = MIN_MATCH - 1
        prev_dist = 0
        have_prev = False  # a byte at pos-1 awaits a decision
        while pos < n:
            cur_len = MIN_MATCH - 1
            cur_dist = 0
            if pos <= hash_limit:
                h = hashes[pos]
                first_cand = head[h]
                prev[pos & wmask] = first_cand
                head[h] = pos
                if prev_len < pol.max_lazy:
                    limit = min(MAX_MATCH, n - pos)
                    chain = pol.max_chain
                    if prev_len >= pol.good_length:
                        # ZLib: a good previous match shrinks this
                        # position's budget up front.
                        chain >>= 2
                    cur_len, cur_dist, iters, c4, c1 = longest_match(
                        data,
                        pos,
                        first_cand,
                        prev,
                        wmask,
                        max_dist,
                        limit,
                        chain,
                        pol.good_length,
                        pol.nice_length,
                    )
                    trace.record(
                        1 if cur_len >= MIN_MATCH else 0,
                        max(cur_len, 1),
                        iters,
                        c4,
                        c1,
                        0,
                    )
                    if cur_len == MIN_MATCH and cur_dist > TOO_FAR:
                        cur_len = MIN_MATCH - 1

            if have_prev and prev_len >= MIN_MATCH and prev_len >= cur_len:
                # The match starting at pos-1 wins: emit it, then insert
                # the remaining bytes it covers.
                tokens.append_match(prev_len, prev_dist)
                stop = min(pos - 1 + prev_len, hash_limit + 1)
                for q in range(pos + 1, stop):
                    hq = hashes[q]
                    prev[q & wmask] = head[hq]
                    head[hq] = q
                pos = pos - 1 + prev_len
                have_prev = False
                prev_len = MIN_MATCH - 1
                prev_dist = 0
            else:
                if have_prev:
                    tokens.append_literal(data[pos - 1])
                have_prev = True
                prev_len = cur_len
                prev_dist = cur_dist
                pos += 1
        if have_prev:
            tokens.append_literal(data[n - 1])
        return tokens, trace


def compress_tokens(
    data: bytes,
    window_size: Optional[int] = None,
    hash_spec: Optional[HashSpec] = None,
    policy: Optional[MatchPolicy] = None,
    trace: Optional[bool] = None,
    backend: Optional[str] = None,
    profile=None,
) -> CompressResult:
    """One-shot convenience wrapper around :class:`LZSSCompressor`."""
    from repro.api import reject_legacy_trace

    reject_legacy_trace("trace", trace)
    return LZSSCompressor(
        window_size, hash_spec, policy, backend=backend, profile=profile,
    ).compress(data)
