"""Longest-match search over the hash chains.

This module isolates the two primitives shared by every parsing mode:

* :func:`match_length` — prefix comparison between two positions of the
  same buffer (overlap-safe, which is what makes run-length style
  matches with ``distance < length`` work);
* :func:`longest_match` — ZLib's ``longest_match`` walk over a hash
  chain, additionally accounting the *hardware* comparison cost of every
  candidate: the paper's comparator always starts at the front of the
  lookahead buffer and reads ``(examined-1)//4 + 1`` cycles on the
  32-bit buses (§IV), or ``examined`` cycles on the 8-bit baseline bus.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.lzss.tokens import MIN_MATCH

_CHUNK = 8


def match_length(data: bytes, cand: int, pos: int, limit: int) -> int:
    """Length of the common prefix of ``data[cand:]`` and ``data[pos:]``.

    ``limit`` caps the result (min of MAX_MATCH and remaining input).
    Chunked slice comparison keeps the loop in C for long prefixes.
    Overlap is fine — the run-length case compares a position against
    the byte right before it:

    >>> match_length(b"abcdXabcdY", 0, 5, 5)
    4
    >>> match_length(b"aaaaaaaa", 0, 1, 7)
    7
    """
    k = 0
    while (
        k + _CHUNK <= limit
        and data[cand + k:cand + k + _CHUNK] == data[pos + k:pos + k + _CHUNK]
    ):
        k += _CHUNK
    while k < limit and data[cand + k] == data[pos + k]:
        k += 1
    return k


def longest_match(
    data: bytes,
    pos: int,
    first_cand: int,
    prev: List[int],
    window_mask: int,
    max_dist: int,
    limit: int,
    max_chain: int,
    good_length: int,
    nice_length: int,
) -> Tuple[int, int, int, int, int]:
    """Walk the chain starting at ``first_cand``.

    Returns ``(best_len, best_dist, iters, cycles_w4, cycles_w1)``:
    the longest match found (``best_len < MIN_MATCH`` means none usable),
    the number of candidates examined, and the hardware comparator cycle
    totals for 32-bit and 8-bit data buses.
    """
    best_len = MIN_MATCH - 1
    best_dist = 0
    iters = 0
    cycles_w4 = 0
    cycles_w1 = 0
    chain = max_chain
    cand = first_cand
    min_pos = pos - max_dist
    while cand >= min_pos and cand >= 0 and chain > 0:
        chain -= 1
        iters += 1
        k = match_length(data, cand, pos, limit)
        # Bytes the comparator examines: the matched prefix plus the
        # mismatching byte, unless the compare ran into the cap.
        examined = k + 1 if k < limit else k
        # The paper's wide-bus compare cost: "1 to 4 bytes during the
        # first clock cycle and exactly 4 bytes during each following
        # one ... (50-1)/4 + 1 = 14 clock cycles" — i.e. worst-case
        # alignment, 1 + ceil((examined-1)/4).
        cycles_w4 += 1 + (examined + 2) // 4
        cycles_w1 += examined
        if k > best_len:
            best_len = k
            best_dist = pos - cand
            if k >= nice_length or k >= limit:
                break
            if k >= good_length:
                # ZLib heuristic: a good match quarters the remaining
                # search budget.
                chain >>= 2
        cand = prev[cand & window_mask]
    return best_len, best_dist, iters, cycles_w4, cycles_w1
