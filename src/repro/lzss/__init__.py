"""LZSS core: the ZLib-variant algorithm described in §III of the paper.

The compressor consumes a byte stream and produces decompressor commands
of two kinds: *output literal* and *copy L bytes from distance D*. Match
search uses ZLib's head/next hash-chain structure, which is also exactly
the structure the paper's hardware implements in block RAMs.

Key entry points:

* :class:`LZSSCompressor` / :func:`compress_tokens` — token stream
  production with selectable :class:`MatchPolicy` (greedy or lazy);
  ``backend=`` selects the tokenizer (``traced``, the pure-Python
  ``fast`` path, the numpy ``vector`` kernel — those three are
  bit-identical — or the suffix-array ``sa`` exact matcher, which
  trades token identity for ratio; see :mod:`repro.lzss.backends`).
* :func:`decompress_tokens` — token stream back to bytes.
* :class:`TokenArray` — compact token storage.
* :class:`MatchTrace` — per-token search cost record consumed by the
  hardware and software cost models (DESIGN.md §4.1).
* :mod:`repro.lzss.raw_format` — the paper's raw D/L bit-level command
  format (§III), independent of the Deflate encoding.
"""

from repro.lzss.tokens import (
    Literal,
    Match,
    Token,
    TokenArray,
    MAX_MATCH,
    MIN_MATCH,
)
from repro.lzss.policy import MatchPolicy, ZLIB_LEVELS, policy_for_level
from repro.lzss.compressor import LZSSCompressor, CompressResult, compress_tokens
from repro.lzss.decompressor import decompress_tokens
from repro.lzss.fast import compress_fast
from repro.lzss.sa import compress_sa
from repro.lzss.vector import compress_vector
from repro.lzss import backends
from repro.lzss.trace import MatchTrace

__all__ = [
    "backends",
    "compress_sa",
    "compress_vector",
    "Literal",
    "Match",
    "Token",
    "TokenArray",
    "MAX_MATCH",
    "MIN_MATCH",
    "MatchPolicy",
    "ZLIB_LEVELS",
    "policy_for_level",
    "LZSSCompressor",
    "CompressResult",
    "compress_tokens",
    "compress_fast",
    "decompress_tokens",
    "MatchTrace",
]
