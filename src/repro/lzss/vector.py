"""NumPy-vectorised longest-match tokenizer (the ``vector`` backend).

:mod:`repro.lzss.fast` removes the trace bookkeeping but still walks
hash chains one candidate at a time in Python bytecode. This module
widens the datapath instead — the software analogue of the paper's
32-bit data buses ("1 to 4 bytes during the first clock cycle and
exactly 4 bytes during each following one", §IV) — by scoring *many*
chain candidates per NumPy operation:

1. **Batched hash computation.** Every position's 3-byte shift-XOR hash
   is computed in one whole-array pass (the paper's hash cache).
2. **Wholesale chain construction.** For insert-all configurations
   (every position enters the hash table: all lazy policies, and greedy
   with ``max_insert_length >= MAX_MATCH``) the chain predecessor of a
   position is simply the previous position with the same hash. One
   stable argsort of the hash array yields the entire ``prev`` table —
   no incremental head/next updates during parsing at all.
3. **Batched candidate scoring.** The chain walk runs with the *chain
   step* as the outer loop and all still-searching positions as the
   inner (vectorised) axis: each round gathers one candidate per active
   position, screens it with a single 4-byte word compare, extends the
   survivors in 4-byte strides (cumulative-equality first-mismatch),
   and applies ZLib's ``good_length``/``nice_length``/budget heuristics
   as array updates. Positions leave the active set exactly when the
   scalar walk would have broken out of its loop.
4. **Sequential replay.** A lean Python loop turns the per-position
   best matches into the greedy or lazy token stream; with the chains
   precomputed there is no per-byte insertion work left here.

Token output is **bit-identical** to the traced oracle and the fast
path for every supported configuration —
``tests/properties/test_fast_differential.py`` holds the three-way line
with Hypothesis. Greedy policies with ``max_insert_length < MAX_MATCH``
(ZLib levels 1-3, the hardware-speed preset) skip hash insertion for
long matches, so their chain topology depends on parse decisions and
cannot be precomputed; :func:`supports` reports ``False`` and
:func:`compress_vector` transparently delegates those to the scalar
fast kernel.

This module must import without NumPy present —
:mod:`repro.lzss.backends` probes availability at runtime and resolves
``"vector"`` to ``"fast"`` when the probe fails.
"""

from __future__ import annotations

try:  # probe-gated: repro.lzss.backends decides whether we are used
    import numpy as np
except ImportError:  # pragma: no cover - exercised by the no-numpy CI job
    np = None

from array import array

from repro.lzss.tokens import (
    MAX_MATCH,
    MIN_LOOKAHEAD,
    MIN_MATCH,
    TokenArray,
)

#: Same constant as the scalar lazy parsers (ZLib's TOO_FAR).
_TOO_FAR = 4096


def supports(policy) -> bool:
    """Whether the vectorised kernel applies to ``policy``.

    Lazy parsing inserts every scanned position into the hash table, so
    the chain topology is parse-independent and precomputable. Greedy
    parsing only qualifies when ``max_insert_length`` cannot exclude any
    match from insertion.
    """
    return bool(policy.lazy) or policy.max_insert_length >= MAX_MATCH


def compress_vector(data, window_size, hash_spec, policy) -> TokenArray:
    """Tokenise ``data`` with the vectorised matcher.

    Bit-identical to :func:`repro.lzss.fast.compress_fast` (and hence to
    the traced oracle) for every configuration; unsupported greedy
    configurations and a missing NumPy delegate to the scalar kernel.
    """
    if np is None or not supports(policy):
        from repro.lzss.fast import compress_fast

        return compress_fast(data, window_size, hash_spec, policy)
    tokens = TokenArray()
    n = len(data)
    if n == 0:
        return tokens
    if n < MIN_MATCH + 1:
        # Too short for any match: all literals, skip the array setup.
        for byte in data:
            tokens.append_literal(byte)
        return tokens

    buf = np.frombuffer(data, dtype=np.uint8)
    hashes = _hash_all_np(buf, hash_spec)
    prev_all, rank = _prev_occurrence(hashes)
    words4 = _words4(buf)
    max_dist = window_size - MIN_LOOKAHEAD
    cache = {}  # sub-chain tables, shared between the two lazy passes

    if policy.lazy:
        full_len, full_dist = _batch_matches(
            buf, words4, prev_all, rank, n, max_dist,
            policy.max_chain, policy.good_length, policy.nice_length,
            cache,
        )
        # A good previous match quarters the chain budget *before* the
        # search (deflate_slow); that variant is only consulted when
        # prev_len can be in [good_length, max_lazy).
        quart_chain = policy.max_chain >> 2
        need_quart = quart_chain > 0 and policy.good_length < policy.max_lazy
        if need_quart:
            quart_len, quart_dist = _batch_matches(
                buf, words4, prev_all, rank, n, max_dist,
                quart_chain, policy.good_length, policy.nice_length,
                cache,
            )
        else:
            quart_len = quart_dist = None
        return _replay_lazy(
            data, n, policy,
            full_len, full_dist, quart_len, quart_dist,
        )

    if policy.max_chain == 1:
        best_len, best_dist = _single_chain_matches(
            _padded_words8(buf), prev_all, n, max_dist
        )
    else:
        best_len, best_dist = _batch_matches(
            buf, words4, prev_all, rank, n, max_dist,
            policy.max_chain, policy.good_length, policy.nice_length,
            cache,
        )
    return _replay_greedy(data, n, best_len, best_dist)


# ----------------------------------------------------------------------
# whole-buffer precomputation
# ----------------------------------------------------------------------


def _hash_all_np(buf, spec):
    """3-byte shift-XOR hash of every position, one whole-array pass.

    Same recurrence as :func:`repro.lzss.hashchain.hash_all`, kept as a
    NumPy array (the argsort below consumes it directly — no boxing).
    """
    b = buf.astype(np.uint32)
    s = np.uint32(spec.shift)
    m = np.uint32(spec.mask)
    h = b[:-2] & m
    h = ((h << s) ^ b[1:-1]) & m
    h = ((h << s) ^ b[2:]) & m
    return h


def _prev_from_keys(keys, pos_bits, want_rank=True):
    """prev/rank tables from packed ``(bucket << pos_bits) | pos`` keys.

    Sorting the packed keys groups equal buckets while preserving
    position order (a counting-sort-stable grouping at plain
    ``np.sort`` speed — measurably faster than a stable argsort); the
    predecessor within each group is then a shifted view.

    ``rank`` is consumed only by the sub-chain budget arithmetic, so
    single-candidate callers pass ``want_rank=False`` to skip its
    scatter and get ``None`` back.
    """
    keys.sort()
    mask = np.uint64((1 << pos_bits) - 1)
    shift = np.uint64(pos_bits)
    order = (keys & mask).astype(np.int64)
    prev_sorted = np.empty_like(order)
    if order.size:
        prev_sorted[0] = -1
        same = (keys[1:] >> shift) == (keys[:-1] >> shift)
        prev_sorted[1:] = np.where(same, order[:-1], np.int64(-1))
    prev_all = np.empty_like(order)
    prev_all[order] = prev_sorted
    if not want_rank:
        return prev_all, None
    rank = np.empty_like(order)
    rank[order] = np.arange(order.size, dtype=np.int64)
    return prev_all, rank


def _prev_occurrence(hashes):
    """``prev[p]`` = nearest ``q < p`` with ``hashes[q] == hashes[p]``.

    For insert-all configurations this *is* the hash chain: the head
    table entry a position sees in its PREPARE step is exactly the
    previous occurrence of its own hash, and following ``prev``
    repeatedly reproduces the incremental head/next walk (ring aliasing
    is unreachable within the distance limit, the same argument
    :class:`repro.lzss.hashchain.ChainTables` makes).

    Also returns ``rank`` — each position's index in the hash-sorted
    order. Within one bucket the rank difference between two members is
    exactly the number of chain links between them, which is what lets
    the sub-chain walks account chain budget without stepping every
    link.
    """
    keys = (hashes.astype(np.uint64) << np.uint64(42)) | np.arange(
        hashes.size, dtype=np.uint64
    )
    return _prev_from_keys(keys, 42)


def _prev_occurrence_batch(hashes, seg_pos, seam, table_size,
                           want_rank=True):
    """Segment-masked hash chains over a packed multi-payload buffer.

    ``seg_pos[p]`` is the segment id owning byte ``p`` and ``seam``
    marks positions whose 3-byte hash window crosses their segment end.
    Chains are built per ``(segment, hash)`` bucket, so no chain ever
    links across a payload seam; seam positions get a private bucket
    each (chain-less, match-less — exactly the positions the scalar
    per-payload parser never hashes).
    """
    count = hashes.size
    if count == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty.copy()
    bucket = (
        seg_pos[:count].astype(np.uint64) * np.uint64(table_size)
        + hashes.astype(np.uint64)
    )
    sentinel_base = np.uint64((int(seg_pos[count - 1]) + 1) * table_size)
    seam_at = np.flatnonzero(seam[:count])
    bucket[seam_at] = sentinel_base + seam_at.astype(np.uint64)
    pos_bits = max(1, int(count - 1).bit_length())
    max_bucket = int(sentinel_base) + count
    if max_bucket.bit_length() + pos_bits > 64:
        raise OverflowError(
            "packed batch too large for 64-bit chain keys; "
            "chunk the batch (repro.parallel.batch)"
        )
    keys = (bucket << np.uint64(pos_bits)) | np.arange(
        count, dtype=np.uint64
    )
    return _prev_from_keys(keys, pos_bits, want_rank=want_rank)


def _words4(buf):
    """Little-endian 4-byte word starting at every position (n-3 of them).

    The batched compare ladder screens candidates with one gathered
    word-equality test — the software rendition of the paper's 32-bit
    compare bus reading 4 bytes per cycle.
    """
    if buf.size < 4:
        return np.empty(0, dtype=np.uint32)
    b = buf.astype(np.uint32)
    return (
        b[:-3]
        | (b[1:-2] << np.uint32(8))
        | (b[2:-1] << np.uint32(16))
        | (b[3:] << np.uint32(24))
    )


def _words8(words4):
    """Little-endian 8-byte word starting at every position (n-7)."""
    if words4.size < 5:
        return np.empty(0, dtype=np.uint64)
    w = words4.astype(np.uint64)
    return w[:-4] | (w[4:] << np.uint64(32))


def _sub_prev(keys):
    """Previous same-key occurrence for arbitrary keys (sub-chains)."""
    prev = np.full(keys.size, -1, dtype=np.int64)
    if keys.size < 2:
        return prev
    order = np.argsort(keys, kind="stable").astype(np.int64)
    prev_sorted = np.empty_like(order)
    prev_sorted[0] = -1
    same = keys[order[1:]] == keys[order[:-1]]
    prev_sorted[1:] = np.where(same, order[:-1], np.int64(-1))
    prev[order] = prev_sorted
    return prev


def _sub_chain(cache, words4, width):
    """Chain over positions sharing their first ``width`` bytes.

    ``width == 8`` groups by the exact 8-byte word; wider levels group
    by a mixed hash of the constituent words — a collision links two
    positions that are not truly prefix-equal, which the walk detects with
    its word verification and skips, so collisions cost a wasted step,
    never a wrong token.
    """
    key = ("prev", width)
    if key not in cache:
        if "w8" not in cache:
            cache["w8"] = _words8(words4)
        w8 = cache["w8"]
        span = width - 8
        if w8.size <= span:
            keys = np.empty(0, dtype=np.uint64)
        elif width == 8:
            keys = w8
        else:
            mix = np.uint64(0x9E3779B97F4A7C15)
            keys = w8[: w8.size - span].copy()
            for off in range(8, width, 8):
                keys *= mix
                keys += w8[off : w8.size - span + off]
        cache[key] = _sub_prev(keys)
    return cache["w8"], cache[key]


# ----------------------------------------------------------------------
# batched longest-match
# ----------------------------------------------------------------------


def _pair_lengths(buf, words4, cand, pos, lim, k0=0):
    """Match length for each (candidate, position) pair, vectorised.

    Extends in 4-byte word strides while both sides agree, then resolves
    the final 0-3 bytes with gathered byte compares. Overlap-safe like
    :func:`repro.lzss.matcher.match_length` (both sides index the same
    buffer). ``k0`` seeds the extension when the caller has already
    proven a common prefix (the W8 sub-chain guarantees 8 bytes).
    """
    k = np.full(cand.size, k0, dtype=np.int64)
    live = np.arange(cand.size)
    while live.size:
        can4 = k[live] + 4 <= lim[live]
        wordy = live[can4]
        equal = words4[cand[wordy] + k[wordy]] == words4[pos[wordy] + k[wordy]]
        advanced = wordy[equal]
        k[advanced] += 4
        # Pairs whose word compare mismatched, or with < 4 bytes of
        # budget left, finish with at most 3 byte probes.
        tail = np.concatenate((live[~can4], wordy[~equal]))
        for _ in range(3):
            tail = tail[k[tail] < lim[tail]]
            if not tail.size:
                break
            more = buf[cand[tail] + k[tail]] == buf[pos[tail] + k[tail]]
            tail = tail[more]
            k[tail] += 1
        live = advanced
    return k


def _padded_words8(buf):
    """8-byte little-endian words over ``buf`` + an 8-byte zero tail.

    Sized ``n + 1`` so a gather at ``pos + k`` stays in bounds for every
    ``pos + k <= n``; the zero padding never leaks into results because
    callers cap the counted extension at the data limit.
    """
    padded = np.zeros(buf.size + 8, dtype=np.uint8)
    padded[:buf.size] = buf
    b = padded.astype(np.uint32)
    w4 = (
        b[:-3]
        | (b[1:-2] << np.uint32(8))
        | (b[2:-1] << np.uint32(16))
        | (b[3:] << np.uint32(24))
    )
    return w4[:-4].astype(np.uint64) | (
        w4[4:].astype(np.uint64) << np.uint64(32)
    )


def _mismatch_bytes(xd):
    """Byte offset of the first set bit in each XOR word (8 if zero).

    ``bitwise_count`` (NumPy >= 2.0) counts the trailing zeros of the
    isolated lowest bit directly — ``popcount(lowbit - 1)``; a zero word
    wraps to all-ones and counts 64, i.e. byte 8, exactly the
    whole-word-equal answer. Older NumPy falls back to an exact float64
    log2 of the isolated bit (a power of two, always representable).
    """
    low = xd & (~xd + np.uint64(1))
    if _BITWISE_COUNT is not None:
        return (
            _BITWISE_COUNT(low - np.uint64(1)).astype(np.int64) >> 3
        )
    tz = np.full(xd.size, 8, dtype=np.int64)
    nz = xd != 0
    tz[nz] = np.log2(low[nz].astype(np.float64)).astype(np.int64) >> 3
    return tz


_BITWISE_COUNT = getattr(np, "bitwise_count", None) if np else None


def _pair_lengths8(w8p, cand, pos, lim, k0=0):
    """Match length per (candidate, position) pair, 8 bytes per stride.

    Same contract as :func:`_pair_lengths`, twice the stride: one XOR of
    gathered 8-byte words either advances a pair by 8 or pinpoints its
    first mismatching byte (:func:`_mismatch_bytes`), so short pairs
    resolve in a single round with no byte-probe tail. State is kept
    compact — surviving lanes are filtered, not re-gathered. Every live
    lane scatters its provisional length each round; a lane that
    advances is overwritten by a later round, so its settling round's
    write is the one that sticks and no done-side compaction is needed.
    Requires the padded word array from :func:`_padded_words8`.
    """
    c = cand + np.int64(k0)
    p = pos + np.int64(k0)
    room = lim - np.int64(k0)
    x = w8p[c] ^ w8p[p]
    # Round 0 covers every pair, so its scatter is a direct assignment.
    k_out = np.int64(k0) + np.minimum(_mismatch_bytes(x), room)
    idx = np.flatnonzero((x == 0) & (room > 8))
    c = c[idx] + 8
    p = p[idx] + 8
    room = room[idx] - 8
    k = np.int64(k0 + 8)
    while idx.size:
        x = w8p[c] ^ w8p[p]
        k_out[idx] = k + np.minimum(_mismatch_bytes(x), room)
        full = (x == 0) & (room > 8)
        idx = idx[full]
        c = c[full] + 8
        p = p[full] + 8
        k = k + np.int64(8)
        room = room[full] - 8
    return k_out


def _single_chain_matches(w8p, prev_all, n, max_dist, end_all=None):
    """Best matches when the chain budget is a single candidate.

    ``max_chain == 1`` (the batch engine's default greedy policy) visits
    only the nearest previous same-hash occurrence, so the budget /
    good_length / nice_length machinery of :func:`_batch_matches` — and
    its byte-probe screen — collapses to one screen-free extension per
    position. The XOR stride kernel settles most pairs in its first
    gather, which roughly halves the match-pass cost on small-message
    batches.
    """
    count = prev_all.size
    out_len = np.full(count, MIN_MATCH - 1, dtype=np.int64)
    out_dist = np.zeros(count, dtype=np.int64)
    pos = np.flatnonzero(prev_all >= 0)
    cand = prev_all[pos]
    near = pos - cand <= max_dist
    pos = pos[near]
    cand = cand[near]
    if end_all is None:
        lim = np.minimum(np.int64(MAX_MATCH), np.int64(n) - pos)
    else:
        lim = np.minimum(np.int64(MAX_MATCH), end_all[pos] - pos)
    k = _pair_lengths8(w8p, cand, pos, lim)
    # Sub-MIN_MATCH lengths land as-is: every consumer treats
    # ``len < MIN_MATCH`` as "no match", so the hit filter would only
    # buy back bytes at the price of three more compactions.
    out_len[pos] = k
    out_dist[pos] = pos - cand
    return out_len, out_dist


#: Best-length threshold for moving a lane from the bucket chain onto
#: the first sub-chain: once best_len >= 7, an improvement needs an
#: 8-byte common prefix, so only W8-equal candidates matter.
_SWITCH_BL = 7

#: Widest sub-chain level; lanes with best_len >= 31 walk 32-byte-prefix
#: chains and stay there (matches cap at 258).
_MAX_WIDTH = 32


def _batch_matches(buf, words4, prev_all, rank, n, max_dist,
                   max_chain, good_length, nice_length, cache,
                   end_all=None, seg=None):
    """Best (length, distance) for *every* hashable position.

    Runs ZLib's ``longest_match`` for all positions at once, with the
    chain step as the outer loop. Candidate order per position is
    identical to the incremental walk, so first-best tie handling, the
    ``good_length`` budget quartering and the ``nice_length`` early
    exit reproduce the scalar semantics exactly; a position leaves the
    active set precisely when the scalar loop would have terminated.

    Lanes whose best length reaches :data:`_SWITCH_BL` leave the
    bucket-chain walk for the sub-chain cascade (:func:`_sub_walk`):
    an improving candidate must share the position's first 8 (then 16,
    then 32) bytes, so only same-prefix chain members need visiting;
    the skipped bucket links in between are charged against the chain
    budget via rank arithmetic, keeping the outcome bit-identical.

    ``end_all``/``seg`` generalise the pass to packed multi-payload
    buffers (:mod:`repro.lzss.batch`): ``end_all[p]`` is the exclusive
    data limit for position ``p`` (its segment's end), so no extension
    ever reads across a payload seam, and ``seg`` (per-byte segment
    ids) confines the content-keyed sub-chains to same-segment
    candidates. With segment-masked chains every bucket candidate is
    same-segment and closer than ``lim`` bytes from its own segment
    end, so all word/byte gathers stay inside the candidate's payload.
    """
    count = prev_all.size  # positions 0 .. n - MIN_MATCH
    out_len = np.full(count, MIN_MATCH - 1, dtype=np.int64)
    out_dist = np.zeros(count, dtype=np.int64)

    # Dense per-active-position state. Every round operates on compact
    # arrays — boolean compressions and whole-array arithmetic — rather
    # than fancy-indexed gathers/scatters into n-sized globals; a
    # position's results are scattered out exactly once, when it dies.
    pos = np.arange(count, dtype=np.int64)
    cand = prev_all.copy()
    start = (cand >= 0) & (cand >= pos - np.int64(max_dist))
    pos = pos[start]
    cand = cand[start]
    if end_all is None:
        lim = np.minimum(np.int64(MAX_MATCH), np.int64(n) - pos)
    else:
        lim = np.minimum(np.int64(MAX_MATCH), end_all[pos] - pos)
    min_cand = pos - np.int64(max_dist)
    bl = np.full(pos.size, MIN_MATCH - 1, dtype=np.int64)
    bd = np.zeros(pos.size, dtype=np.int64)
    budget = np.full(pos.size, max_chain, dtype=np.int64)
    switched = []

    while pos.size:
        budget -= 1
        # Quick-reject screen (zlib's peek): a candidate whose byte at
        # offset best_len differs cannot improve on best_len, so the
        # full extension is skipped. Outcome-preserving: such a
        # candidate reaches k <= best_len, which never updates the best
        # match nor triggers the good/nice heuristics.
        screen = buf[cand + bl] == buf[pos + bl]
        spots = np.flatnonzero(screen)
        if spots.size:
            k = _pair_lengths(
                buf, words4, cand[spots], pos[spots], lim[spots]
            )
            improved = k > bl[spots]
            winners = spots[improved]
            won_len = k[improved]
            bl[winners] = won_len
            bd[winners] = pos[winners] - cand[winners]
            # ZLib heuristics, improvement-gated exactly like the
            # scalar walk: nice/limit stops beat the good quartering.
            stop = (won_len >= nice_length) | (won_len >= lim[winners])
            budget[winners[stop]] = 0
            quarter = winners[(~stop) & (won_len >= good_length)]
            budget[quarter] >>= 2
        # Advance every active position one chain link and re-filter.
        cand = prev_all[cand]
        alive = (
            (budget > 0)
            & (cand >= 0)
            & (cand >= min_cand)
            & (bl < lim)
        )
        dead = ~alive
        dp = pos[dead]
        out_len[dp] = bl[dead]
        out_dist[dp] = bd[dead]
        pos = pos[alive]
        cand = cand[alive]
        lim = lim[alive]
        min_cand = min_cand[alive]
        bl = bl[alive]
        bd = bd[alive]
        budget = budget[alive]
        if pos.size:
            sw = bl >= _SWITCH_BL
            if sw.any():
                # The checkpoint rank is one past the next unexamined
                # candidate: reaching a sub-chain member at rank r then
                # costs (checkpoint - r) bucket links of budget.
                switched.append((
                    pos[sw], bl[sw], bd[sw], lim[sw], min_cand[sw],
                    budget[sw], rank[cand[sw]] + 1,
                ))
                keep = ~sw
                pos = pos[keep]
                cand = cand[keep]
                lim = lim[keep]
                min_cand = min_cand[keep]
                bl = bl[keep]
                bd = bd[keep]
                budget = budget[keep]

    if switched:
        state = tuple(
            np.concatenate(parts) for parts in zip(*switched)
        )
        width = 8
        while state is not None:
            w8, prev_sub = _sub_chain(cache, words4, width)
            last = width >= _MAX_WIDTH
            state = _sub_walk(
                buf, words4, w8, prev_sub, rank,
                good_length, nice_length, out_len, out_dist,
                state, width, None if last else 2 * width - 1,
                seg,
            )
            width *= 2
    return out_len, out_dist


def _sub_walk(buf, words4, w8, prev_sub, rank, good_length, nice_length,
              out_len, out_dist, state, width, migrate_bl, seg=None):
    """Walk ``width``-byte-prefix sub-chains for switched lanes.

    Each round visits one sub-chain member per lane. A member at bucket
    rank ``r`` costs ``checkpoint - r`` budget (the bucket links the
    scalar walk would have stepped through and rejected — none of them
    can improve a best length >= width-1, so skipping them is
    outcome-preserving). Hash-collision members (wider levels use mixed
    keys) fail the word verification and are stepped over for free,
    exactly like any other non-improving candidate outside the budget
    accounting window. Lanes whose best length reaches ``migrate_bl``
    are handed back for the next-wider level; the rest die in place and
    scatter their result.

    ``seg`` (packed multi-payload mode) adds a segment-equality term to
    the membership test: the content-keyed sub-chains span the whole
    packed buffer, so a prefix-equal candidate from *another* payload
    must be stepped over for free — mirroring "not in this segment's
    chain at all" — or it would donate a cross-seam distance.
    """
    pos, bl, bd, lim, mc, m, ck = state
    cand = prev_sub[pos]
    mig = []
    nwords = width // 8
    while pos.size:
        ok = (cand >= 0) & (cand >= mc)
        if not ok.all():
            done = ~ok
            dp = pos[done]
            out_len[dp] = bl[done]
            out_dist[dp] = bd[done]
            pos = pos[ok]
            cand = cand[ok]
            bl = bl[ok]
            bd = bd[ok]
            lim = lim[ok]
            mc = mc[ok]
            m = m[ok]
            ck = ck[ok]
            if not pos.size:
                break
        member = w8[cand] == w8[pos]
        if seg is not None:
            member &= seg[cand] == seg[pos]
        for off in range(8, width, 8):
            member &= w8[cand + off] == w8[pos + off]
        rc = rank[cand]
        spent = ck - rc
        over = member & (spent > m)
        if over.any():
            dp = pos[over]
            out_len[dp] = bl[over]
            out_dist[dp] = bd[over]
            keep = ~over
            pos = pos[keep]
            cand = cand[keep]
            bl = bl[keep]
            bd = bd[keep]
            lim = lim[keep]
            mc = mc[keep]
            m = m[keep]
            ck = ck[keep]
            member = member[keep]
            rc = rc[keep]
            spent = spent[keep]
            if not pos.size:
                break
        # Members at or above the checkpoint were examined before the
        # switch (and cannot improve) — step over them without charge.
        ex = np.flatnonzero(member & (spent >= 1))
        if ex.size:
            m[ex] -= spent[ex]
            ck[ex] = rc[ex]
            screen = (
                w8[cand[ex] + (bl[ex] - 7)] == w8[pos[ex] + (bl[ex] - 7)]
            )
            spots = ex[screen]
            if spots.size:
                k = _pair_lengths(
                    buf, words4, cand[spots], pos[spots], lim[spots],
                    k0=8 * nwords,
                )
                improved = k > bl[spots]
                winners = spots[improved]
                won = k[improved]
                bl[winners] = won
                bd[winners] = pos[winners] - cand[winners]
                stop = (won >= nice_length) | (won >= lim[winners])
                m[winners[stop]] = 0
                quarter = winners[(~stop) & (won >= good_length)]
                m[quarter] >>= 2
        cand = prev_sub[cand]
        alive = m > 0
        if not alive.all():
            dead = ~alive
            dp = pos[dead]
            out_len[dp] = bl[dead]
            out_dist[dp] = bd[dead]
            pos = pos[alive]
            cand = cand[alive]
            bl = bl[alive]
            bd = bd[alive]
            lim = lim[alive]
            mc = mc[alive]
            m = m[alive]
            ck = ck[alive]
        if migrate_bl is not None and pos.size:
            mg = bl >= migrate_bl
            if mg.any():
                mig.append((
                    pos[mg], bl[mg], bd[mg], lim[mg], mc[mg], m[mg],
                    ck[mg],
                ))
                keep = ~mg
                pos = pos[keep]
                cand = cand[keep]
                bl = bl[keep]
                bd = bd[keep]
                lim = lim[keep]
                mc = mc[keep]
                m = m[keep]
                ck = ck[keep]
    if not mig:
        return None
    return tuple(np.concatenate(parts) for parts in zip(*mig))


# ----------------------------------------------------------------------
# sequential replay
# ----------------------------------------------------------------------


def _replay_greedy(data, n, best_len, best_dist):
    """Greedy parse from precomputed per-position matches.

    Insert-all means there is no table bookkeeping left, and the parse
    takes the first match-bearing position at or after the current one
    — so the Python loop runs once per *match*, with the literal runs
    in between transferred as C-level bulk extends.
    """
    tokens = TokenArray()
    out_lengths = array("i")
    out_values = array("i")
    match_at = np.flatnonzero(best_len >= MIN_MATCH)
    mpos = match_at.tolist()
    mlen = best_len[match_at].tolist()
    mdist = best_dist[match_at].tolist()
    pos = 0
    for q, length, dist in zip(mpos, mlen, mdist):
        if q < pos:  # inside the previous match: never visited
            continue
        if q > pos:
            out_lengths.extend(bytes(q - pos))  # zero length = literal
            out_values.extend(data[pos:q])
        out_lengths.append(length)
        out_values.append(dist)
        pos = q + length
    if pos < n:
        out_lengths.extend(bytes(n - pos))
        out_values.extend(data[pos:n])
    tokens.lengths = out_lengths
    tokens.values = out_values
    return tokens


def _replay_lazy(data, n, policy, full_len, full_dist,
                 quart_len, quart_dist):
    """deflate_slow's one-token deferral over precomputed matches.

    ``quart_*`` hold the search results under the quartered chain
    budget ZLib applies when the pending match is already good; ``None``
    means that variant is never consulted (budget quarters to zero, or
    ``good_length >= max_lazy`` makes the branch unreachable).

    Positions where neither track found a match can only emit literals
    (``cur_len`` stays below MIN_MATCH no matter which track the state
    machine consults), so the Python state machine runs only at the
    match-bearing *event* positions and bulk-copies the all-literal
    stretches in between.
    """
    tokens = TokenArray()
    out_lengths = array("i")
    out_values = array("i")
    hash_limit = n - MIN_MATCH
    good_length = policy.good_length
    max_lazy = policy.max_lazy

    interesting = full_len >= MIN_MATCH
    if quart_len is not None:
        interesting = interesting | (quart_len >= MIN_MATCH)
    event_at = np.flatnonzero(interesting)
    events = event_at.tolist()
    fle = full_len[event_at].tolist()
    fde = full_dist[event_at].tolist()
    if quart_len is not None:
        qle = quart_len[event_at].tolist()
        qde = quart_dist[event_at].tolist()
    ne = len(events)

    index = 0
    pos = 0
    prev_len = MIN_MATCH - 1
    prev_dist = 0
    have_prev = False
    while pos < n:
        while index < ne and events[index] < pos:
            index += 1
        nxt = events[index] if index < ne else n
        if pos < nxt:
            # No match can start in [pos, nxt): cur_len is 2 at every
            # step, so the state machine's behaviour collapses to one
            # of three bulk shapes.
            if not have_prev:
                # First step after a match only primes the deferral.
                have_prev = True
                prev_len = MIN_MATCH - 1
                prev_dist = 0
                pos += 1
            elif prev_len >= MIN_MATCH:
                # Pending match beats cur_len == 2: emit it now.
                out_lengths.append(prev_len)
                out_values.append(prev_dist)
                pos = pos - 1 + prev_len
                have_prev = False
                prev_len = MIN_MATCH - 1
                prev_dist = 0
            else:
                # Literal conveyor: each step emits the previous byte.
                out_lengths.extend(bytes(nxt - pos))
                out_values.extend(data[pos - 1:nxt - 1])
                pos = nxt
            continue
        # pos == nxt: a position where a track holds a real match.
        cur_len = MIN_MATCH - 1
        cur_dist = 0
        if pos <= hash_limit and prev_len < max_lazy:
            if prev_len >= good_length:
                if quart_len is not None:
                    cur_len = qle[index]
                    cur_dist = qde[index]
            else:
                cur_len = fle[index]
                cur_dist = fde[index]
            if cur_len == MIN_MATCH and cur_dist > _TOO_FAR:
                cur_len = MIN_MATCH - 1

        if have_prev and prev_len >= MIN_MATCH and prev_len >= cur_len:
            out_lengths.append(prev_len)
            out_values.append(prev_dist)
            pos = pos - 1 + prev_len
            have_prev = False
            prev_len = MIN_MATCH - 1
            prev_dist = 0
        else:
            if have_prev:
                out_lengths.append(0)
                out_values.append(data[pos - 1])
            have_prev = True
            prev_len = cur_len
            prev_dist = cur_dist
            pos += 1
    if have_prev:
        out_lengths.append(0)
        out_values.append(data[n - 1])
    tokens.lengths = out_lengths
    tokens.values = out_values
    return tokens


# ----------------------------------------------------------------------
# packed multi-payload batch mode (repro.lzss.batch)
# ----------------------------------------------------------------------


def batch_match_arrays(buf, seg_of, end_of, seam, window_size, hash_spec,
                       policy):
    """Per-position best matches for a packed multi-segment buffer.

    One hash pass, one chain sort and one (or two, for lazy policies)
    :func:`_batch_matches` sweep cover *every* payload in the batch —
    the GPULZ-style amortisation the batch engine is built on. Returns
    ``(full_len, full_dist, quart_len, quart_dist)``; the quartered
    track is ``None`` for greedy policies or when the lazy policy never
    consults it.

    ``seg_of`` maps each byte to its segment id, ``end_of`` each byte
    to its segment's exclusive end and ``seam`` marks positions whose
    3-byte hash window crosses a segment end. Matches never cross
    seams: chains are bucketed per ``(segment, hash)``, extension
    limits stop at the segment end, and the sub-chain walk is
    segment-guarded.
    """
    n = buf.size
    hashes = _hash_all_np(buf, hash_spec)
    single_chain = not policy.lazy and policy.max_chain == 1
    prev_all, rank = _prev_occurrence_batch(
        hashes, seg_of, seam, hash_spec.table_size,
        want_rank=not single_chain,
    )
    max_dist = window_size - MIN_LOOKAHEAD
    if single_chain:
        # The batch default (BATCH_GREEDY_POLICY): one candidate per
        # position, no budget bookkeeping worth vectorising.
        full = _single_chain_matches(
            _padded_words8(buf), prev_all, n, max_dist, end_all=end_of
        )
        return full[0], full[1], None, None
    words4 = _words4(buf)
    cache = {}
    full = _batch_matches(
        buf, words4, prev_all, rank, n, max_dist,
        policy.max_chain, policy.good_length, policy.nice_length,
        cache, end_all=end_of, seg=seg_of,
    )
    quart = (None, None)
    if policy.lazy:
        quart_chain = policy.max_chain >> 2
        if quart_chain > 0 and policy.good_length < policy.max_lazy:
            quart = _batch_matches(
                buf, words4, prev_all, rank, n, max_dist,
                quart_chain, policy.good_length, policy.nice_length,
                cache, end_all=end_of, seg=seg_of,
            )
    return full[0], full[1], quart[0], quart[1]


def replay_greedy_lockstep(buf, seg_starts, seg_ends, best_len, best_dist):
    """Greedy replay of every segment at once, round-synchronised.

    The scalar :func:`_replay_greedy` loop runs once per match; over a
    batch of small payloads that is still thousands of Python
    iterations. This version advances *all* segments together: each
    round jumps every active segment to its next match through a
    precomputed next-match suffix array (one gather, no per-round
    search), records (literal-run, match) pairs as arrays, and only
    loops as many times as the match-richest segment has matches.
    Token materialisation is a pure array expansion at the end.

    Returns ``(tok_len, tok_val, counts)``: int32 token columns in
    segment-major order (literals have ``tok_len == 0`` and the byte in
    ``tok_val``; matches carry length/distance) plus the per-segment
    token counts.
    """
    nseg = seg_starts.size
    ends = seg_ends.astype(np.int64)
    limit = int(ends[-1]) if nseg else 0
    match_at = np.flatnonzero(best_len >= MIN_MATCH)
    # nxt[p] = smallest match position >= p, or `limit` past the last
    # match — a reversed running minimum, so each round resolves every
    # lane's next stop with a single gather.
    nxt = np.full(limit + 1, limit, dtype=np.int64)
    nxt[match_at] = match_at
    nxt = np.minimum.accumulate(nxt[::-1])[::-1]
    c = seg_starts.astype(np.int64)
    e = ends
    active = np.arange(nseg, dtype=np.int64)
    keep = e > c
    if not keep.all():
        active, c, e = active[keep], c[keep], e[keep]
    rec_seg, rec_lit_start, rec_lit_len = [], [], []
    rec_mlen, rec_mdist = [], []
    # Lane state (segment id / cursor / end) rides along compacted, so
    # a round touches no full-width array: one `nxt` gather plus a
    # handful of lane-width ops, and the compaction only happens on the
    # (rare) rounds where some lane drains or lands exactly on its end.
    while active.size:
        q = nxt[c]
        has = q < e
        if not has.all():
            drained = active[~has]
            rec_seg.append(drained)
            rec_lit_start.append(c[~has])
            rec_lit_len.append(e[~has] - c[~has])
            zero = np.zeros(drained.size, dtype=np.int64)
            rec_mlen.append(zero)
            rec_mdist.append(zero)
            active, c, e, q = active[has], c[has], e[has], q[has]
            if not active.size:
                break
        rec_seg.append(active)
        rec_lit_start.append(c)
        rec_lit_len.append(q - c)
        mlen = best_len[q]
        rec_mlen.append(mlen)
        rec_mdist.append(best_dist[q])
        c = q + mlen
        keep = c < e
        if not keep.all():
            active, c, e = active[keep], c[keep], e[keep]

    if not rec_seg:
        return (
            np.empty(0, dtype=np.int32),
            np.empty(0, dtype=np.int32),
            np.zeros(nseg, dtype=np.int64),
        )
    seg_all = np.concatenate(rec_seg)
    lit_start = np.concatenate(rec_lit_start)
    lit_len = np.concatenate(rec_lit_len)
    mlen = np.concatenate(rec_mlen)
    mdist = np.concatenate(rec_mdist)
    # Rounds were appended in replay order, so a stable sort on the
    # segment id alone yields each segment's records in stream order.
    order = np.argsort(seg_all, kind="stable")
    seg_all = seg_all[order]
    lit_start = lit_start[order]
    lit_len = lit_len[order]
    mlen = mlen[order]
    mdist = mdist[order]

    has_match = (mlen > 0).astype(np.int64)
    per_rec = lit_len + has_match
    base = np.concatenate(([0], np.cumsum(per_rec)[:-1]))
    total = int(per_rec.sum())
    tok_len = np.zeros(total, dtype=np.int32)
    tok_val = np.empty(total, dtype=np.int32)
    lit_total = int(lit_len.sum())
    if lit_total:
        rep = np.repeat(np.arange(seg_all.size), lit_len)
        excl = np.concatenate(([0], np.cumsum(lit_len)[:-1]))
        offs = np.arange(lit_total, dtype=np.int64) - excl[rep]
        tok_val[base[rep] + offs] = buf[lit_start[rep] + offs]
    mrec = np.flatnonzero(has_match)
    if mrec.size:
        slot = base[mrec] + lit_len[mrec]
        tok_len[slot] = mlen[mrec]
        tok_val[slot] = mdist[mrec]
    counts = np.bincount(
        seg_all, weights=per_rec, minlength=nseg
    ).astype(np.int64)
    return tok_len, tok_val, counts
