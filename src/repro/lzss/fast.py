"""Trace-free fast-path tokenizers (the production hot loop).

:mod:`repro.lzss.compressor` is the *instrumented reproduction* path: it
records a :class:`~repro.lzss.trace.MatchTrace` row per token and prices
every candidate compare in hardware comparator cycles, because the cycle
models feed on that record. Callers that only want bytes out pay for all
of that bookkeeping with every ``compress()``.

This module is the *production* path: the same greedy (deflate_fast) and
lazy (deflate_slow) parsers with every piece of accounting removed —

* no ``MatchTrace.record`` calls and no ``cycles_w4``/``cycles_w1``
  arithmetic inside the chain walk;
* the prefix compare runs 32-byte :class:`memoryview` chunks before
  falling back to the byte loop (the software analogue of the paper's
  wide-bus comparator reading 4 bytes per cycle);
* head/prev chain tables live in ``array('l')`` instead of Python lists
  (8 bytes per entry instead of a PyObject pointer per entry);
* bound methods and table references are hoisted out of the loop.

Token output is **bit-identical** to the traced path for every window
size and policy — ``tests/properties/test_fast_differential.py`` holds
that line with Hypothesis. Select it with ``backend="fast"`` on
:class:`~repro.lzss.compressor.LZSSCompressor` /
:func:`~repro.lzss.compressor.compress_tokens`.
"""

from __future__ import annotations

from array import array

from repro.lzss.hashchain import hash_all_array
from repro.lzss.tokens import (
    MAX_MATCH,
    MIN_LOOKAHEAD,
    MIN_MATCH,
    TokenArray,
)

#: Compare ladder widths: one 8-byte probe first (most candidates on
#: short-match workloads die there, and a small slice is cheap), then
#: 32-byte chunks to amortise slice overhead over long matches.
_FIRST = 8
_CHUNK = 32

#: Same constant as the lazy parser in compressor.py (ZLib's TOO_FAR).
_TOO_FAR = 4096


def compress_fast(data: bytes, window_size, hash_spec, policy) -> TokenArray:
    """Tokenise ``data`` without producing a trace.

    Dispatches on ``policy.lazy`` exactly like
    :meth:`LZSSCompressor.compress`; the caller has already validated
    the configuration.
    """
    if policy.lazy:
        return _compress_lazy_fast(data, window_size, hash_spec, policy)
    return _compress_greedy_fast(data, window_size, hash_spec, policy)


def _make_tables(hash_spec, window_size):
    """head/prev chain tables as flat C arrays (no per-entry boxing).

    ``array('l')`` has no fill constructor; multiplying a one-element
    array is the fastest pure-Python initialiser.
    """
    head = array("l", [-1]) * hash_spec.table_size
    prev = array("l", [-1]) * window_size
    return head, prev


def _match_length_fast(mv, data, cand, pos, limit):
    """Common-prefix length via the chunked compare ladder + byte tail.

    Semantically identical to :func:`repro.lzss.matcher.match_length`
    (overlap-safe: both sides index the same fixed buffer).
    """
    k = 0
    if _FIRST <= limit and mv[cand:cand + _FIRST] == mv[pos:pos + _FIRST]:
        k = _FIRST
        while (
            k + _CHUNK <= limit
            and mv[cand + k:cand + k + _CHUNK] == mv[pos + k:pos + k + _CHUNK]
        ):
            k += _CHUNK
    while k < limit and data[cand + k] == data[pos + k]:
        k += 1
    return k


def _compress_greedy_fast(data, window_size, hash_spec, policy):
    tokens = TokenArray()
    n = len(data)
    if n == 0:
        return tokens
    mv = memoryview(data)
    hashes = hash_all_array(data, hash_spec)
    head, prev = _make_tables(hash_spec, window_size)
    wmask = window_size - 1
    max_dist = window_size - MIN_LOOKAHEAD
    hash_limit = n - MIN_MATCH
    max_chain = policy.max_chain
    good_length = policy.good_length
    nice_length = policy.nice_length
    max_insert = policy.max_insert_length
    # Plain-list appends beat array('i') appends by ~30%; one bulk
    # array() conversion at the end recovers the compact storage.
    out_lengths = []
    out_values = []
    lengths_append = out_lengths.append
    values_append = out_values.append
    first = _FIRST
    chunk = _CHUNK

    pos = 0
    while pos < n:
        if pos > hash_limit:
            lengths_append(0)
            values_append(data[pos])
            pos += 1
            continue
        h = hashes[pos]
        cand = head[h]
        prev[pos & wmask] = cand
        head[h] = pos

        limit = MAX_MATCH if n - pos > MAX_MATCH else n - pos
        # Inline longest_match, minus the cycle accounting. The
        # quick-reject peek at data[cand + best_len] (zlib's trick)
        # cannot change the outcome: a candidate failing it can only
        # reach k <= best_len, which neither updates the best match nor
        # triggers the nice/good heuristics — and once best_len reaches
        # the limit no candidate can improve at all, so the remaining
        # walk is observably a no-op and may stop.
        best_len = MIN_MATCH - 1
        best_dist = 0
        chain = max_chain
        min_pos = pos - max_dist
        while cand >= min_pos and cand >= 0 and chain > 0:
            chain -= 1
            if best_len >= limit:
                break
            if data[cand + best_len] != data[pos + best_len]:
                cand = prev[cand & wmask]
                continue
            k = 0
            if first <= limit and mv[cand:cand + first] == mv[pos:pos + first]:
                k = first
                while (
                    k + chunk <= limit
                    and mv[cand + k:cand + k + chunk]
                    == mv[pos + k:pos + k + chunk]
                ):
                    k += chunk
            while k < limit and data[cand + k] == data[pos + k]:
                k += 1
            if k > best_len:
                best_len = k
                best_dist = pos - cand
                if k >= nice_length or k >= limit:
                    break
                if k >= good_length:
                    chain >>= 2
            cand = prev[cand & wmask]

        if best_len >= MIN_MATCH:
            lengths_append(best_len)
            values_append(best_dist)
            if best_len <= max_insert:
                stop = pos + best_len
                if stop > hash_limit + 1:
                    stop = hash_limit + 1
                for q in range(pos + 1, stop):
                    hq = hashes[q]
                    prev[q & wmask] = head[hq]
                    head[hq] = q
            pos += best_len
        else:
            lengths_append(0)
            values_append(data[pos])
            pos += 1
    tokens.lengths = array("i", out_lengths)
    tokens.values = array("i", out_values)
    return tokens


def _compress_lazy_fast(data, window_size, hash_spec, policy):
    tokens = TokenArray()
    n = len(data)
    if n == 0:
        return tokens
    mv = memoryview(data)
    hashes = hash_all_array(data, hash_spec)
    head, prev = _make_tables(hash_spec, window_size)
    wmask = window_size - 1
    max_dist = window_size - MIN_LOOKAHEAD
    hash_limit = n - MIN_MATCH
    max_chain = policy.max_chain
    good_length = policy.good_length
    nice_length = policy.nice_length
    max_lazy = policy.max_lazy
    out_lengths = []
    out_values = []
    lengths_append = out_lengths.append
    values_append = out_values.append
    first = _FIRST
    chunk = _CHUNK

    pos = 0
    prev_len = MIN_MATCH - 1
    prev_dist = 0
    have_prev = False
    while pos < n:
        cur_len = MIN_MATCH - 1
        cur_dist = 0
        if pos <= hash_limit:
            h = hashes[pos]
            cand = head[h]
            prev[pos & wmask] = cand
            head[h] = pos
            if prev_len < max_lazy:
                limit = MAX_MATCH if n - pos > MAX_MATCH else n - pos
                chain = max_chain
                if prev_len >= good_length:
                    chain >>= 2
                min_pos = pos - max_dist
                # Same quick-reject argument as the greedy walk above.
                while cand >= min_pos and cand >= 0 and chain > 0:
                    chain -= 1
                    if cur_len >= limit:
                        break
                    if data[cand + cur_len] != data[pos + cur_len]:
                        cand = prev[cand & wmask]
                        continue
                    k = 0
                    if (first <= limit
                            and mv[cand:cand + first] == mv[pos:pos + first]):
                        k = first
                        while (
                            k + chunk <= limit
                            and mv[cand + k:cand + k + chunk]
                            == mv[pos + k:pos + k + chunk]
                        ):
                            k += chunk
                    while k < limit and data[cand + k] == data[pos + k]:
                        k += 1
                    if k > cur_len:
                        cur_len = k
                        cur_dist = pos - cand
                        if k >= nice_length or k >= limit:
                            break
                        if k >= good_length:
                            chain >>= 2
                    cand = prev[cand & wmask]
                if cur_len == MIN_MATCH and cur_dist > _TOO_FAR:
                    cur_len = MIN_MATCH - 1

        if have_prev and prev_len >= MIN_MATCH and prev_len >= cur_len:
            lengths_append(prev_len)
            values_append(prev_dist)
            stop = pos - 1 + prev_len
            if stop > hash_limit + 1:
                stop = hash_limit + 1
            for q in range(pos + 1, stop):
                hq = hashes[q]
                prev[q & wmask] = head[hq]
                head[hq] = q
            pos = pos - 1 + prev_len
            have_prev = False
            prev_len = MIN_MATCH - 1
            prev_dist = 0
        else:
            if have_prev:
                lengths_append(0)
                values_append(data[pos - 1])
            have_prev = True
            prev_len = cur_len
            prev_dist = cur_dist
            pos += 1
    if have_prev:
        lengths_append(0)
        values_append(data[n - 1])
    tokens.lengths = array("i", out_lengths)
    tokens.values = array("i", out_values)
    return tokens
