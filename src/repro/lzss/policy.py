"""Match search policies (ZLib's ``configuration_table`` equivalent).

A :class:`MatchPolicy` bundles the run-time matching parameters the paper
exposes ("Run-time parameters (e.g. matching iteration limit) can also be
changed", §IV):

* ``max_chain`` — hash-chain iterations before giving up (the paper's
  "amount of matching attempts", Fig. 4's level knob);
* ``good_length`` — once the best match reaches this, remaining chain
  budget is quartered (ZLib heuristic);
* ``nice_length`` — stop searching as soon as a match this long is found;
* ``lazy`` / ``max_lazy`` — deflate_slow one-token deferral (software
  levels 4-9; the paper's hardware is greedy-only);
* ``max_insert_length`` — matches longer than this skip the hash-table
  update entirely (§IV: "If a full hash table updating can be performed
  (decided based on match length)").

``ZLIB_LEVELS`` mirrors zlib 1.2's deflate configuration table so the
software baseline uses the genuine article.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.lzss.tokens import MAX_MATCH, MIN_MATCH


@dataclass(frozen=True)
class MatchPolicy:
    """Parameters governing the longest-match search."""

    max_chain: int = 4
    good_length: int = 4
    nice_length: int = 8
    lazy: bool = False
    max_lazy: int = 0
    max_insert_length: int = 4

    def __post_init__(self) -> None:
        if self.max_chain < 1:
            raise ConfigError(f"max_chain must be >= 1: {self.max_chain}")
        if not MIN_MATCH <= self.nice_length <= MAX_MATCH:
            raise ConfigError(
                f"nice_length {self.nice_length} outside "
                f"[{MIN_MATCH}, {MAX_MATCH}]"
            )
        if self.good_length < MIN_MATCH:
            raise ConfigError(
                f"good_length must be >= {MIN_MATCH}: {self.good_length}"
            )
        if self.max_insert_length < 0:
            raise ConfigError(
                f"max_insert_length must be >= 0: {self.max_insert_length}"
            )
        if self.lazy and self.max_lazy < MIN_MATCH:
            raise ConfigError(
                "lazy matching requires max_lazy >= "
                f"{MIN_MATCH}: {self.max_lazy}"
            )


def _fast(good: int, lazy: int, nice: int, chain: int) -> MatchPolicy:
    # deflate_fast: max_insert_length == max_lazy in zlib.
    return MatchPolicy(
        max_chain=chain,
        good_length=good,
        nice_length=nice,
        lazy=False,
        max_lazy=0,
        max_insert_length=lazy,
    )


def _slow(good: int, lazy: int, nice: int, chain: int) -> MatchPolicy:
    return MatchPolicy(
        max_chain=chain,
        good_length=good,
        nice_length=nice,
        lazy=True,
        max_lazy=lazy,
        max_insert_length=MAX_MATCH,
    )


#: zlib's configuration_table, levels 1..9 (level 0 = stored, not listed).
ZLIB_LEVELS = {
    1: _fast(4, 4, 8, 4),
    2: _fast(4, 5, 16, 8),
    3: _fast(4, 6, 32, 32),
    4: _slow(4, 4, 16, 16),
    5: _slow(8, 16, 32, 32),
    6: _slow(8, 16, 128, 128),
    7: _slow(8, 32, 128, 256),
    8: _slow(32, 128, 258, 1024),
    9: _slow(32, 258, 258, 4096),
}


def policy_for_level(level: int) -> MatchPolicy:
    """Return the ZLib policy for compression level 1-9."""
    try:
        return ZLIB_LEVELS[level]
    except KeyError:
        raise ConfigError(
            f"compression level must be 1..9: {level}"
        ) from None


#: The paper's speed-optimised hardware configuration ("we have
#: optimized the compression speed while keeping feasible compression
#: ratio, taking the minimum ZLib compression level as a reference
#: point", §II) — greedy with a short matching-iteration limit.
#: Calibrated against the paper's headline numbers: chain=8 reproduces
#: Fig. 3's mild speed decrease with dictionary size and Fig. 5's
#: comparison-dominated cycle breakdown, at ratios matching Table I.
#: ``max_insert_length=4`` matches Fig. 5's "inserting every byte of a
#: short match (up to 4 bytes)" exactly.
HW_SPEED_POLICY = MatchPolicy(
    max_chain=5,
    good_length=8,
    nice_length=12,
    lazy=False,
    max_lazy=0,
    max_insert_length=4,
)

#: The paper's "max" compression level (Fig. 4): same greedy hardware FSM
#: with the matching-iteration limit opened up and full hash updates,
#: buying ~10-20 % ratio for ~80 % speed (the paper's own trade-off).
HW_MAX_POLICY = MatchPolicy(
    max_chain=1024,
    good_length=MAX_MATCH,
    nice_length=MAX_MATCH,
    lazy=False,
    max_lazy=0,
    max_insert_length=MAX_MATCH,
)
