"""LZSS token types and compact token storage.

Per §III of the paper, a command is either *output one literal* or *copy
L literals found D bytes back*. Minimum copy length is 3 (shorter
repeats are emitted as literals) and the maximum is 258, matching
Deflate's length alphabet (L is stored as ``length - 3`` in 8 bits).
"""

from __future__ import annotations

from array import array
from typing import Iterator, Union

from repro.errors import LZSSError

MIN_MATCH = 3
MAX_MATCH = 258

#: ZLib's MIN_LOOKAHEAD: the matcher never references distances larger
#: than ``window - MIN_LOOKAHEAD``, and the paper's FSM waits until the
#: lookahead ring holds at least this many bytes (§IV: "at least 262").
MIN_LOOKAHEAD = MAX_MATCH + MIN_MATCH + 1


class Literal:
    """A single uncompressed byte."""

    __slots__ = ("value",)

    def __init__(self, value: int) -> None:
        if not 0 <= value <= 0xFF:
            raise LZSSError(f"literal out of byte range: {value}")
        self.value = value

    def __repr__(self) -> str:
        return f"Literal({self.value:#04x})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Literal) and other.value == self.value

    def __hash__(self) -> int:
        return hash(("lit", self.value))


class Match:
    """A copy command: ``length`` bytes from ``distance`` bytes back."""

    __slots__ = ("length", "distance")

    def __init__(self, length: int, distance: int) -> None:
        if not MIN_MATCH <= length <= MAX_MATCH:
            raise LZSSError(
                f"match length {length} outside [{MIN_MATCH}, {MAX_MATCH}]"
            )
        if distance < 1:
            raise LZSSError(f"match distance must be positive: {distance}")
        self.length = length
        self.distance = distance

    def __repr__(self) -> str:
        return f"Match(length={self.length}, distance={self.distance})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Match)
            and other.length == self.length
            and other.distance == self.distance
        )

    def __hash__(self) -> int:
        return hash(("match", self.length, self.distance))


Token = Union[Literal, Match]


class TokenArray:
    """Compact append-only token storage.

    Tokens are held in two parallel ``array('i')`` columns to keep the
    hot compression loop free of per-token object allocation:

    * literals: ``lengths[i] == 0``, ``values[i]`` = byte value;
    * matches: ``lengths[i]`` = copy length, ``values[i]`` = distance.

    Iteration materialises :class:`Literal`/:class:`Match` objects
    lazily for API consumers.
    """

    __slots__ = ("lengths", "values")

    def __init__(self) -> None:
        self.lengths = array("i")
        self.values = array("i")

    def append_literal(self, byte: int) -> None:
        """Append a literal token (unvalidated: hot path)."""
        self.lengths.append(0)
        self.values.append(byte)

    def append_match(self, length: int, distance: int) -> None:
        """Append a match token (unvalidated: hot path)."""
        self.lengths.append(length)
        self.values.append(distance)

    def append_token(self, token: Token) -> None:
        """Append a validated :class:`Literal` or :class:`Match`."""
        if isinstance(token, Literal):
            self.append_literal(token.value)
        elif isinstance(token, Match):
            self.append_match(token.length, token.distance)
        else:
            raise LZSSError(f"not a token: {token!r}")

    def __len__(self) -> int:
        return len(self.lengths)

    def __iter__(self) -> Iterator[Token]:
        for length, value in zip(self.lengths, self.values):
            if length == 0:
                yield Literal(value)
            else:
                yield Match(length, value)

    def __getitem__(self, index: int) -> Token:
        length = self.lengths[index]
        value = self.values[index]
        return Literal(value) if length == 0 else Match(length, value)

    def uncompressed_size(self) -> int:
        """Number of source bytes the token stream reconstructs."""
        return sum(length if length else 1 for length in self.lengths)

    def literal_count(self) -> int:
        """Number of literal tokens."""
        return sum(1 for length in self.lengths if length == 0)

    def match_count(self) -> int:
        """Number of match tokens."""
        return len(self.lengths) - self.literal_count()
