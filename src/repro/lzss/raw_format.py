"""The paper's raw LZSS command bit format (§III).

"On the bit level, every command has 2 fields: D (log2 N bits) and L
(8 bits). If D is 0, the command is output byte and L contains the byte.
Otherwise, D contains the copying distance and L contains the copying
length minus 3."

This is the internal D/L pair stream that sits between the LZSS core and
the Huffman coder in the hardware. It is a complete self-contained
format on its own (and the paper's estimator reports its size as the
pre-Huffman stream size), so we implement encode and decode, LSB-first.

With D occupying ``log2 N`` bits, distances 1..N-1 are expressible (the
value 0 flags a literal); ZLib's MAX_DIST guarantees the compressor
never produces distance N or larger anyway.
"""

from __future__ import annotations

from typing import Iterable, List

from repro.bitio.reader import BitReader
from repro.bitio.writer import BitWriter
from repro.errors import ConfigError, LZSSError
from repro.lzss.tokens import Literal, Match, Token, TokenArray, MIN_MATCH


def _dist_bits(window_size: int) -> int:
    if window_size & (window_size - 1) or window_size < 2:
        raise ConfigError(
            f"window size must be a power of two >= 2: {window_size}"
        )
    return window_size.bit_length() - 1


def command_size_bits(window_size: int) -> int:
    """Size of one D/L command in bits for the given dictionary size."""
    return _dist_bits(window_size) + 8


def encode_raw(tokens: Iterable[Token], window_size: int) -> bytes:
    """Encode a token stream as the paper's raw D/L pairs.

    The stream is terminated implicitly by its byte length; callers must
    also convey the command count or original size out of band (the
    hardware does this on its handshake interface). We additionally
    accept a trailing partial byte of zero padding on decode.
    """
    dbits = _dist_bits(window_size)
    writer = BitWriter()
    if isinstance(tokens, TokenArray):
        pairs = zip(tokens.lengths, tokens.values)
        for length, value in pairs:
            if length == 0:
                writer.write_bits(0, dbits)
                writer.write_bits(value, 8)
            else:
                _check_match(length, value, window_size)
                writer.write_bits(value, dbits)
                writer.write_bits(length - MIN_MATCH, 8)
        return writer.flush()
    for token in tokens:
        if isinstance(token, Literal):
            writer.write_bits(0, dbits)
            writer.write_bits(token.value, 8)
        elif isinstance(token, Match):
            _check_match(token.length, token.distance, window_size)
            writer.write_bits(token.distance, dbits)
            writer.write_bits(token.length - MIN_MATCH, 8)
        else:
            raise LZSSError(f"not a token: {token!r}")
    return writer.flush()


def decode_raw(
    data: bytes, window_size: int, command_count: int
) -> List[Token]:
    """Decode ``command_count`` D/L pairs back into tokens."""
    dbits = _dist_bits(window_size)
    reader = BitReader(data)
    tokens: List[Token] = []
    for _ in range(command_count):
        d = reader.read_bits(dbits)
        l = reader.read_bits(8)
        if d == 0:
            tokens.append(Literal(l))
        else:
            tokens.append(Match(l + MIN_MATCH, d))
    return tokens


def _check_match(length: int, distance: int, window_size: int) -> None:
    if not MIN_MATCH <= length <= MIN_MATCH + 255:
        raise LZSSError(
            f"match length {length} not encodable in 8 bits (L = len - 3)"
        )
    if not 1 <= distance <= window_size - 1:
        raise LZSSError(
            f"distance {distance} not encodable in log2({window_size}) bits"
        )
