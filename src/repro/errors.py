"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch a single base class. Sub-hierarchies distinguish
format-level problems (corrupt or non-conforming streams) from
configuration problems (invalid hardware parameters).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ConfigError(ReproError, ValueError):
    """An invalid parameter or parameter combination was supplied."""


class FormatError(ReproError, ValueError):
    """A bitstream or container did not conform to its specification."""


class BitstreamError(FormatError):
    """Low-level bit I/O failure (e.g. reading past the end of input)."""


class HuffmanError(FormatError):
    """Invalid Huffman code description or undecodable symbol."""


class DeflateError(FormatError):
    """Malformed Deflate block structure."""


class ZLibContainerError(FormatError):
    """Malformed ZLib (RFC 1950) framing: bad header or checksum."""


class GzipContainerError(FormatError):
    """Malformed gzip (RFC 1952) framing: bad magic, flags or checksum."""


class LZSSError(FormatError):
    """Invalid LZSS token stream (e.g. a copy reaching before the start)."""


class ServeProtocolError(FormatError):
    """A compression-service client violated the wire protocol."""


class TranscodeError(FormatError):
    """A stream could not be transcoded (unknown container, or the
    re-encoded candidate failed decode verification)."""


class SimulationError(ReproError, RuntimeError):
    """The hardware simulation reached an inconsistent internal state."""
