"""Named, cached access to the benchmark workloads.

All benchmarks pull their input through :func:`sample` so that (a) the
expensive generators run once per process and (b) the sample size scales
uniformly via the ``REPRO_SAMPLE_KB`` environment variable. The paper
runs its estimator on a 100 MB Wikipedia fragment; trends converge well
below that, and pure-Python simulation wants smaller defaults.
"""

from __future__ import annotations

import os
from typing import Callable, Dict, Tuple

from repro.errors import ConfigError
from repro.workloads import synthetic
from repro.workloads.wiki import wiki_text
from repro.workloads.x2e import x2e_can_log

#: Default benchmark sample size (KiB), override with REPRO_SAMPLE_KB.
DEFAULT_SAMPLE_KB = 512

WORKLOADS: Dict[str, Callable[[int], bytes]] = {
    "wiki": lambda n: wiki_text(n, seed=2012),
    "x2e": lambda n: x2e_can_log(n, seed=2012),
    "zeros": synthetic.zeros,
    "random": lambda n: synthetic.incompressible(n, seed=7),
    "mixed": lambda n: synthetic.mixed(n, seed=7),
    "syslog": lambda n: _logs().syslog_text(n, seed=2012),
    "telemetry": lambda n: _logs().json_telemetry(n, seed=2012),
    "json-msg": lambda n: _messages().packed_messages("json", n, seed=2012),
    "html-msg": lambda n: _messages().packed_messages("html", n, seed=2012),
}


def _logs():
    from repro.workloads import logs

    return logs


def _messages():
    from repro.workloads import messages

    return messages

_cache: Dict[Tuple[str, int], bytes] = {}


def sample_size_bytes() -> int:
    """Benchmark sample size honouring ``REPRO_SAMPLE_KB``."""
    kb = int(os.environ.get("REPRO_SAMPLE_KB", DEFAULT_SAMPLE_KB))
    if kb <= 0:
        raise ConfigError(f"REPRO_SAMPLE_KB must be positive: {kb}")
    return kb * 1024


def sample(name: str, size_bytes: int | None = None) -> bytes:
    """Return (and cache) the named workload at the given size."""
    if name not in WORKLOADS:
        raise ConfigError(
            f"unknown workload {name!r}; available: {sorted(WORKLOADS)}"
        )
    if size_bytes is None:
        size_bytes = sample_size_bytes()
    key = (name, size_bytes)
    if key not in _cache:
        _cache[key] = WORKLOADS[name](size_bytes)
    return _cache[key]
