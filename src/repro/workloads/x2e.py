"""Automotive CAN logger trace generator (the paper's "X2E" data set).

X2E GmbH builds automotive data loggers; the paper's sample is a log of
CAN bus traffic. CAN logs are sequences of fixed-layout records — here a
16-byte record per frame:

====== ======= ==============================================
offset  bytes  field
====== ======= ==============================================
0       4      timestamp, microseconds, little-endian (monotonic)
4       2      CAN identifier (11-bit, small skewed set)
6       1      DLC (payload length, almost always 8)
7       1      flags (constant per channel)
8       8      payload
====== ======= ==============================================

Payload bytes per message ID follow automotive signal behaviour: some
bytes constant (mux/config), some slow ramps (temperatures), some
counters (alive counters mod 16), some noisy sensor channels. The mix is
tuned to land in the high-redundancy regime the paper reports for this
set (ratio ≈ 1.7 with the speed-optimised configuration).
"""

from __future__ import annotations

import random
import struct
from typing import List

_RECORD = struct.Struct("<IHBB8s")


class _Signal:
    """One payload byte generator."""

    def __init__(self, kind: str, rng: random.Random) -> None:
        self.kind = kind
        self.value = rng.randrange(256)
        self.step = rng.choice((1, 1, 2, 3))
        self.rng = rng

    def next(self) -> int:
        if self.kind == "const":
            return self.value
        if self.kind == "counter":
            self.value = (self.value + 1) & 0x0F
            return self.value
        if self.kind == "ramp":
            if self.rng.random() < 0.05:
                self.value = (self.value + self.rng.choice((-1, 1))
                              * self.step) & 0xFF
            return self.value
        # noisy sensor
        self.value = (self.value + self.rng.randrange(-6, 7)) & 0xFF
        return self.value


def _make_messages(rng: random.Random, count: int) -> List[dict]:
    kinds = ["const", "const", "const", "counter", "ramp", "ramp",
             "noise", "const"]
    messages = []
    for index in range(count):
        rng.shuffle(kinds)
        messages.append({
            "id": 0x100 + index * 0x10 + rng.randrange(8),
            "period_us": rng.choice((10_000, 20_000, 50_000, 100_000)),
            "flags": rng.randrange(4),
            "signals": [_Signal(kind, rng) for kind in kinds],
        })
    return messages


def x2e_can_log(size_bytes: int, seed: int = 2012, n_messages: int = 24) -> bytes:
    """Generate ``size_bytes`` of CAN logger records, deterministically."""
    rng = random.Random(seed)
    messages = _make_messages(rng, n_messages)
    # Next transmission time per message (periodic scheduling with jitter).
    next_at = [rng.randrange(m["period_us"]) for m in messages]

    out = bytearray()
    while len(out) < size_bytes:
        index = min(range(len(messages)), key=lambda i: next_at[i])
        msg = messages[index]
        timestamp = next_at[index] + rng.randrange(120)  # arbitration jitter
        payload = bytes(sig.next() for sig in msg["signals"])
        out += _RECORD.pack(
            timestamp & 0xFFFFFFFF, msg["id"], len(payload), msg["flags"],
            payload,
        )
        next_at[index] += msg["period_us"]
    return bytes(out[:size_bytes])
