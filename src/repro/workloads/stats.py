"""Statistical characterisation of byte streams.

The estimator reports *what* a configuration achieves on a sample; this
module explains *why* — the properties of the data that drive every
trend in the paper's figures:

* byte entropy (the Huffman-stage bound),
* distinct-trigram count (hash-chain collision pressure),
* match coverage and length distribution under a reference search
  (dictionary-size sensitivity),
* literal fraction (the prefetch mechanism's opportunity, §IV's
  "30-85 % of the matching operations").

Used by ``lzss-estimator analyze`` and the workload tests.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.lzss.compressor import compress_tokens
from repro.lzss.hashchain import HashSpec


@dataclass
class WorkloadProfile:
    """Measured characteristics of one byte stream."""

    size: int
    byte_entropy_bits: float
    distinct_trigrams: int
    trigram_capacity: int          # min(size-2, 2**24)
    literal_fraction: float
    match_coverage: float          # fraction of bytes covered by matches
    mean_match_length: float
    match_length_histogram: Dict[str, int] = field(default_factory=dict)

    @property
    def trigram_diversity(self) -> float:
        """Distinct trigrams / possible positions — collision pressure
        on the 3-byte hash is the inverse of this."""
        if self.trigram_capacity == 0:
            return 0.0
        return self.distinct_trigrams / self.trigram_capacity

    def format(self) -> str:
        lines = [
            f"size               : {self.size} bytes",
            f"byte entropy       : {self.byte_entropy_bits:.3f} bits "
            "(8.0 = incompressible by Huffman alone)",
            f"distinct trigrams  : {self.distinct_trigrams} "
            f"({100 * self.trigram_diversity:.1f}% of positions)",
            f"literal fraction   : {100 * self.literal_fraction:.1f}% "
            "(paper expects 30-85%)",
            f"match coverage     : {100 * self.match_coverage:.1f}% "
            "of bytes",
            f"mean match length  : {self.mean_match_length:.1f}",
        ]
        if self.match_length_histogram:
            lines.append("match length histogram:")
            for bucket, count in self.match_length_histogram.items():
                lines.append(f"  {bucket:>8s}: {count}")
        return "\n".join(lines)


_LENGTH_BUCKETS = [(3, 4), (5, 8), (9, 16), (17, 32), (33, 64),
                   (65, 128), (129, 258)]


def profile_workload(
    data: bytes,
    window_size: int = 4096,
    hash_spec: Optional[HashSpec] = None,
) -> WorkloadProfile:
    """Measure the compression-relevant statistics of ``data``."""
    n = len(data)
    if n == 0:
        return WorkloadProfile(
            size=0, byte_entropy_bits=0.0, distinct_trigrams=0,
            trigram_capacity=0, literal_fraction=0.0,
            match_coverage=0.0, mean_match_length=0.0,
        )

    counts = Counter(data)
    entropy = -sum(
        (c / n) * math.log2(c / n) for c in counts.values()
    )

    trigrams = len({data[i:i + 3] for i in range(n - 2)}) if n >= 3 else 0
    capacity = min(max(n - 2, 0), 1 << 24)

    result = compress_tokens(data, window_size=window_size,
                             hash_spec=hash_spec)
    lengths: List[int] = [
        length for length in result.tokens.lengths if length
    ]
    matched_bytes = sum(lengths)
    histogram: Dict[str, int] = {}
    for low, high in _LENGTH_BUCKETS:
        label = f"{low}-{high}"
        histogram[label] = sum(1 for m in lengths if low <= m <= high)

    return WorkloadProfile(
        size=n,
        byte_entropy_bits=entropy,
        distinct_trigrams=trigrams,
        trigram_capacity=capacity,
        literal_fraction=result.trace.literal_fraction(),
        match_coverage=matched_bytes / n,
        mean_match_length=(
            matched_bytes / len(lengths) if lengths else 0.0
        ),
        match_length_histogram=histogram,
    )
