"""Templated small-message corpora for the batched engine.

The batched small-message engine targets workloads the big-buffer
corpora in this package do not model: *many independent* payloads of a
few hundred bytes to a few KiB, all generated from the same template —
JSON API responses and HTML fragments. Every message shares field
names, tag structure and punctuation with its siblings but carries its
own identifiers and values, which is exactly the regime where a pooled
Huffman plan (and optionally a shared preset dictionary) wins over
per-message fixed tables.

Generators return a *list of messages* (the unit the batch API
consumes); :func:`packed_messages` joins them for the byte-oriented
:mod:`repro.workloads.corpus` registry.
"""

from __future__ import annotations

import random
from typing import List

from repro.errors import ConfigError

_USERS = ["amara", "bjorn", "chen", "dara", "elif", "farid", "gita",
          "hana", "ivan", "jun"]
_EVENTS = ["login", "logout", "purchase", "view", "click", "search",
           "update", "delete", "share", "export"]
_WORDS = ["sensor", "window", "stream", "packet", "buffer", "match",
          "token", "block", "shard", "cycle", "queue", "frame"]


def _json_record(rng: random.Random) -> bytes:
    """One templated JSON record (~90-220 bytes)."""
    items = ",".join(str(rng.randrange(1000))
                     for _ in range(rng.randrange(2, 12)))
    tags = ",".join('"%s"' % rng.choice(_WORDS)
                    for _ in range(rng.randrange(1, 4)))
    return (
        '{"user":"%s%04d","event":"%s","ts":%d,"session":"%08x",'
        '"items":[%s],"tags":[%s],"ok":%s}'
        % (
            rng.choice(_USERS), rng.randrange(10000),
            rng.choice(_EVENTS), 1700000000 + rng.randrange(10**7),
            rng.getrandbits(32), items, tags,
            "true" if rng.random() < 0.8 else "false",
        )
    ).encode("ascii")


def _html_record(rng: random.Random) -> bytes:
    """One templated HTML fragment (~150-300 bytes)."""
    ident = rng.randrange(100000)
    title = " ".join(rng.choice(_WORDS)
                     for _ in range(rng.randrange(2, 5)))
    body = " ".join(rng.choice(_WORDS)
                    for _ in range(rng.randrange(8, 24)))
    return (
        '<div class="card" id="c%d" data-rank="%d">'
        '<h2 class="title">%s</h2><p class="body">%s</p>'
        '<a class="more" href="/item/%d">read more</a></div>'
        % (ident, rng.randrange(100), title, body, ident)
    ).encode("ascii")


_RECORD_MAKERS = {"json": _json_record, "html": _html_record}
_SEPARATORS = {"json": b",", "html": b"\n"}

#: The message template kinds, for CLI choices and registry names.
MESSAGE_KINDS = tuple(sorted(_RECORD_MAKERS))


def _one_message(kind: str, size: int, rng: random.Random) -> bytes:
    make = _RECORD_MAKERS[kind]
    sep = _SEPARATORS[kind]
    parts: List[bytes] = []
    total = 0
    while total < size:
        record = make(rng)
        parts.append(record)
        total += len(record) + len(sep)
    return sep.join(parts)[:size]


def messages(kind: str, count: int, size: int,
             seed: int = 2012) -> List[bytes]:
    """``count`` independent templated messages of ``size`` bytes each.

    Deterministic in ``seed``; every message is built from fresh random
    values over the shared template, so cross-message redundancy lives
    in the structure (field names, tags) — the shape the shared-plan
    and preset-dictionary machinery exploits.
    """
    if kind not in _RECORD_MAKERS:
        raise ConfigError(
            f"unknown message kind {kind!r}: expected one of "
            f"{', '.join(MESSAGE_KINDS)}"
        )
    if count < 0 or size < 0:
        raise ConfigError(
            f"count and size must be non-negative: {count}, {size}"
        )
    # String seeds hash via SHA-512 inside Random, so this derivation is
    # stable across processes (tuple hashing would not be: str hashes
    # are salted per interpreter).
    rng = random.Random(f"{seed}:{kind}:{count}:{size}")
    return [_one_message(kind, size, rng) for _ in range(count)]


def json_messages(count: int, size: int, seed: int = 2012) -> List[bytes]:
    """Templated JSON API-response messages."""
    return messages("json", count, size, seed=seed)


def html_messages(count: int, size: int, seed: int = 2012) -> List[bytes]:
    """Templated HTML fragment messages."""
    return messages("html", count, size, seed=seed)


def packed_messages(kind: str, size_bytes: int, *, message_size: int = 2048,
                    seed: int = 2012) -> bytes:
    """``size_bytes`` of newline-joined messages (corpus registry shim).

    The byte-oriented workload registry wants one buffer; the batch
    benchmarks want the list form — both views come from the same
    deterministic generator so results are comparable.
    """
    if message_size <= 0:
        raise ConfigError(f"message_size must be positive: {message_size}")
    count = max(1, -(-size_bytes // (message_size + 1)))
    joined = b"\n".join(messages(kind, count, message_size, seed=seed))
    return joined[:size_bytes]
