"""Synthetic corner-case inputs for tests and ablations."""

from __future__ import annotations

import random


def zeros(size_bytes: int) -> bytes:
    """All-zero input: maximal redundancy, longest possible matches."""
    return b"\x00" * size_bytes


def incompressible(size_bytes: int, seed: int = 0) -> bytes:
    """Uniform random bytes: the paper's worst case ("the compressed
    block will actually be bigger than the uncompressed one")."""
    rng = random.Random(seed)
    return rng.randbytes(size_bytes)


def repeated(pattern: bytes, size_bytes: int) -> bytes:
    """A repeating pattern (exercises overlapped copies)."""
    if not pattern:
        raise ValueError("pattern must be non-empty")
    reps = -(-size_bytes // len(pattern))
    return (pattern * reps)[:size_bytes]


def ramp(size_bytes: int) -> bytes:
    """0,1,...,255,0,1,... — periodic with period 256."""
    return bytes(i & 0xFF for i in range(size_bytes))


def mixed(size_bytes: int, seed: int = 0) -> bytes:
    """Alternating compressible and incompressible chunks."""
    rng = random.Random(seed)
    out = bytearray()
    toggle = True
    while len(out) < size_bytes:
        chunk = rng.randrange(200, 2000)
        if toggle:
            out += repeated(b"sensor frame 0x%02x " % rng.randrange(256),
                            chunk)
        else:
            out += rng.randbytes(chunk)
        toggle = not toggle
    return bytes(out[:size_bytes])


def almost_constant(size_bytes: int, seed: int = 0, flip_rate: float = 0.01)\
        -> bytes:
    """Constant byte with sparse random flips (long matches, rare breaks)."""
    rng = random.Random(seed)
    data = bytearray(b"\x55" * size_bytes)
    flips = int(size_bytes * flip_rate)
    for _ in range(flips):
        data[rng.randrange(size_bytes)] = rng.randrange(256)
    return bytes(data)
