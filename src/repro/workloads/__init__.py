"""Workload generators standing in for the paper's data sets.

The paper evaluates on (a) a fragment of a Wikipedia text snapshot from
the Large Text Compression Benchmark ("Wiki") and (b) sample data from
an automotive CAN logger ("X2E"). Neither is distributable or reachable
offline, so we generate deterministic synthetic equivalents that exercise
the same code paths with comparable statistics (redundancy level, match
length distribution, literal fraction) — the substitution is documented
in DESIGN.md.

* :func:`wiki_text` — Zipf-vocabulary English-like prose with wiki
  markup artefacts;
* :func:`x2e_can_log` — periodic CAN frame records with counters,
  timestamps and slowly varying signals;
* :mod:`repro.workloads.synthetic` — corner-case inputs for tests;
* :func:`corpus.sample` — cached, named access used by all benchmarks.
"""

from repro.workloads.wiki import wiki_text
from repro.workloads.x2e import x2e_can_log
from repro.workloads.corpus import sample, sample_size_bytes, WORKLOADS

__all__ = [
    "wiki_text",
    "x2e_can_log",
    "sample",
    "sample_size_bytes",
    "WORKLOADS",
]
