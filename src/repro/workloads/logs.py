"""Additional embedded-logging payload generators.

The paper's motivation is generic "high-bandwidth, typically redundant"
logging streams; CAN traffic is one instance. These generators cover two
other payloads integrators actually ship through such loggers:

* :func:`syslog_text` — timestamped line-oriented device logs (highly
  templated text, long-range repetition of message formats);
* :func:`json_telemetry` — newline-delimited JSON sensor telemetry
  (heavy key repetition, slowly varying numeric fields).

Both are deterministic per seed and tuned to realistic redundancy
levels rather than maximum compressibility.
"""

from __future__ import annotations

import random
from typing import List

_FACILITIES = ["kern", "daemon", "auth", "local0", "local1", "cron"]
_SEVERITIES = ["info", "warn", "err", "debug", "notice"]
_PROCS = [
    "gateway", "canlogd", "ifmon", "storaged", "ota-agent", "watchdog",
    "sensor-hub", "diagsvc",
]
_TEMPLATES = [
    "link {dev} state changed to {state}",
    "frame buffer {buf} high-water mark {pct}%",
    "flushed {n} records to volume {vol} in {ms}ms",
    "retrying upload of segment {seg} (attempt {n})",
    "clock sync offset {us}us from source {src}",
    "dropped {n} frames on channel {ch}: queue full",
    "health check ok: cpu {pct}% mem {mb}MB uptime {s}s",
    "configuration key {key} updated",
]
_DEVS = ["can0", "can1", "eth0", "flexray0", "lin2"]
_STATES = ["up", "down", "degraded"]
_KEYS = ["log.rotate_mb", "net.mtu", "trigger.mask", "storage.quota"]


def syslog_text(size_bytes: int, seed: int = 2012) -> bytes:
    """Generate ``size_bytes`` of device syslog lines."""
    rng = random.Random(seed)
    out: List[str] = []
    written = 0
    ts = rng.randrange(10**6)
    while written < size_bytes:
        ts += rng.randrange(1, 900)
        template = rng.choice(_TEMPLATES)
        line = (
            f"<{rng.randrange(8, 192)}>1 2012.{ts:010d} device-07 "
            f"{rng.choice(_PROCS)}[{rng.randrange(100, 4000)}] "
            f"{rng.choice(_FACILITIES)}.{rng.choice(_SEVERITIES)} "
            + template.format(
                dev=rng.choice(_DEVS),
                state=rng.choice(_STATES),
                buf=rng.randrange(8),
                pct=rng.randrange(101),
                n=rng.randrange(1, 500),
                vol=rng.randrange(4),
                ms=rng.randrange(1, 2000),
                seg=rng.randrange(10**5),
                us=rng.randrange(-500, 500),
                src=rng.choice(("gps", "ptp", "rtc")),
                ch=rng.randrange(8),
                mb=rng.randrange(64, 2048),
                s=ts // 1000,
                key=rng.choice(_KEYS),
            )
            + "\n"
        )
        out.append(line)
        written += len(line)
    return "".join(out).encode("ascii")[:size_bytes]


_SENSORS = [
    ("coolant_temp_c", 70.0, 0.4),
    ("oil_pressure_kpa", 350.0, 3.0),
    ("battery_v", 13.8, 0.05),
    ("wheel_speed_fl", 23.0, 0.8),
    ("wheel_speed_fr", 23.0, 0.8),
    ("yaw_rate_dps", 0.0, 0.5),
    ("throttle_pct", 18.0, 2.0),
]


def json_telemetry(size_bytes: int, seed: int = 2012) -> bytes:
    """Generate ``size_bytes`` of newline-delimited JSON telemetry."""
    rng = random.Random(seed)
    values = {name: base for name, base, _ in _SENSORS}
    out: List[str] = []
    written = 0
    ts = 1_330_000_000_000
    seq = 0
    while written < size_bytes:
        ts += rng.randrange(95, 106)
        seq += 1
        fields = [f'"ts":{ts}', f'"seq":{seq}', '"src":"vehicle-07"']
        for name, base, jitter in _SENSORS:
            values[name] += rng.uniform(-jitter, jitter)
            values[name] += (base - values[name]) * 0.02  # mean reversion
            fields.append(f'"{name}":{values[name]:.2f}')
        line = "{" + ",".join(fields) + "}\n"
        out.append(line)
        written += len(line)
    return "".join(out).encode("ascii")[:size_bytes]
