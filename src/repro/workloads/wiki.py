"""Wikipedia-like text generator (the paper's "Wiki" data set).

The Large Text Compression Benchmark's enwik snapshots are English
prose with MediaWiki markup. For the compression statistics that drive
the paper's figures, what matters is:

* a Zipf-distributed word vocabulary (high reuse of short common words
  keeps the hash chains busy and the match lengths moderate);
* sentence/paragraph/markup structure providing longer-range repeats
  ("[[", "]]", "== ... ==", common phrases);
* ~30-60 % of match attempts ending in literals (§IV's stated range).

The generator is fully deterministic for a given seed.
"""

from __future__ import annotations

import random
from typing import List

_VOCAB_SIZE = 6000
_LETTERS = "etaoinshrdlcumwfgypbvkjxqz"
_LETTER_WEIGHTS = [12, 9, 8, 8, 7, 7, 6, 6, 6, 4, 4, 3, 3, 3, 2, 2, 2, 2,
                   2, 1.5, 1, 0.8, 0.2, 0.1, 0.1, 0.1]

_COMMON = [
    "the", "of", "and", "in", "to", "a", "is", "was", "for", "as", "on",
    "with", "by", "that", "it", "from", "at", "his", "an", "were", "are",
    "which", "this", "also", "be", "has", "had", "its", "or", "first",
    "their", "one", "after", "new", "who", "but", "not", "they", "have",
]

_PHRASES = [
    "in the united states",
    "according to the",
    "as well as",
    "one of the most",
    "at the end of",
    "references external links",
    "the population was",
    "is located in",
    "was born in",
    "is known for",
]


#: Distinct successor letters per letter in generated words. English
#: letter bigrams are strongly constrained (~8 likely successors per
#: letter); this keeps the distinct-trigram count low, which is what
#: loads the 3-byte hash chains the way real text does.
_LETTER_SUCCESSORS = 10


def _make_vocab(rng: random.Random) -> List[str]:
    """Common English words followed by generated lower-frequency ones.

    Generated words follow a letter-bigram Markov chain so that their
    trigram statistics (and hence hash-collision rates) resemble
    natural language rather than uniform letter soup.
    """
    vocab = list(_COMMON)
    cum_letters = list(_LETTER_WEIGHTS)
    for i in range(1, len(cum_letters)):
        cum_letters[i] += cum_letters[i - 1]
    letter_chain = {
        letter: rng.choices(
            _LETTERS, cum_weights=cum_letters, k=_LETTER_SUCCESSORS
        )
        for letter in _LETTERS
    }
    succ_cum = _zipf_cum_weights(_LETTER_SUCCESSORS)
    seen = set(vocab)
    while len(vocab) < _VOCAB_SIZE:
        length = rng.choice((3, 4, 4, 5, 5, 6, 6, 7, 7, 8, 9, 10, 11))
        letters = [rng.choices(_LETTERS, cum_weights=cum_letters)[0]]
        while len(letters) < length:
            letters.append(
                rng.choices(letter_chain[letters[-1]],
                            cum_weights=succ_cum)[0]
            )
        word = "".join(letters)
        if word not in seen:
            seen.add(word)
            vocab.append(word)
    return vocab


def _zipf_cum_weights(n: int) -> List[float]:
    """Cumulative Zipf(s=1.05) weights for ranks 1..n."""
    total = 0.0
    cum = []
    for rank in range(1, n + 1):
        total += 1.0 / rank ** 1.05
        cum.append(total)
    return cum


#: Successor-set size of the word Markov chain. Natural language has
#: strongly limited word-to-word transitions; this knob sets the local
#: predictability (and therefore the LZSS match-length distribution and
#: compression ratio). Calibrated so the paper-speed configuration
#: (4 KB dictionary, 15-bit hash) lands near the paper's 1.68 ratio.
_SUCCESSORS = 128


def _make_chain(rng: random.Random, vocab: List[str]) -> List[List[int]]:
    """Per-word successor lists: a sparse first-order word Markov chain."""
    cum = _zipf_cum_weights(len(vocab))
    indices = list(range(len(vocab)))
    chain = []
    for _ in vocab:
        succ = rng.choices(indices, cum_weights=cum, k=_SUCCESSORS)
        chain.append(succ)
    return chain


def wiki_text(size_bytes: int, seed: int = 2012) -> bytes:
    """Generate ``size_bytes`` of Wikipedia-like text, deterministically."""
    rng = random.Random(seed)
    vocab = _make_vocab(rng)
    chain = _make_chain(rng, vocab)
    cum = _zipf_cum_weights(len(vocab))

    out: List[str] = []
    written = 0
    sentence_words = 0
    paragraph_sentences = 0
    article_paragraphs = 0
    word = 0  # current chain state

    def emit(text: str) -> None:
        nonlocal written
        out.append(text)
        written += len(text)

    emit("== Overview ==\n\n")
    while written < size_bytes:
        # Occasionally emit markup or a stock phrase.
        roll = rng.random()
        if roll < 0.02:
            emit("[[" + rng.choices(vocab, cum_weights=cum)[0] + "]] ")
        elif roll < 0.045:
            emit(rng.choice(_PHRASES) + " ")
            sentence_words += 4
        else:
            # Uniform choice within the successor set: the set itself is
            # Zipf-weighted, which already skews the stationary
            # distribution toward common words.
            word = chain[word][rng.randrange(_SUCCESSORS)]
            emit(vocab[word])
            sentence_words += 1
            if sentence_words >= rng.randint(8, 22):
                emit(". ")
                sentence_words = 0
                paragraph_sentences += 1
                if paragraph_sentences >= rng.randint(3, 7):
                    emit("\n\n")
                    paragraph_sentences = 0
                    article_paragraphs += 1
                    if article_paragraphs >= rng.randint(4, 9):
                        title = rng.choices(vocab, cum_weights=cum)[0]
                        emit(f"== {title.capitalize()} ==\n\n")
                        article_paragraphs = 0
            else:
                emit(" ")
    return "".join(out).encode("ascii")[:size_bytes]
