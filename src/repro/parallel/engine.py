"""pigz-style sharded parallel compression into one ZLib stream.

The paper's hardware sustains its throughput by pipelining a single
LZSS core; the software library scales the other axis — *data
parallelism*. The input is cut into fixed-size shards, each shard is
compressed independently on a process pool (CPython's GIL rules out
threads for this CPU-bound loop, same reasoning as
:mod:`repro.estimator.parallel`), and the results are stitched into a
**single valid ZLib stream** that any standard inflater accepts:

* every shard body is a run of non-final Deflate blocks terminated by
  an empty stored block (the ``Z_SYNC_FLUSH`` marker), which byte-aligns
  the fragment so fragments concatenate without bit-shifting;
* the stitcher prepends the 2-byte ZLib header, appends one final empty
  fixed block to close the Deflate layer, and computes the whole-stream
  checksum from the per-shard checksums via
  :func:`repro.checksums.adler32.adler32_combine` — no second pass over
  the data.

Shards are fully independent by default (each starts with a cold
dictionary — the isolation that makes the fan-out embarrassingly
parallel). ``carry_window=True`` instead primes each shard's matcher
with the preceding input bytes, clawing back most of the cold-window
ratio penalty — the same trade :mod:`repro.deflate.seekable` makes with
preset dictionaries — while staying parallel, because the history is
plaintext already in hand, not a compression result.

Shard jobs run on the **persistent warm pool**
(:mod:`repro.parallel.pool`): workers fork once per process and are
reused by every later call, and shard payloads are handed off through
``multiprocessing.shared_memory`` segments instead of being pickled
through the executor pipe — the fix for the pool-per-call
pessimisation ``BENCH_parallel.json`` recorded.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from dataclasses import dataclass
from typing import List, Optional

from repro.bitio.writer import BitWriter
from repro.checksums.adler32 import adler32, adler32_combine
from repro.deflate.block_writer import (
    BlockStrategy,
    write_block_header,
    write_fixed_block,
    write_stored_block,
)
from repro.deflate.dynamic import write_dynamic_block
from repro.deflate.splitter import (
    DEFAULT_TOKENS_PER_BLOCK,
    RefineConfig,
    write_adaptive_blocks,
)
from repro.deflate.stream import tokenize_chunk_with_result
from repro.deflate.zlib_container import make_header
from repro.errors import ConfigError
from repro.estimator.calibration import CalibrationPoint, point_from_trace
from repro.hw.params import HardwareParams
from repro.lzss.compressor import LZSSCompressor
from repro.lzss.router import (
    RouterConfig,
    RoutingDecision,
    ShardProbe,
    probe_shard,
    route_shard,
)
from repro.lzss.tokens import MIN_LOOKAHEAD, TokenArray
from repro.parallel.stats import ParallelStats, ShardStat

#: Default shard size: 1 MiB, large enough that the sync-marker framing
#: and the cold dictionary window are noise (<1% ratio penalty on text).
DEFAULT_SHARD_SIZE = 1 << 20

#: Smallest permitted shard. Below this the per-shard framing dominates
#: and the pool overhead exceeds the work; tests use the floor directly.
MIN_SHARD_SIZE = 1024


@dataclass(frozen=True)
class ShardTask:
    """One shard's job description (picklable for the process pool).

    ``backend`` names the tokenizer this shard runs (see
    :mod:`repro.lzss.backends`); per-shard overrides let a sampled
    subset run ``traced`` for live telemetry while the rest stay on a
    production backend.
    """

    index: int
    data: bytes
    history: bytes
    window_size: int
    hash_spec: object
    policy: object
    strategy: BlockStrategy
    backend: str = "fast"
    tokens_per_block: int = DEFAULT_TOKENS_PER_BLOCK
    cut_search: bool = True
    sniff: bool = True
    #: Re-parse each searched block against its emerging Huffman prices
    #: (ADAPTIVE + cut_search only; see repro.deflate.splitter).
    refine: bool = False
    #: Per-shard routing / traced-sampling policy (None = static).
    router: Optional[RouterConfig] = None
    #: Also compute the shard's CRC-32 (gzip framing stitches CRCs the
    #: way ZLib framing stitches Adlers; see repro.serve).
    want_crc: bool = False


@dataclass(frozen=True)
class ShardResult:
    """One shard's compressed fragment plus its bookkeeping.

    ``backend``/``route_reason``/``traced_sample`` record the routing
    outcome (see :mod:`repro.lzss.router`); ``telemetry`` is the
    traced-sample calibration point for sampled shards, ``None``
    otherwise.
    """

    index: int
    body: bytes
    adler: int
    input_bytes: int
    wall_s: float
    worker: int
    backend: str = ""
    route_reason: str = ""
    traced_sample: bool = False
    telemetry: Optional[CalibrationPoint] = None
    #: CRC-32 of the shard's input (only when the task asked for it).
    crc: int = 0


def _compress_shard_parts(
    data: bytes,
    history: bytes = b"",
    window_size: int = 4096,
    hash_spec=None,
    policy=None,
    strategy: BlockStrategy = BlockStrategy.FIXED,
    tokens_per_block: int = DEFAULT_TOKENS_PER_BLOCK,
    cut_search: bool = True,
    sniff: bool = True,
    backend: str = "fast",
    refine: bool = False,
    router: Optional[RouterConfig] = None,
    shard_index: int = 0,
    probe: Optional[ShardProbe] = None,
):
    """Route and compress one shard; return (body, decision, telemetry).

    The statistical probe runs **at most once** per shard: the stored
    bypass and the backend router both consume the same
    :class:`~repro.lzss.router.ShardProbe` (or the caller's precomputed
    ``probe``), fixing the historical double-sniff. ``telemetry`` is a
    :class:`~repro.estimator.calibration.CalibrationPoint` for
    traced-sample shards, ``None`` otherwise; ``decision`` is ``None``
    only for empty shards.
    """
    config = router or RouterConfig()
    writer = BitWriter()
    decision = None
    telemetry = None
    if data:
        need_sniff = strategy is BlockStrategy.ADAPTIVE and sniff
        need_probe = config.route == "probe" and backend == "auto"
        if probe is None and (need_sniff or need_probe):
            probe = probe_shard(data, match_density=need_probe)
        if need_sniff and probe.incompressible:
            decision = RoutingDecision(
                backend="stored", requested=backend, route=config.route,
                reason="stored-bypass", probe=probe,
            )
            write_stored_block(writer, data, final=False)
            write_block_header(writer, 0b00, final=False)
            writer.align_to_byte()
            writer.write_bits(0, 16)
            writer.write_bits(0xFFFF, 16)
            return writer.flush(), decision, telemetry
        decision = route_shard(
            data, backend=backend, policy=policy, config=config,
            index=shard_index, probe=probe,
        )
        lzss = LZSSCompressor(window_size, hash_spec, policy,
                              backend=decision.backend)
        started = time.perf_counter()
        tokens, result = tokenize_chunk_with_result(lzss, history, data)
        if decision.traced_sample and result.trace is not None:
            telemetry = point_from_trace(
                shard_index, result.trace,
                time.perf_counter() - started,
                policy=lzss.policy,
            )
        if strategy is BlockStrategy.ADAPTIVE and len(tokens):
            refine_config = (
                RefineConfig(window_size=window_size)
                if refine and cut_search else None
            )
            write_adaptive_blocks(writer, tokens, data, final=False,
                                  tokens_per_block=tokens_per_block,
                                  cut_search=cut_search,
                                  refine=refine_config)
        elif strategy is BlockStrategy.FIXED or len(tokens) == 0:
            write_fixed_block(writer, tokens, final=False)
        else:
            write_dynamic_block(writer, tokens, final=False)
    write_block_header(writer, 0b00, final=False)
    writer.align_to_byte()
    writer.write_bits(0, 16)
    writer.write_bits(0xFFFF, 16)
    return writer.flush(), decision, telemetry


def compress_shard_body(
    data: bytes,
    history: bytes = b"",
    window_size: Optional[int] = None,
    hash_spec=None,
    policy=None,
    strategy: Optional[BlockStrategy] = None,
    traced: Optional[bool] = None,
    tokens_per_block: Optional[int] = None,
    cut_search: Optional[bool] = None,
    sniff: Optional[bool] = None,
    backend: Optional[str] = None,
    refine: Optional[bool] = None,
    router: Optional[RouterConfig] = None,
    shard_index: int = 0,
    probe: Optional[ShardProbe] = None,
    profile=None,
) -> bytes:
    """Compress one shard into a byte-aligned raw Deflate fragment.

    The fragment is a non-final block run followed by a sync marker
    (empty stored block), so fragments from consecutive shards can be
    concatenated directly. ``history`` primes the matcher without being
    re-emitted (the carried-window mode). Shards run the trace-free
    fast tokenizer unless ``backend=`` selects another registered
    tokenizer (the removed ``traced=`` boolean raises
    :class:`~repro.errors.ConfigError`). ``ADAPTIVE`` prices every
    block of the shard under all three codings and emits the cheapest
    (stored payloads slice the shard's own bytes, zero-copy); its block
    boundaries come from the cost-driven cut search unless
    ``cut_search=False`` restores the blind ``tokens_per_block``
    cadence.

    With ``sniff`` (ADAPTIVE only) a shard the entropy sniff deems
    incompressible skips tokenization — the pipeline's most expensive
    stage — and is emitted directly as multi-chunk stored blocks. The
    bypass never consults ``history`` (stored blocks reference
    nothing), and the *next* shard's carried window is plaintext either
    way, so the decision is purely local to this shard.

    ``router`` activates per-shard routing and traced sampling
    (:mod:`repro.lzss.router`); ``shard_index`` keys the deterministic
    sampling policy; a precomputed ``probe`` is reused so the shard is
    sniffed at most once. Routing never changes the output bytes —
    every backend is bit-identical by contract.
    """
    from repro.api import CompressRequest, reject_legacy_trace

    reject_legacy_trace("traced", traced)
    resolved = CompressRequest(
        profile=profile,
        window_size=window_size,
        hash_spec=hash_spec,
        policy=policy,
        strategy=strategy,
        tokens_per_block=tokens_per_block,
        cut_search=cut_search,
        sniff=sniff,
        backend=backend,
        refine=refine,
        router=router,
    ).resolve(backend="fast")
    body, _, _ = _compress_shard_parts(
        data,
        history=history,
        window_size=resolved.window_size,
        hash_spec=resolved.hash_spec,
        policy=resolved.policy,
        strategy=resolved.strategy,
        tokens_per_block=resolved.tokens_per_block,
        cut_search=resolved.cut_search,
        sniff=resolved.sniff,
        backend=resolved.backend,
        refine=resolved.refine,
        router=router if router is not None else resolved.router,
        shard_index=shard_index,
        probe=probe,
    )
    return body


def close_stream(adler: int) -> bytes:
    """The stitched stream's tail: final empty block + Adler-32 trailer."""
    writer = BitWriter()
    write_fixed_block(writer, TokenArray(), final=True)
    return writer.flush() + adler.to_bytes(4, "big")


def _compress_shard(task: ShardTask) -> ShardResult:
    """Compress one shard, report timing (runs in a pool worker)."""
    start = time.perf_counter()
    body, decision, telemetry = _compress_shard_parts(
        task.data,
        history=task.history,
        window_size=task.window_size,
        hash_spec=task.hash_spec,
        policy=task.policy,
        strategy=task.strategy,
        backend=task.backend,
        tokens_per_block=task.tokens_per_block,
        cut_search=task.cut_search,
        sniff=task.sniff,
        refine=task.refine,
        router=task.router,
        shard_index=task.index,
    )
    crc = 0
    if task.want_crc:
        from repro.checksums.crc32 import crc32

        crc = crc32(task.data)
    return ShardResult(
        index=task.index,
        body=body,
        adler=adler32(task.data),
        input_bytes=len(task.data),
        wall_s=time.perf_counter() - start,
        worker=os.getpid(),
        backend=decision.backend if decision else "",
        route_reason=decision.reason if decision else "",
        traced_sample=decision.traced_sample if decision else False,
        telemetry=telemetry,
        crc=crc,
    )


def pool_context():
    """The multiprocessing context the engine forks workers with.

    ``fork`` keeps per-shard dispatch cheap (no interpreter re-exec, no
    module re-import) and is available on every POSIX platform; where it
    is not (Windows), the default context is used.
    """
    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return None


@dataclass
class ParallelCompressionResult:
    """A stitched ZLib stream plus the run's instrumentation."""

    data: bytes
    stats: ParallelStats

    @property
    def compressed_size(self) -> int:
        return len(self.data)

    @property
    def ratio(self) -> float:
        if not self.data:
            return 0.0
        return self.stats.bytes_in / len(self.data)


class ShardedCompressor:
    """Sharded parallel compressor producing single ZLib streams.

    ``workers=None`` uses the CPU count; ``workers=1`` short-circuits to
    an in-process loop (no pool, no fork — the serial path). Output
    bytes are identical at every worker count: sharding is deterministic
    and the stitcher reassembles in shard order, so parallelism is a
    pure wall-clock win.

    ``backend`` names the tokenizer every shard runs;
    ``shard_backends`` (a ``{shard_index: backend_name}`` mapping)
    overrides it per shard — the seam for tracing a sampled subset of
    shards while the rest stay on a production backend. Output bytes
    are backend-independent by the differential-test contract, so mixed
    runs still stitch into byte-identical streams. ``profile=`` accepts
    a :class:`repro.profile.CompressionProfile` (or preset name);
    explicit kwargs win over profile fields.

    ``pool=`` injects a caller-owned :class:`repro.parallel.pool.WarmPool`
    (the serving layer shares one pool across every connection); with
    ``pool=None`` the compressor borrows the lazy process-wide default
    pool for its worker count. Either way the pool outlives the call —
    consecutive ``compress()`` calls never pay worker startup again,
    and shard payloads ride shared memory instead of being pickled
    through the executor pipe.
    """

    def __init__(
        self,
        params: Optional[HardwareParams] = None,
        workers: Optional[int] = None,
        shard_size: Optional[int] = None,
        carry_window: bool = False,
        strategy: Optional[BlockStrategy] = None,
        traced: Optional[bool] = None,
        tokens_per_block: Optional[int] = None,
        cut_search: Optional[bool] = None,
        sniff: Optional[bool] = None,
        backend: Optional[str] = None,
        refine: Optional[bool] = None,
        shard_backends=None,
        profile=None,
        route: Optional[str] = None,
        probe_entropy_bits: Optional[float] = None,
        probe_match_density: Optional[float] = None,
        trace_fraction: Optional[float] = None,
        trace_seed: Optional[int] = None,
        router: Optional[RouterConfig] = None,
        zdict: bytes = b"",
        pool=None,
    ) -> None:
        from repro.api import CompressRequest, reject_legacy_trace

        reject_legacy_trace("traced", traced)
        shard_size = (DEFAULT_SHARD_SIZE if shard_size is None
                      else shard_size)
        if shard_size < MIN_SHARD_SIZE:
            raise ConfigError(
                f"shard_size must be >= {MIN_SHARD_SIZE}: {shard_size}"
            )
        if workers is not None and workers < 1:
            raise ConfigError(f"workers must be >= 1: {workers}")
        # Explicit HardwareParams pin the matcher config outright (the
        # hardware model is greedy-only, while software shards may run
        # any policy); without them the profile can fill in for the
        # paper-default HardwareParams fields.
        self.params = params or HardwareParams()
        resolved = CompressRequest(
            profile=profile,
            strategy=strategy,
            tokens_per_block=tokens_per_block,
            cut_search=cut_search,
            sniff=sniff,
            backend=backend,
            refine=refine,
            zdict=zdict if zdict else None,
            route=route,
            probe_entropy_bits=probe_entropy_bits,
            probe_match_density=probe_match_density,
            trace_fraction=trace_fraction,
            trace_seed=trace_seed,
            router=router,
        ).resolve(
            backend="fast",
            window_size=self.params.window_size,
            hash_spec=self.params.hash_spec,
            policy=self.params.policy,
        )
        if resolved.strategy is BlockStrategy.STORED:
            raise ConfigError("STORED shards would not compress anything")
        if params is None:
            self.window_size = resolved.window_size
            self.hash_spec = resolved.hash_spec
            self.policy = resolved.policy
        else:
            self.window_size = params.window_size
            self.hash_spec = params.hash_spec
            self.policy = params.policy
        self.workers = workers or os.cpu_count() or 1
        self.pool = pool
        self.shard_size = shard_size
        self.carry_window = carry_window
        self.strategy = resolved.strategy
        self.tokens_per_block = resolved.tokens_per_block
        self.cut_search = resolved.cut_search
        self.sniff = resolved.sniff
        self.backend = resolved.backend
        self.refine = resolved.refine
        self.shard_backends = dict(shard_backends or {})
        # A preset dictionary primes shard 0's matcher and switches the
        # stitched stream to FDICT framing; decode with
        # zlib.decompressobj(zdict=<the trimmed dictionary>). Later
        # shards are primed by carry_window (or stay cold) — only the
        # stream head lacks history the dictionary can supply.
        self.zdict = resolved.zdict
        if self.zdict:
            from repro.lzss.batch import effective_dictionary

            self._dictionary = effective_dictionary(
                self.zdict, self.window_size
            )
        else:
            self._dictionary = b""
        self.router = resolved.router

    @property
    def traced(self) -> bool:
        """Whether every shard runs the instrumented traced backend."""
        return self.backend == "traced"

    def plan(self, data: bytes) -> List[ShardTask]:
        """Cut ``data`` into shard tasks (empty input -> no shards).

        Each task carries the engine-level ``backend`` unless
        ``shard_backends`` overrides that shard's index.
        """
        tasks: List[ShardTask] = []
        keep = self.window_size + MIN_LOOKAHEAD
        for index, start in enumerate(range(0, len(data), self.shard_size)):
            history = b""
            if self.carry_window and start:
                history = data[max(0, start - keep):start]
            elif index == 0 and self._dictionary:
                history = self._dictionary
            tasks.append(
                ShardTask(
                    index=index,
                    data=data[start:start + self.shard_size],
                    history=history,
                    window_size=self.window_size,
                    hash_spec=self.hash_spec,
                    policy=self.policy,
                    strategy=self.strategy,
                    backend=self.shard_backends.get(index, self.backend),
                    tokens_per_block=self.tokens_per_block,
                    cut_search=self.cut_search,
                    sniff=self.sniff,
                    refine=self.refine,
                    router=self.router,
                )
            )
        return tasks

    def compress(self, data: bytes) -> ParallelCompressionResult:
        """Compress ``data`` into one ZLib stream, shards in parallel."""
        data = bytes(data)
        stats = ParallelStats(workers=self.workers,
                              shard_size=self.shard_size)
        start = time.perf_counter()
        tasks = self.plan(data)
        if self.workers == 1 or len(tasks) <= 1:
            stats.note_inflight(1 if tasks else 0)
            results = [_compress_shard(task) for task in tasks]
        else:
            # One-shot mode submits everything: the pool is the only
            # backpressure. Streams that must bound memory use
            # ParallelDeflateWriter instead. The pool is warm and
            # persistent — never spun up (or torn down) per call.
            from repro.parallel.pool import get_default_pool

            stats.note_inflight(len(tasks))
            pool = self.pool or get_default_pool(self.workers)
            results = pool.map_shards(tasks)
        if self._dictionary:
            from repro.deflate.preset_dict import fdict_header

            out = bytearray(fdict_header(self.window_size,
                                         self._dictionary))
        else:
            out = bytearray(make_header(self.window_size))
        adler = 1
        for result in results:
            out += result.body
            adler = adler32_combine(adler, result.adler,
                                    result.input_bytes)
            stats.add_shard(
                ShardStat(
                    index=result.index,
                    input_bytes=result.input_bytes,
                    output_bytes=len(result.body),
                    wall_s=result.wall_s,
                    worker=result.worker,
                    backend=result.backend,
                    route_reason=result.route_reason,
                    traced_sample=result.traced_sample,
                )
            )
            if result.telemetry is not None:
                stats.calibration.add(result.telemetry)
        out += close_stream(adler)
        stats.wall_s = time.perf_counter() - start
        return ParallelCompressionResult(data=bytes(out), stats=stats)


def compress_parallel(
    data: bytes,
    params: Optional[HardwareParams] = None,
    workers: Optional[int] = None,
    shard_size: Optional[int] = None,
    carry_window: bool = False,
    strategy: Optional[BlockStrategy] = None,
    traced: Optional[bool] = None,
    tokens_per_block: Optional[int] = None,
    cut_search: Optional[bool] = None,
    sniff: Optional[bool] = None,
    backend: Optional[str] = None,
    refine: Optional[bool] = None,
    shard_backends=None,
    profile=None,
    route: Optional[str] = None,
    probe_entropy_bits: Optional[float] = None,
    probe_match_density: Optional[float] = None,
    trace_fraction: Optional[float] = None,
    trace_seed: Optional[int] = None,
    zdict: bytes = b"",
    pool=None,
) -> bytes:
    """One-shot sharded compression; returns the stitched ZLib stream.

    ``backend`` selects the tokenizer for every shard and
    ``shard_backends`` overrides it per shard index (the traced-sample
    seam); ``route="probe"`` instead decides ``auto`` per shard from a
    statistical probe, and ``trace_fraction``/``trace_seed`` divert a
    deterministic sample of shards through the instrumented backend
    (see :mod:`repro.lzss.router`); ``profile`` accepts a
    :class:`repro.profile.CompressionProfile` or preset name, with
    explicit kwargs winning over profile fields.

    Shards run on a **persistent warm pool**: the first multi-worker
    call forks the workers, every later call reuses them, and shard
    bytes are handed off through shared memory rather than pickled
    (see :mod:`repro.parallel.pool`). Pass ``pool=`` to supply your own
    :class:`~repro.parallel.pool.WarmPool`; the default pool is shut
    down automatically at interpreter exit.

    >>> import zlib
    >>> payload = b"parallel snow " * 2000
    >>> stream = compress_parallel(payload, workers=1, shard_size=8192)
    >>> zlib.decompress(stream) == payload
    True
    """
    return ShardedCompressor(
        params=params,
        workers=workers,
        shard_size=shard_size,
        carry_window=carry_window,
        strategy=strategy,
        traced=traced,
        tokens_per_block=tokens_per_block,
        cut_search=cut_search,
        sniff=sniff,
        backend=backend,
        refine=refine,
        shard_backends=shard_backends,
        profile=profile,
        route=route,
        probe_entropy_bits=probe_entropy_bits,
        probe_match_density=probe_match_density,
        trace_fraction=trace_fraction,
        trace_seed=trace_seed,
        zdict=zdict,
        pool=pool,
    ).compress(data).data
