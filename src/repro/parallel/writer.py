"""Streaming front-end for the sharded engine with bounded memory.

:class:`ShardedCompressor` submits every shard at once — fine for
in-memory one-shots, wrong for an unbounded stream. The writer accepts
``write()`` calls of any size, cuts full shards off its buffer, keeps at
most ``max_inflight`` shards in the pool (further ``write()`` calls
block on the oldest result — backpressure), and emits compressed
fragments to the sink strictly in shard order, so the sink receives a
valid ZLib stream incrementally.
"""

from __future__ import annotations

import os
import time
from collections import deque
from typing import Optional

from repro.checksums.adler32 import adler32_combine
from repro.deflate.block_writer import BlockStrategy
from repro.deflate.zlib_container import make_header
from repro.errors import ConfigError
from repro.hw.params import HardwareParams
from repro.lzss.router import RouterConfig
from repro.lzss.tokens import MIN_LOOKAHEAD
from repro.parallel import engine
from repro.parallel.engine import (
    DEFAULT_SHARD_SIZE,
    MIN_SHARD_SIZE,
    ShardTask,
    close_stream,
)
from repro.parallel.pool import get_default_pool
from repro.parallel.stats import ParallelStats, ShardStat


class ParallelDeflateWriter:
    """File-like writer compressing shards concurrently, in order.

    Usage::

        with ParallelDeflateWriter(sink, workers=4) as writer:
            for chunk in source:
                writer.write(chunk)

    ``sink`` needs only a ``write(bytes)`` method. The ZLib header is
    written immediately; shard fragments follow as they complete (always
    in submission order); the closing block and Adler-32 trailer are
    written by :meth:`close`.

    Shards run on the persistent warm pool (:mod:`repro.parallel.pool`):
    ``pool=`` injects a caller-owned :class:`~repro.parallel.pool.WarmPool`
    (one pool shared by many writers is the serving-layer shape), and
    with ``pool=None`` the writer borrows the process-wide default pool
    for its worker count. The pool survives :meth:`close` — writers
    never pay worker startup after the first stream, and shard payloads
    ride shared memory instead of the executor pipe.
    """

    def __init__(
        self,
        sink,
        params: Optional[HardwareParams] = None,
        workers: Optional[int] = None,
        shard_size: Optional[int] = None,
        max_inflight: Optional[int] = None,
        carry_window: bool = False,
        strategy: Optional[BlockStrategy] = None,
        traced: Optional[bool] = None,
        tokens_per_block: Optional[int] = None,
        cut_search: Optional[bool] = None,
        sniff: Optional[bool] = None,
        backend: Optional[str] = None,
        refine: Optional[bool] = None,
        profile=None,
        route: Optional[str] = None,
        probe_entropy_bits: Optional[float] = None,
        probe_match_density: Optional[float] = None,
        trace_fraction: Optional[float] = None,
        trace_seed: Optional[int] = None,
        router: Optional[RouterConfig] = None,
        pool=None,
    ) -> None:
        from repro.api import CompressRequest, reject_legacy_trace

        reject_legacy_trace("traced", traced)
        shard_size = (DEFAULT_SHARD_SIZE if shard_size is None
                      else shard_size)
        if shard_size < MIN_SHARD_SIZE:
            raise ConfigError(
                f"shard_size must be >= {MIN_SHARD_SIZE}: {shard_size}"
            )
        self._sink = sink
        # Explicit HardwareParams pin the matcher config; otherwise the
        # profile can fill in for the paper-default fields.
        self.params = params or HardwareParams()
        resolved = CompressRequest(
            profile=profile,
            strategy=strategy,
            tokens_per_block=tokens_per_block,
            cut_search=cut_search,
            sniff=sniff,
            backend=backend,
            refine=refine,
            route=route,
            probe_entropy_bits=probe_entropy_bits,
            probe_match_density=probe_match_density,
            trace_fraction=trace_fraction,
            trace_seed=trace_seed,
            router=router,
        ).resolve(
            backend="fast",
            window_size=self.params.window_size,
            hash_spec=self.params.hash_spec,
            policy=self.params.policy,
        )
        if resolved.strategy is BlockStrategy.STORED:
            raise ConfigError("STORED shards would not compress anything")
        if params is None:
            self.window_size = resolved.window_size
            self.hash_spec = resolved.hash_spec
            self.policy = resolved.policy
        else:
            self.window_size = params.window_size
            self.hash_spec = params.hash_spec
            self.policy = params.policy
        self.workers = workers or os.cpu_count() or 1
        self.shard_size = shard_size
        self.carry_window = carry_window
        self.strategy = resolved.strategy
        self.tokens_per_block = resolved.tokens_per_block
        self.cut_search = resolved.cut_search
        self.sniff = resolved.sniff
        self.backend = resolved.backend
        self.refine = resolved.refine
        self.router = resolved.router
        # Two in-flight shards per worker keeps the pool fed while the
        # parent stitches; the floor of 2 lets even workers=1 overlap
        # buffering with compression.
        self.max_inflight = max_inflight or max(2 * self.workers, 2)
        if self.max_inflight < 1:
            raise ConfigError(
                f"max_inflight must be >= 1: {self.max_inflight}"
            )
        self._buffer = bytearray()
        self._tail = b""  # carried window material (plaintext)
        self._pending = deque()
        # Caller-owned warm pool, or None to borrow the process-wide
        # default lazily on first submit. Never shut down by close():
        # warm pools outlive streams by design.
        self._pool = pool
        self._adler = 1
        self._next_index = 0
        self._total_in = 0
        self._closed = False
        # Set when a shard worker (or the sink) raised: the sink then
        # holds a header-only or truncated stream with no trailer, and
        # that must stay observable — close() re-raises instead of
        # pretending the stream completed.
        self._failed = False
        self._started = time.perf_counter()
        self.stats = ParallelStats(workers=self.workers,
                                   shard_size=shard_size)
        self._sink.write(make_header(self.window_size))

    # -- pipeline ----------------------------------------------------

    def _ensure_pool(self):
        if self._pool is None:
            self._pool = get_default_pool(self.workers)
        return self._pool

    def _submit(self, shard: bytes) -> None:
        if len(self._pending) >= self.max_inflight:
            self._drain_one()  # backpressure: block on the oldest shard
        task = ShardTask(
            index=self._next_index,
            data=shard,
            history=self._tail if self.carry_window else b"",
            window_size=self.window_size,
            hash_spec=self.hash_spec,
            policy=self.policy,
            strategy=self.strategy,
            backend=self.backend,
            tokens_per_block=self.tokens_per_block,
            cut_search=self.cut_search,
            sniff=self.sniff,
            refine=self.refine,
            router=self.router,
        )
        self._next_index += 1
        self._total_in += len(shard)
        keep = self.window_size + MIN_LOOKAHEAD
        if self.carry_window:
            self._tail = (self._tail + shard)[-keep:]
        if self.workers == 1:
            self._pending.append(engine._compress_shard(task))
        else:
            self._pending.append(self._ensure_pool().submit_shard(task))
        self.stats.note_inflight(len(self._pending))

    def _drain_one(self) -> None:
        item = self._pending.popleft()
        # Pool futures resolve through shard_result so a dead worker
        # raises ConfigError (feeding the failure latch) instead of
        # hanging or leaking BrokenProcessPool.
        result = (self._pool.shard_result(item)
                  if hasattr(item, "result") else item)
        self._sink.write(result.body)
        self._adler = adler32_combine(self._adler, result.adler,
                                      result.input_bytes)
        self.stats.add_shard(
            ShardStat(
                index=result.index,
                input_bytes=result.input_bytes,
                output_bytes=len(result.body),
                wall_s=result.wall_s,
                worker=result.worker,
                backend=result.backend,
                route_reason=result.route_reason,
                traced_sample=result.traced_sample,
            )
        )
        if result.telemetry is not None:
            self.stats.calibration.add(result.telemetry)

    # -- public API --------------------------------------------------

    def write(self, data: bytes) -> int:
        """Buffer ``data``; submit every full shard it completes.

        Blocks (on the oldest in-flight shard) whenever the in-flight
        bound is reached, so memory stays at
        ``O(max_inflight * shard_size)`` regardless of input size.
        """
        if self._failed:
            raise ConfigError(
                "writer failed: the output stream is truncated"
            )
        if self._closed:
            raise ConfigError("writer already closed")
        self._buffer += data
        while len(self._buffer) >= self.shard_size:
            shard = bytes(self._buffer[:self.shard_size])
            del self._buffer[:self.shard_size]
            self._submit(shard)
        return len(data)

    @property
    def total_in(self) -> int:
        """Bytes accepted so far (buffered or submitted)."""
        return self._total_in + len(self._buffer)

    @property
    def failed(self) -> bool:
        """True once a shard worker or sink write raised.

        A failed writer's sink holds a truncated stream (no trailer);
        further :meth:`write`/:meth:`close` calls raise rather than
        silently returning an unfinished stream as complete.
        """
        return self._failed

    def close(self) -> None:
        """Flush the partial tail shard, drain the pool, finish the stream.

        An input ending exactly on a shard boundary leaves an empty tail
        — no empty shard is submitted for it (see the sync-flush
        emission rule in :mod:`repro.deflate.stream`).

        If a shard worker raised, the exception propagates, the writer
        enters the ``failed`` state and the pool is shut down; a repeat
        ``close()`` raises again instead of returning silently — the
        sink's stream is truncated and must not pass for a finished one.
        """
        if self._failed:
            raise ConfigError(
                "writer failed: the output stream is truncated"
            )
        if self._closed:
            return
        try:
            if self._buffer:
                shard = bytes(self._buffer)
                self._buffer.clear()
                self._submit(shard)
            while self._pending:
                self._drain_one()
            self._sink.write(close_stream(self._adler))
            self.stats.wall_s = time.perf_counter() - self._started
            self._closed = True
        except BaseException:
            self._failed = True
            self._abandon_pending()
            raise

    def _abandon_pending(self) -> None:
        """Drop in-flight shards after a failure.

        The warm pool itself stays up (it is shared with other streams
        and future calls); only this stream's outstanding futures are
        cancelled or left to complete into the void.
        """
        while self._pending:
            item = self._pending.popleft()
            if hasattr(item, "cancel"):
                item.cancel()

    def __enter__(self) -> "ParallelDeflateWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.close()
        else:
            # Abandon the stream on error: no (corrupt) trailer is
            # written. The failed state keeps the truncation observable
            # if close() is called later anyway; the warm pool survives
            # for the next stream.
            self._failed = True
            self._abandon_pending()
