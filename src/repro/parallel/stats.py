"""Instrumentation for the sharded compression engine.

Every shard job reports its own wall time and sizes; the engine and the
streaming writer fold them into a :class:`ParallelStats` that answers
the operational questions — aggregate MB/s, per-shard latency spread,
and how deep the in-flight queue ran (the writer bounds it, the
one-shot engine saturates it).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.estimator.calibration import CalibrationLog


@dataclass(frozen=True)
class ShardStat:
    """One shard's compression record.

    ``backend`` is the concrete tokenizer the shard ran after routing
    (``"stored"`` when the incompressibility bypass skipped
    tokenization); ``route_reason`` is the router's machine-greppable
    tag (``static``, ``probe-match-poor``, ``probe-match-rich``,
    ``trace-sample``, ``stored-bypass``, ``vector-unavailable``);
    ``traced_sample`` marks shards the sampling policy diverted through
    the instrumented backend. Empty strings mean the shard predates the
    router (or was built by hand in a test).
    """

    index: int
    input_bytes: int
    output_bytes: int
    wall_s: float
    worker: int  # pid of the process that compressed it
    backend: str = ""
    route_reason: str = ""
    traced_sample: bool = False

    @property
    def throughput_mbps(self) -> float:
        if self.wall_s <= 0.0:
            return 0.0
        return self.input_bytes / self.wall_s / 1e6


@dataclass
class ParallelStats:
    """Aggregate outcome of one sharded compression."""

    workers: int
    shard_size: int
    shards: List[ShardStat] = field(default_factory=list)
    wall_s: float = 0.0
    peak_inflight: int = 0
    #: Traced-sample telemetry (one point per sampled shard), the live
    #: calibration feed for the estimator's cycle model.
    calibration: CalibrationLog = field(default_factory=CalibrationLog)

    def add_shard(self, stat: ShardStat) -> None:
        self.shards.append(stat)

    def merge(self, other: "ParallelStats") -> None:
        """Fold another run's shards into this aggregate.

        The serving layer keeps one :class:`ParallelStats` per
        connection and folds each finished connection into a
        server-wide aggregate: shard records concatenate, wall time
        accumulates (summed stream time, not elapsed server time), and
        the peak queue depth is the maximum either side saw.
        """
        self.shards.extend(other.shards)
        self.wall_s += other.wall_s
        self.peak_inflight = max(self.peak_inflight, other.peak_inflight)
        for point in other.calibration.points:
            self.calibration.add(point)

    def note_inflight(self, depth: int) -> None:
        """Record the current in-flight shard count (queue depth)."""
        if depth > self.peak_inflight:
            self.peak_inflight = depth

    @property
    def shard_count(self) -> int:
        return len(self.shards)

    @property
    def backend_counts(self) -> dict:
        """Concrete backend -> shard count (routing outcome summary)."""
        counts: dict = {}
        for stat in self.shards:
            if stat.backend:
                counts[stat.backend] = counts.get(stat.backend, 0) + 1
        return counts

    @property
    def traced_samples(self) -> int:
        """Shards the sampling policy diverted through ``traced``."""
        return sum(1 for s in self.shards if s.traced_sample)

    @property
    def bytes_in(self) -> int:
        return sum(s.input_bytes for s in self.shards)

    @property
    def bytes_out(self) -> int:
        """Compressed shard bytes (excludes the ~8 bytes of framing)."""
        return sum(s.output_bytes for s in self.shards)

    @property
    def throughput_mbps(self) -> float:
        """End-to-end speed: input bytes over total wall time."""
        if self.wall_s <= 0.0:
            return 0.0
        return self.bytes_in / self.wall_s / 1e6

    @property
    def ratio(self) -> float:
        if self.bytes_out == 0:
            return 0.0
        return self.bytes_in / self.bytes_out

    @property
    def worker_seconds(self) -> float:
        """Summed per-shard wall time (the work the pool absorbed)."""
        return sum(s.wall_s for s in self.shards)

    @property
    def mean_shard_s(self) -> float:
        if not self.shards:
            return 0.0
        return self.worker_seconds / len(self.shards)

    @property
    def max_shard_s(self) -> float:
        if not self.shards:
            return 0.0
        return max(s.wall_s for s in self.shards)

    def format(self, per_shard: bool = False) -> str:
        """Render a plain-text report (the CLI's ``--stats`` output)."""
        lines = [
            f"shards          : {self.shard_count} "
            f"x {self.shard_size} bytes (workers={self.workers})",
            f"input           : {self.bytes_in} bytes",
            f"output          : {self.bytes_out} bytes "
            f"(ratio {self.ratio:.3f})",
            f"wall time       : {self.wall_s:.3f} s "
            f"({self.throughput_mbps:.2f} MB/s)",
            f"shard wall time : mean {self.mean_shard_s:.3f} s, "
            f"max {self.max_shard_s:.3f} s",
            f"peak queue depth: {self.peak_inflight}",
        ]
        counts = self.backend_counts
        if counts:
            summary = " ".join(
                f"{name}={count}" for name, count in sorted(counts.items())
            )
            sampled = (f", {self.traced_samples} traced sample(s)"
                       if self.traced_samples else "")
            lines.append(f"backends        : {summary}{sampled}")
        if per_shard:
            for s in self.shards:
                routing = ""
                if s.backend:
                    routing = f"  {s.backend} [{s.route_reason}]"
                lines.append(
                    f"  shard {s.index:>4d}: {s.input_bytes:>8d} -> "
                    f"{s.output_bytes:>8d} B  {s.wall_s:.3f} s  "
                    f"{s.throughput_mbps:.2f} MB/s  pid {s.worker}"
                    f"{routing}"
                )
        if len(self.calibration):
            lines.append(self.calibration.format_table())
        return "\n".join(lines)
