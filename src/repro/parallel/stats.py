"""Instrumentation for the sharded compression engine.

Every shard job reports its own wall time and sizes; the engine and the
streaming writer fold them into a :class:`ParallelStats` that answers
the operational questions — aggregate MB/s, per-shard latency spread,
and how deep the in-flight queue ran (the writer bounds it, the
one-shot engine saturates it).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List


@dataclass(frozen=True)
class ShardStat:
    """One shard's compression record."""

    index: int
    input_bytes: int
    output_bytes: int
    wall_s: float
    worker: int  # pid of the process that compressed it

    @property
    def throughput_mbps(self) -> float:
        if self.wall_s <= 0.0:
            return 0.0
        return self.input_bytes / self.wall_s / 1e6


@dataclass
class ParallelStats:
    """Aggregate outcome of one sharded compression."""

    workers: int
    shard_size: int
    shards: List[ShardStat] = field(default_factory=list)
    wall_s: float = 0.0
    peak_inflight: int = 0

    def add_shard(self, stat: ShardStat) -> None:
        self.shards.append(stat)

    def note_inflight(self, depth: int) -> None:
        """Record the current in-flight shard count (queue depth)."""
        if depth > self.peak_inflight:
            self.peak_inflight = depth

    @property
    def shard_count(self) -> int:
        return len(self.shards)

    @property
    def bytes_in(self) -> int:
        return sum(s.input_bytes for s in self.shards)

    @property
    def bytes_out(self) -> int:
        """Compressed shard bytes (excludes the ~8 bytes of framing)."""
        return sum(s.output_bytes for s in self.shards)

    @property
    def throughput_mbps(self) -> float:
        """End-to-end speed: input bytes over total wall time."""
        if self.wall_s <= 0.0:
            return 0.0
        return self.bytes_in / self.wall_s / 1e6

    @property
    def ratio(self) -> float:
        if self.bytes_out == 0:
            return 0.0
        return self.bytes_in / self.bytes_out

    @property
    def worker_seconds(self) -> float:
        """Summed per-shard wall time (the work the pool absorbed)."""
        return sum(s.wall_s for s in self.shards)

    @property
    def mean_shard_s(self) -> float:
        if not self.shards:
            return 0.0
        return self.worker_seconds / len(self.shards)

    @property
    def max_shard_s(self) -> float:
        if not self.shards:
            return 0.0
        return max(s.wall_s for s in self.shards)

    def format(self, per_shard: bool = False) -> str:
        """Render a plain-text report (the CLI's ``--stats`` output)."""
        lines = [
            f"shards          : {self.shard_count} "
            f"x {self.shard_size} bytes (workers={self.workers})",
            f"input           : {self.bytes_in} bytes",
            f"output          : {self.bytes_out} bytes "
            f"(ratio {self.ratio:.3f})",
            f"wall time       : {self.wall_s:.3f} s "
            f"({self.throughput_mbps:.2f} MB/s)",
            f"shard wall time : mean {self.mean_shard_s:.3f} s, "
            f"max {self.max_shard_s:.3f} s",
            f"peak queue depth: {self.peak_inflight}",
        ]
        if per_shard:
            for s in self.shards:
                lines.append(
                    f"  shard {s.index:>4d}: {s.input_bytes:>8d} -> "
                    f"{s.output_bytes:>8d} B  {s.wall_s:.3f} s  "
                    f"{s.throughput_mbps:.2f} MB/s  pid {s.worker}"
                )
        return "\n".join(lines)
