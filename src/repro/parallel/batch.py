"""Chunked parallel fan-out for very large message batches.

One :func:`repro.batch.compress_batch` call already amortises setup
across its payloads, but a single call is one core. For very large N
this module cuts the payload list into contiguous *chunks* and runs one
batched pass per chunk on a process pool — the same fork-based pool and
determinism contract as :class:`repro.parallel.engine.ShardedCompressor`:
chunking is deterministic, results reassemble in order, and every
output stream is the same independent ZLib stream the serial batch
would have produced for that chunk.

Each chunk builds its *own* shared Huffman plan (plans are priced
against the chunk's pooled histograms), so chunk size trades plan
quality against parallelism: bigger chunks pool more context, more
chunks keep more cores busy. The default of a few hundred messages per
chunk keeps the per-chunk numpy pass comfortably past its fixed cost.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Sequence

from repro.batch import BatchResult, BatchStats, compress_batch
from repro.errors import ConfigError
from repro.parallel.pool import get_default_pool

#: Default payloads per chunk: large enough that one vectorised pass
#: dominates its setup, small enough that a few thousand messages still
#: fan out across every core.
DEFAULT_CHUNK_PAYLOADS = 256


def _compress_chunk(job) -> BatchResult:
    """Top-level pool worker: one chunk through the serial batch path."""
    payloads, kwargs = job
    return compress_batch(payloads, **kwargs)


def compress_batch_parallel(
    payloads: Sequence[bytes],
    *,
    workers: Optional[int] = None,
    chunk_payloads: int = DEFAULT_CHUNK_PAYLOADS,
    profile=None,
    zdict: bytes = b"",
    window_size: Optional[int] = None,
    hash_spec=None,
    policy=None,
    backend: Optional[str] = None,
    shared_plan: Optional[bool] = None,
    router=None,
    pool=None,
) -> BatchResult:
    """Batch-compress ``payloads`` across a process pool, chunk-wise.

    Keyword arguments mirror :func:`repro.batch.compress_batch` and are
    forwarded verbatim to every chunk. ``workers=None`` uses the CPU
    count; ``workers=1`` (or a single chunk) short-circuits to the
    in-process serial path. The merged :class:`~repro.batch.BatchResult`
    keeps per-payload ``streams``/``choices`` in input order; ``routing``
    is the first chunk's decision (chunks of one batch route alike on
    one machine) and ``plan`` is ``None`` — plans are per chunk.

    Chunks run on the persistent warm pool (:mod:`repro.parallel.pool`)
    — the same workers the sharded engine keeps warm — so a service
    alternating between large-buffer and many-message traffic never
    pays pool startup twice. ``pool=`` injects a caller-owned
    :class:`~repro.parallel.pool.WarmPool`.
    """
    if chunk_payloads < 1:
        raise ConfigError(
            f"chunk_payloads must be >= 1: {chunk_payloads}"
        )
    if workers is not None and workers < 1:
        raise ConfigError(f"workers must be >= 1: {workers}")
    payloads = [bytes(p) for p in payloads]
    workers = workers or os.cpu_count() or 1
    kwargs = dict(
        profile=profile, zdict=zdict, window_size=window_size,
        hash_spec=hash_spec, policy=policy, backend=backend,
        shared_plan=shared_plan, router=router,
    )
    if not payloads:
        return compress_batch([], **kwargs)

    chunks = [
        payloads[start:start + chunk_payloads]
        for start in range(0, len(payloads), chunk_payloads)
    ]
    if workers == 1 or len(chunks) == 1:
        results = [_compress_chunk((chunk, kwargs)) for chunk in chunks]
    else:
        warm = pool or get_default_pool(workers)
        results = warm.run(
            _compress_chunk, [(chunk, kwargs) for chunk in chunks]
        )

    streams: List[bytes] = []
    choices: List[str] = []
    counts: Dict[str, int] = {}
    output_bytes = 0
    for result in results:
        streams.extend(result.streams)
        choices.extend(result.choices)
        output_bytes += result.stats.output_bytes
        for name, count in result.stats.choice_counts.items():
            counts[name] = counts.get(name, 0) + count
    stats = BatchStats(
        payload_count=len(payloads),
        input_bytes=sum(len(p) for p in payloads),
        output_bytes=output_bytes,
        choice_counts=counts,
    )
    return BatchResult(streams, tuple(choices), results[0].routing,
                       None, stats)
